// lumos_cli — command-line front end for quick what-if studies.
//
// Usage:
//   lumos_cli tron  <model>  [seq_len] [batch]
//   lumos_cli ghost <model>  <dataset>
//   lumos_cli generate <model> <prompt_len> <tokens>
//
//   <model>   tron:  bert-base | bert-large | gpt2 | vit | transformer
//             ghost: gcn | graphsage | gin | gat
//   <dataset> cora | citeseer | pubmed
//
// Examples:
//   lumos_cli tron bert-base 256 8
//   lumos_cli ghost gat pubmed
//   lumos_cli generate gpt2 64 128
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/units.hpp"
#include "ghost/accelerator.hpp"
#include "tron/accelerator.hpp"

namespace {

using namespace lumos;

void print_report(const PerfReport& r) {
  std::cout << r.platform << " / " << r.workload << ":\n"
            << "  latency        : " << units::to_us(r.latency_s) << " us\n"
            << "  throughput     : " << units::to_gops(r.ops_per_second()) << " GOPS\n"
            << "  energy per bit : " << units::to_pj(r.energy_per_bit_j()) << " pJ/bit\n"
            << "  total energy   : " << r.total_energy_j * 1e6 << " uJ\n"
            << "  average power  : " << r.average_power_w() << " W\n"
            << "  memory stall   : " << units::to_us(r.breakdown.memory_stall_s) << " us ("
            << 100.0 * r.breakdown.memory_stall_s / r.latency_s << " %)\n";
}

int usage() {
  std::cerr << "usage:\n"
               "  lumos_cli tron  <bert-base|bert-large|gpt2|vit|transformer> [seq] [batch]\n"
               "  lumos_cli ghost <gcn|graphsage|gin|gat> <cora|citeseer|pubmed>\n"
               "  lumos_cli generate <bert-base|bert-large|gpt2|vit> <prompt> <tokens>\n";
  return 2;
}

nn::TransformerConfig transformer_by_name(const std::string& name, std::size_t seq) {
  if (name == "bert-base") return nn::bert_base(seq);
  if (name == "bert-large") return nn::bert_large(seq);
  if (name == "gpt2") return nn::gpt2_small(seq);
  if (name == "vit") return nn::vit_base();
  if (name == "transformer") return nn::original_transformer(seq, seq);
  throw InvalidArgument("unknown transformer model: " + name);
}

gnn::GnnModelConfig gnn_by_name(const std::string& name) {
  if (name == "gcn") return gnn::gcn_model();
  if (name == "graphsage") return gnn::graphsage_model();
  if (name == "gin") return gnn::gin_model();
  if (name == "gat") return gnn::gat_model();
  throw InvalidArgument("unknown GNN model: " + name);
}

graph::GraphDataset dataset_by_name(const std::string& name) {
  if (name == "cora") return graph::synthetic_cora();
  if (name == "citeseer") return graph::synthetic_citeseer();
  if (name == "pubmed") return graph::synthetic_pubmed();
  throw InvalidArgument("unknown dataset: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string mode = argv[1];
  try {
    if (mode == "tron") {
      const std::size_t seq = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 128;
      const std::size_t batch = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 1;
      const tron::TronAccelerator acc(tron::default_tron_config());
      print_report(acc.estimate_batch(transformer_by_name(argv[2], seq), batch));
      return 0;
    }
    if (mode == "ghost") {
      if (argc < 4) return usage();
      const ghost::GhostAccelerator acc(ghost::default_ghost_config());
      print_report(acc.estimate(gnn_by_name(argv[2]), dataset_by_name(argv[3])));
      return 0;
    }
    if (mode == "generate") {
      if (argc < 5) return usage();
      const std::size_t prompt = std::strtoul(argv[3], nullptr, 10);
      const std::size_t tokens = std::strtoul(argv[4], nullptr, 10);
      const tron::TronAccelerator acc(tron::default_tron_config());
      print_report(acc.estimate_generation(transformer_by_name(argv[2], prompt + tokens),
                                           prompt, tokens));
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
