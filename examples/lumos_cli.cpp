// lumos_cli — command-line front end for quick what-if studies and serving
// campaigns, routed through the `arch` accelerator abstraction.
//
// Usage:
//   lumos_cli [--json] list
//   lumos_cli [--json] tron  <model>  [seq_len] [batch]
//   lumos_cli [--json] ghost <model>  <dataset>
//   lumos_cli [--json] generate <model> <prompt_len> <tokens>
//   lumos_cli [--json] serve <tron|ghost|mixed|spec[,spec...]> [serve flags]
//
//   list      prints the registry's workload, dataset, and accelerator spec
//             names plus the serve enums (processes, schedulers, routing,
//             autoscalers, loop modes, seqlen distributions) — the strings
//             every other mode accepts
//   <model>   tron:  bert-base | bert-large | gpt2 | vit | transformer
//             ghost: gcn | graphsage | gin | gat
//   <dataset> cora | citeseer | pubmed | arxiv
//
//   serve fleets:
//     tron    homogeneous TRON fleet over the transformer mix
//     ghost   homogeneous GHOST fleet over the GNN mix
//     mixed   alternating TRON+GHOST fleet over the combined mix with
//             kind-aware routing (multi-tenant serving)
//     spec[,spec...]  explicit registry spec names cycled across the slots —
//             hybrid photonic/electronic fleets ("tron,v100", "a100",
//             "tron,xeon@2.0").  The catalog follows the kinds the specs
//             serve: transformer-only, GNN-only, or the combined mix
//             (electronic platforms serve both)
//
//   serve flags:
//     --loop <m>         open | closed (default open): open-loop offered-QPS
//                        trace vs closed-loop client sessions that wait for
//                        each completion, think, then issue the next request
//     --qps <q>          open loop: offered QPS (default: 70% of unloaded
//                        fleet capacity)
//     --requests <n>     open loop: trace length; closed loop: total requests
//                        across all sessions (default 50000)
//     --sessions <n>     closed loop: concurrent client sessions (default 32)
//     --think-time-us <t> closed loop: mean exponential think time (default 2000)
//     --seqlen-dist <d>  fixed | uniform | lognormal: per-request sequence
//                        lengths for transformer tenants (default fixed)
//     --decode <n>       mean generated tokens per request on transformer
//                        tenants: each request runs a prefill then decodes
//                        token by token, with waiting prefills admitted into
//                        free batch lanes at token boundaries (continuous
//                        batching; see --decode-mode)
//     --decode-dist <d>  fixed | uniform | lognormal decode-length shape
//                        around --decode tokens (default fixed; needs --decode)
//     --decode-mode <m>  continuous | monolithic decode scheduling (default
//                        continuous; monolithic holds the batch to the longest
//                        decode — the static-batching baseline; needs --decode)
//     --ttft-slo-us <t>  time-to-first-token SLO on decoding tenants
//                        (needs --decode)
//     --tpot-slo-us <t>  time-per-output-token SLO on decoding tenants
//                        (needs --decode)
//     --fleet <n>        accelerators in the (initial) fleet (default 4)
//     --sched <s>        fifo | batch (default batch)
//     --max-batch <n>    dynamic-batch cap (default 8)
//     --max-wait-us <w>  dynamic-batch deadline (default 2000)
//     --bursty           open loop: MMPP arrivals instead of Poisson
//     --routing <r>      first-idle | energy-aware | cost-aware (default
//                        first-idle; cost-aware picks the cheapest idle slot
//                        still predicted to make the tenant's SLO)
//     --hetero           alternate full/eco accelerator variants (photonic
//                        fleets only: electronic platforms have no eco variant)
//     --fleets <grid>    fleet-template campaign axis: semicolon-separated
//                        templates, each a comma-separated spec list
//                        ("tron;v100;tron,v100" compares photonic, electronic,
//                        and hybrid fleets in one table; open-loop sweeps only)
//     --usd-per-kwh <x>  marginal energy price in $/kWh (default 0.10)
//     --usd-per-watt-hour <x>  hosting $/W/h applied to a slot's static draw
//                        for its default $/slot-hour rate (default 0.01)
//     --slot-rate <spec=x>  pin an exact $/slot-hour for one spec name
//                        (repeatable; overrides the static-draw default)
//     --seed <s>         trace / session seed (default 1)
//     --priority         two-tier strict priorities over the workload mix
//                        (high-traffic tenants tier 0, the rest tier 1)
//     --autoscale <p>    none | queue | util: elastic fleet policy
//     --scale-interval-us <n>  autoscaler evaluation step (default 5000)
//     --min-fleet <n>    per-family slot floor under autoscaling (default 1)
//     --max-fleet <n>    per-family slot ceiling under autoscaling (default 64)
//     --grow-scale <x>   grown slots use the registry's "<spec>@<x>" variant
//     --mtbf-us <n>      per-slot mean time between failures (enables fault
//                        injection; failed slots abort their batch and requeue)
//     --mttr-us <n>      per-slot mean time to repair (default 1000;
//                        needs --mtbf-us)
//     --timeout-us <n>   per-request timeout on every tenant (cancels queued
//                        and in-flight work past the deadline)
//     --retries <n>      total attempts per request under timeouts, with
//                        exponential backoff (default 1: no retries;
//                        needs --timeout-us)
//     --admission <p>    none | queue-cap | tier-shed | slo-aware: admission
//                        control consulted at every arrival
//     --queue-cap <n>    queue bound for queue-cap / tier-shed admission
//                        (default 256; needs --admission)
//     --percentiles <m>  exact | hdr: latency percentile computation (default
//                        exact); hdr uses a bounded-relative-error
//                        log-bucketed histogram (see --hdr-error)
//     --cells <k>        simulate the fleet as k independent cells in parallel
//                        (default 1: serial; k > 1 splits fleet/traffic/seeds
//                        per cell and merges metrics — statistically, not
//                        bit-, equivalent to serial; incompatible with
//                        observers)
//     --hdr-error <x>    hdr relative-error bound in (0, 1) (default 0.01;
//                        needs --percentiles hdr)
//     --trace-out <p>    write a Chrome trace_event JSON of the run to <p>
//                        (lifecycle tracer; open in chrome://tracing or
//                        https://ui.perfetto.dev)
//     --trace-sample <x> fraction of requests traced, in [0, 1] (default 1;
//                        needs --trace-out)
//     --timeline-out <p> write windowed time-series metrics to <p> (.json
//                        extension -> JSON, anything else -> CSV)
//     --window-us <n>    timeline window width in us (default 1000; needs
//                        --timeline-out)
//     --profile          event-loop self-profile (events + wall time per
//                        event source), printed as a table / JSON member
//
//   Observability (--trace-out / --timeline-out / --profile) runs a single
//   simulation instead of a campaign sweep; the open-loop scenario matches
//   campaign grid point 0 exactly (same derived seed), so the traced run
//   reproduces the first sweep point bit-for-bit.
//
//   --json anywhere switches to machine-readable output.
//
// Examples:
//   lumos_cli list
//   lumos_cli tron bert-base 256 8
//   lumos_cli ghost gat pubmed
//   lumos_cli generate gpt2 64 128
//   lumos_cli serve mixed --qps 40000 --fleet 6 --json
//   lumos_cli serve mixed --priority --autoscale queue --fleet 2 --max-fleet 8
//   lumos_cli serve mixed --loop closed --sessions 64 --think-time-us 500
//   lumos_cli serve tron --seqlen-dist lognormal --qps 20000
//   lumos_cli serve tron --decode 32 --decode-dist lognormal --ttft-slo-us 300
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "arch/registry.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/units.hpp"
#include "serve/campaign.hpp"
#include "serve/names.hpp"
#include "serve/observe.hpp"
#include "serve/shard.hpp"
#include "sim/registry.hpp"

namespace {

using namespace lumos;

void print_report(const PerfReport& r) {
  std::cout << r.platform << " / " << r.workload << ":\n"
            << "  latency        : " << units::to_us(r.latency_s) << " us\n"
            << "  throughput     : " << units::to_gops(r.ops_per_second()) << " GOPS\n"
            << "  energy per bit : " << units::to_pj(r.energy_per_bit_j()) << " pJ/bit\n"
            << "  total energy   : " << r.total_energy_j * 1e6 << " uJ\n"
            << "  average power  : " << r.average_power_w() << " W\n"
            << "  memory stall   : " << units::to_us(r.breakdown.memory_stall_s) << " us ("
            << 100.0 * r.breakdown.memory_stall_s / r.latency_s << " %)\n"
            << "  breakdown (stage: us / uJ):\n";
  for (const arch::BreakdownEntry& e : arch::breakdown_entries(r)) {
    if (e.time_s == 0.0 && e.energy_j == 0.0) continue;
    std::cout << "    " << e.stage << ": " << units::to_us(e.time_s) << " / "
              << e.energy_j * 1e6 << "\n";
  }
}

void print_report_json(const PerfReport& r) {
  std::cout << "{\n"
            << "  \"platform\": \"" << json_escape(r.platform) << "\",\n"
            << "  \"workload\": \"" << json_escape(r.workload) << "\",\n"
            << "  \"latency_s\": " << r.latency_s << ",\n"
            << "  \"ops_per_second\": " << r.ops_per_second() << ",\n"
            << "  \"energy_per_bit_j\": " << r.energy_per_bit_j() << ",\n"
            << "  \"dynamic_energy_j\": " << r.dynamic_energy_j << ",\n"
            << "  \"static_energy_j\": " << r.static_energy_j << ",\n"
            << "  \"total_energy_j\": " << r.total_energy_j << ",\n"
            << "  \"average_power_w\": " << r.average_power_w() << ",\n"
            << "  \"op_count\": " << r.op_count << ",\n"
            << "  \"bits\": " << r.bits << ",\n"
            << "  \"memory_stall_s\": " << r.breakdown.memory_stall_s << ",\n"
            << "  \"breakdown\": [\n";
  const std::vector<arch::BreakdownEntry> entries = arch::breakdown_entries(r);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::cout << "    {\"stage\": \"" << entries[i].stage
              << "\", \"time_s\": " << entries[i].time_s
              << ", \"energy_j\": " << entries[i].energy_j << "}"
              << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  std::cout << "  ]\n}\n";
}

// Every accepted mode and flag must appear here: the arg parsers below throw
// on anything they do not recognise, and the thrown path funnels into this
// text with exit code 2 (tests/ci pin that).
int usage() {
  std::cerr << "usage:\n"
               "  lumos_cli [--json] list\n"
               "  lumos_cli [--json] tron  <" +
                   sim::joined_names(sim::transformer_names()) +
                   "> [seq] [batch]\n"
                   "  lumos_cli [--json] ghost <" +
                   sim::joined_names(sim::gnn_names()) + "> <" +
                   sim::joined_names(sim::dataset_names()) +
                   ">\n"
                   "  lumos_cli [--json] generate <" +
                   sim::joined_names(sim::transformer_names()) +
                   "> <prompt> <tokens>\n"
                   "  lumos_cli [--json] serve <tron|ghost|mixed|spec[,spec...]> "
                   "[--loop open|closed] [--qps q]\n"
                   "            [--requests n] [--sessions n] [--think-time-us t]\n"
                   "            [--seqlen-dist fixed|uniform|lognormal] [--fleet n]\n"
                   "            [--decode n] [--decode-dist fixed|uniform|lognormal]\n"
                   "            [--decode-mode continuous|monolithic] [--ttft-slo-us t]\n"
                   "            [--tpot-slo-us t]\n"
                   "            [--sched fifo|batch] [--max-batch n] [--max-wait-us w] "
                   "[--bursty]\n"
                   "            [--routing first-idle|energy-aware|cost-aware] [--hetero] "
                   "[--seed s] [--priority]\n"
                   "            [--fleets t1;t2;...]  (each t a spec[,spec...] template)\n"
                   "            [--usd-per-kwh x] [--usd-per-watt-hour x] "
                   "[--slot-rate spec=x]\n"
                   "            [--autoscale none|queue|util] [--scale-interval-us n]\n"
                   "            [--min-fleet n] [--max-fleet n] [--grow-scale x]\n"
                   "            [--mtbf-us n] [--mttr-us n] [--timeout-us n] [--retries n]\n"
                   "            [--admission none|queue-cap|tier-shed|slo-aware] "
                   "[--queue-cap n]\n"
                   "            [--percentiles exact|hdr] [--hdr-error x] [--cells k]\n"
                   "            [--trace-out p] [--trace-sample x] [--timeline-out p]\n"
                   "            [--window-us n] [--profile]\n";
  return 2;
}

// Strict numeric parsing: the whole argument must be a number (the seed CLI
// silently read "xyz" as 0 through strtoul, and strtoull would wrap "-5" to
// 2^64-5).
std::size_t parse_size(const std::string& arg, const char* what) {
  if (arg.empty() || arg.find_first_not_of("0123456789") != std::string::npos) {
    throw InvalidArgument(std::string(what) + " must be a non-negative integer, got '" +
                          arg + "'");
  }
  errno = 0;
  const unsigned long long v = std::strtoull(arg.c_str(), nullptr, 10);
  if (errno == ERANGE || v > std::numeric_limits<std::size_t>::max() ||
      v > 1ull << 48) {  // sane ceiling: no trace/fleet needs 2^48 of anything
    throw InvalidArgument(std::string(what) + " is out of range: '" + arg + "'");
  }
  return static_cast<std::size_t>(v);
}

double parse_double(const std::string& arg, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(arg.c_str(), &end);
  if (arg.empty() || end != arg.c_str() + arg.size()) {
    throw InvalidArgument(std::string(what) + " must be a number, got '" + arg + "'");
  }
  return v;
}

void print_names_json(const char* key, const std::vector<std::string>& names, bool last) {
  std::cout << "  \"" << key << "\": [";
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::cout << "\"" << json_escape(names[i]) << "\"" << (i + 1 < names.size() ? ", " : "");
  }
  std::cout << "]" << (last ? "" : ",") << "\n";
}

// `list`: every name the registries and serve enums accept, so scripts can
// discover valid arguments without parsing usage text.
int run_list(bool json) {
  if (json) {
    std::cout << "{\n";
    print_names_json("transformer_models", sim::transformer_names(), false);
    print_names_json("gnn_models", sim::gnn_names(), false);
    print_names_json("datasets", sim::dataset_names(), false);
    print_names_json("accelerator_specs", arch::spec_names(), false);
    print_names_json("arrival_processes", serve::process_names(), false);
    print_names_json("schedulers", serve::scheduler_names(), false);
    print_names_json("routing_policies", serve::routing_names(), false);
    print_names_json("autoscalers", serve::autoscaler_names(), false);
    print_names_json("loop_modes", serve::loop_mode_names(), false);
    print_names_json("seqlen_dists", serve::seqlen_dist_names(), false);
    print_names_json("admission_policies", serve::admission_names(), false);
    print_names_json("completion_statuses", serve::completion_status_names(), false);
    print_names_json("percentile_modes", serve::percentile_mode_names(), false);
    print_names_json("decode_dists", serve::seqlen_dist_names(), false);
    print_names_json("decode_modes", serve::decode_mode_names(), true);
    std::cout << "}\n";
  } else {
    std::cout << "transformer models : " << sim::joined_names(sim::transformer_names())
              << "\ngnn models         : " << sim::joined_names(sim::gnn_names())
              << "\ndatasets           : " << sim::joined_names(sim::dataset_names())
              << "\naccelerator specs  : " << sim::joined_names(arch::spec_names())
              << " (scalable as <base>@<scale>, e.g. tron@0.5)"
              << "\narrival processes  : " << sim::joined_names(serve::process_names())
              << "\nschedulers         : " << sim::joined_names(serve::scheduler_names())
              << "\nrouting policies   : " << sim::joined_names(serve::routing_names())
              << "\nautoscalers        : " << sim::joined_names(serve::autoscaler_names())
              << "\nloop modes         : " << sim::joined_names(serve::loop_mode_names())
              << "\nseqlen dists       : " << sim::joined_names(serve::seqlen_dist_names())
              << "\nadmission policies : " << sim::joined_names(serve::admission_names())
              << "\ncompletion statuses: "
              << sim::joined_names(serve::completion_status_names())
              << "\npercentile modes   : "
              << sim::joined_names(serve::percentile_mode_names())
              << "\ndecode dists       : " << sim::joined_names(serve::seqlen_dist_names())
              << "\ndecode modes       : " << sim::joined_names(serve::decode_mode_names())
              << "\n";
  }
  return 0;
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Observation output destinations: where the tracer / timeline exports land.
// Empty paths mean the matching observer is off.
struct ObserveOut {
  std::string trace_path;
  std::string timeline_path;
};

// `"profile": {...}` JSON member for the event-loop self-profile (no
// surrounding comma).
std::string profile_json(const serve::EventLoopProfiler& p) {
  std::ostringstream os;
  os << "\"profile\": {\"iterations\": " << p.iterations()
     << ", \"accounted_wall_s\": " << p.accounted_wall_s() << ", \"sources\": [";
  for (std::size_t i = 0; i < static_cast<std::size_t>(serve::LoopSource::kCount); ++i) {
    const auto src = static_cast<serve::LoopSource>(i);
    os << (i == 0 ? "" : ", ") << "{\"source\": \""
       << json_escape(serve::loop_source_name(src)) << "\", \"events\": " << p.events(src)
       << ", \"wall_s\": " << p.wall_s(src) << "}";
  }
  os << "]}";
  return os.str();
}

// Writes the run's trace / timeline files and (text mode) the profile table.
// JSON-mode callers splice `profile_json` into their own object instead so
// stdout stays one well-formed JSON value.
void export_observation(const serve::Observation& obs, const ObserveOut& out, bool json) {
  if (obs.tracer) {
    std::ofstream f(out.trace_path);
    if (!f) throw InvalidArgument("cannot open --trace-out path: " + out.trace_path);
    obs.tracer->write_chrome_trace(f);
  }
  if (obs.timeline) {
    std::ofstream f(out.timeline_path);
    if (!f) throw InvalidArgument("cannot open --timeline-out path: " + out.timeline_path);
    if (has_suffix(out.timeline_path, ".json")) {
      obs.timeline->write_json(f);
    } else {
      obs.timeline->write_csv(f);
    }
  }
  if (obs.profiler && !json) {
    obs.profiler->to_table("event-loop profile").print(std::cout);
  }
}

// `"trace": {...}` JSON member summarising the tracer's buffers.
std::string trace_summary_json(const serve::LifecycleTracer& t) {
  std::ostringstream os;
  os << "\"trace\": {\"sampled_requests\": " << t.sampled_requests()
     << ", \"request_events\": " << t.request_events().size()
     << ", \"batch_spans\": " << t.batch_spans().size()
     << ", \"dropped_requests\": " << t.dropped_requests()
     << ", \"dropped_batch_spans\": " << t.dropped_batch_spans() << "}";
  return os.str();
}

// Closed-loop runs bypass the (offered-QPS-sweeping) campaign machinery: one
// Scenario, one simulate, metric + tenant tables or a flat JSON object.
int run_closed_loop(serve::Scenario scenario, const serve::ClosedLoopConfig& closed,
                    std::size_t cells, bool priority, bool json, const ObserveOut& out) {
  scenario.traffic.mode = serve::LoopMode::kClosed;
  scenario.traffic.closed = closed;
  serve::Observation obs;
  const serve::FleetMetrics m =
      cells > 1 ? serve::simulate_sharded(scenario, cells)
                : serve::simulate(scenario, scenario.observe.enabled() ? &obs : nullptr);
  if (json) {
    std::cout << "{\n"
              << "  \"fleet\": \"" << json_escape(scenario.fleet.label()) << "\",\n"
              << "  \"loop\": \"closed\",\n"
              << "  \"sessions\": " << m.sessions << ",\n"
              << "  \"completed\": " << m.completed << ",\n"
              << "  \"throughput_qps\": " << m.throughput_qps << ",\n"
              << "  \"goodput_qps\": " << m.goodput_qps << ",\n"
              << "  \"slo_attainment\": " << m.slo_attainment << ",\n"
              << "  \"p50_latency_s\": " << m.p50_latency_s << ",\n"
              << "  \"p99_latency_s\": " << m.p99_latency_s << ",\n"
              << "  \"mean_session_s\": " << m.mean_session_s << ",\n"
              << "  \"p50_session_s\": " << m.p50_session_s << ",\n"
              << "  \"p99_session_s\": " << m.p99_session_s << ",\n"
              << "  \"max_session_s\": " << m.max_session_s << ",\n"
              << "  \"mean_batch\": " << m.mean_batch_size << ",\n"
              << "  \"fleet_energy_j\": " << m.fleet_energy_j << ",\n"
              << "  \"fleet_cost_usd\": " << m.fleet_cost_usd << ",\n"
              << "  \"cost_per_request_usd\": " << m.cost_per_request_usd << ",\n"
              << "  \"estimate_lookups\": " << m.estimate_lookups << ",\n"
              << "  \"estimate_misses\": " << m.estimate_misses << ",\n"
              << "  \"shed\": " << m.shed_requests << ",\n"
              << "  \"timed_out\": " << m.timed_out_requests << ",\n"
              << "  \"retries\": " << m.retried_attempts << ",\n"
              << "  \"drop_rate\": " << m.drop_rate << ",\n"
              << "  \"availability\": " << m.fleet_availability;
    if (obs.tracer) std::cout << ",\n  " << trace_summary_json(*obs.tracer);
    if (obs.timeline) std::cout << ",\n  \"timeline_windows\": " << obs.timeline->windows().size();
    if (obs.profiler) std::cout << ",\n  " << profile_json(*obs.profiler);
    std::cout << "\n}\n";
  } else {
    m.to_table(scenario.fleet.label() + " closed-loop serve").print(std::cout);
    if (priority) m.tenant_table("per-tenant breakdown").print(std::cout);
  }
  export_observation(obs, out, json);
  return 0;
}

// Observed open-loop runs also bypass the campaign: one Scenario built to
// match campaign grid point 0 (same derived trace seed), simulated directly
// so the observers can be handed back and exported.
int run_open_observed(const serve::CampaignConfig& cfg, const serve::WorkloadCatalog& catalog,
                      double qps, std::size_t fleet, std::size_t max_batch, bool priority,
                      const serve::ObserveConfig& observe, const ObserveOut& out, bool json) {
  serve::Scenario scenario;
  scenario.fleet = serve::FleetConfig::cycled(cfg.fleet_template, fleet, cfg.routing);
  scenario.fleet.cost = cfg.cost;
  scenario.catalog = catalog;
  scenario.scheduler = cfg.schedulers.front();
  // Campaign FIFO points pin max_batch to 1; mirror that for bit parity.
  scenario.batch.max_batch =
      cfg.schedulers.front() == serve::SchedulerKind::kFifo ? 1 : max_batch;
  scenario.batch.max_wait_s = cfg.max_wait_s;
  scenario.sim.slo_scale = cfg.slo_scale;
  scenario.sim.autoscaler = cfg.autoscale;
  scenario.sim.autoscaler.policy = cfg.autoscalers.front();
  scenario.sim.admission = cfg.admission;
  scenario.sim.admission.policy = cfg.admissions.front();
  scenario.sim.faults = cfg.faults;
  scenario.sim.faults.mtbf_s = cfg.fault_mtbfs_s.front();
  scenario.sim.retry = cfg.retry;
  scenario.sim.percentile_mode = cfg.percentile_mode;
  scenario.sim.hdr_relative_error = cfg.hdr_relative_error;
  scenario.sim.decode_mode = cfg.decode_mode;
  scenario.traffic.open.offered_qps = qps;
  scenario.traffic.open.request_count = cfg.requests_per_point;
  scenario.traffic.open.process = cfg.process;
  scenario.traffic.open.seed = cfg.seed + 0x9E3779B9u;  // campaign point 0
  scenario.observe = observe;
  serve::Observation obs;
  const serve::FleetMetrics m = serve::simulate(scenario, &obs);
  if (json) {
    std::cout << "{\n"
              << "  \"fleet\": \"" << json_escape(scenario.fleet.label()) << "\",\n"
              << "  \"loop\": \"open\",\n"
              << "  \"offered_qps\": " << qps << ",\n"
              << "  \"requests\": " << cfg.requests_per_point << ",\n"
              << "  \"completed\": " << m.completed << ",\n"
              << "  \"throughput_qps\": " << m.throughput_qps << ",\n"
              << "  \"goodput_qps\": " << m.goodput_qps << ",\n"
              << "  \"slo_attainment\": " << m.slo_attainment << ",\n"
              << "  \"p50_latency_s\": " << m.p50_latency_s << ",\n"
              << "  \"p99_latency_s\": " << m.p99_latency_s << ",\n"
              << "  \"p999_latency_s\": " << m.p999_latency_s << ",\n"
              << "  \"mean_batch\": " << m.mean_batch_size << ",\n"
              << "  \"fleet_energy_j\": " << m.fleet_energy_j << ",\n"
              << "  \"fleet_cost_usd\": " << m.fleet_cost_usd << ",\n"
              << "  \"cost_per_request_usd\": " << m.cost_per_request_usd << ",\n"
              << "  \"shed\": " << m.shed_requests << ",\n"
              << "  \"timed_out\": " << m.timed_out_requests << ",\n"
              << "  \"retries\": " << m.retried_attempts << ",\n"
              << "  \"drop_rate\": " << m.drop_rate << ",\n"
              << "  \"availability\": " << m.fleet_availability;
    if (obs.tracer) std::cout << ",\n  " << trace_summary_json(*obs.tracer);
    if (obs.timeline) std::cout << ",\n  \"timeline_windows\": " << obs.timeline->windows().size();
    if (obs.profiler) std::cout << ",\n  " << profile_json(*obs.profiler);
    std::cout << "\n}\n";
  } else {
    m.to_table(scenario.fleet.label() + " observed open-loop serve").print(std::cout);
    if (priority || cfg.autoscalers.front() != serve::AutoscalerPolicy::kNone) {
      m.tenant_table("per-tenant breakdown").print(std::cout);
    }
  }
  export_observation(obs, out, json);
  return 0;
}

int run_serve(const std::vector<std::string>& args, bool json) {
  if (args.empty()) {
    throw InvalidArgument("serve needs a fleet kind (tron|ghost|mixed|spec[,spec...])");
  }
  serve::CampaignConfig cfg;
  cfg.name = "lumos_cli serve";
  serve::WorkloadCatalog catalog;
  if (args[0] == "tron") {
    cfg.fleet_template = {"tron"};
    catalog = serve::WorkloadCatalog::tron_default();
  } else if (args[0] == "ghost") {
    cfg.fleet_template = {"ghost"};
    catalog = serve::WorkloadCatalog::ghost_default();
  } else if (args[0] == "mixed") {
    cfg.fleet_template = {"tron", "ghost"};
    catalog = serve::WorkloadCatalog::mixed_default();
  } else {
    // Comma-separated registry spec names cycled across the slots: hybrid
    // photonic/electronic fleets ("tron,v100", "a100", "tron,xeon@2.0").
    // Each name validates against the registry (unknown names throw the
    // registry's enumerated error); the catalog follows the union of kinds
    // the listed specs serve.
    std::vector<std::string> specs;
    std::string rest = args[0];
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      specs.push_back(rest.substr(0, comma));
      if (specs.back().empty()) {
        throw InvalidArgument("serve fleet spec list has an empty entry: " + args[0]);
      }
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    }
    bool transformer = false;
    bool gnn = false;
    for (const std::string& spec : specs) {
      transformer = transformer || arch::spec_serves(spec, arch::WorkloadKind::kTransformer);
      gnn = gnn || arch::spec_serves(spec, arch::WorkloadKind::kGnn);
    }
    catalog = transformer && gnn ? serve::WorkloadCatalog::mixed_default()
              : transformer     ? serve::WorkloadCatalog::tron_default()
                                : serve::WorkloadCatalog::ghost_default();
    cfg.fleet_template = std::move(specs);
  }
  cfg.schedulers = {serve::SchedulerKind::kDynamicBatch};
  cfg.requests_per_point = 50000;
  serve::LoopMode loop = serve::LoopMode::kOpen;
  serve::ClosedLoopConfig closed;
  double qps = 0.0;
  std::size_t fleet = 4;
  std::size_t max_batch = 8;
  bool hetero = false;
  bool priority = false;
  bool sessions_given = false;
  // Mode-gated knobs: track use so a knob without its enabling mode errors
  // instead of being silently ignored.
  std::string knob_without_policy;
  std::string open_only_flag;
  std::string closed_only_flag;
  double mtbf_s = 0.0;
  double timeout_s = 0.0;
  std::size_t decode_tokens = 0;  // 0: decode off
  serve::SeqLenDist decode_dist = serve::SeqLenDist::kFixed;
  bool decode_dist_given = false;
  bool decode_mode_given = false;
  double ttft_slo_s = 0.0;
  double tpot_slo_s = 0.0;
  bool mttr_given = false;
  bool retries_given = false;
  bool queue_cap_given = false;
  serve::ObserveConfig observe;
  ObserveOut out;
  bool trace_sample_given = false;
  bool window_given = false;
  bool hdr_error_given = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) throw InvalidArgument(a + " needs a value");
      return args[++i];
    };
    if (a == "--loop") {
      loop = serve::loop_mode_from_name(value());
    } else if (a == "--qps") {
      open_only_flag = a;
      qps = parse_double(value(), "--qps");
      if (qps <= 0.0) throw InvalidArgument("--qps must be positive");
    } else if (a == "--requests") {
      cfg.requests_per_point = parse_size(value(), "--requests");
    } else if (a == "--sessions") {
      closed_only_flag = a;
      closed.sessions = parse_size(value(), "--sessions");
      sessions_given = true;
    } else if (a == "--think-time-us") {
      closed_only_flag = a;
      closed.think_time_mean_s = parse_double(value(), "--think-time-us") * 1e-6;
      if (closed.think_time_mean_s < 0.0) {
        throw InvalidArgument("--think-time-us must be >= 0");
      }
    } else if (a == "--seqlen-dist") {
      catalog.apply_seqlen_dist(serve::seqlen_dist_from_name(value()));
    } else if (a == "--decode") {
      decode_tokens = parse_size(value(), "--decode");
      if (decode_tokens == 0) throw InvalidArgument("--decode must be >= 1");
    } else if (a == "--decode-dist") {
      decode_dist_given = true;
      decode_dist = serve::seqlen_dist_from_name(value());
    } else if (a == "--decode-mode") {
      decode_mode_given = true;
      cfg.decode_mode = serve::decode_mode_from_name(value());
    } else if (a == "--ttft-slo-us") {
      ttft_slo_s = parse_double(value(), "--ttft-slo-us") * 1e-6;
      if (ttft_slo_s <= 0.0) throw InvalidArgument("--ttft-slo-us must be positive");
    } else if (a == "--tpot-slo-us") {
      tpot_slo_s = parse_double(value(), "--tpot-slo-us") * 1e-6;
      if (tpot_slo_s <= 0.0) throw InvalidArgument("--tpot-slo-us must be positive");
    } else if (a == "--fleet") {
      fleet = parse_size(value(), "--fleet");
    } else if (a == "--sched") {
      cfg.schedulers = {serve::scheduler_from_name(value())};
    } else if (a == "--max-batch") {
      max_batch = parse_size(value(), "--max-batch");
    } else if (a == "--max-wait-us") {
      cfg.max_wait_s = parse_double(value(), "--max-wait-us") * 1e-6;
      if (cfg.max_wait_s < 0.0) throw InvalidArgument("--max-wait-us must be >= 0");
    } else if (a == "--bursty") {
      open_only_flag = a;
      cfg.process = serve::ArrivalProcess::kBursty;
    } else if (a == "--routing") {
      cfg.routing = serve::routing_from_name(value());
    } else if (a == "--usd-per-kwh") {
      const double kwh = parse_double(value(), "--usd-per-kwh");
      if (kwh < 0.0) throw InvalidArgument("--usd-per-kwh must be >= 0");
      cfg.cost.usd_per_joule = kwh / 3.6e6;
    } else if (a == "--usd-per-watt-hour") {
      cfg.cost.usd_per_watt_hour = parse_double(value(), "--usd-per-watt-hour");
      if (cfg.cost.usd_per_watt_hour < 0.0) {
        throw InvalidArgument("--usd-per-watt-hour must be >= 0");
      }
    } else if (a == "--slot-rate") {
      const std::string& pair = value();
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw InvalidArgument("--slot-rate expects <spec>=<usd-per-hour>, got '" + pair +
                              "'");
      }
      const double rate = parse_double(pair.substr(eq + 1), "--slot-rate rate");
      if (rate < 0.0) throw InvalidArgument("--slot-rate rate must be >= 0");
      cfg.cost.slot_hour_overrides.emplace_back(pair.substr(0, eq), rate);
    } else if (a == "--fleets") {
      // Fleet-template grid axis: semicolon-separated templates, each a
      // comma-separated spec list, swept as the outermost campaign axis.
      const std::string grid = value();
      cfg.fleet_templates.clear();
      std::string rest_templates = grid;
      while (true) {
        const std::size_t semi = rest_templates.find(';');
        std::string entry = rest_templates.substr(0, semi);
        std::vector<std::string> specs;
        while (!entry.empty()) {
          const std::size_t comma = entry.find(',');
          specs.push_back(entry.substr(0, comma));
          if (specs.back().empty()) {
            throw InvalidArgument("--fleets template has an empty spec: '" + grid + "'");
          }
          (void)arch::is_platform_spec(specs.back());  // registry name validation
          entry = comma == std::string::npos ? "" : entry.substr(comma + 1);
        }
        if (specs.empty()) {
          throw InvalidArgument("--fleets has an empty template: '" + grid + "'");
        }
        cfg.fleet_templates.push_back(std::move(specs));
        if (semi == std::string::npos) break;
        rest_templates = rest_templates.substr(semi + 1);
      }
    } else if (a == "--hetero") {
      hetero = true;
    } else if (a == "--seed") {
      cfg.seed = parse_size(value(), "--seed");
    } else if (a == "--priority") {
      priority = true;
    } else if (a == "--autoscale") {
      cfg.autoscalers = {serve::autoscaler_from_name(value())};
    } else if (a == "--scale-interval-us") {
      knob_without_policy = a;
      cfg.autoscale.interval_s = parse_double(value(), "--scale-interval-us") * 1e-6;
      if (cfg.autoscale.interval_s <= 0.0) {
        throw InvalidArgument("--scale-interval-us must be positive");
      }
    } else if (a == "--min-fleet") {
      knob_without_policy = a;
      cfg.autoscale.min_slots = parse_size(value(), "--min-fleet");
    } else if (a == "--max-fleet") {
      knob_without_policy = a;
      cfg.autoscale.max_slots = parse_size(value(), "--max-fleet");
    } else if (a == "--grow-scale") {
      knob_without_policy = a;
      cfg.autoscale.grow_scale = parse_double(value(), "--grow-scale");
      if (cfg.autoscale.grow_scale <= 0.0) {
        throw InvalidArgument("--grow-scale must be positive");
      }
    } else if (a == "--mtbf-us") {
      mtbf_s = parse_double(value(), "--mtbf-us") * 1e-6;
      if (mtbf_s <= 0.0) throw InvalidArgument("--mtbf-us must be positive");
    } else if (a == "--mttr-us") {
      mttr_given = true;
      cfg.faults.mttr_s = parse_double(value(), "--mttr-us") * 1e-6;
      if (cfg.faults.mttr_s <= 0.0) throw InvalidArgument("--mttr-us must be positive");
    } else if (a == "--timeout-us") {
      timeout_s = parse_double(value(), "--timeout-us") * 1e-6;
      if (timeout_s <= 0.0) throw InvalidArgument("--timeout-us must be positive");
    } else if (a == "--retries") {
      retries_given = true;
      cfg.retry.max_attempts = parse_size(value(), "--retries");
      if (cfg.retry.max_attempts == 0) throw InvalidArgument("--retries must be >= 1");
    } else if (a == "--admission") {
      cfg.admissions = {serve::admission_from_name(value())};
    } else if (a == "--queue-cap") {
      queue_cap_given = true;
      cfg.admission.queue_cap = parse_size(value(), "--queue-cap");
      if (cfg.admission.queue_cap == 0) throw InvalidArgument("--queue-cap must be >= 1");
    } else if (a == "--cells") {
      cfg.cells = parse_size(value(), "--cells");
      if (cfg.cells == 0) throw InvalidArgument("--cells must be >= 1");
    } else if (a == "--percentiles") {
      cfg.percentile_mode = serve::percentile_mode_from_name(value());
    } else if (a == "--hdr-error") {
      hdr_error_given = true;
      cfg.hdr_relative_error = parse_double(value(), "--hdr-error");
      if (!(cfg.hdr_relative_error > 0.0 && cfg.hdr_relative_error < 1.0)) {
        throw InvalidArgument("--hdr-error must be in (0, 1)");
      }
    } else if (a == "--trace-out") {
      out.trace_path = value();
      if (out.trace_path.empty()) throw InvalidArgument("--trace-out needs a path");
      observe.trace.enabled = true;
    } else if (a == "--trace-sample") {
      trace_sample_given = true;
      observe.trace.sample = parse_double(value(), "--trace-sample");
      if (observe.trace.sample < 0.0 || observe.trace.sample > 1.0) {
        throw InvalidArgument("--trace-sample must be in [0, 1]");
      }
    } else if (a == "--timeline-out") {
      out.timeline_path = value();
      if (out.timeline_path.empty()) throw InvalidArgument("--timeline-out needs a path");
      observe.timeline.enabled = true;
    } else if (a == "--window-us") {
      window_given = true;
      observe.timeline.window_s = parse_double(value(), "--window-us") * 1e-6;
      if (observe.timeline.window_s <= 0.0) {
        throw InvalidArgument("--window-us must be positive");
      }
    } else if (a == "--profile") {
      observe.profile = true;
    } else {
      throw InvalidArgument("unknown serve flag: " + a);
    }
  }
  if (fleet == 0 || max_batch == 0 || cfg.requests_per_point == 0) {
    throw InvalidArgument("--fleet, --max-batch, and --requests must be positive");
  }
  if (!knob_without_policy.empty() &&
      cfg.autoscalers.front() == serve::AutoscalerPolicy::kNone) {
    throw InvalidArgument(knob_without_policy +
                          " has no effect without --autoscale queue|util");
  }
  if (loop == serve::LoopMode::kClosed && !open_only_flag.empty()) {
    throw InvalidArgument(open_only_flag + " has no effect with --loop closed");
  }
  if (loop == serve::LoopMode::kOpen && !closed_only_flag.empty()) {
    throw InvalidArgument(closed_only_flag + " has no effect without --loop closed");
  }
  if (mttr_given && mtbf_s <= 0.0) {
    throw InvalidArgument("--mttr-us has no effect without --mtbf-us");
  }
  if (retries_given && timeout_s <= 0.0) {
    throw InvalidArgument("--retries has no effect without --timeout-us");
  }
  if (queue_cap_given && cfg.admissions.front() == serve::AdmissionPolicy::kNone) {
    throw InvalidArgument("--queue-cap has no effect without --admission");
  }
  if (trace_sample_given && !observe.trace.enabled) {
    throw InvalidArgument("--trace-sample has no effect without --trace-out");
  }
  if (window_given && !observe.timeline.enabled) {
    throw InvalidArgument("--window-us has no effect without --timeline-out");
  }
  if (hdr_error_given && cfg.percentile_mode != serve::PercentileMode::kHdr) {
    throw InvalidArgument("--hdr-error has no effect without --percentiles hdr");
  }
  if (cfg.cells > 1 && observe.enabled()) {
    throw InvalidArgument(
        "--cells > 1 does not support observers (--trace-out / --timeline-out / "
        "--profile): cells are independent event loops; run --cells 1 to trace");
  }
  if (cfg.cells > fleet) {
    throw InvalidArgument("--cells must be <= --fleet (" + std::to_string(fleet) +
                          "): every cell needs at least one slot");
  }
  if (decode_tokens == 0) {
    // Decode sub-knobs without --decode would be silently ignored; error like
    // the other mode-gated knobs instead.
    if (decode_dist_given) {
      throw InvalidArgument("--decode-dist has no effect without --decode");
    }
    if (decode_mode_given) {
      throw InvalidArgument("--decode-mode has no effect without --decode");
    }
    if (ttft_slo_s > 0.0) {
      throw InvalidArgument("--ttft-slo-us has no effect without --decode");
    }
    if (tpot_slo_s > 0.0) {
      throw InvalidArgument("--tpot-slo-us has no effect without --decode");
    }
  } else {
    catalog.apply_decode(decode_dist, decode_tokens);
    if (ttft_slo_s > 0.0 || tpot_slo_s > 0.0) {
      catalog.apply_token_slos(ttft_slo_s, tpot_slo_s);
    }
  }
  observe.trace.seed = cfg.seed;
  if (timeout_s > 0.0) catalog.apply_timeout(timeout_s);
  cfg.fault_mtbfs_s = {mtbf_s};
  if (max_batch > serve::BatchPolicy::kMaxBatchLimit || fleet > 4096) {
    throw InvalidArgument("--max-batch and --fleet must be <= 4096");
  }
  if (!cfg.fleet_templates.empty()) {
    // The template axis multiplies the campaign grid; the single-fleet paths
    // (closed loop, observed runs, --hetero's template rewrite) serve exactly
    // one fleet, so combining them would silently drop the sweep.
    if (hetero) {
      throw InvalidArgument(
          "--hetero cannot combine with --fleets: list eco variants explicitly "
          "in the templates instead");
    }
    if (loop == serve::LoopMode::kClosed) {
      throw InvalidArgument(
          "--fleets sweeps a campaign axis; closed-loop runs serve one fleet");
    }
    if (observe.enabled()) {
      throw InvalidArgument(
          "--fleets sweeps a campaign axis; observers trace one run");
    }
    cfg.fleet_template = cfg.fleet_templates.front();  // labels + default QPS
  }
  if (hetero) {
    // Alternate each family's full and eco variants across the slots.  Eco
    // variants are a photonic notion (tron-eco / ghost-eco tune the fabric);
    // electronic platforms scale with "@<x>" instead.
    std::vector<std::string> with_eco;
    for (const std::string& spec : cfg.fleet_template) {
      if (arch::is_platform_spec(spec)) {
        throw InvalidArgument("--hetero needs a photonic fleet: '" + spec +
                              "' has no eco variant (scale electronic platforms with "
                              "<spec>@<x> instead)");
      }
      with_eco.push_back(spec);
      with_eco.push_back(spec + "-eco");
    }
    cfg.fleet_template = std::move(with_eco);
  }
  cfg.fleet_sizes = {fleet};
  cfg.max_batches = {max_batch};
  if (priority) catalog.apply_default_tiers();

  if (loop == serve::LoopMode::kClosed) {
    if (sessions_given && closed.sessions == 0) {
      throw InvalidArgument("--sessions must be positive");
    }
    // --requests is the total budget: split it across the session pool.  A
    // pool bigger than the budget would silently inflate the total (every
    // session issues at least once), so reject it instead.
    if (cfg.requests_per_point < closed.sessions) {
      throw InvalidArgument("--requests must be >= --sessions (" +
                            std::to_string(closed.sessions) +
                            "): every closed-loop session issues at least one request");
    }
    closed.requests_per_session = cfg.requests_per_point / closed.sessions;
    closed.seed = cfg.seed;
    serve::Scenario scenario;
    scenario.fleet = serve::FleetConfig::cycled(cfg.fleet_template, fleet, cfg.routing);
    scenario.fleet.cost = cfg.cost;
    scenario.catalog = catalog;
    scenario.scheduler = cfg.schedulers.front();
    scenario.batch.max_batch = max_batch;
    scenario.batch.max_wait_s = cfg.max_wait_s;
    scenario.sim.slo_scale = cfg.slo_scale;
    scenario.sim.autoscaler = cfg.autoscale;
    scenario.sim.autoscaler.policy = cfg.autoscalers.front();
    scenario.sim.faults = cfg.faults;
    scenario.sim.faults.mtbf_s = mtbf_s;
    scenario.sim.retry = cfg.retry;
    scenario.sim.admission = cfg.admission;
    scenario.sim.admission.policy = cfg.admissions.front();
    scenario.sim.percentile_mode = cfg.percentile_mode;
    scenario.sim.hdr_relative_error = cfg.hdr_relative_error;
    scenario.sim.decode_mode = cfg.decode_mode;
    scenario.observe = observe;
    return run_closed_loop(std::move(scenario), closed, cfg.cells, priority, json, out);
  }

  if (qps <= 0.0) {
    const std::size_t capacity_batch =
        cfg.schedulers.front() == serve::SchedulerKind::kFifo ? 1 : max_batch;
    qps = 0.7 * serve::fleet_capacity_qps(
                    catalog, serve::FleetConfig::cycled(cfg.fleet_template, fleet),
                    capacity_batch);
  }
  cfg.qps = {qps};

  if (observe.enabled()) {
    return run_open_observed(cfg, catalog, qps, fleet, max_batch, priority, observe, out,
                             json);
  }

  const std::vector<serve::CampaignPoint> points = serve::run_campaign(cfg, catalog);
  if (json) {
    serve::write_campaign_json(cfg, points, std::cout);
  } else {
    const serve::FleetConfig fleet_cfg = serve::FleetConfig::cycled(cfg.fleet_template, fleet);
    const std::string title = fleet_cfg.label() + " serve campaign (" +
                              serve::process_name(cfg.process) + " arrivals)";
    serve::campaign_table(points, title).print(std::cout);
    points.front().metrics.to_table("point detail").print(std::cout);
    if (priority || cfg.autoscalers.front() != serve::AutoscalerPolicy::kNone) {
      points.front().metrics.tenant_table("per-tenant breakdown").print(std::cout);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      json = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.empty()) return usage();
  const std::string& mode = args[0];
  try {
    if (mode == "list") {
      return run_list(json);
    }
    if (args.size() < 2) return usage();
    if (mode == "tron") {
      const std::size_t seq = args.size() > 2 ? parse_size(args[2], "seq_len") : 128;
      const std::size_t batch = args.size() > 3 ? parse_size(args[3], "batch") : 1;
      if (seq == 0 || batch == 0) throw InvalidArgument("seq_len and batch must be positive");
      const std::unique_ptr<arch::Accelerator> acc = arch::make_accelerator("tron");
      const PerfReport r = acc->estimate_batch(
          arch::Workload::transformer(args[1], sim::transformer_by_name(args[1], seq)),
          batch);
      json ? print_report_json(r) : print_report(r);
      return 0;
    }
    if (mode == "ghost") {
      if (args.size() < 3) return usage();
      const std::unique_ptr<arch::Accelerator> acc = arch::make_accelerator("ghost");
      const PerfReport r = acc->estimate(arch::Workload::gnn(
          args[1] + "/" + args[2], sim::gnn_by_name(args[1]), sim::dataset_by_name(args[2])));
      json ? print_report_json(r) : print_report(r);
      return 0;
    }
    if (mode == "generate") {
      if (args.size() < 4) return usage();
      const std::size_t prompt = parse_size(args[2], "prompt_len");
      const std::size_t tokens = parse_size(args[3], "tokens");
      if (prompt == 0 || tokens == 0) throw InvalidArgument("prompt and tokens must be positive");
      // Autoregressive decoding is a TRON-only face: reach the concrete
      // device through the adapter.
      const arch::TronAdapter acc(arch::tron_config_by_name("tron"));
      const PerfReport r = acc.device().estimate_generation(
          sim::transformer_by_name(args[1], prompt + tokens), prompt, tokens);
      json ? print_report_json(r) : print_report(r);
      return 0;
    }
    if (mode == "serve") {
      return run_serve({args.begin() + 1, args.end()}, json);
    }
  } catch (const InvalidArgument& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
