// lumos_cli — command-line front end for quick what-if studies and serving
// campaigns.
//
// Usage:
//   lumos_cli [--json] tron  <model>  [seq_len] [batch]
//   lumos_cli [--json] ghost <model>  <dataset>
//   lumos_cli [--json] generate <model> <prompt_len> <tokens>
//   lumos_cli [--json] serve <tron|ghost> [serve flags]
//
//   <model>   tron:  bert-base | bert-large | gpt2 | vit | transformer
//             ghost: gcn | graphsage | gin | gat
//   <dataset> cora | citeseer | pubmed | arxiv
//
//   serve flags:
//     --qps <q>          offered QPS (default: 70% of unloaded fleet capacity)
//     --requests <n>     trace length (default 50000)
//     --fleet <n>        accelerators in the fleet (default 4)
//     --sched <s>        fifo | batch (default batch)
//     --max-batch <n>    dynamic-batch cap (default 8)
//     --max-wait-us <w>  dynamic-batch deadline (default 2000)
//     --bursty           MMPP arrivals instead of Poisson
//     --routing <r>      first-idle | energy (default first-idle)
//     --hetero           alternate full/eco accelerator variants
//     --seed <s>         trace seed (default 1)
//
//   --json anywhere switches to machine-readable output.
//
// Examples:
//   lumos_cli tron bert-base 256 8
//   lumos_cli ghost gat pubmed
//   lumos_cli generate gpt2 64 128
//   lumos_cli serve tron --qps 40000 --sched batch --fleet 4 --json
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/units.hpp"
#include "ghost/accelerator.hpp"
#include "serve/campaign.hpp"
#include "sim/registry.hpp"
#include "tron/accelerator.hpp"

namespace {

using namespace lumos;

void print_report(const PerfReport& r) {
  std::cout << r.platform << " / " << r.workload << ":\n"
            << "  latency        : " << units::to_us(r.latency_s) << " us\n"
            << "  throughput     : " << units::to_gops(r.ops_per_second()) << " GOPS\n"
            << "  energy per bit : " << units::to_pj(r.energy_per_bit_j()) << " pJ/bit\n"
            << "  total energy   : " << r.total_energy_j * 1e6 << " uJ\n"
            << "  average power  : " << r.average_power_w() << " W\n"
            << "  memory stall   : " << units::to_us(r.breakdown.memory_stall_s) << " us ("
            << 100.0 * r.breakdown.memory_stall_s / r.latency_s << " %)\n";
}

void print_report_json(const PerfReport& r) {
  std::cout << "{\n"
            << "  \"platform\": \"" << json_escape(r.platform) << "\",\n"
            << "  \"workload\": \"" << json_escape(r.workload) << "\",\n"
            << "  \"latency_s\": " << r.latency_s << ",\n"
            << "  \"ops_per_second\": " << r.ops_per_second() << ",\n"
            << "  \"energy_per_bit_j\": " << r.energy_per_bit_j() << ",\n"
            << "  \"dynamic_energy_j\": " << r.dynamic_energy_j << ",\n"
            << "  \"static_energy_j\": " << r.static_energy_j << ",\n"
            << "  \"total_energy_j\": " << r.total_energy_j << ",\n"
            << "  \"average_power_w\": " << r.average_power_w() << ",\n"
            << "  \"op_count\": " << r.op_count << ",\n"
            << "  \"bits\": " << r.bits << ",\n"
            << "  \"memory_stall_s\": " << r.breakdown.memory_stall_s << "\n"
            << "}\n";
}

int usage() {
  std::cerr << "usage:\n"
               "  lumos_cli [--json] tron  <bert-base|bert-large|gpt2|vit|transformer> "
               "[seq] [batch]\n"
               "  lumos_cli [--json] ghost <gcn|graphsage|gin|gat> "
               "<cora|citeseer|pubmed|arxiv>\n"
               "  lumos_cli [--json] generate <bert-base|bert-large|gpt2|vit> <prompt> "
               "<tokens>\n"
               "  lumos_cli [--json] serve <tron|ghost> [--qps q] [--requests n] "
               "[--fleet n]\n"
               "            [--sched fifo|batch] [--max-batch n] [--max-wait-us w] "
               "[--bursty]\n"
               "            [--routing first-idle|energy] [--hetero] [--seed s]\n";
  return 2;
}

// Strict numeric parsing: the whole argument must be a number (the seed CLI
// silently read "xyz" as 0 through strtoul, and strtoull would wrap "-5" to
// 2^64-5).
std::size_t parse_size(const std::string& arg, const char* what) {
  if (arg.empty() || arg.find_first_not_of("0123456789") != std::string::npos) {
    throw InvalidArgument(std::string(what) + " must be a non-negative integer, got '" +
                          arg + "'");
  }
  errno = 0;
  const unsigned long long v = std::strtoull(arg.c_str(), nullptr, 10);
  if (errno == ERANGE || v > std::numeric_limits<std::size_t>::max() ||
      v > 1ull << 48) {  // sane ceiling: no trace/fleet needs 2^48 of anything
    throw InvalidArgument(std::string(what) + " is out of range: '" + arg + "'");
  }
  return static_cast<std::size_t>(v);
}

double parse_double(const std::string& arg, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(arg.c_str(), &end);
  if (arg.empty() || end != arg.c_str() + arg.size()) {
    throw InvalidArgument(std::string(what) + " must be a number, got '" + arg + "'");
  }
  return v;
}

int run_serve(const std::vector<std::string>& args, bool json) {
  if (args.empty()) throw InvalidArgument("serve needs an accelerator kind (tron|ghost)");
  serve::CampaignConfig cfg;
  cfg.name = "lumos_cli serve";
  if (args[0] == "tron") {
    cfg.kind = serve::AcceleratorKind::kTron;
  } else if (args[0] == "ghost") {
    cfg.kind = serve::AcceleratorKind::kGhost;
  } else {
    throw InvalidArgument("unknown serve fleet kind: " + args[0] + " (expected tron|ghost)");
  }
  cfg.schedulers = {serve::SchedulerKind::kDynamicBatch};
  cfg.requests_per_point = 50000;
  double qps = 0.0;
  std::size_t fleet = 4;
  std::size_t max_batch = 8;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) throw InvalidArgument(a + " needs a value");
      return args[++i];
    };
    if (a == "--qps") {
      qps = parse_double(value(), "--qps");
      if (qps <= 0.0) throw InvalidArgument("--qps must be positive");
    } else if (a == "--requests") {
      cfg.requests_per_point = parse_size(value(), "--requests");
    } else if (a == "--fleet") {
      fleet = parse_size(value(), "--fleet");
    } else if (a == "--sched") {
      const std::string& s = value();
      if (s == "fifo") {
        cfg.schedulers = {serve::SchedulerKind::kFifo};
      } else if (s == "batch") {
        cfg.schedulers = {serve::SchedulerKind::kDynamicBatch};
      } else {
        throw InvalidArgument("unknown scheduler: " + s + " (expected fifo|batch)");
      }
    } else if (a == "--max-batch") {
      max_batch = parse_size(value(), "--max-batch");
    } else if (a == "--max-wait-us") {
      cfg.max_wait_s = parse_double(value(), "--max-wait-us") * 1e-6;
      if (cfg.max_wait_s < 0.0) throw InvalidArgument("--max-wait-us must be >= 0");
    } else if (a == "--bursty") {
      cfg.process = serve::ArrivalProcess::kBursty;
    } else if (a == "--routing") {
      const std::string& s = value();
      if (s == "first-idle") {
        cfg.routing = serve::RoutingPolicy::kFirstIdle;
      } else if (s == "energy") {
        cfg.routing = serve::RoutingPolicy::kEnergyAware;
      } else {
        throw InvalidArgument("unknown routing: " + s + " (expected first-idle|energy)");
      }
    } else if (a == "--hetero") {
      cfg.heterogeneous = true;
    } else if (a == "--seed") {
      cfg.seed = parse_size(value(), "--seed");
    } else {
      throw InvalidArgument("unknown serve flag: " + a);
    }
  }
  if (fleet == 0 || max_batch == 0 || cfg.requests_per_point == 0) {
    throw InvalidArgument("--fleet, --max-batch, and --requests must be positive");
  }
  if (max_batch > serve::BatchPolicy::kMaxBatchLimit || fleet > 4096) {
    throw InvalidArgument("--max-batch and --fleet must be <= 4096");
  }
  cfg.fleet_sizes = {fleet};
  cfg.max_batches = {max_batch};

  const serve::WorkloadCatalog catalog = cfg.kind == serve::AcceleratorKind::kTron
                                             ? serve::WorkloadCatalog::tron_default()
                                             : serve::WorkloadCatalog::ghost_default();
  if (qps <= 0.0) {
    const serve::AcceleratorSpec spec = cfg.kind == serve::AcceleratorKind::kTron
                                            ? serve::default_tron_spec()
                                            : serve::default_ghost_spec();
    const std::size_t capacity_batch =
        cfg.schedulers.front() == serve::SchedulerKind::kFifo ? 1 : max_batch;
    qps = 0.7 * serve::fleet_capacity_qps(catalog, spec, fleet, capacity_batch);
  }
  cfg.qps = {qps};

  const std::vector<serve::CampaignPoint> points = serve::run_campaign(cfg, catalog);
  if (json) {
    serve::write_campaign_json(cfg, points, std::cout);
  } else {
    const std::string title = std::string(serve::kind_name(cfg.kind)) + " serve campaign (" +
                              serve::process_name(cfg.process) + " arrivals)";
    serve::campaign_table(points, title).print(std::cout);
    points.front().metrics.to_table("point detail").print(std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      json = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.size() < 2) return usage();
  const std::string& mode = args[0];
  try {
    if (mode == "tron") {
      const std::size_t seq = args.size() > 2 ? parse_size(args[2], "seq_len") : 128;
      const std::size_t batch = args.size() > 3 ? parse_size(args[3], "batch") : 1;
      if (seq == 0 || batch == 0) throw InvalidArgument("seq_len and batch must be positive");
      const tron::TronAccelerator acc(tron::default_tron_config());
      const PerfReport r = acc.estimate_batch(sim::transformer_by_name(args[1], seq), batch);
      json ? print_report_json(r) : print_report(r);
      return 0;
    }
    if (mode == "ghost") {
      if (args.size() < 3) return usage();
      const ghost::GhostAccelerator acc(ghost::default_ghost_config());
      const PerfReport r =
          acc.estimate(sim::gnn_by_name(args[1]), sim::dataset_by_name(args[2]));
      json ? print_report_json(r) : print_report(r);
      return 0;
    }
    if (mode == "generate") {
      if (args.size() < 4) return usage();
      const std::size_t prompt = parse_size(args[2], "prompt_len");
      const std::size_t tokens = parse_size(args[3], "tokens");
      if (prompt == 0 || tokens == 0) throw InvalidArgument("prompt and tokens must be positive");
      const tron::TronAccelerator acc(tron::default_tron_config());
      const PerfReport r = acc.estimate_generation(
          sim::transformer_by_name(args[1], prompt + tokens), prompt, tokens);
      json ? print_report_json(r) : print_report(r);
      return 0;
    }
    if (mode == "serve") {
      return run_serve({args.begin() + 1, args.end()}, json);
    }
  } catch (const InvalidArgument& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
