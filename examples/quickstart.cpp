// Quickstart: the five-minute tour of the library.
//
//  1. Build the TRON photonic transformer accelerator at its default design
//     point and estimate BERT-base inference (latency / GOPS / EPB).
//  2. Build GHOST and estimate GCN on the Cora stand-in.
//  3. Run a small transformer *functionally* through the noisy analog device
//     models and compare with the exact reference.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "ghost/accelerator.hpp"
#include "tron/accelerator.hpp"

int main() {
  using namespace lumos;

  // --- 1. TRON performance estimate ---------------------------------------
  const tron::TronAccelerator tron_acc(tron::default_tron_config());
  const nn::TransformerConfig bert = nn::bert_base();
  const PerfReport tr = tron_acc.estimate(bert);
  std::cout << "TRON on " << bert.name << " (seq len " << bert.seq_len << ", int8):\n"
            << "  latency      : " << tr.latency_s * 1e6 << " us\n"
            << "  throughput   : " << tr.ops_per_second() / 1e12 << " TOPS\n"
            << "  energy/bit   : " << tr.energy_per_bit_j() * 1e12 << " pJ/bit\n"
            << "  avg power    : " << tr.average_power_w() << " W\n\n";

  // --- 2. GHOST performance estimate --------------------------------------
  const ghost::GhostAccelerator ghost_acc(ghost::default_ghost_config());
  const graph::GraphDataset cora = graph::synthetic_cora();
  const PerfReport gr = ghost_acc.estimate(gnn::gcn_model(), cora);
  std::cout << "GHOST on GCN/" << cora.name << " (" << cora.graph.node_count()
            << " nodes, " << cora.graph.edge_count() << " edges):\n"
            << "  latency      : " << gr.latency_s * 1e6 << " us\n"
            << "  throughput   : " << gr.ops_per_second() / 1e9 << " GOPS\n"
            << "  energy/bit   : " << gr.energy_per_bit_j() * 1e12 << " pJ/bit\n\n";

  // --- 3. Functional execution through the analog models ------------------
  const nn::TransformerConfig tiny = nn::tiny_transformer(8);
  const nn::TransformerWeights weights = nn::TransformerWeights::random(tiny, 42);
  Rng data(1);
  nn::Matrix x(tiny.seq_len, tiny.d_model);
  x.fill_uniform(data, -1.0, 1.0);

  Rng rng(2);
  const phot::AnalogNoiseConfig noise;  // every non-ideality enabled
  const nn::Matrix photonic = tron_acc.forward(weights, x, rng, noise);
  const nn::Matrix exact = nn::reference_forward(weights, x);
  std::cout << "Functional check (tiny transformer through the noisy photonic path):\n"
            << "  relative error vs exact reference: "
            << photonic.relative_error(exact) << "\n"
            << "  (DAC quantisation, MR tuning error, heterodyne crosstalk,\n"
            << "   detector noise, and ADC quantisation all enabled)\n";
  return 0;
}
