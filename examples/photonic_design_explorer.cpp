// Photonic design explorer: walks the device-level design space that fixes
// the accelerators' MR bank configuration — ring geometry, WDM channel plan,
// laser budget, tuning policy — and prints the governing physics at each step
// (paper Sections IV and V.A/V.B).
//
// Build & run:  ./build/examples/photonic_design_explorer
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "photonics/laser.hpp"
#include "photonics/soa.hpp"
#include "photonics/tuning.hpp"
#include "photonics/wdm.hpp"

int main() {
  using namespace lumos;
  using namespace lumos::phot;

  // --- Ring geometry --------------------------------------------------------
  Table rings("Microring geometry across radii (eq. 2 resonance, FSR, linewidth)");
  rings.add_row({"radius", "order m", "lambda_MR", "FSR", "FWHM @ Q=8000"});
  for (const double radius_um : {3.0, 5.0, 8.0, 12.0, 20.0}) {
    MicroringDesign d;
    d.radius_m = radius_um * 1e-6;
    const MicroringResonator mr(d);
    rings.add_row({Table::num(radius_um, 0) + " um", std::to_string(mr.resonance_order()),
                   Table::num(units::to_nm(mr.base_resonance_wavelength()), 2) + " nm",
                   Table::num(units::to_nm(mr.free_spectral_range()), 2) + " nm",
                   Table::num(units::to_nm(mr.fwhm()), 4) + " nm"});
  }
  rings.print(std::cout);

  // --- WDM channel plan -------------------------------------------------------
  const WdmLinkDesigner designer(MicroringDesign{}, PhotodetectorConfig{}, VcselConfig{},
                                 LossStack{});
  if (const auto best = designer.best(WdmSearchSpace{})) {
    std::cout << "WDM search fixed point: Q=" << best->quality_factor << ", "
              << best->channel_count << " channels at "
              << Table::num(units::to_nm(best->channel_spacing_m), 3)
              << " nm spacing (effective SNR " << Table::num(best->effective_snr_db, 1)
              << " dB, laser "
              << Table::num(units::to_mw(best->laser_power_per_channel_w), 2)
              << " mW/channel)\n\n";
  }

  // --- Laser budget vs path loss ----------------------------------------------
  Table laser("Laser power budget vs waveguide path length (8-bit detection)");
  laser.add_row({"path", "total loss", "launch power", "wall-plug power"});
  const Photodetector pd{PhotodetectorConfig{}};
  for (const double cm : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    LossStack losses;
    losses.path_length_cm = cm;
    const LaserBudget b = size_laser(pd, losses, 8, VcselConfig{});
    laser.add_row({Table::num(cm, 2) + " cm", Table::num(losses.total_db(), 2) + " dB",
                   Table::num(units::to_mw(b.required_launch_power_w), 3) + " mW",
                   Table::num(units::to_mw(b.electrical_power_w), 3) + " mW" +
                       (b.feasible ? "" : " (INFEASIBLE)")});
  }
  laser.print(std::cout);

  // --- Tuning policy ------------------------------------------------------------
  const MicroringResonator ring{MicroringDesign{}};
  const TuningCircuit circuit({}, ring);
  std::cout << "Tuning ranges: EO covers " << Table::num(units::to_nm(circuit.eo_range_m()), 4)
            << " nm, TO covers " << Table::num(units::to_nm(circuit.to_range_m()), 1)
            << " nm; the hybrid policy uses EO below the crossover and engages the\n"
            << "heater (with TED bank coordination) only beyond it.\n\n";

  // --- SOA activations ------------------------------------------------------------
  const Soa soa({});
  Table act("SOA optical activation fidelity (max |SOA - ideal| over [-1,1])");
  act.add_row({"activation", "worst-case error"});
  act.add_row({"ReLU", Table::num(soa.approximation_error(OpticalActivation::kRelu), 4)});
  act.add_row({"sigmoid", Table::num(soa.approximation_error(OpticalActivation::kSigmoid), 4)});
  act.add_row({"tanh", Table::num(soa.approximation_error(OpticalActivation::kTanh), 4)});
  act.print(std::cout);
  return 0;
}
