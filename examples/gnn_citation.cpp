// GNN citation-network study: runs the four GNN families over the three
// citation stand-ins on GHOST, shows the aggregate/combine/update phase
// breakdown, the effect of the scheduling optimisations, and a functional
// forward on a small graph.
//
// Build & run:  ./build/examples/gnn_citation
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "ghost/accelerator.hpp"

int main() {
  using namespace lumos;
  const ghost::GhostAccelerator acc(ghost::default_ghost_config());

  // --- Model x dataset grid -------------------------------------------------
  Table grid("GNN zoo x citation datasets on GHOST");
  grid.add_row({"model", "dataset", "latency", "GOPS", "EPB", "agg time", "combine time"});
  for (const gnn::GnnModelConfig& model : gnn::gnn_model_zoo()) {
    for (const graph::GraphDataset& ds : graph::gnn_dataset_zoo()) {
      const PerfReport r = acc.estimate(model, ds);
      grid.add_row({model.name, ds.name, Table::num(units::to_us(r.latency_s), 1) + " us",
                    Table::num(units::to_gops(r.ops_per_second()), 0),
                    Table::num(units::to_pj(r.energy_per_bit_j()), 3) + " pJ/b",
                    Table::num(units::to_us(r.breakdown.aggregation_time_s), 2) + " us",
                    Table::num(units::to_us(r.breakdown.matmul_time_s), 2) + " us"});
    }
  }
  grid.print(std::cout);

  // --- Scheduling optimisations on/off ---------------------------------------
  Table opt("Scheduling optimisations (GraphSAGE on Pubmed)");
  opt.add_row({"configuration", "latency", "total energy"});
  const auto model = gnn::graphsage_model();
  const auto pubmed = graph::synthetic_pubmed();
  for (const bool enable : {true, false}) {
    ghost::GhostConfig cfg = ghost::default_ghost_config();
    cfg.buffer_and_partition = enable;
    cfg.weight_dac_sharing = enable;
    cfg.workload_balancing = enable;
    const PerfReport r = ghost::GhostAccelerator(cfg).estimate(model, pubmed);
    opt.add_row({enable ? "all on" : "all off",
                 Table::num(units::to_us(r.latency_s), 1) + " us",
                 Table::num(r.total_energy_j * 1e6, 1) + " uJ"});
  }
  opt.print(std::cout);

  // --- Functional forward on a small graph -----------------------------------
  const graph::GraphDataset tiny = graph::tiny_dataset();
  const auto weights = gnn::GnnModelWeights::random(gnn::gcn_model(), tiny, 7);
  Rng data(1);
  nn::Matrix x(tiny.graph.node_count(), tiny.feature_dim);
  x.fill_uniform(data, -1.0, 1.0);
  Rng rng(2);
  const nn::Matrix photonic = acc.forward(weights, tiny.graph, x, rng, {});
  const nn::Matrix exact = gnn::reference_forward(weights, tiny.graph, x);
  std::cout << "Functional GCN on " << tiny.graph.node_count()
            << "-node graph through the noisy photonic path:\n"
            << "  relative error vs exact reference: " << photonic.relative_error(exact)
            << "\n";
  return 0;
}
