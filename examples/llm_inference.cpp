// LLM inference study: maps the full transformer zoo onto TRON and the
// electronic comparison platforms, sweeps sequence length, and prints the
// per-stage breakdown of where TRON's time and energy go.
//
// Build & run:  ./build/examples/llm_inference
#include <iostream>

#include "baselines/platforms.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "tron/accelerator.hpp"

int main() {
  using namespace lumos;
  const tron::TronAccelerator acc(tron::default_tron_config());

  // --- Zoo comparison ------------------------------------------------------
  Table zoo("Transformer zoo on TRON vs electronic platforms (batch-1 inference)");
  zoo.add_row({"model", "platform", "latency", "GOPS", "EPB"});
  for (const nn::TransformerConfig& model : nn::llm_model_zoo()) {
    const PerfReport ours = acc.estimate(model);
    zoo.add_row({model.name, "TRON", Table::num(units::to_us(ours.latency_s), 1) + " us",
                 Table::num(units::to_gops(ours.ops_per_second()), 0),
                 Table::num(units::to_pj(ours.energy_per_bit_j()), 3) + " pJ/b"});
    for (const baselines::PlatformModel& p : baselines::llm_baselines()) {
      const PerfReport r = p.estimate_transformer(model);
      zoo.add_row({"", p.spec().name, Table::num(units::to_us(r.latency_s), 1) + " us",
                   Table::num(units::to_gops(r.ops_per_second()), 0),
                   Table::num(units::to_pj(r.energy_per_bit_j()), 3) + " pJ/b"});
    }
  }
  zoo.print(std::cout);

  // --- Sequence-length sweep ------------------------------------------------
  Table sweep("TRON sequence-length sweep (BERT-base)");
  sweep.add_row({"seq len", "latency", "GOPS", "EPB", "softmax share"});
  for (const std::size_t len : {64u, 128u, 256u, 384u, 512u}) {
    const PerfReport r = acc.estimate(nn::bert_base(len));
    sweep.add_row({std::to_string(len), Table::num(units::to_us(r.latency_s), 1) + " us",
                   Table::num(units::to_gops(r.ops_per_second()), 0),
                   Table::num(units::to_pj(r.energy_per_bit_j()), 3) + " pJ/b",
                   Table::num(100.0 * r.breakdown.softmax_time_s / r.latency_s, 1) + " %"});
  }
  sweep.print(std::cout);

  // --- Where does the time/energy go? ---------------------------------------
  const PerfReport r = acc.estimate(nn::bert_base());
  const PerfBreakdown& b = r.breakdown;
  Table brk("BERT-base on TRON: per-stage breakdown");
  brk.add_row({"stage", "time", "energy"});
  brk.add_row({"MatMul (MR bank arrays)", Table::num(units::to_us(b.matmul_time_s), 2) + " us",
               Table::num(b.laser_dac_adc_energy_j * 1e3, 3) + " mJ"});
  brk.add_row({"softmax (digital LUT)", Table::num(units::to_us(b.softmax_time_s), 2) + " us",
               Table::num(b.softmax_energy_j * 1e3, 3) + " mJ"});
  brk.add_row({"element-wise (LN/residual/ReLU)",
               Table::num(units::to_us(b.elementwise_time_s), 2) + " us",
               Table::num(b.elementwise_energy_j * 1e3, 3) + " mJ"});
  brk.add_row({"DRAM weight streaming (stall)",
               Table::num(units::to_us(b.memory_stall_s), 2) + " us",
               Table::num(b.dram_energy_j * 1e3, 3) + " mJ"});
  brk.add_row({"SRAM buffers", "-", Table::num(b.sram_energy_j * 1e3, 3) + " mJ"});
  brk.add_row({"static (tuning hold, converters, lasers idle)",
               "-", Table::num(r.static_energy_j * 1e3, 3) + " mJ"});
  brk.print(std::cout);
  std::cout << "Total: " << units::to_us(r.latency_s) << " us, "
            << r.total_energy_j * 1e3 << " mJ per inference\n";
  return 0;
}
