// Serving workload catalogs over the `arch` accelerator abstraction.
//
// A `WorkloadCatalog` is the set of inference jobs a fleet serves — tagged
// `arch::Workload`s (transformer configs, GNN model x dataset pairs) with
// their relative arrival weights.  Catalogs may mix workload kinds: a
// heterogeneous TRON+GHOST fleet serves one mixed catalog with kind-aware
// routing (see simulator.hpp).  The catalog shares graph datasets by name, so
// a synthetic graph is generated once and referenced by every workload,
// cache, and simulation point that scores it.
//
// Accelerator configurations are named `arch::SpecRegistry` specs ("tron",
// "ghost-eco", "tron@0.5", ...) — see arch/registry.hpp; the old
// dual-config `AcceleratorSpec` struct is gone.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/workload.hpp"

namespace lumos::serve {

// One entry of a serving mix.  `slo_latency_s` and `priority` make SLOs and
// scheduling tiers per-tenant: a catalog entry is one tenant's contract.
struct CatalogEntry {
  arch::Workload workload;
  double mix_weight = 1.0;     // relative arrival probability
  double slo_latency_s = 0.0;  // per-tenant SLO; 0 falls back to the sim-wide SLO
  std::uint32_t priority = 0;  // strict scheduler tier (lower = more urgent)
};

// The (possibly mixed-kind) workload mix a fleet serves.
class WorkloadCatalog {
 public:
  // Rejects non-positive and non-finite weights with `InvalidArgument`
  // naming the workload.
  void add(arch::Workload workload, double weight = 1.0);
  void add_transformer(std::string name, nn::TransformerConfig config, double weight = 1.0);
  // Adding a dataset the catalog already holds (by name) reuses it.
  void add_gnn(std::string name, gnn::GnnModelConfig model, graph::GraphDataset dataset,
               double weight = 1.0);

  // Per-tenant contracts.  `set_slo` rejects non-positive / non-finite
  // latencies with `InvalidArgument` naming the workload.
  void set_slo(std::size_t i, double slo_latency_s);
  void set_priority(std::size_t i, std::uint32_t priority);
  // Two-tier demo assignment: entries with at least mean mix weight (the bulk
  // of traffic, read: interactive tenants) get tier 0, the rest tier 1.
  void apply_default_tiers();

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const CatalogEntry& at(std::size_t i) const;
  [[nodiscard]] const arch::Workload& workload(std::size_t i) const { return at(i).workload; }
  [[nodiscard]] double total_weight() const noexcept;
  // True if any entry is of `kind`.
  [[nodiscard]] bool has_kind(arch::WorkloadKind kind) const noexcept;
  // Per-workload-index scheduler tiers (empty when every entry is tier 0, the
  // form schedulers treat as "no priorities": bit-identical to pre-tier runs).
  [[nodiscard]] std::vector<std::uint32_t> priorities() const;

  // Default serving mixes over the registry's models/datasets.
  [[nodiscard]] static WorkloadCatalog tron_default();
  [[nodiscard]] static WorkloadCatalog ghost_default();
  // Both of the above in one catalog (multi-tenant TRON+GHOST serving).
  [[nodiscard]] static WorkloadCatalog mixed_default();

 private:
  std::vector<CatalogEntry> entries_;
  std::vector<std::shared_ptr<const graph::GraphDataset>> datasets_;
};

}  // namespace lumos::serve
