// Serving workload catalogs over the `arch` accelerator abstraction.
//
// A `WorkloadCatalog` is the set of inference jobs a fleet serves — tagged
// `arch::Workload`s (transformer configs, GNN model x dataset pairs) with
// their relative arrival weights.  Catalogs may mix workload kinds: a
// heterogeneous TRON+GHOST fleet serves one mixed catalog with kind-aware
// routing (see simulator.hpp).  The catalog shares graph datasets by name, so
// a synthetic graph is generated once and referenced by every workload,
// cache, and simulation point that scores it.
//
// Accelerator configurations are named `arch::SpecRegistry` specs ("tron",
// "ghost-eco", "tron@0.5", ...) — see arch/registry.hpp; the old
// dual-config `AcceleratorSpec` struct is gone.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/workload.hpp"
#include "common/rng.hpp"

namespace lumos::serve {

// Per-request sequence-length distribution of one catalog entry.  Sampled
// lengths are discretised: rounded up to a multiple of `bucket` and clamped to
// [min_len, max_len], so batches can share a (workload, seq-bucket) key and
// the estimate cache stays bounded.  `kFixed` samples nothing — requests carry
// seq 0, meaning "the entry's native config" — and is the bit-compatible
// default for every pre-seqlen trace and simulation.
enum class SeqLenDist {
  kFixed,      // every request uses the entry's native sequence length
  kUniform,    // uniform over [min_len, max_len]
  kLogNormal,  // exp(N(log_mean, log_sigma)), clamped to [min_len, max_len]
};

struct SeqLenConfig {
  SeqLenDist dist = SeqLenDist::kFixed;
  std::size_t min_len = 16;   // lower clamp (uniform lower bound)
  std::size_t max_len = 512;  // upper clamp (uniform upper bound)
  double log_mean = 5.0;      // log-normal: mean of ln(length)
  double log_sigma = 0.5;     // log-normal: stddev of ln(length)
  std::size_t bucket = 32;    // sampled lengths round up to a multiple of this
};

// Throws `InvalidArgument` naming `workload` and the bad field (zero bucket,
// inverted bounds, non-finite / non-positive log-normal parameters).  A
// kFixed config is always valid.
void validate_seqlen(const SeqLenConfig& config, const std::string& workload);

// One sampled, bucketised sequence length (0 for kFixed: no draw is consumed,
// so fixed entries never perturb the rng stream shared with sampled entries).
[[nodiscard]] std::uint32_t sample_seq_len(const SeqLenConfig& config, Rng& rng);

// Per-request decode-length distribution of one catalog entry (autoregressive
// generation).  The default — kFixed with `tokens == 0` — disables decode:
// the entry serves one monolithic prefill, bit-identical to the pre-decode
// event loop.  Any enabled shape makes each request generate a sampled number
// of tokens after its prefill, scheduled per token (continuous batching).
// `ttft_slo_s` / `tpot_slo_s` are the per-token SLO contracts reported next
// to the end-to-end SLO (0 disables each).
struct DecodeConfig {
  SeqLenDist dist = SeqLenDist::kFixed;
  std::size_t tokens = 0;        // kFixed: tokens per request (0 = decode off)
  std::size_t min_tokens = 1;    // lower clamp (uniform lower bound)
  std::size_t max_tokens = 256;  // upper clamp (uniform upper bound)
  double log_mean = 4.0;         // log-normal: mean of ln(tokens)
  double log_sigma = 0.5;        // log-normal: stddev of ln(tokens)
  std::size_t ctx_bucket = 32;   // KV context rounds up to this grid in the step cache
  double ttft_slo_s = 0.0;       // time-to-first-token SLO; 0 disables
  double tpot_slo_s = 0.0;       // time-per-output-token SLO; 0 disables

  [[nodiscard]] bool enabled() const noexcept {
    return dist != SeqLenDist::kFixed || tokens > 0;
  }
};

// Throws `InvalidArgument` naming `workload` and the bad field (zero
// ctx_bucket, inverted bounds, non-finite log-normal parameters, negative /
// non-finite per-token SLOs).  A disabled config is always valid.
void validate_decode(const DecodeConfig& config, const std::string& workload);

// One sampled decode length, clamped to the config's bounds (0 when decode is
// disabled: no draw is consumed, so decode-free entries never perturb the rng
// stream shared with decoding entries).
[[nodiscard]] std::uint32_t sample_decode_tokens(const DecodeConfig& config, Rng& rng);

// One entry of a serving mix.  `slo_latency_s` and `priority` make SLOs and
// scheduling tiers per-tenant: a catalog entry is one tenant's contract;
// `seqlen` is the tenant's per-request sequence-length distribution.
struct CatalogEntry {
  arch::Workload workload;
  double mix_weight = 1.0;     // relative arrival probability
  double slo_latency_s = 0.0;  // per-tenant SLO; 0 falls back to the sim-wide SLO
  std::uint32_t priority = 0;  // strict scheduler tier (lower = more urgent)
  SeqLenConfig seqlen;         // per-request sequence lengths (default: fixed)
  double timeout_s = 0.0;      // per-request timeout; 0 (default) disables
  DecodeConfig decode;         // per-request decode lengths (default: disabled)
};

// The (possibly mixed-kind) workload mix a fleet serves.
class WorkloadCatalog {
 public:
  // Rejects non-positive and non-finite weights with `InvalidArgument`
  // naming the workload.
  void add(arch::Workload workload, double weight = 1.0);
  void add_transformer(std::string name, nn::TransformerConfig config, double weight = 1.0);
  // Adding a dataset the catalog already holds (by name) reuses it.
  void add_gnn(std::string name, gnn::GnnModelConfig model, graph::GraphDataset dataset,
               double weight = 1.0);

  // Per-tenant contracts.  `set_slo` rejects non-positive / non-finite
  // latencies with `InvalidArgument` naming the workload.
  void set_slo(std::size_t i, double slo_latency_s);
  void set_priority(std::size_t i, std::uint32_t priority);
  // Per-request timeout of entry `i` (queued and in-flight attempts past it
  // are cancelled; see RetryPolicy for what happens next).  Rejects
  // non-positive / non-finite timeouts with `InvalidArgument` naming the
  // workload; `apply_timeout` sets every entry.
  void set_timeout(std::size_t i, double timeout_s);
  void apply_timeout(double timeout_s);
  // Two-tier demo assignment: entries with at least mean mix weight (the bulk
  // of traffic, read: interactive tenants) get tier 0, the rest tier 1.
  void apply_default_tiers();

  // Per-tenant sequence-length distributions.  Validates `config` (see
  // validate_seqlen); a non-fixed distribution on a GNN entry throws
  // `InvalidArgument` (graphs have no sequence dimension).
  void set_seqlen(std::size_t i, const SeqLenConfig& config);
  // Convenience: `dist` over every transformer entry, with bounds derived
  // from each entry's native sequence length (uniform: [native/2, 2*native];
  // log-normal: median at the native length, clamped to [16, 4*native]).
  // GNN entries stay fixed.
  void apply_seqlen_dist(SeqLenDist dist);

  // Per-tenant decode-length distributions.  Validates `config` (see
  // validate_decode); an enabled decode on a GNN entry throws
  // `InvalidArgument` (graphs have no autoregressive loop).
  void set_decode(std::size_t i, const DecodeConfig& config);
  // Convenience: decode of `dist` shape around `tokens` generated tokens on
  // every transformer entry (fixed: exactly `tokens`; uniform:
  // [max(1, tokens/2), 2*tokens]; log-normal: median at `tokens`, clamped to
  // [1, 4*tokens]).  Throws when the catalog holds no transformer entry to
  // decode on.  GNN entries stay disabled.
  void apply_decode(SeqLenDist dist, std::size_t tokens);
  // Per-token SLOs on every decode-enabled entry (0 leaves that gate off).
  void apply_token_slos(double ttft_slo_s, double tpot_slo_s);
  // True if any entry decodes.
  [[nodiscard]] bool has_decode() const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const CatalogEntry& at(std::size_t i) const;
  [[nodiscard]] const arch::Workload& workload(std::size_t i) const { return at(i).workload; }
  [[nodiscard]] double total_weight() const noexcept;
  // True if any entry is of `kind`.
  [[nodiscard]] bool has_kind(arch::WorkloadKind kind) const noexcept;
  // Per-workload-index scheduler tiers (empty when every entry is tier 0, the
  // form schedulers treat as "no priorities": bit-identical to pre-tier runs).
  [[nodiscard]] std::vector<std::uint32_t> priorities() const;
  // Entry names in catalog order (timeline exports, per-tenant labelling).
  [[nodiscard]] std::vector<std::string> names() const;

  // Default serving mixes over the registry's models/datasets.
  [[nodiscard]] static WorkloadCatalog tron_default();
  [[nodiscard]] static WorkloadCatalog ghost_default();
  // Both of the above in one catalog (multi-tenant TRON+GHOST serving).
  [[nodiscard]] static WorkloadCatalog mixed_default();

 private:
  std::vector<CatalogEntry> entries_;
  std::vector<std::shared_ptr<const graph::GraphDataset>> datasets_;
};

}  // namespace lumos::serve
