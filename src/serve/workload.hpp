// Serving workloads and accelerator fleet building blocks.
//
// A `WorkloadCatalog` is the set of inference jobs a fleet serves (transformer
// configs for TRON fleets, GNN model x dataset pairs for GHOST fleets) with
// their relative arrival weights.  The catalog owns the graph datasets so the
// synthetic graphs are generated once and shared by every simulation point.
// An `AcceleratorSpec` names one accelerator configuration a fleet slot is
// built from; heterogeneous fleets mix specs (e.g. full-fabric and reduced
// "eco" variants) and route between them by predicted energy.
#pragma once

#include <string>
#include <vector>

#include "ghost/config.hpp"
#include "gnn/models.hpp"
#include "graph/generators.hpp"
#include "nn/transformer.hpp"
#include "tron/config.hpp"

namespace lumos::serve {

enum class AcceleratorKind { kTron, kGhost };

[[nodiscard]] const char* kind_name(AcceleratorKind kind) noexcept;

// One entry of a serving mix.
struct ServeWorkload {
  std::string name;
  AcceleratorKind kind = AcceleratorKind::kTron;
  nn::TransformerConfig transformer;  // kTron only
  gnn::GnnModelConfig gnn_model;      // kGhost only
  std::size_t dataset = 0;            // catalog dataset index (kGhost only)
  double mix_weight = 1.0;            // relative arrival probability
};

// The (single-kind) workload mix a fleet serves.
class WorkloadCatalog {
 public:
  void add_transformer(std::string name, nn::TransformerConfig config, double weight = 1.0);
  // Adding a dataset the catalog already holds (by name) reuses it.
  void add_gnn(std::string name, gnn::GnnModelConfig model, graph::GraphDataset dataset,
               double weight = 1.0);

  [[nodiscard]] std::size_t size() const noexcept { return workloads_.size(); }
  [[nodiscard]] const ServeWorkload& at(std::size_t i) const;
  [[nodiscard]] const graph::GraphDataset& dataset(std::size_t i) const;
  [[nodiscard]] AcceleratorKind kind() const;
  [[nodiscard]] double total_weight() const noexcept;

  // Default serving mixes over the registry's models/datasets.
  [[nodiscard]] static WorkloadCatalog tron_default();
  [[nodiscard]] static WorkloadCatalog ghost_default();

 private:
  std::vector<ServeWorkload> workloads_;
  std::vector<graph::GraphDataset> datasets_;
};

// An accelerator configuration a fleet slot instantiates.  `name` keys the
// spec: fleet slots with the same name share one estimate cache.
struct AcceleratorSpec {
  std::string name = "tron";
  AcceleratorKind kind = AcceleratorKind::kTron;
  tron::TronConfig tron;
  ghost::GhostConfig ghost;
};

[[nodiscard]] AcceleratorSpec default_tron_spec();
[[nodiscard]] AcceleratorSpec default_ghost_spec();
// Reduced-fabric variants (fewer compute arrays): lower static power, higher
// latency — the interesting trade for energy-aware routing.
[[nodiscard]] AcceleratorSpec eco_tron_spec();
[[nodiscard]] AcceleratorSpec eco_ghost_spec();

}  // namespace lumos::serve
