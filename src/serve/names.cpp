#include "serve/names.hpp"

#include "common/enum_names.hpp"

namespace lumos::serve {

namespace {

constexpr EnumName<ArrivalProcess> kProcessNames[] = {
    {ArrivalProcess::kPoisson, "poisson"},
    {ArrivalProcess::kBursty, "bursty"},
};

constexpr EnumName<SchedulerKind> kSchedulerNames[] = {
    {SchedulerKind::kFifo, "fifo"},
    {SchedulerKind::kDynamicBatch, "batch"},
};

constexpr EnumName<RoutingPolicy> kRoutingNames[] = {
    {RoutingPolicy::kFirstIdle, "first-idle"},
    {RoutingPolicy::kEnergyAware, "energy-aware"},
    {RoutingPolicy::kEnergyAware, "energy"},  // historical CLI alias
};

constexpr EnumName<AutoscalerPolicy> kAutoscalerNames[] = {
    {AutoscalerPolicy::kNone, "none"},
    {AutoscalerPolicy::kQueueDepth, "queue"},
    {AutoscalerPolicy::kTargetUtilization, "util"},
};

constexpr EnumName<LoopMode> kLoopModeNames[] = {
    {LoopMode::kOpen, "open"},
    {LoopMode::kClosed, "closed"},
};

constexpr EnumName<SeqLenDist> kSeqLenDistNames[] = {
    {SeqLenDist::kFixed, "fixed"},
    {SeqLenDist::kUniform, "uniform"},
    {SeqLenDist::kLogNormal, "lognormal"},
};

}  // namespace

const char* process_name(ArrivalProcess process) noexcept {
  return enum_to_name(kProcessNames, process);
}
ArrivalProcess process_from_name(const std::string& name) {
  return enum_from_name(kProcessNames, name, "arrival process");
}
std::vector<std::string> process_names() { return enum_name_list(kProcessNames); }

const char* scheduler_name(SchedulerKind kind) noexcept {
  return enum_to_name(kSchedulerNames, kind);
}
SchedulerKind scheduler_from_name(const std::string& name) {
  return enum_from_name(kSchedulerNames, name, "scheduler");
}
std::vector<std::string> scheduler_names() { return enum_name_list(kSchedulerNames); }

const char* routing_name(RoutingPolicy policy) noexcept {
  return enum_to_name(kRoutingNames, policy);
}
RoutingPolicy routing_from_name(const std::string& name) {
  return enum_from_name(kRoutingNames, name, "routing policy");
}
std::vector<std::string> routing_names() { return enum_name_list(kRoutingNames); }

const char* autoscaler_name(AutoscalerPolicy policy) noexcept {
  return enum_to_name(kAutoscalerNames, policy);
}
AutoscalerPolicy autoscaler_from_name(const std::string& name) {
  return enum_from_name(kAutoscalerNames, name, "autoscale policy");
}
std::vector<std::string> autoscaler_names() { return enum_name_list(kAutoscalerNames); }

const char* loop_mode_name(LoopMode mode) noexcept {
  return enum_to_name(kLoopModeNames, mode);
}
LoopMode loop_mode_from_name(const std::string& name) {
  return enum_from_name(kLoopModeNames, name, "loop mode");
}
std::vector<std::string> loop_mode_names() { return enum_name_list(kLoopModeNames); }

const char* seqlen_dist_name(SeqLenDist dist) noexcept {
  return enum_to_name(kSeqLenDistNames, dist);
}
SeqLenDist seqlen_dist_from_name(const std::string& name) {
  return enum_from_name(kSeqLenDistNames, name, "seqlen distribution");
}
std::vector<std::string> seqlen_dist_names() { return enum_name_list(kSeqLenDistNames); }

}  // namespace lumos::serve
