#include "serve/names.hpp"

#include "common/enum_names.hpp"

namespace lumos::serve {

namespace {

constexpr EnumName<ArrivalProcess> kProcessNames[] = {
    {ArrivalProcess::kPoisson, "poisson"},
    {ArrivalProcess::kBursty, "bursty"},
};

constexpr EnumName<SchedulerKind> kSchedulerNames[] = {
    {SchedulerKind::kFifo, "fifo"},
    {SchedulerKind::kDynamicBatch, "batch"},
};

constexpr EnumName<RoutingPolicy> kRoutingNames[] = {
    {RoutingPolicy::kFirstIdle, "first-idle"},
    {RoutingPolicy::kEnergyAware, "energy-aware"},
    {RoutingPolicy::kEnergyAware, "energy"},  // historical CLI alias
    {RoutingPolicy::kCostAware, "cost-aware"},
    {RoutingPolicy::kCostAware, "cost"},  // CLI alias
};

constexpr EnumName<AutoscalerPolicy> kAutoscalerNames[] = {
    {AutoscalerPolicy::kNone, "none"},
    {AutoscalerPolicy::kQueueDepth, "queue"},
    {AutoscalerPolicy::kTargetUtilization, "util"},
};

constexpr EnumName<LoopMode> kLoopModeNames[] = {
    {LoopMode::kOpen, "open"},
    {LoopMode::kClosed, "closed"},
};

constexpr EnumName<SeqLenDist> kSeqLenDistNames[] = {
    {SeqLenDist::kFixed, "fixed"},
    {SeqLenDist::kUniform, "uniform"},
    {SeqLenDist::kLogNormal, "lognormal"},
};

constexpr EnumName<AdmissionPolicy> kAdmissionNames[] = {
    {AdmissionPolicy::kNone, "none"},
    {AdmissionPolicy::kQueueCap, "queue-cap"},
    {AdmissionPolicy::kTierShed, "tier-shed"},
    {AdmissionPolicy::kSloAware, "slo-aware"},
};

constexpr EnumName<CompletionStatus> kCompletionStatusNames[] = {
    {CompletionStatus::kOk, "ok"},
    {CompletionStatus::kShed, "shed"},
    {CompletionStatus::kTimeout, "timeout"},
};

constexpr EnumName<PercentileMode> kPercentileModeNames[] = {
    {PercentileMode::kExact, "exact"},
    {PercentileMode::kHdr, "hdr"},
};

constexpr EnumName<DecodeMode> kDecodeModeNames[] = {
    {DecodeMode::kMonolithic, "monolithic"},
    {DecodeMode::kContinuous, "continuous"},
};

}  // namespace

const char* process_name(ArrivalProcess process) noexcept {
  return enum_to_name(kProcessNames, process);
}
ArrivalProcess process_from_name(const std::string& name) {
  return enum_from_name(kProcessNames, name, "arrival process");
}
std::vector<std::string> process_names() { return enum_name_list(kProcessNames); }

const char* scheduler_name(SchedulerKind kind) noexcept {
  return enum_to_name(kSchedulerNames, kind);
}
SchedulerKind scheduler_from_name(const std::string& name) {
  return enum_from_name(kSchedulerNames, name, "scheduler");
}
std::vector<std::string> scheduler_names() { return enum_name_list(kSchedulerNames); }

const char* routing_name(RoutingPolicy policy) noexcept {
  return enum_to_name(kRoutingNames, policy);
}
RoutingPolicy routing_from_name(const std::string& name) {
  return enum_from_name(kRoutingNames, name, "routing policy");
}
std::vector<std::string> routing_names() { return enum_name_list(kRoutingNames); }

const char* autoscaler_name(AutoscalerPolicy policy) noexcept {
  return enum_to_name(kAutoscalerNames, policy);
}
AutoscalerPolicy autoscaler_from_name(const std::string& name) {
  return enum_from_name(kAutoscalerNames, name, "autoscale policy");
}
std::vector<std::string> autoscaler_names() { return enum_name_list(kAutoscalerNames); }

const char* loop_mode_name(LoopMode mode) noexcept {
  return enum_to_name(kLoopModeNames, mode);
}
LoopMode loop_mode_from_name(const std::string& name) {
  return enum_from_name(kLoopModeNames, name, "loop mode");
}
std::vector<std::string> loop_mode_names() { return enum_name_list(kLoopModeNames); }

const char* seqlen_dist_name(SeqLenDist dist) noexcept {
  return enum_to_name(kSeqLenDistNames, dist);
}
SeqLenDist seqlen_dist_from_name(const std::string& name) {
  return enum_from_name(kSeqLenDistNames, name, "seqlen distribution");
}
std::vector<std::string> seqlen_dist_names() { return enum_name_list(kSeqLenDistNames); }

const char* admission_name(AdmissionPolicy policy) noexcept {
  return enum_to_name(kAdmissionNames, policy);
}
AdmissionPolicy admission_from_name(const std::string& name) {
  return enum_from_name(kAdmissionNames, name, "admission policy");
}
std::vector<std::string> admission_names() { return enum_name_list(kAdmissionNames); }

const char* completion_status_name(CompletionStatus status) noexcept {
  return enum_to_name(kCompletionStatusNames, status);
}
CompletionStatus completion_status_from_name(const std::string& name) {
  return enum_from_name(kCompletionStatusNames, name, "completion status");
}
std::vector<std::string> completion_status_names() {
  return enum_name_list(kCompletionStatusNames);
}

const char* percentile_mode_name(PercentileMode mode) noexcept {
  return enum_to_name(kPercentileModeNames, mode);
}
PercentileMode percentile_mode_from_name(const std::string& name) {
  return enum_from_name(kPercentileModeNames, name, "percentile mode");
}
std::vector<std::string> percentile_mode_names() {
  return enum_name_list(kPercentileModeNames);
}

const char* decode_mode_name(DecodeMode mode) noexcept {
  return enum_to_name(kDecodeModeNames, mode);
}
DecodeMode decode_mode_from_name(const std::string& name) {
  return enum_from_name(kDecodeModeNames, name, "decode mode");
}
std::vector<std::string> decode_mode_names() { return enum_name_list(kDecodeModeNames); }

}  // namespace lumos::serve
