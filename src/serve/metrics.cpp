#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace lumos::serve {

double percentile(std::vector<double>& samples, double q) {
  LUMOS_EXPECTS(q >= 0.0 && q <= 1.0);
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = std::ceil(q * static_cast<double>(samples.size()));
  const std::size_t index = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return samples[std::min(index, samples.size() - 1)];
}

double FleetMetrics::estimate_hit_rate() const noexcept {
  if (estimate_lookups == 0) return 1.0;
  return static_cast<double>(estimate_lookups - estimate_misses) /
         static_cast<double>(estimate_lookups);
}

namespace {

// Recomputes every percentile field of `m` from its retained latency state —
// the same per-tenant-then-aggregate shape simulate() uses, so a merged
// result carries the percentiles a single simulation over the union multiset
// would have produced.
void percentiles_from_state(FleetMetrics& m) {
  LatencyState& st = *m.latency_state;
  if (st.hdr) {
    for (std::size_t w = 0; w < m.tenants.size(); ++w) {
      if (st.tenant_hist[w].count() == 0) continue;
      m.tenants[w].p50_latency_s = st.tenant_hist[w].percentile(0.50);
      m.tenants[w].p99_latency_s = st.tenant_hist[w].percentile(0.99);
    }
    HdrHistogram all(st.hdr_relative_error);
    for (const HdrHistogram& h : st.tenant_hist) all.merge(h);
    if (all.count() > 0) {
      m.p50_latency_s = all.percentile(0.50);
      m.p95_latency_s = all.percentile(0.95);
      m.p99_latency_s = all.percentile(0.99);
      m.p999_latency_s = all.percentile(0.999);
    }
  } else {
    std::size_t total = 0;
    for (std::size_t w = 0; w < m.tenants.size(); ++w) {
      std::vector<double>& samples = st.tenant_samples[w];
      total += samples.size();
      if (samples.empty()) continue;
      m.tenants[w].p50_latency_s = percentile(samples, 0.50);
      m.tenants[w].p99_latency_s = percentile(samples, 0.99);
    }
    std::vector<double> all;
    all.reserve(total);
    for (const std::vector<double>& samples : st.tenant_samples) {
      all.insert(all.end(), samples.begin(), samples.end());
    }
    if (!all.empty()) {
      m.p50_latency_s = percentile(all, 0.50);
      m.p95_latency_s = percentile(all, 0.95);
      m.p99_latency_s = percentile(all, 0.99);
      m.p999_latency_s = percentile(all, 0.999);
    }
  }
  if (!st.session_samples.empty()) {
    double sum = 0.0;
    double max = 0.0;
    for (const double v : st.session_samples) {
      sum += v;
      max = std::max(max, v);
    }
    m.mean_session_s = sum / static_cast<double>(st.session_samples.size());
    m.max_session_s = max;
    m.p50_session_s = percentile(st.session_samples, 0.50);
    m.p99_session_s = percentile(st.session_samples, 0.99);
  }
  // Decode phase latencies are always sample-exact (see LatencyState), so the
  // merged TTFT/TPOT statistics are true union percentiles, not a weighted
  // approximation.
  if (!st.ttft_samples.empty()) {
    double sum = 0.0;
    double max = 0.0;
    for (const double v : st.ttft_samples) {
      sum += v;
      max = std::max(max, v);
    }
    m.mean_ttft_s = sum / static_cast<double>(st.ttft_samples.size());
    m.max_ttft_s = max;
    m.p50_ttft_s = percentile(st.ttft_samples, 0.50);
    m.p95_ttft_s = percentile(st.ttft_samples, 0.95);
    m.p99_ttft_s = percentile(st.ttft_samples, 0.99);
  }
  if (!st.tpot_samples.empty()) {
    double sum = 0.0;
    double max = 0.0;
    for (const double v : st.tpot_samples) {
      sum += v;
      max = std::max(max, v);
    }
    m.mean_tpot_s = sum / static_cast<double>(st.tpot_samples.size());
    m.max_tpot_s = max;
    m.p50_tpot_s = percentile(st.tpot_samples, 0.50);
    m.p95_tpot_s = percentile(st.tpot_samples, 0.95);
    m.p99_tpot_s = percentile(st.tpot_samples, 0.99);
  }
}

// Count-weighted recombination of two per-run averages (the labelled
// approximation for percentiles when no raw state is retained; exact for
// true means).  Commutative: a*wa + b*wb adds bit-identically either way.
double weighted(double a, double wa, double b, double wb) {
  const double w = wa + wb;
  return w > 0.0 ? (a * wa + b * wb) / w : 0.0;
}

}  // namespace

void FleetMetrics::merge(const FleetMetrics& other) {
  if (tenants.size() != other.tenants.size()) {
    throw InvalidArgument("FleetMetrics::merge: tenant counts differ (" +
                          std::to_string(tenants.size()) + " vs " +
                          std::to_string(other.tenants.size()) +
                          "): both sides must describe the same catalog");
  }

  // Horizon primitives of both sides, read before anything is overwritten.
  const double dur_a = duration_s;
  const double dur_b = other.duration_s;
  const double merged_dur = std::max(dur_a, dur_b);
  const double slot_time_a = mean_fleet_size * dur_a;
  const double slot_time_b = other.mean_fleet_size * dur_b;
  const double busy = fleet_utilization * slot_time_a +
                      other.fleet_utilization * slot_time_b;
  const double depth_time = mean_queue_depth * dur_a + other.mean_queue_depth * dur_b;
  const double latency_sum = mean_latency_s * static_cast<double>(completed) +
                             other.mean_latency_s * static_cast<double>(other.completed);
  const double na = static_cast<double>(completed);
  const double nb = static_cast<double>(other.completed);
  const double sess_a = static_cast<double>(sessions);
  const double sess_b = static_cast<double>(other.sessions);
  const double dec_a = static_cast<double>(decode_requests);
  const double dec_b = static_cast<double>(other.decode_requests);

  // Latency state: merged exactly when both sides retained the same mode.
  const bool exact_state = latency_state != nullptr && other.latency_state != nullptr;
  if (exact_state) {
    if (latency_state->hdr != other.latency_state->hdr) {
      throw InvalidArgument(
          "FleetMetrics::merge: latency states mix exact and hdr modes");
    }
    // Copy-on-write: a shared state (metrics copied with its pointer) must
    // not be mutated behind the copy's back.
    if (latency_state.use_count() > 1) {
      latency_state = std::make_shared<LatencyState>(*latency_state);
    }
    LatencyState& st = *latency_state;
    const LatencyState& ot = *other.latency_state;
    if (st.hdr) {
      for (std::size_t w = 0; w < st.tenant_hist.size(); ++w) {
        st.tenant_hist[w].merge(ot.tenant_hist[w]);  // throws on eps mismatch
      }
    } else {
      for (std::size_t w = 0; w < st.tenant_samples.size(); ++w) {
        st.tenant_samples[w].insert(st.tenant_samples[w].end(),
                                    ot.tenant_samples[w].begin(),
                                    ot.tenant_samples[w].end());
      }
    }
    st.session_samples.insert(st.session_samples.end(), ot.session_samples.begin(),
                              ot.session_samples.end());
    st.ttft_samples.insert(st.ttft_samples.end(), ot.ttft_samples.begin(),
                           ot.ttft_samples.end());
    st.tpot_samples.insert(st.tpot_samples.end(), ot.tpot_samples.begin(),
                           ot.tpot_samples.end());
  } else {
    // One side (or both) discarded its samples: percentiles degrade to the
    // documented weighted approximation below, and no state survives.
    latency_state.reset();
  }

  // Per-tenant: counters add; rates recompute from the merged counters.
  for (std::size_t w = 0; w < tenants.size(); ++w) {
    TenantMetrics& t = tenants[w];
    const TenantMetrics& o = other.tenants[w];
    const double ta = static_cast<double>(t.completed);
    const double tb = static_cast<double>(o.completed);
    t.mean_latency_s = weighted(t.mean_latency_s, ta, o.mean_latency_s, tb);
    if (!exact_state) {
      t.p50_latency_s = weighted(t.p50_latency_s, ta, o.p50_latency_s, tb);
      t.p99_latency_s = weighted(t.p99_latency_s, ta, o.p99_latency_s, tb);
    }
    t.completed += o.completed;
    t.within_slo += o.within_slo;
    t.shed += o.shed;
    t.timed_out += o.timed_out;
    t.cost_usd += o.cost_usd;  // disjoint completions: dollars add exactly
    t.max_latency_s = std::max(t.max_latency_s, o.max_latency_s);
    t.slo_latency_s = std::max(t.slo_latency_s, o.slo_latency_s);
    const std::size_t issued = t.completed + t.shed + t.timed_out;
    t.drop_rate = issued > 0 ? static_cast<double>(t.shed + t.timed_out) /
                                   static_cast<double>(issued)
                             : 0.0;
    t.slo_attainment = t.completed > 0 ? static_cast<double>(t.within_slo) /
                                             static_cast<double>(t.completed)
                                       : 0.0;
    t.goodput_qps =
        static_cast<double>(t.within_slo) / std::max(merged_dur, 1e-300);
  }

  // Merge-exact counters and maxima.
  completed += other.completed;
  within_slo += other.within_slo;
  dispatches += other.dispatches;
  shed_requests += other.shed_requests;
  timed_out_requests += other.timed_out_requests;
  attempt_timeouts += other.attempt_timeouts;
  retried_attempts += other.retried_attempts;
  failed_batches += other.failed_batches;
  requeued_requests += other.requeued_requests;
  slot_failures += other.slot_failures;
  slot_recoveries += other.slot_recoveries;
  autoscale_grows += other.autoscale_grows;
  autoscale_shrinks += other.autoscale_shrinks;
  initial_fleet_size += other.initial_fleet_size;
  peak_fleet_size += other.peak_fleet_size;  // sum of per-cell peaks
  final_fleet_size += other.final_fleet_size;
  estimate_lookups += other.estimate_lookups;
  estimate_misses += other.estimate_misses;
  sessions += other.sessions;
  max_latency_s = std::max(max_latency_s, other.max_latency_s);
  slo_latency_s = std::max(slo_latency_s, other.slo_latency_s);
  peak_queue_depth = std::max(peak_queue_depth, other.peak_queue_depth);
  fleet_energy_j += other.fleet_energy_j;
  fleet_cost_usd += other.fleet_cost_usd;  // disjoint slot-time and energy
  if (batch_histogram.size() < other.batch_histogram.size()) {
    batch_histogram.resize(other.batch_histogram.size(), 0);
  }
  for (std::size_t b = 0; b < other.batch_histogram.size(); ++b) {
    batch_histogram[b] += other.batch_histogram[b];
  }
  slot_availability.insert(slot_availability.end(), other.slot_availability.begin(),
                           other.slot_availability.end());
  decode_requests += other.decode_requests;
  generated_tokens += other.generated_tokens;
  aborted_decode_tokens += other.aborted_decode_tokens;
  decode_steps += other.decode_steps;
  ttft_slo_requests += other.ttft_slo_requests;
  within_ttft_slo += other.within_ttft_slo;
  tpot_slo_requests += other.tpot_slo_requests;
  within_tpot_slo += other.within_tpot_slo;
  if (decode_occupancy.size() < other.decode_occupancy.size()) {
    decode_occupancy.resize(other.decode_occupancy.size(), 0);
  }
  for (std::size_t lanes = 0; lanes < other.decode_occupancy.size(); ++lanes) {
    decode_occupancy[lanes] += other.decode_occupancy[lanes];
  }

  // Concurrent-partition horizon semantics: offered load adds, the merged
  // run lasts as long as its slowest partition, and time-weighted gauges
  // recombine over their own horizons.
  offered_qps += other.offered_qps;
  duration_s = merged_dur;
  throughput_qps = static_cast<double>(completed) / std::max(merged_dur, 1e-300);
  goodput_qps = static_cast<double>(within_slo) / std::max(merged_dur, 1e-300);
  slo_attainment = completed > 0 ? static_cast<double>(within_slo) /
                                       static_cast<double>(completed)
                                 : 0.0;
  mean_latency_s =
      completed > 0 ? latency_sum / static_cast<double>(completed) : 0.0;
  const std::size_t issued = completed + shed_requests + timed_out_requests;
  drop_rate = issued > 0 ? static_cast<double>(shed_requests + timed_out_requests) /
                               static_cast<double>(issued)
                         : 0.0;
  mean_queue_depth = depth_time / std::max(merged_dur, 1e-300);
  mean_batch_size = static_cast<double>(completed) /
                    static_cast<double>(std::max<std::size_t>(dispatches, 1));
  energy_per_request_j =
      completed > 0 ? fleet_energy_j / static_cast<double>(completed) : 0.0;
  cost_per_request_usd =
      completed > 0 ? fleet_cost_usd / static_cast<double>(completed) : 0.0;
  const double slot_time = slot_time_a + slot_time_b;
  mean_fleet_size = slot_time / std::max(merged_dur, 1e-300);
  fleet_utilization = busy / std::max(slot_time, 1e-300);
  fleet_availability = slot_time > 0.0
                           ? weighted(fleet_availability, slot_time_a,
                                      other.fleet_availability, slot_time_b)
                           : 1.0;
  observed_mttr_s =
      weighted(observed_mttr_s, static_cast<double>(slot_recoveries - other.slot_recoveries),
               other.observed_mttr_s, static_cast<double>(other.slot_recoveries));
  tokens_per_s = static_cast<double>(generated_tokens) / std::max(merged_dur, 1e-300);
  ttft_attainment = ttft_slo_requests > 0 ? static_cast<double>(within_ttft_slo) /
                                                static_cast<double>(ttft_slo_requests)
                                          : 1.0;
  tpot_attainment = tpot_slo_requests > 0 ? static_cast<double>(within_tpot_slo) /
                                                static_cast<double>(tpot_slo_requests)
                                          : 1.0;
  {
    // Mean occupancy recomputes exactly from the merged histogram.
    std::size_t steps = 0;
    std::size_t lane_steps = 0;
    for (std::size_t lanes = 0; lanes < decode_occupancy.size(); ++lanes) {
      steps += decode_occupancy[lanes];
      lane_steps += lanes * decode_occupancy[lanes];
    }
    mean_decode_occupancy =
        steps > 0 ? static_cast<double>(lane_steps) / static_cast<double>(steps) : 0.0;
  }

  // Percentiles: exact from the merged state, else the weighted fallback.
  if (exact_state) {
    percentiles_from_state(*this);
  } else {
    p50_latency_s = weighted(p50_latency_s, na, other.p50_latency_s, nb);
    p95_latency_s = weighted(p95_latency_s, na, other.p95_latency_s, nb);
    p99_latency_s = weighted(p99_latency_s, na, other.p99_latency_s, nb);
    p999_latency_s = weighted(p999_latency_s, na, other.p999_latency_s, nb);
    mean_session_s = weighted(mean_session_s, sess_a, other.mean_session_s, sess_b);
    p50_session_s = weighted(p50_session_s, sess_a, other.p50_session_s, sess_b);
    p99_session_s = weighted(p99_session_s, sess_a, other.p99_session_s, sess_b);
    max_session_s = std::max(max_session_s, other.max_session_s);
    mean_ttft_s = weighted(mean_ttft_s, dec_a, other.mean_ttft_s, dec_b);
    p50_ttft_s = weighted(p50_ttft_s, dec_a, other.p50_ttft_s, dec_b);
    p95_ttft_s = weighted(p95_ttft_s, dec_a, other.p95_ttft_s, dec_b);
    p99_ttft_s = weighted(p99_ttft_s, dec_a, other.p99_ttft_s, dec_b);
    max_ttft_s = std::max(max_ttft_s, other.max_ttft_s);
    mean_tpot_s = weighted(mean_tpot_s, dec_a, other.mean_tpot_s, dec_b);
    p50_tpot_s = weighted(p50_tpot_s, dec_a, other.p50_tpot_s, dec_b);
    p95_tpot_s = weighted(p95_tpot_s, dec_a, other.p95_tpot_s, dec_b);
    p99_tpot_s = weighted(p99_tpot_s, dec_a, other.p99_tpot_s, dec_b);
    max_tpot_s = std::max(max_tpot_s, other.max_tpot_s);
  }
}

Table FleetMetrics::to_table(const std::string& title) const {
  Table t(title);
  t.add_row({"metric", "value"});
  t.add_row({"offered QPS", Table::num(offered_qps, 1)});
  t.add_row({"completed", std::to_string(completed)});
  t.add_row({"throughput QPS", Table::num(throughput_qps, 1)});
  t.add_row({"goodput QPS", Table::num(goodput_qps, 1)});
  t.add_row({"SLO latency (us)", Table::num(units::to_us(slo_latency_s), 1)});
  t.add_row({"SLO attainment", Table::num(slo_attainment, 4)});
  t.add_row({"p50 latency (us)", Table::num(units::to_us(p50_latency_s), 1)});
  t.add_row({"p95 latency (us)", Table::num(units::to_us(p95_latency_s), 1)});
  t.add_row({"p99 latency (us)", Table::num(units::to_us(p99_latency_s), 1)});
  t.add_row({"p99.9 latency (us)", Table::num(units::to_us(p999_latency_s), 1)});
  t.add_row({"mean latency (us)", Table::num(units::to_us(mean_latency_s), 1)});
  t.add_row({"max latency (us)", Table::num(units::to_us(max_latency_s), 1)});
  t.add_row({"mean queue depth", Table::num(mean_queue_depth, 2)});
  t.add_row({"peak queue depth", std::to_string(peak_queue_depth)});
  t.add_row({"dispatches", std::to_string(dispatches)});
  t.add_row({"mean batch size", Table::num(mean_batch_size, 2)});
  t.add_row({"fleet energy (J)", Table::num(fleet_energy_j, 4)});
  t.add_row({"energy/request (uJ)", Table::num(energy_per_request_j * 1e6, 3)});
  if (fleet_cost_usd > 0.0) {
    t.add_row({"fleet cost ($)", Table::num(fleet_cost_usd, 6)});
    t.add_row({"cost/request ($)", Table::num(cost_per_request_usd, 9)});
  }
  t.add_row({"fleet utilization", Table::num(fleet_utilization, 3)});
  t.add_row({"estimate lookups", std::to_string(estimate_lookups)});
  t.add_row({"estimate misses", std::to_string(estimate_misses)});
  t.add_row({"estimate hit rate", Table::num(estimate_hit_rate(), 4)});
  // Robustness section only when some robustness machinery actually fired:
  // fault-free, admission-free, timeout-free runs keep the compact table.
  // Every counter is in the gate so no nonzero row can ever be suppressed.
  if (shed_requests > 0 || timed_out_requests > 0 || attempt_timeouts > 0 ||
      retried_attempts > 0 || failed_batches > 0 || requeued_requests > 0 ||
      slot_failures > 0 || slot_recoveries > 0) {
    t.add_row({"shed (admission)", std::to_string(shed_requests)});
    t.add_row({"timed out", std::to_string(timed_out_requests)});
    t.add_row({"attempt timeouts", std::to_string(attempt_timeouts)});
    t.add_row({"retried attempts", std::to_string(retried_attempts)});
    t.add_row({"drop rate", Table::num(drop_rate, 4)});
    t.add_row({"slot failures", std::to_string(slot_failures)});
    t.add_row({"slot recoveries", std::to_string(slot_recoveries)});
    t.add_row({"failed batches", std::to_string(failed_batches)});
    t.add_row({"requeued requests", std::to_string(requeued_requests)});
    t.add_row({"fleet availability", Table::num(fleet_availability, 4)});
    t.add_row({"observed MTTR (us)", Table::num(units::to_us(observed_mttr_s), 1)});
  }
  // Decode section only when the run actually generated (or aborted) tokens;
  // every decode counter is in the gate so no nonzero row is suppressed.
  if (decode_requests > 0 || generated_tokens > 0 || aborted_decode_tokens > 0 ||
      decode_steps > 0) {
    t.add_row({"decode requests", std::to_string(decode_requests)});
    t.add_row({"generated tokens", std::to_string(generated_tokens)});
    t.add_row({"aborted decode tokens", std::to_string(aborted_decode_tokens)});
    t.add_row({"decode steps", std::to_string(decode_steps)});
    t.add_row({"tokens/s", Table::num(tokens_per_s, 1)});
    t.add_row({"mean decode occupancy", Table::num(mean_decode_occupancy, 2)});
    t.add_row({"mean TTFT (us)", Table::num(units::to_us(mean_ttft_s), 1)});
    t.add_row({"p50 TTFT (us)", Table::num(units::to_us(p50_ttft_s), 1)});
    t.add_row({"p95 TTFT (us)", Table::num(units::to_us(p95_ttft_s), 1)});
    t.add_row({"p99 TTFT (us)", Table::num(units::to_us(p99_ttft_s), 1)});
    t.add_row({"max TTFT (us)", Table::num(units::to_us(max_ttft_s), 1)});
    t.add_row({"mean TPOT (us)", Table::num(units::to_us(mean_tpot_s), 1)});
    t.add_row({"p50 TPOT (us)", Table::num(units::to_us(p50_tpot_s), 1)});
    t.add_row({"p95 TPOT (us)", Table::num(units::to_us(p95_tpot_s), 1)});
    t.add_row({"p99 TPOT (us)", Table::num(units::to_us(p99_tpot_s), 1)});
    t.add_row({"max TPOT (us)", Table::num(units::to_us(max_tpot_s), 1)});
    if (ttft_slo_requests > 0) {
      t.add_row({"TTFT attainment", Table::num(ttft_attainment, 4)});
    }
    if (tpot_slo_requests > 0) {
      t.add_row({"TPOT attainment", Table::num(tpot_attainment, 4)});
    }
  }
  if (sessions > 0) {
    t.add_row({"sessions", std::to_string(sessions)});
    t.add_row({"mean session (ms)", Table::num(mean_session_s * 1e3, 3)});
    t.add_row({"p50 session (ms)", Table::num(p50_session_s * 1e3, 3)});
    t.add_row({"p99 session (ms)", Table::num(p99_session_s * 1e3, 3)});
    t.add_row({"max session (ms)", Table::num(max_session_s * 1e3, 3)});
  }
  if (autoscale_grows > 0 || autoscale_shrinks > 0 ||
      peak_fleet_size != initial_fleet_size) {
    t.add_row({"fleet size (init/peak/final)", std::to_string(initial_fleet_size) + "/" +
                                                   std::to_string(peak_fleet_size) + "/" +
                                                   std::to_string(final_fleet_size)});
    t.add_row({"mean fleet size", Table::num(mean_fleet_size, 2)});
    t.add_row({"autoscale grows", std::to_string(autoscale_grows)});
    t.add_row({"autoscale shrinks", std::to_string(autoscale_shrinks)});
  }
  return t;
}

Table FleetMetrics::tenant_table(const std::string& title) const {
  Table t(title);
  t.add_row({"tenant", "tier", "completed", "shed", "timeout", "drop", "SLO us",
             "attainment", "goodput QPS", "p50 us", "p99 us", "max us", "cost $"});
  for (const TenantMetrics& tenant : tenants) {
    t.add_row({tenant.name, std::to_string(tenant.priority),
               std::to_string(tenant.completed), std::to_string(tenant.shed),
               std::to_string(tenant.timed_out), Table::num(tenant.drop_rate, 4),
               Table::num(units::to_us(tenant.slo_latency_s), 1),
               Table::num(tenant.slo_attainment, 4), Table::num(tenant.goodput_qps, 1),
               Table::num(units::to_us(tenant.p50_latency_s), 1),
               Table::num(units::to_us(tenant.p99_latency_s), 1),
               Table::num(units::to_us(tenant.max_latency_s), 1),
               Table::num(tenant.cost_usd, 6)});
  }
  return t;
}

}  // namespace lumos::serve
