#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace lumos::serve {

double percentile(std::vector<double>& samples, double q) {
  LUMOS_EXPECTS(q >= 0.0 && q <= 1.0);
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = std::ceil(q * static_cast<double>(samples.size()));
  const std::size_t index = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return samples[std::min(index, samples.size() - 1)];
}

double FleetMetrics::estimate_hit_rate() const noexcept {
  if (estimate_lookups == 0) return 1.0;
  return static_cast<double>(estimate_lookups - estimate_misses) /
         static_cast<double>(estimate_lookups);
}

Table FleetMetrics::to_table(const std::string& title) const {
  Table t(title);
  t.add_row({"metric", "value"});
  t.add_row({"offered QPS", Table::num(offered_qps, 1)});
  t.add_row({"completed", std::to_string(completed)});
  t.add_row({"throughput QPS", Table::num(throughput_qps, 1)});
  t.add_row({"goodput QPS", Table::num(goodput_qps, 1)});
  t.add_row({"SLO latency (us)", Table::num(units::to_us(slo_latency_s), 1)});
  t.add_row({"SLO attainment", Table::num(slo_attainment, 4)});
  t.add_row({"p50 latency (us)", Table::num(units::to_us(p50_latency_s), 1)});
  t.add_row({"p95 latency (us)", Table::num(units::to_us(p95_latency_s), 1)});
  t.add_row({"p99 latency (us)", Table::num(units::to_us(p99_latency_s), 1)});
  t.add_row({"p99.9 latency (us)", Table::num(units::to_us(p999_latency_s), 1)});
  t.add_row({"mean latency (us)", Table::num(units::to_us(mean_latency_s), 1)});
  t.add_row({"max latency (us)", Table::num(units::to_us(max_latency_s), 1)});
  t.add_row({"mean queue depth", Table::num(mean_queue_depth, 2)});
  t.add_row({"peak queue depth", std::to_string(peak_queue_depth)});
  t.add_row({"dispatches", std::to_string(dispatches)});
  t.add_row({"mean batch size", Table::num(mean_batch_size, 2)});
  t.add_row({"fleet energy (J)", Table::num(fleet_energy_j, 4)});
  t.add_row({"energy/request (uJ)", Table::num(energy_per_request_j * 1e6, 3)});
  t.add_row({"fleet utilization", Table::num(fleet_utilization, 3)});
  t.add_row({"estimate lookups", std::to_string(estimate_lookups)});
  t.add_row({"estimate misses", std::to_string(estimate_misses)});
  t.add_row({"estimate hit rate", Table::num(estimate_hit_rate(), 4)});
  // Robustness section only when some robustness machinery actually fired:
  // fault-free, admission-free, timeout-free runs keep the compact table.
  // Every counter is in the gate so no nonzero row can ever be suppressed.
  if (shed_requests > 0 || timed_out_requests > 0 || attempt_timeouts > 0 ||
      retried_attempts > 0 || failed_batches > 0 || requeued_requests > 0 ||
      slot_failures > 0 || slot_recoveries > 0) {
    t.add_row({"shed (admission)", std::to_string(shed_requests)});
    t.add_row({"timed out", std::to_string(timed_out_requests)});
    t.add_row({"attempt timeouts", std::to_string(attempt_timeouts)});
    t.add_row({"retried attempts", std::to_string(retried_attempts)});
    t.add_row({"drop rate", Table::num(drop_rate, 4)});
    t.add_row({"slot failures", std::to_string(slot_failures)});
    t.add_row({"slot recoveries", std::to_string(slot_recoveries)});
    t.add_row({"failed batches", std::to_string(failed_batches)});
    t.add_row({"requeued requests", std::to_string(requeued_requests)});
    t.add_row({"fleet availability", Table::num(fleet_availability, 4)});
    t.add_row({"observed MTTR (us)", Table::num(units::to_us(observed_mttr_s), 1)});
  }
  if (sessions > 0) {
    t.add_row({"sessions", std::to_string(sessions)});
    t.add_row({"mean session (ms)", Table::num(mean_session_s * 1e3, 3)});
    t.add_row({"p50 session (ms)", Table::num(p50_session_s * 1e3, 3)});
    t.add_row({"p99 session (ms)", Table::num(p99_session_s * 1e3, 3)});
    t.add_row({"max session (ms)", Table::num(max_session_s * 1e3, 3)});
  }
  if (autoscale_grows > 0 || autoscale_shrinks > 0 ||
      peak_fleet_size != initial_fleet_size) {
    t.add_row({"fleet size (init/peak/final)", std::to_string(initial_fleet_size) + "/" +
                                                   std::to_string(peak_fleet_size) + "/" +
                                                   std::to_string(final_fleet_size)});
    t.add_row({"mean fleet size", Table::num(mean_fleet_size, 2)});
    t.add_row({"autoscale grows", std::to_string(autoscale_grows)});
    t.add_row({"autoscale shrinks", std::to_string(autoscale_shrinks)});
  }
  return t;
}

Table FleetMetrics::tenant_table(const std::string& title) const {
  Table t(title);
  t.add_row({"tenant", "tier", "completed", "shed", "timeout", "drop", "SLO us",
             "attainment", "goodput QPS", "p50 us", "p99 us", "max us"});
  for (const TenantMetrics& tenant : tenants) {
    t.add_row({tenant.name, std::to_string(tenant.priority),
               std::to_string(tenant.completed), std::to_string(tenant.shed),
               std::to_string(tenant.timed_out), Table::num(tenant.drop_rate, 4),
               Table::num(units::to_us(tenant.slo_latency_s), 1),
               Table::num(tenant.slo_attainment, 4), Table::num(tenant.goodput_qps, 1),
               Table::num(units::to_us(tenant.p50_latency_s), 1),
               Table::num(units::to_us(tenant.p99_latency_s), 1),
               Table::num(units::to_us(tenant.max_latency_s), 1)});
  }
  return t;
}

}  // namespace lumos::serve
