// Free-list arena for the event loop's request batches.
//
// The hot loop moves every request through a `std::vector<Request>` batch:
// the scheduler pop fills one, the slot owns it in flight, and the completion
// (or fault-abort) path drains it.  Without reuse that is one heap
// allocation and one free per dispatched batch — per *request* under FIFO —
// and the allocator becomes a measurable slice of the 1M-request headline.
// `RequestArena` breaks the cycle: retired batch buffers park on a free list
// with their capacity intact, and the next dispatch reuses one instead of
// allocating.
//
// Ownership is strict hand-over: `acquire()` moves a buffer out of the arena
// and `release()` moves it back (cleared), so a live batch is never aliased
// by the arena or by a later `acquire()` — the invariant
// tests/test_shard.cpp stresses under requeue/retry churn.  The arena is
// single-threaded by design: each simulation (each cell of a sharded run)
// owns its own.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "serve/trace.hpp"

namespace lumos::serve {

class RequestArena {
 public:
  // An empty batch buffer, reusing pooled capacity when available.
  [[nodiscard]] std::vector<Request> acquire() {
    ++acquires_;
    if (free_.empty()) {
      ++allocations_;
      ++outstanding_;
      return {};
    }
    std::vector<Request> out = std::move(free_.back());
    free_.pop_back();
    ++outstanding_;
    return out;
  }

  // Returns a buffer to the pool.  The buffer is cleared (requests are
  // value types; nothing outlives the batch) but keeps its capacity.
  void release(std::vector<Request>&& batch) {
    LUMOS_EXPECTS_MSG(outstanding_ > 0, "RequestArena.release without a live acquire");
    --outstanding_;
    batch.clear();
    free_.push_back(std::move(batch));
  }

  // Buffers currently handed out (live batches).
  [[nodiscard]] std::size_t outstanding() const noexcept { return outstanding_; }
  // Buffers parked on the free list.
  [[nodiscard]] std::size_t pooled() const noexcept { return free_.size(); }
  // Total acquires vs acquires that had to allocate: reuse effectiveness.
  [[nodiscard]] std::size_t acquires() const noexcept { return acquires_; }
  [[nodiscard]] std::size_t allocations() const noexcept { return allocations_; }

 private:
  std::vector<std::vector<Request>> free_;
  std::size_t outstanding_ = 0;
  std::size_t acquires_ = 0;
  std::size_t allocations_ = 0;
};

}  // namespace lumos::serve
