// Shared event-time vocabulary of the serving event loop.
//
// `kNever` is the "no pending event" sentinel every event source returns from
// its next-event query (completion heap, retry heap, traffic source, fault
// process, scheduler deadlines, autoscaler steps).  It lives here — once —
// so the simulator, the traffic sources, and the scheduler all agree on the
// same +infinity.
//
// Equal-time event ordering (the five-source rule).  When several event
// sources fire at the same simulated instant, the loop processes them in a
// fixed order:
//
//   1. completions  — batches whose service finished at t free their slots
//                     and score their requests first,
//   2. faults       — slot failure/recovery transitions apply next, so a
//                     slot that fails at t aborts work dispatched before t
//                     but never work dispatched at t,
//   3. arrivals     — fresh requests (and retried attempts whose backoff
//                     expired) enter admission and the scheduler,
//   4. autoscale    — the autoscaler observes the post-arrival queue, and
//   5. dispatch     — finally the scheduler drains onto the slots freed or
//                     grown in steps 1–4.
//
// Ties *within* a source break on that source's own deterministic key —
// (time, dispatch seq) for completions, (time, retry seq) for retries,
// (time, session id) for closed-loop issues, lowest slot index for faults —
// so one scenario always replays the same event sequence bit-for-bit,
// independent of heap internals, repeats, and `LUMOS_THREADS`.
#pragma once

#include <limits>

namespace lumos::serve {

// "No pending event": later than every real event instant.
inline constexpr double kNever = std::numeric_limits<double>::infinity();

}  // namespace lumos::serve
