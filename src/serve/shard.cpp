#include "serve/shard.hpp"

#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace lumos::serve {

namespace {

// Per-cell seed salt: a distinct odd multiplier-spread offset per cell, so
// every seeded process (arrivals, faults, retry jitter) in every cell draws
// from its own stream.  The golden-ratio constant spreads consecutive cell
// indices across the seed space.
std::uint64_t cell_salt(std::size_t cell) noexcept {
  return (0xCE11ull + static_cast<std::uint64_t>(cell)) * 0x9E3779B97F4A7C15ull;
}

// Balanced contiguous share: item counts of cell `c` when `total` items split
// over `cells` cells (first total%cells cells take one extra).
std::size_t balanced_share(std::size_t total, std::size_t cells, std::size_t c) noexcept {
  return total / cells + (c < total % cells ? 1 : 0);
}

}  // namespace

CellPlan CellPlan::build(const Scenario& scenario, std::size_t cells) {
  validate_scenario(scenario);
  if (cells == 0) throw InvalidArgument("CellPlan: cells must be >= 1");
  CellPlan plan;
  if (cells == 1) {
    // The serial run, unchanged: no seed salt, no state retention — the
    // cells == 1 bit-identity contract.
    plan.cells.push_back(scenario);
    return plan;
  }
  const std::size_t fleet_size = scenario.fleet.accelerators.size();
  if (cells > fleet_size) {
    throw InvalidArgument("CellPlan: " + std::to_string(cells) + " cells need at least " +
                          std::to_string(cells) + " fleet slots, got " +
                          std::to_string(fleet_size));
  }
  if (scenario.observe.enabled()) {
    throw InvalidArgument(
        "CellPlan: observers are per event loop and unsupported for cells > 1; "
        "run cells=1 to trace");
  }
  if (!scenario.trace.empty() && scenario.trace.size() < cells) {
    throw InvalidArgument("CellPlan: explicit trace holds " +
                          std::to_string(scenario.trace.size()) +
                          " requests, fewer than " + std::to_string(cells) + " cells");
  }

  plan.cells.reserve(cells);
  std::size_t slot_begin = 0;
  std::size_t requests_assigned = 0;  // open loop: cumulative proportional split
  for (std::size_t c = 0; c < cells; ++c) {
    const std::size_t cell_slots = balanced_share(fleet_size, cells, c);
    Scenario cell = scenario;
    cell.fleet.accelerators.assign(
        scenario.fleet.accelerators.begin() + static_cast<std::ptrdiff_t>(slot_begin),
        scenario.fleet.accelerators.begin() +
            static_cast<std::ptrdiff_t>(slot_begin + cell_slots));
    slot_begin += cell_slots;
    // Cells retain raw latency state so the merge recomputes percentiles
    // exactly; simulate_sharded drops it from the merged result unless the
    // top-level scenario asked to keep it.
    cell.sim.keep_latency_state = true;
    cell.sim.faults.seed += cell_salt(c);
    cell.sim.retry.seed += cell_salt(c);
    if (!scenario.trace.empty()) {
      // Round-robin deal: request i -> cell i % cells.  A slice of an
      // arrival-ordered trace stays arrival-ordered.
      cell.trace.clear();
      for (std::size_t i = c; i < scenario.trace.size(); i += cells) {
        cell.trace.push_back(scenario.trace[i]);
      }
    } else if (scenario.traffic.mode == LoopMode::kClosed) {
      const std::size_t share =
          balanced_share(scenario.traffic.closed.sessions, cells, c);
      if (share == 0) {
        throw InvalidArgument("CellPlan: " + std::to_string(cells) +
                              " cells need at least one closed-loop session each, got " +
                              std::to_string(scenario.traffic.closed.sessions) +
                              " sessions");
      }
      cell.traffic.closed.sessions = share;
      cell.traffic.closed.seed += cell_salt(c);
    } else {
      // Open loop: request count proportional to the cell's slot share
      // (cumulative rounding so the shares sum exactly), offered QPS scaled
      // by the same fraction — every cell runs at the fleet's per-slot load.
      const std::size_t total = scenario.traffic.open.request_count;
      const std::size_t upto =
          total * (slot_begin) / fleet_size;  // slot_begin is already cumulative
      const std::size_t share = upto - requests_assigned;
      if (share == 0) {
        throw InvalidArgument("CellPlan: open-loop request_count " +
                              std::to_string(total) + " leaves cell " + std::to_string(c) +
                              " of " + std::to_string(cells) + " empty");
      }
      requests_assigned = upto;
      cell.traffic.open.request_count = share;
      cell.traffic.open.offered_qps = scenario.traffic.open.offered_qps *
                                      static_cast<double>(cell_slots) /
                                      static_cast<double>(fleet_size);
      cell.traffic.open.seed += cell_salt(c);
    }
    plan.cells.push_back(std::move(cell));
  }
  return plan;
}

FleetMetrics simulate_sharded(const Scenario& scenario, std::size_t cells) {
  if (cells == 1) {
    validate_scenario(scenario);
    return simulate(scenario);
  }
  CellPlan plan = CellPlan::build(scenario, cells);
  // One chunk per cell: chunk boundaries depend only on the cell count, each
  // cell writes its own slot, and the fold below is ascending — results are
  // bit-identical across LUMOS_THREADS settings.
  std::vector<FleetMetrics> per_cell(plan.cells.size());
  parallel_for(0, plan.cells.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      per_cell[c] = simulate(plan.cells[c]);
    }
  });
  FleetMetrics merged = std::move(per_cell.front());
  for (std::size_t c = 1; c < per_cell.size(); ++c) {
    merged.merge(per_cell[c]);
  }
  if (!scenario.sim.keep_latency_state) merged.latency_state.reset();
  return merged;
}

}  // namespace lumos::serve
