// Deterministic discrete-event simulation of an accelerator fleet serving an
// open-loop request trace.
//
// Event loop over three event sources — request arrivals (from the
// pre-generated trace), batch-deadline expiries (from the scheduler), and
// accelerator completions (a min-heap keyed by (time, dispatch seq)) —
// with a fixed processing order at equal timestamps (completions, then
// arrivals, then dispatch).  Service times and energies come from the
// per-spec `EstimateCache`, so the loop's cost per request is a queue push, a
// heap push/pop, and a hash lookup: millions of requests simulate in seconds.
// The loop itself is serial and allocation-light; campaigns parallelise over
// grid points (see campaign.hpp).  Results are bit-reproducible for a fixed
// trace across runs and `LUMOS_THREADS` settings.
#pragma once

#include <vector>

#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/scheduler.hpp"
#include "serve/trace.hpp"
#include "serve/workload.hpp"

namespace lumos::serve {

// How a dispatched batch picks among idle accelerators.
enum class RoutingPolicy {
  kFirstIdle,     // lowest-index idle accelerator
  kEnergyAware,   // idle accelerator with the lowest predicted batch energy
};

[[nodiscard]] const char* routing_name(RoutingPolicy policy) noexcept;

struct FleetConfig {
  std::vector<AcceleratorSpec> accelerators;
  RoutingPolicy routing = RoutingPolicy::kFirstIdle;

  [[nodiscard]] static FleetConfig homogeneous(
      const AcceleratorSpec& spec, std::size_t count,
      RoutingPolicy routing = RoutingPolicy::kFirstIdle);
  // Alternates `primary` and `eco` slots (primary first).
  [[nodiscard]] static FleetConfig heterogeneous(
      const AcceleratorSpec& primary, const AcceleratorSpec& eco, std::size_t count,
      RoutingPolicy routing = RoutingPolicy::kEnergyAware);
};

struct SimConfig {
  // SLO for goodput: `slo_latency_s` when positive, otherwise `slo_scale`
  // times the slowest workload's unloaded batch-1 latency on the fleet's
  // first spec.
  double slo_latency_s = 0.0;
  double slo_scale = 10.0;
};

[[nodiscard]] ServeMetrics simulate(const FleetConfig& fleet, const WorkloadCatalog& catalog,
                                    const std::vector<Request>& trace, SchedulerKind scheduler,
                                    const BatchPolicy& policy, const SimConfig& sim = {});

}  // namespace lumos::serve
