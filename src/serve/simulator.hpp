// Deterministic discrete-event simulation of an accelerator fleet serving an
// open-loop request trace.
//
// Event loop over three event sources — request arrivals (from the
// pre-generated trace), batch-deadline expiries (from the scheduler), and
// accelerator completions (a min-heap keyed by (time, dispatch seq)) —
// with a fixed processing order at equal timestamps (completions, then
// arrivals, then dispatch).  Fleets are built from `arch` registry spec names
// and may mix fabric families (TRON + GHOST serving one mixed catalog):
// routing is kind-aware, so a request only dispatches to an idle accelerator
// that can serve it.  Service times and energies come from the per-spec
// `EstimateCache`, so the loop's cost per request is a queue push, a heap
// push/pop, and a hash lookup: millions of requests simulate in seconds.
// The loop itself is serial and allocation-light; campaigns parallelise over
// grid points (see campaign.hpp).  Results are bit-reproducible for a fixed
// trace across runs and `LUMOS_THREADS` settings.
#pragma once

#include <string>
#include <vector>

#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/scheduler.hpp"
#include "serve/trace.hpp"
#include "serve/workload.hpp"

namespace lumos::serve {

// How a dispatched batch picks among idle accelerators that can serve it.
enum class RoutingPolicy {
  kFirstIdle,     // lowest-index compatible idle accelerator
  kEnergyAware,   // compatible idle accelerator with the lowest predicted batch energy
};

[[nodiscard]] const char* routing_name(RoutingPolicy policy) noexcept;

struct FleetConfig {
  // One `arch` registry spec name per fleet slot ("tron", "ghost-eco", ...).
  std::vector<std::string> accelerators;
  RoutingPolicy routing = RoutingPolicy::kFirstIdle;

  [[nodiscard]] static FleetConfig homogeneous(
      const std::string& spec, std::size_t count,
      RoutingPolicy routing = RoutingPolicy::kFirstIdle);
  // Alternates `primary` and `eco` slots (primary first).
  [[nodiscard]] static FleetConfig heterogeneous(
      const std::string& primary, const std::string& eco, std::size_t count,
      RoutingPolicy routing = RoutingPolicy::kEnergyAware);
  // Cycles `specs` across `count` slots (mixed TRON+GHOST fleets).
  [[nodiscard]] static FleetConfig cycled(
      const std::vector<std::string>& specs, std::size_t count,
      RoutingPolicy routing = RoutingPolicy::kFirstIdle);

  // "a+b+c" join of the distinct spec names, in slot order (labels, JSON).
  [[nodiscard]] std::string label() const;
};

struct SimConfig {
  // SLO for goodput: `slo_latency_s` when positive, otherwise `slo_scale`
  // times the slowest workload's unloaded batch-1 latency, each workload
  // scored on the first fleet slot that can serve it.
  double slo_latency_s = 0.0;
  double slo_scale = 10.0;
};

// Simulates `trace` over the fleet.  Throws `InvalidArgument` naming the bad
// field for empty fleets, empty catalogs/traces, out-of-range batch policies,
// and catalogs with workloads no fleet accelerator can serve.
[[nodiscard]] ServeMetrics simulate(const FleetConfig& fleet, const WorkloadCatalog& catalog,
                                    const std::vector<Request>& trace, SchedulerKind scheduler,
                                    const BatchPolicy& policy, const SimConfig& sim = {});

}  // namespace lumos::serve
