// Deterministic discrete-event simulation of an accelerator fleet serving a
// pluggable traffic source.
//
// The entry point is `simulate(const Scenario&)`: a `Scenario` is the whole
// run as one validated value — fleet, catalog, scheduler, batch policy, sim
// knobs, and traffic (open-loop generator knobs, closed-loop session knobs,
// or an explicit pre-materialised trace).  The event loop pulls requests from
// a `serve::TrafficSource` (see traffic.hpp) and feeds completions back, so
// closed-loop clients — whose arrivals depend on completions — plug into the
// same loop as open-loop traces.
//
// Event loop over five event sources — request arrivals (pulled from the
// traffic source, retried attempts included), batch-deadline expiries (from
// the scheduler), accelerator completions (a min-heap keyed by (time,
// dispatch seq)), slot failure/recovery transitions (the seeded fault
// process, see faults.hpp), and autoscaler evaluation steps (every
// `interval_s` of simulated time) — with a fixed processing order at equal
// timestamps (completions, then faults, then arrivals, then autoscaling,
// then dispatch).  Fleets are built from `arch` registry spec
// names and may mix fabric families (TRON + GHOST serving one mixed catalog):
// routing is kind-aware, so a request only dispatches to an idle accelerator
// that can serve it.  Priority tiers from the catalog's entries make the
// scheduler pop strict-priority (see scheduler.hpp), and each entry's SLO
// scores its own completions (per-tenant goodput in `FleetMetrics::tenants`).
// Requests carry sampled sequence lengths (see SeqLenConfig): batches share a
// (workload, seq-bucket) key and service times come from the seq-aware
// estimate cache.
//
// Autoregressive decode: requests carrying a sampled decode length (see
// DecodeConfig) split into a prefill phase and per-token decode steps.  A
// slot whose batch finishes its prefill keeps the requests as decode lanes
// and re-enters the event loop at every token boundary through the same
// completion heap; under `DecodeMode::kContinuous` the scheduler admits
// waiting prefills of the same workload into free lanes at those boundaries
// (continuous batching).  Decode-free runs are bit-identical to the
// pre-decode event loop.
//
// Elastic fleets: an enabled autoscaler grows per-spec-family slot counts by
// instantiating registry-named accelerators mid-simulation and shrinks them
// by draining (no new dispatches, in-flight batch completes) before retiring,
// so the (time, seq) total order — and with it bit-reproducibility — is
// preserved.  A disabled autoscaler and all-zero priorities are bit-identical
// to the static single-tier simulator.
//
// Service times and energies come from the per-spec `EstimateCache`, so the
// loop's cost per request is a queue push, a heap push/pop, and a hash
// lookup: millions of requests simulate in seconds.  The loop itself is
// serial and allocation-light; campaigns parallelise over grid points (see
// campaign.hpp).  Results are bit-reproducible for a fixed scenario across
// runs and `LUMOS_THREADS` settings — seeded sources keep that true through
// the closed-loop feedback path.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "serve/autoscaler.hpp"
#include "serve/cache.hpp"
#include "serve/faults.hpp"
#include "serve/metrics.hpp"
#include "serve/observe.hpp"
#include "serve/scheduler.hpp"
#include "serve/trace.hpp"
#include "serve/traffic.hpp"
#include "serve/workload.hpp"

namespace lumos::serve {

// How a dispatched batch picks among idle accelerators that can serve it.
enum class RoutingPolicy {
  kFirstIdle,     // lowest-index compatible idle accelerator
  kEnergyAware,   // compatible idle accelerator with the lowest predicted batch energy
  kCostAware,     // cheapest compatible idle slot still predicted to make the
                  // tenant's SLO (slot-hour rate x latency + $/J x energy);
                  // falls back to first-idle when no candidate can make it
};

// Dollar-cost knobs of a fleet: amortised slot-hour rates (capex + hosting)
// plus marginal energy price.  A slot's default hourly rate derives from its
// static draw (idle board power x `usd_per_watt_hour`, a hosting-cost proxy
// that needs no per-spec table); `slot_hour_overrides` pins exact $/slot-hour
// figures per spec name where known.  `kCostAware` routing and the
// `FleetMetrics` cost fields both price through this model.
struct CostModel {
  // Hosting $/W/h applied to a slot's static power for its default rate.
  double usd_per_watt_hour = 0.01;
  // Marginal energy price (default: $0.10/kWh).
  double usd_per_joule = 0.10 / 3.6e6;
  // (spec name, $/slot-hour) pairs; the first match wins over the default.
  std::vector<std::pair<std::string, double>> slot_hour_overrides;

  // The amortised hourly rate of a slot of `spec` whose static draw is
  // `static_power_w`.
  [[nodiscard]] double slot_hour_rate(const std::string& spec,
                                      double static_power_w) const;
};

// How a slot running a decode batch treats its free lanes at token boundaries
// (only meaningful when some catalog entry decodes — see DecodeConfig).
//
//   * kMonolithic — the prefill batch decodes to completion as one unit; lanes
//     that finish early sit empty until the whole batch drains (the classic
//     static-batching baseline, with its head-of-line TTFT penalty).
//   * kContinuous — at every token boundary the scheduler may admit waiting
//     prefills of the same workload into the free lanes (Orca/vLLM-style
//     continuous batching).  A joining step pays the joiners' prefill on top
//     of the decode step, so running lanes see the interference as TPOT
//     jitter while waiting requests see dramatically better TTFT.
enum class DecodeMode {
  kMonolithic,
  kContinuous,
};

struct FleetConfig {
  // One `arch` registry spec name per fleet slot ("tron", "ghost-eco", ...).
  std::vector<std::string> accelerators;
  RoutingPolicy routing = RoutingPolicy::kFirstIdle;
  // Dollar-cost knobs (always on: every run reports fleet/request cost).
  CostModel cost;

  [[nodiscard]] static FleetConfig homogeneous(
      const std::string& spec, std::size_t count,
      RoutingPolicy routing = RoutingPolicy::kFirstIdle);
  // Alternates `primary` and `eco` slots (primary first).
  [[nodiscard]] static FleetConfig heterogeneous(
      const std::string& primary, const std::string& eco, std::size_t count,
      RoutingPolicy routing = RoutingPolicy::kEnergyAware);
  // Cycles `specs` across `count` slots (mixed TRON+GHOST fleets).
  [[nodiscard]] static FleetConfig cycled(
      const std::vector<std::string>& specs, std::size_t count,
      RoutingPolicy routing = RoutingPolicy::kFirstIdle);

  // "a+b+c" join of the distinct spec names, in slot order (labels, JSON).
  [[nodiscard]] std::string label() const;
};

struct SimConfig {
  // Simulation-wide fallback SLO for goodput: `slo_latency_s` when positive,
  // otherwise `slo_scale` times the slowest workload's unloaded batch-1
  // latency, each workload scored on the first fleet slot that can serve it.
  // Catalog entries with their own `slo_latency_s` are scored against that
  // instead (per-tenant SLOs).
  double slo_latency_s = 0.0;
  double slo_scale = 10.0;
  // Elastic serving; `policy == kNone` (the default) keeps the fleet static.
  AutoscalerConfig autoscaler;
  // Robustness knobs (see faults.hpp); all disabled by default, and disabled
  // runs are bit-identical to the pre-fault simulator.  Failed slots abort
  // their in-flight batch (requests requeue) and drop out of routing and
  // autoscaling until they recover; timed-out attempts (per-entry
  // `CatalogEntry.timeout_s`) retry under `retry` until the budget runs out;
  // `admission` is consulted at every arrival.
  FaultConfig faults;
  RetryPolicy retry;
  AdmissionConfig admission;
  // Latency-percentile computation: kExact (default) sorts every sample,
  // bit-identical to the historical path; kHdr streams samples into a
  // bounded-relative-error sketch (see metrics.hpp) so memory stops scaling
  // with request count.  `hdr_relative_error` bounds the sketch's percentile
  // error in kHdr mode.
  PercentileMode percentile_mode = PercentileMode::kExact;
  double hdr_relative_error = 0.01;
  // Decode-phase scheduling (see DecodeMode).  Irrelevant — and bit-identity
  // preserving — when no request decodes.
  DecodeMode decode_mode = DecodeMode::kContinuous;
  // Retain the raw latency state (per-tenant samples or sketches, session
  // latencies) in `FleetMetrics::latency_state` so this run's metrics can be
  // merged exactly with another's (see FleetMetrics::merge).  Sharded runs
  // set this per cell internally; off by default because exact-mode state
  // holds every sample.
  bool keep_latency_state = false;
};

// One serving run as a value: everything `simulate` needs, validated at the
// call.  Traffic comes from `traffic` (open- or closed-loop generator knobs)
// unless `trace` is non-empty, in which case that explicit arrival-ordered
// open-loop trace is served instead (tests and replay harnesses hand-build
// traces; `traffic` is ignored then).
struct Scenario {
  FleetConfig fleet;
  WorkloadCatalog catalog;
  SchedulerKind scheduler = SchedulerKind::kDynamicBatch;
  BatchPolicy batch;
  SimConfig sim;
  TrafficConfig traffic;
  std::vector<Request> trace;
  // Observability (tracing / timeline / profiling; see observe.hpp).  All
  // disabled by default, and disabled runs are bit-identical to the
  // unobserved simulator.
  ObserveConfig observe;
};

// Throws `InvalidArgument` naming the bad field: empty fleets, empty
// catalogs, out-of-range batch policies, bad traffic knobs (non-positive
// offered QPS / request counts / sessions / think times), explicit-trace
// requests naming workload indices outside the catalog, and bad autoscaler,
// fault, retry, or admission configs.
void validate_scenario(const Scenario& scenario);

// Simulates the scenario (`fleet.accelerators` are the initial slots of an
// elastic run).  Validates via `validate_scenario`; also throws for catalogs
// with workloads no fleet accelerator can serve.  When `scenario.observe`
// enables observers and `observation` is non-null, the run's observers are
// moved into it after the loop drains (export via their write_* methods);
// observers never change the returned metrics.
[[nodiscard]] FleetMetrics simulate(const Scenario& scenario,
                                    Observation* observation = nullptr);

}  // namespace lumos::serve
