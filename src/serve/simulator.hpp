// Deterministic discrete-event simulation of an accelerator fleet serving an
// open-loop request trace.
//
// Event loop over four event sources — request arrivals (from the
// pre-generated trace), batch-deadline expiries (from the scheduler),
// accelerator completions (a min-heap keyed by (time, dispatch seq)), and
// autoscaler evaluation steps (every `interval_s` of simulated time) — with a
// fixed processing order at equal timestamps (completions, then arrivals,
// then autoscaling, then dispatch).  Fleets are built from `arch` registry
// spec names and may mix fabric families (TRON + GHOST serving one mixed
// catalog): routing is kind-aware, so a request only dispatches to an idle
// accelerator that can serve it.  Priority tiers from the catalog's entries
// make the scheduler pop strict-priority (see scheduler.hpp), and each
// entry's SLO scores its own completions (per-tenant goodput in
// `FleetMetrics::tenants`).
//
// Elastic fleets: an enabled autoscaler grows per-spec-family slot counts by
// instantiating registry-named accelerators mid-simulation and shrinks them
// by draining (no new dispatches, in-flight batch completes) before retiring,
// so the (time, seq) total order — and with it bit-reproducibility — is
// preserved.  A disabled autoscaler and all-zero priorities are bit-identical
// to the static single-tier simulator.
//
// Service times and energies come from the per-spec `EstimateCache`, so the
// loop's cost per request is a queue push, a heap push/pop, and a hash
// lookup: millions of requests simulate in seconds.  The loop itself is
// serial and allocation-light; campaigns parallelise over grid points (see
// campaign.hpp).  Results are bit-reproducible for a fixed trace across runs
// and `LUMOS_THREADS` settings.
#pragma once

#include <string>
#include <vector>

#include "serve/autoscaler.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/scheduler.hpp"
#include "serve/trace.hpp"
#include "serve/workload.hpp"

namespace lumos::serve {

// How a dispatched batch picks among idle accelerators that can serve it.
enum class RoutingPolicy {
  kFirstIdle,     // lowest-index compatible idle accelerator
  kEnergyAware,   // compatible idle accelerator with the lowest predicted batch energy
};

[[nodiscard]] const char* routing_name(RoutingPolicy policy) noexcept;

struct FleetConfig {
  // One `arch` registry spec name per fleet slot ("tron", "ghost-eco", ...).
  std::vector<std::string> accelerators;
  RoutingPolicy routing = RoutingPolicy::kFirstIdle;

  [[nodiscard]] static FleetConfig homogeneous(
      const std::string& spec, std::size_t count,
      RoutingPolicy routing = RoutingPolicy::kFirstIdle);
  // Alternates `primary` and `eco` slots (primary first).
  [[nodiscard]] static FleetConfig heterogeneous(
      const std::string& primary, const std::string& eco, std::size_t count,
      RoutingPolicy routing = RoutingPolicy::kEnergyAware);
  // Cycles `specs` across `count` slots (mixed TRON+GHOST fleets).
  [[nodiscard]] static FleetConfig cycled(
      const std::vector<std::string>& specs, std::size_t count,
      RoutingPolicy routing = RoutingPolicy::kFirstIdle);

  // "a+b+c" join of the distinct spec names, in slot order (labels, JSON).
  [[nodiscard]] std::string label() const;
};

struct SimConfig {
  // Simulation-wide fallback SLO for goodput: `slo_latency_s` when positive,
  // otherwise `slo_scale` times the slowest workload's unloaded batch-1
  // latency, each workload scored on the first fleet slot that can serve it.
  // Catalog entries with their own `slo_latency_s` are scored against that
  // instead (per-tenant SLOs).
  double slo_latency_s = 0.0;
  double slo_scale = 10.0;
  // Elastic serving; `policy == kNone` (the default) keeps the fleet static.
  AutoscalerConfig autoscaler;
};

// Simulates `trace` over the fleet (`fleet.accelerators` are the initial
// slots of an elastic run).  Throws `InvalidArgument` naming the bad field
// for empty fleets, empty catalogs/traces, out-of-range batch policies, bad
// autoscaler configs, and catalogs with workloads no fleet accelerator can
// serve.
[[nodiscard]] FleetMetrics simulate(const FleetConfig& fleet, const WorkloadCatalog& catalog,
                                    const std::vector<Request>& trace, SchedulerKind scheduler,
                                    const BatchPolicy& policy, const SimConfig& sim = {});

}  // namespace lumos::serve
