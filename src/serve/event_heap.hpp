// Pending-event containers for the serving event loop.
//
// `EventHeap<T, Less>` is the one binary-heap idiom behind every pending-event
// set in the simulator: the completion heap and retry heap (simulator.cpp)
// and the closed-loop pending-issue heap (traffic.cpp) all push/pop through
// it instead of hand-rolling `std::push_heap`/`std::pop_heap`/`std::
// priority_queue` separately.  `Less` is the usual priority-queue comparator:
// `Less{}(a, b)` is true when `a` is scheduled *later* than `b`, so `top()`
// is always the earliest event under the comparator's (time, seq) total
// order.  Because every comparator used here is a strict total order (unique
// sequence tie-breaks), the pop sequence is a property of the comparator
// alone — any container honouring it replays the identical event sequence.
//
// `CalendarQueue<T, Less>` is the alternative bucketed structure (Brown '88)
// behind the same contract: events hash into days of a fixed `bucket_width_s`
// on a circular calendar, pushes are O(1), and pops scan the current day's
// bucket instead of percolating a heap.  It exists as the benchmarked
// alternative backend (see bench_serve's `event_queue` section and
// tests/test_shard.cpp's pop-order equivalence pin); the simulator ships on
// `EventHeap`, whose log-depth percolation beats the calendar's bucket scans
// at the event-count scales the serving loop actually holds (tens of pending
// events, not tens of thousands).
//
// Both containers require `T::time_s` (the event instant, finite — push
// `serve::kNever` nowhere) and a `Less` that totally orders events.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "serve/event.hpp"

namespace lumos::serve {

// Binary min-heap over `Less` (priority-queue comparator: true = later).
template <typename T, typename Less>
class EventHeap {
 public:
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

  // Earliest pending event (call only when non-empty).
  [[nodiscard]] const T& top() const noexcept { return items_.front(); }

  // Event instant of the earliest pending event; kNever when empty — the
  // shape every event source's next-event query takes.
  [[nodiscard]] double next_time_s() const noexcept {
    return items_.empty() ? kNever : items_.front().time_s;
  }

  void push(T item) {
    items_.push_back(std::move(item));
    std::push_heap(items_.begin(), items_.end(), Less{});
  }

  // Removes and returns the earliest pending event (call only when
  // non-empty).
  T pop() {
    std::pop_heap(items_.begin(), items_.end(), Less{});
    T out = std::move(items_.back());
    items_.pop_back();
    return out;
  }

  void reserve(std::size_t capacity) { items_.reserve(capacity); }

 private:
  std::vector<T> items_;
};

// Calendar queue: a circular array of day buckets of width `bucket_width_s`.
// An event at time t lives in bucket (t / width) mod bucket_count; the pop
// cursor walks days forward (simulated time never runs backwards, so popped
// days are never revisited) and scans at most one bucket per day until it
// finds the current day's earliest event.  When a whole calendar year is
// empty — events sparser than bucket_count days — the pop falls back to one
// global min scan and jumps the cursor there, so sparse regions cost O(n)
// once instead of unbounded day-walking.  The bucket count doubles when
// occupancy passes two events per bucket, keeping day scans O(1) amortised.
//
// Pop order is identical to EventHeap's for any total-order `Less`: the
// in-bucket scan selects the Less-minimum, never "whatever the layout
// yields".
template <typename T, typename Less>
class CalendarQueue {
 public:
  // `bucket_width_s` should approximate the typical inter-event gap; the
  // structure stays correct (just slower) when it does not.
  explicit CalendarQueue(double bucket_width_s, std::size_t bucket_count = 64)
      : width_(bucket_width_s) {
    LUMOS_EXPECTS_MSG(bucket_width_s > 0.0, "CalendarQueue bucket width must be > 0");
    std::size_t n = 4;
    while (n < bucket_count) n <<= 1;
    buckets_.resize(n);
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] double next_time_s() {
    if (size_ == 0) return kNever;
    locate();
    return buckets_[min_bucket_][min_index_].time_s;
  }

  [[nodiscard]] const T& top() {
    locate();
    return buckets_[min_bucket_][min_index_];
  }

  void push(T item) {
    const std::uint64_t day = day_of(item.time_s);
    // An event may land on the day being drained (retry scheduled "now");
    // days strictly before the cursor are impossible in a simulator whose
    // clock is monotone, but clamp defensively so a stale push still pops.
    if (day < cursor_day_) cursor_day_ = day;
    buckets_[day & mask()].push_back(std::move(item));
    ++size_;
    located_ = false;
    if (size_ > 2 * buckets_.size()) rehash(buckets_.size() * 2);
  }

  T pop() {
    locate();
    std::vector<T>& bucket = buckets_[min_bucket_];
    T out = std::move(bucket[min_index_]);
    // Swap-erase: in-bucket layout is irrelevant because locate() selects by
    // Less, not by position.
    bucket[min_index_] = std::move(bucket.back());
    bucket.pop_back();
    --size_;
    located_ = false;
    return out;
  }

 private:
  [[nodiscard]] std::size_t mask() const noexcept { return buckets_.size() - 1; }
  [[nodiscard]] std::uint64_t day_of(double time_s) const noexcept {
    return static_cast<std::uint64_t>(time_s / width_);
  }

  // Finds the Less-minimum event and caches its position.  Walks the
  // calendar forward from the cursor day; one full empty year falls back to
  // a global scan.
  void locate() {
    LUMOS_EXPECTS_MSG(size_ > 0, "CalendarQueue is empty");
    if (located_) return;
    std::uint64_t day = cursor_day_;
    for (std::size_t walked = 0; walked < buckets_.size(); ++walked, ++day) {
      if (scan_bucket_day(day & mask(), day)) {
        cursor_day_ = day;
        located_ = true;
        return;
      }
    }
    // Sparse region: nothing within a calendar year of the cursor.  One
    // global scan finds the true minimum and jumps the cursor to its day.
    const T* best = nullptr;
    std::size_t best_bucket = 0;
    std::size_t best_index = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      const std::vector<T>& bucket = buckets_[b];
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (best == nullptr || Less{}(*best, bucket[i])) {
          best = &bucket[i];
          best_bucket = b;
          best_index = i;
        }
      }
    }
    cursor_day_ = day_of(best->time_s);
    min_bucket_ = best_bucket;
    min_index_ = best_index;
    located_ = true;
  }

  // Less-minimum among `bucket`'s events belonging to virtual day `day`
  // (other years' events share the bucket and must not match).  True when
  // one was found (cached in min_bucket_/min_index_).
  bool scan_bucket_day(std::size_t bucket_index, std::uint64_t day) {
    const std::vector<T>& bucket = buckets_[bucket_index];
    const T* best = nullptr;
    std::size_t best_index = 0;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (day_of(bucket[i].time_s) != day) continue;
      if (best == nullptr || Less{}(*best, bucket[i])) {
        best = &bucket[i];
        best_index = i;
      }
    }
    if (best == nullptr) return false;
    min_bucket_ = bucket_index;
    min_index_ = best_index;
    return true;
  }

  void rehash(std::size_t new_count) {
    std::vector<std::vector<T>> old = std::move(buckets_);
    buckets_.assign(new_count, {});
    for (std::vector<T>& bucket : old) {
      for (T& item : bucket) {
        buckets_[day_of(item.time_s) & mask()].push_back(std::move(item));
      }
    }
    located_ = false;
  }

  double width_;
  std::vector<std::vector<T>> buckets_;
  std::size_t size_ = 0;
  std::uint64_t cursor_day_ = 0;
  bool located_ = false;
  std::size_t min_bucket_ = 0;
  std::size_t min_index_ = 0;
};

}  // namespace lumos::serve
