// Pluggable batching schedulers for the serving simulator.
//
// A scheduler owns the waiting requests and decides what dispatches next:
//   * FIFO — strict arrival order, one request per dispatch (the no-batching
//     baseline: lowest unloaded latency, worst throughput under load);
//   * dynamic batching — per-workload buckets (a batch must share one model /
//     sequence length to pipeline through stationary weights); a bucket
//     dispatches when it reaches `max_batch` or when its oldest request has
//     waited `max_wait_s`, whichever comes first.
// All tie-breaks are deterministic (bucket id, arrival order), so a
// simulation is replayable bit-for-bit.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "serve/trace.hpp"

namespace lumos::serve {

enum class SchedulerKind { kFifo, kDynamicBatch };

[[nodiscard]] const char* scheduler_name(SchedulerKind kind) noexcept;

struct BatchPolicy {
  std::size_t max_batch = 8;   // largest batch a bucket dispatches
  double max_wait_s = 2e-3;    // oldest-request deadline forcing a dispatch

  // Ceiling on max_batch (metrics size a histogram by it; pipelined batches
  // beyond this are outside any modelled regime anyway).
  static constexpr std::size_t kMaxBatchLimit = 4096;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual void enqueue(const Request& request, double now_s) = 0;
  [[nodiscard]] virtual std::size_t queued() const noexcept = 0;
  // True if `pop` would return a non-empty batch at `now_s`.
  [[nodiscard]] virtual bool ready(double now_s) const noexcept = 0;
  // Earliest future instant at which a held batch becomes ready by deadline
  // (+infinity when nothing is waiting or everything is already ready).
  [[nodiscard]] virtual double next_deadline_s() const noexcept = 0;
  // Pops the next batch (arrival order within a batch; single workload per
  // batch for batching schedulers).  Empty when !ready(now_s).
  [[nodiscard]] virtual std::vector<Request> pop(double now_s) = 0;
};

[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                                        const BatchPolicy& policy);

}  // namespace lumos::serve
