// Pluggable batching schedulers for the serving simulator.
//
// A scheduler owns the waiting requests and decides what dispatches next:
//   * FIFO — strict arrival order, one request per dispatch (the no-batching
//     baseline: lowest unloaded latency, worst throughput under load);
//   * dynamic batching — per-(workload, seq-bucket) buckets (a batch must
//     share one model AND one sampled sequence-length bucket to pipeline
//     through stationary weights); a bucket dispatches when it reaches
//     `max_batch` or when its oldest request has waited `max_wait_s`,
//     whichever comes first.  Fixed-length entries put everything in the
//     seq-0 bucket, reproducing the pre-seqlen per-workload buckets exactly.
// Mixed-kind fleets pass a `WorkloadMask` restricting what can dispatch right
// now (kind-aware routing: a GNN batch only goes to an idle GHOST-family
// accelerator); the default mask allows every workload, and with it the
// schedulers behave exactly as the unmasked originals.
//
// Strict priority tiers: `make_scheduler` optionally takes per-workload tiers
// (lower = more urgent).  Among the mask-allowed work that is ready right
// now, the lowest tier always pops first; within a tier the pre-tier order is
// unchanged (arrival order for FIFO, longest-waiting bucket for dynamic
// batching).  An empty tier vector — or all-zero tiers — reproduces the
// untiered schedulers bit-for-bit.  All tie-breaks are deterministic (tier,
// bucket id, arrival order), so a simulation is replayable bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/trace.hpp"

namespace lumos::serve {

enum class SchedulerKind { kFifo, kDynamicBatch };

struct BatchPolicy {
  std::size_t max_batch = 8;   // largest batch a bucket dispatches
  double max_wait_s = 2e-3;    // oldest-request deadline forcing a dispatch

  // Ceiling on max_batch (metrics size a histogram by it; pipelined batches
  // beyond this are outside any modelled regime anyway).
  static constexpr std::size_t kMaxBatchLimit = 4096;
};

// The workload indices the fleet can dispatch right now.  Default-constructed
// masks allow everything (single-kind fleets); the simulator builds
// restricted masks from the idle accelerators' serveable kinds.  Non-owning:
// `allowed` must outlive the call it is passed to.
class WorkloadMask {
 public:
  WorkloadMask() = default;  // allows every workload
  explicit WorkloadMask(const std::vector<char>* allowed) noexcept : allowed_(allowed) {}

  [[nodiscard]] bool allows(std::uint32_t workload) const noexcept {
    return allowed_ == nullptr ||
           (workload < allowed_->size() && (*allowed_)[workload] != 0);
  }

 private:
  const std::vector<char>* allowed_ = nullptr;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual void enqueue(const Request& request, double now_s) = 0;
  [[nodiscard]] virtual std::size_t queued() const noexcept = 0;
  // True if `pop` would return a non-empty batch at `now_s` under `mask`.
  [[nodiscard]] virtual bool ready(double now_s,
                                   const WorkloadMask& mask = {}) const noexcept = 0;
  // Earliest future instant at which a mask-allowed held batch becomes ready
  // by deadline (+infinity when nothing allowed is waiting or everything
  // allowed is already ready).
  [[nodiscard]] virtual double next_deadline_s(
      const WorkloadMask& mask = {}) const noexcept = 0;
  // Pops the next mask-allowed batch into `out` (cleared first; arrival
  // order within a batch; single workload per batch for batching
  // schedulers).  `out` stays empty when !ready(now_s).  Taking the buffer
  // from the caller lets the event loop recycle batch storage through its
  // `RequestArena` instead of allocating per dispatch.
  virtual void pop(double now_s, const WorkloadMask& mask, std::vector<Request>& out) = 0;

  // Continuous batching: at a token boundary, pops up to `max_n` waiting
  // requests of `workload` into a running decode batch's free lanes,
  // longest-waiting first (FIFO: the workload's sub-queue in arrival order;
  // dynamic batching: across the workload's seq buckets, oldest head first —
  // a joiner need not share the batch's seq bucket, decode steps cost by the
  // widest lane's context).  Appends to `out` without clearing it and returns
  // the joiner count.  The base implementation joins nothing, so schedulers
  // without a phase-aware pop keep monolithic semantics.
  virtual std::size_t pop_joiners(std::uint32_t workload, std::size_t max_n, double now_s,
                                  std::vector<Request>& out) {
    (void)workload;
    (void)max_n;
    (void)now_s;
    (void)out;
    return 0;
  }

  // Convenience overload returning the batch by value (tests, one-shot
  // callers; the hot loop uses the buffer-filling virtual above).
  [[nodiscard]] std::vector<Request> pop(double now_s, const WorkloadMask& mask = {}) {
    std::vector<Request> out;
    pop(now_s, mask, out);
    return out;
  }
};

// `priorities[w]` is workload w's strict tier (lower pops first); workloads
// beyond the vector — and every workload when it is empty — are tier 0.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    SchedulerKind kind, const BatchPolicy& policy,
    std::vector<std::uint32_t> priorities = {});

}  // namespace lumos::serve
