// Fleet-scale serving campaigns: sweep offered QPS x scheduler x batch policy
// x fleet size over one workload catalog, producing saturation-knee tables
// (latency percentiles / goodput vs load) analogous to the paper's figure
// series.  Fleets are described by a template of `arch` registry spec names
// cycled across the slots, so one campaign config expresses homogeneous
// ({"tron"}), full+eco ({"tron", "tron-eco"}), and mixed-family
// ({"tron", "ghost"}) fleets uniformly.  Grid points are independent
// simulations, so the sweep runs in parallel via `parallel_for`; every point
// derives its trace seed from the campaign seed and its grid index, keeping
// results bit-reproducible across `LUMOS_THREADS` settings.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "serve/simulator.hpp"

namespace lumos::serve {

struct CampaignConfig {
  std::string name = "serve";
  // Spec names cycled across each fleet's slots (see FleetConfig::cycled).
  std::vector<std::string> fleet_template{"tron"};
  // Fleet-template grid axis: when non-empty these templates sweep as the
  // *outermost* axis (photonic vs electronic vs hybrid fleets in one
  // campaign); empty (the default) sweeps just `fleet_template`, and that
  // single-template enumeration is bit-identical to the pre-axis campaign.
  std::vector<std::vector<std::string>> fleet_templates;
  // Dollar-cost knobs applied at every grid point (see CostModel).
  CostModel cost;
  std::vector<double> qps;  // offered-QPS points (see fleet_capacity_qps)
  std::vector<SchedulerKind> schedulers{SchedulerKind::kFifo, SchedulerKind::kDynamicBatch};
  std::vector<std::size_t> fleet_sizes{4};
  std::vector<std::size_t> max_batches{8};  // dynamic batching only
  // Autoscaling grid axis; {kNone} (the default) keeps fleets static.  The
  // non-policy knobs (interval, thresholds, slot bounds) come from
  // `autoscale`, whose own `policy` field is overridden per grid point.
  std::vector<AutoscalerPolicy> autoscalers{AutoscalerPolicy::kNone};
  AutoscalerConfig autoscale;
  // Admission-control grid axis; {kNone} (the default) admits everything.
  // The non-policy knobs (queue cap, tier factor, SLO margin) come from
  // `admission`, whose own `policy` field is overridden per grid point.
  std::vector<AdmissionPolicy> admissions{AdmissionPolicy::kNone};
  AdmissionConfig admission;
  // Fault-injection grid axis: per-slot MTBF points in seconds; {0.0} (the
  // default) disables injection.  MTTR and the fault seed come from `faults`,
  // whose own `mtbf_s` field is overridden per grid point.
  std::vector<double> fault_mtbfs_s{0.0};
  FaultConfig faults;
  // Retry policy applied at every grid point (default: no retries).
  RetryPolicy retry;
  // Percentile computation at every grid point (see PercentileMode): kExact
  // (default, bit-identical) or the bounded-error kHdr sketch for huge
  // per-point request counts.
  PercentileMode percentile_mode = PercentileMode::kExact;
  double hdr_relative_error = 0.01;
  // Decode-phase scheduling at every grid point (see DecodeMode); only
  // matters when the catalog's entries decode.
  DecodeMode decode_mode = DecodeMode::kContinuous;
  double max_wait_s = 2e-3;
  std::size_t requests_per_point = 100000;
  // Cell-sharded simulation per grid point (see shard.hpp): every point runs
  // as `cells` independent cells.  1 (the default) is the serial simulator,
  // bit-identical to pre-shard campaigns.  Note grid points already
  // parallelise across the pool; cells > 1 mainly helps sparse grids of huge
  // points.
  std::size_t cells = 1;
  ArrivalProcess process = ArrivalProcess::kPoisson;
  RoutingPolicy routing = RoutingPolicy::kFirstIdle;
  double slo_scale = 10.0;
  std::uint64_t seed = 1;
};

// Throws `InvalidArgument` naming the offending field for empty/non-positive
// sweep axes (qps, schedulers, fleet sizes, batches, requests, template).
void validate_campaign(const CampaignConfig& config);

struct CampaignPoint {
  // Spec names cycled across this point's slots (the template that produced
  // it; "a+b" joins of these label tables and JSON).
  std::vector<std::string> fleet_template;
  double qps = 0.0;
  SchedulerKind scheduler = SchedulerKind::kFifo;
  std::size_t fleet_size = 0;  // initial fleet size of elastic points
  std::size_t max_batch = 1;
  AutoscalerPolicy autoscaler = AutoscalerPolicy::kNone;
  AdmissionPolicy admission = AdmissionPolicy::kNone;
  double fault_mtbf_s = 0.0;  // 0: no fault injection at this point
  FleetMetrics metrics;
};

// Runs every grid point (in parallel) and returns them in grid order.
// Validates `config` (see validate_campaign) and the catalog's coverage.
[[nodiscard]] std::vector<CampaignPoint> run_campaign(const CampaignConfig& config,
                                                      const WorkloadCatalog& catalog);

// Unloaded capacity estimate of a `fleet_size` fleet of `spec` at a fixed
// batch size: fleet_size / (mix-weighted mean per-request service time over
// the workloads the spec can serve).  Entries with a sampled sequence-length
// distribution are priced at their *expected* service time (fixed-seed Monte
// Carlo over the entry's distribution), not the native length, so overload
// sweeps expressed as multiples of capacity stay honest for lognormal
// catalogs.  Decode-enabled entries additionally price their expected decode
// time ((E[tokens] - 1) steps at the native context, amortised over the
// batch's lanes), so decode capacity multiples stay honest too; decode-free
// catalogs price exactly as before.  Use it to place QPS points around the
// saturation knee.
[[nodiscard]] double fleet_capacity_qps(const WorkloadCatalog& catalog,
                                        const std::string& spec, std::size_t fleet_size,
                                        std::size_t batch);

// Unloaded capacity of an arbitrary (possibly mixed-family) fleet: for each
// workload kind, the kind's slots sustain sum(1/service) requests/s, and the
// offered load splits by mix weight — so the fleet saturates at
// min over kinds of (kind capacity / kind traffic fraction).
[[nodiscard]] double fleet_capacity_qps(const WorkloadCatalog& catalog,
                                        const FleetConfig& fleet, std::size_t batch);

// One row per grid point: load, scheduler, tail latencies, goodput, energy.
[[nodiscard]] Table campaign_table(const std::vector<CampaignPoint>& points,
                                   const std::string& title);

// Machine-readable campaign dump (one JSON object; points as an array).
void write_campaign_json(const CampaignConfig& config,
                         const std::vector<CampaignPoint>& points, std::ostream& os);

}  // namespace lumos::serve
