#include "serve/scheduler.hpp"

#include <deque>
#include <map>

#include "common/error.hpp"
#include "serve/event.hpp"

namespace lumos::serve {

namespace {

// Workload w's strict tier under `tiers` (empty vector / out-of-range: 0).
std::uint32_t tier_of(const std::vector<std::uint32_t>& tiers, std::uint32_t workload) {
  return workload < tiers.size() ? tiers[workload] : 0;
}

// FIFO over per-workload sub-queues: a global enqueue sequence defines the
// arrival order, and masked calls compare only the sub-queue heads, so a
// disallowed backlog at the logical front (a saturated mixed fleet's other
// kind) costs O(workloads) per op instead of a scan of the whole queue.
// With priority tiers the pop compares (tier, seq): strict priority across
// tiers, arrival order within a tier.
class FifoScheduler final : public Scheduler {
 public:
  explicit FifoScheduler(std::vector<std::uint32_t> priorities)
      : tiers_(std::move(priorities)) {}

  void enqueue(const Request& request, double) override {
    if (request.workload >= queues_.size()) queues_.resize(request.workload + 1);
    queues_[request.workload].push_back({seq_++, request});
    ++queued_;
  }

  [[nodiscard]] std::size_t queued() const noexcept override { return queued_; }

  [[nodiscard]] bool ready(double, const WorkloadMask& mask) const noexcept override {
    for (std::uint32_t w = 0; w < queues_.size(); ++w) {
      if (!queues_[w].empty() && mask.allows(w)) return true;
    }
    return false;
  }

  [[nodiscard]] double next_deadline_s(const WorkloadMask&) const noexcept override {
    return kNever;
  }

  void pop(double, const WorkloadMask& mask, std::vector<Request>& out) override {
    out.clear();
    // Lowest-tier, then earliest-enqueued allowed head (the global front when
    // unmasked and untiered).
    std::size_t best = queues_.size();
    for (std::uint32_t w = 0; w < queues_.size(); ++w) {
      if (queues_[w].empty() || !mask.allows(w)) continue;
      if (best == queues_.size()) {
        best = w;
        continue;
      }
      const std::uint32_t tier = tier_of(tiers_, w);
      const std::uint32_t best_tier = tier_of(tiers_, static_cast<std::uint32_t>(best));
      if (tier < best_tier ||
          (tier == best_tier && queues_[w].front().seq < queues_[best].front().seq)) {
        best = w;
      }
    }
    if (best < queues_.size()) {
      out.push_back(queues_[best].front().request);
      queues_[best].pop_front();
      --queued_;
    }
  }

  std::size_t pop_joiners(std::uint32_t workload, std::size_t max_n, double,
                          std::vector<Request>& out) override {
    if (workload >= queues_.size()) return 0;
    std::deque<Entry>& queue = queues_[workload];
    std::size_t taken = 0;
    while (taken < max_n && !queue.empty()) {
      out.push_back(queue.front().request);
      queue.pop_front();
      --queued_;
      ++taken;
    }
    return taken;
  }

 private:
  struct Entry {
    std::uint64_t seq;
    Request request;
  };
  std::vector<std::deque<Entry>> queues_;
  std::vector<std::uint32_t> tiers_;
  std::uint64_t seq_ = 0;
  std::size_t queued_ = 0;
};

// Per-(workload, seq-bucket) batching buckets, keyed workload-major so the
// map iterates (workload, seq) ascending and masks/tiers — which bind per
// workload — test only the key's high half.  Readiness and deadlines ignore
// tiers (a lower-priority bucket's deadline must still wake the event loop so
// the tier eventually dispatches); the pop respects strict tier order among
// the ready buckets, falling back to longest-waiting-head order within a
// tier.
class DynamicBatchScheduler final : public Scheduler {
 public:
  DynamicBatchScheduler(const BatchPolicy& policy, std::vector<std::uint32_t> priorities)
      : policy_(policy), tiers_(std::move(priorities)) {
    LUMOS_EXPECTS_MSG(policy.max_batch >= 1 && policy.max_batch <= BatchPolicy::kMaxBatchLimit,
                      "BatchPolicy.max_batch must be in [1, " +
                          std::to_string(BatchPolicy::kMaxBatchLimit) + "], got " +
                          std::to_string(policy.max_batch));
    LUMOS_EXPECTS_MSG(policy.max_wait_s >= 0.0, "BatchPolicy.max_wait_s must be >= 0");
  }

  void enqueue(const Request& request, double) override {
    buckets_[bucket_key(request)].push_back(request);
    ++queued_;
  }

  [[nodiscard]] std::size_t queued() const noexcept override { return queued_; }

  [[nodiscard]] bool ready(double now_s, const WorkloadMask& mask) const noexcept override {
    for (const auto& [key, bucket] : buckets_) {
      if (bucket.empty() || !mask.allows(workload_of(key))) continue;
      if (bucket.size() >= policy_.max_batch) return true;
      if (bucket.front().arrival_s + policy_.max_wait_s <= now_s) return true;
    }
    return false;
  }

  [[nodiscard]] double next_deadline_s(const WorkloadMask& mask) const noexcept override {
    double deadline = kNever;
    for (const auto& [key, bucket] : buckets_) {
      if (bucket.empty() || !mask.allows(workload_of(key))) continue;
      deadline = std::min(deadline, bucket.front().arrival_s + policy_.max_wait_s);
    }
    return deadline;
  }

  void pop(double now_s, const WorkloadMask& mask, std::vector<Request>& out) override {
    out.clear();
    // Among ready allowed buckets, serve the lowest tier; within a tier, the
    // bucket whose oldest request has waited longest (tie: lowest
    // (workload id, seq bucket) via the map's iteration order).
    auto best = buckets_.end();
    for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
      if (it->second.empty() || !mask.allows(workload_of(it->first))) continue;
      const std::deque<Request>& bucket = it->second;
      const bool is_ready = bucket.size() >= policy_.max_batch ||
                            bucket.front().arrival_s + policy_.max_wait_s <= now_s;
      if (!is_ready) continue;
      if (best == buckets_.end()) {
        best = it;
        continue;
      }
      const std::uint32_t tier = tier_of(tiers_, workload_of(it->first));
      const std::uint32_t best_tier = tier_of(tiers_, workload_of(best->first));
      if (tier < best_tier ||
          (tier == best_tier && bucket.front().arrival_s < best->second.front().arrival_s)) {
        best = it;
      }
    }
    if (best == buckets_.end()) return;
    std::deque<Request>& bucket = best->second;
    const std::size_t take = std::min(policy_.max_batch, bucket.size());
    out.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(bucket.front());
      bucket.pop_front();
    }
    queued_ -= take;
    // The emptied bucket node stays in the map (its deque keeps a spare
    // block): a steady-state workload re-fills the same (workload, seq)
    // bucket every batch, and erasing would pay a map-node free + alloc per
    // dispatch.  Distinct keys are bounded by workloads x seq buckets, so
    // retained empties cannot grow with request count.
  }

  std::size_t pop_joiners(std::uint32_t workload, std::size_t max_n, double,
                          std::vector<Request>& out) override {
    // One joiner at a time: always the oldest head across the workload's seq
    // buckets (tie: lowest seq bucket via map order).  max_n is a lane count
    // — small — so the repeated scan over the workload's buckets stays cheap.
    const std::uint64_t lo = static_cast<std::uint64_t>(workload) << 32;
    const std::uint64_t hi = (static_cast<std::uint64_t>(workload) + 1) << 32;
    std::size_t taken = 0;
    while (taken < max_n) {
      auto best = buckets_.end();
      for (auto it = buckets_.lower_bound(lo); it != buckets_.end() && it->first < hi;
           ++it) {
        if (it->second.empty()) continue;
        if (best == buckets_.end() ||
            it->second.front().arrival_s < best->second.front().arrival_s) {
          best = it;
        }
      }
      if (best == buckets_.end()) break;
      out.push_back(best->second.front());
      best->second.pop_front();
      --queued_;
      ++taken;
    }
    return taken;
  }

 private:
  // Workload-major bucket key: high 32 bits workload, low 32 bits seq bucket.
  [[nodiscard]] static std::uint64_t bucket_key(const Request& r) noexcept {
    return (static_cast<std::uint64_t>(r.workload) << 32) | r.seq_len;
  }
  [[nodiscard]] static std::uint32_t workload_of(std::uint64_t key) noexcept {
    return static_cast<std::uint32_t>(key >> 32);
  }

  BatchPolicy policy_;
  std::vector<std::uint32_t> tiers_;
  // std::map for deterministic iteration order (ascending workload, seq).
  std::map<std::uint64_t, std::deque<Request>> buckets_;
  std::size_t queued_ = 0;
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind, const BatchPolicy& policy,
                                          std::vector<std::uint32_t> priorities) {
  if (kind == SchedulerKind::kFifo) {
    return std::make_unique<FifoScheduler>(std::move(priorities));
  }
  return std::make_unique<DynamicBatchScheduler>(policy, std::move(priorities));
}

}  // namespace lumos::serve
