#include "serve/scheduler.hpp"

#include <deque>
#include <limits>
#include <map>

#include "common/error.hpp"

namespace lumos::serve {

const char* scheduler_name(SchedulerKind kind) noexcept {
  return kind == SchedulerKind::kFifo ? "fifo" : "batch";
}

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

class FifoScheduler final : public Scheduler {
 public:
  void enqueue(const Request& request, double) override { queue_.push_back(request); }
  [[nodiscard]] std::size_t queued() const noexcept override { return queue_.size(); }
  [[nodiscard]] bool ready(double) const noexcept override { return !queue_.empty(); }
  [[nodiscard]] double next_deadline_s() const noexcept override { return kNever; }
  [[nodiscard]] std::vector<Request> pop(double) override {
    std::vector<Request> batch;
    if (!queue_.empty()) {
      batch.push_back(queue_.front());
      queue_.pop_front();
    }
    return batch;
  }

 private:
  std::deque<Request> queue_;
};

class DynamicBatchScheduler final : public Scheduler {
 public:
  explicit DynamicBatchScheduler(const BatchPolicy& policy) : policy_(policy) {
    LUMOS_EXPECTS(policy.max_batch >= 1 && policy.max_batch <= BatchPolicy::kMaxBatchLimit);
    LUMOS_EXPECTS(policy.max_wait_s >= 0.0);
  }

  void enqueue(const Request& request, double) override {
    buckets_[request.workload].push_back(request);
    ++queued_;
  }

  [[nodiscard]] std::size_t queued() const noexcept override { return queued_; }

  [[nodiscard]] bool ready(double now_s) const noexcept override {
    for (const auto& [workload, bucket] : buckets_) {
      if (bucket.size() >= policy_.max_batch) return true;
      if (bucket.front().arrival_s + policy_.max_wait_s <= now_s) return true;
    }
    return false;
  }

  [[nodiscard]] double next_deadline_s() const noexcept override {
    double deadline = kNever;
    for (const auto& [workload, bucket] : buckets_) {
      deadline = std::min(deadline, bucket.front().arrival_s + policy_.max_wait_s);
    }
    return deadline;
  }

  [[nodiscard]] std::vector<Request> pop(double now_s) override {
    // Among ready buckets, serve the one whose oldest request has waited
    // longest (tie: lowest workload id via the map's iteration order).
    auto best = buckets_.end();
    for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
      const std::deque<Request>& bucket = it->second;
      const bool is_ready = bucket.size() >= policy_.max_batch ||
                            bucket.front().arrival_s + policy_.max_wait_s <= now_s;
      if (!is_ready) continue;
      if (best == buckets_.end() ||
          bucket.front().arrival_s < best->second.front().arrival_s) {
        best = it;
      }
    }
    std::vector<Request> batch;
    if (best == buckets_.end()) return batch;
    std::deque<Request>& bucket = best->second;
    const std::size_t take = std::min(policy_.max_batch, bucket.size());
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(bucket.front());
      bucket.pop_front();
    }
    queued_ -= take;
    if (bucket.empty()) buckets_.erase(best);
    return batch;
  }

 private:
  BatchPolicy policy_;
  // std::map for deterministic iteration order (ascending workload id).
  std::map<std::uint32_t, std::deque<Request>> buckets_;
  std::size_t queued_ = 0;
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind, const BatchPolicy& policy) {
  if (kind == SchedulerKind::kFifo) return std::make_unique<FifoScheduler>();
  return std::make_unique<DynamicBatchScheduler>(policy);
}

}  // namespace lumos::serve
