// Cell-sharded parallel simulation: simulate a datacenter, not a rack.
//
// A serving fleet at datacenter scale is operated as independent *cells*:
// disjoint slices of the fleet, each with its own scheduler, queue, and slice
// of the traffic, sharing nothing at simulation time.  That independence is
// the classic conservative-parallelism argument (Fujimoto, CACM '90): events
// in different cells cannot affect each other, so the cells' event loops can
// run concurrently with no synchronisation at all and the run is exactly the
// K serial simulations it decomposes into.
//
// `CellPlan::build(scenario, K)` partitions a Scenario into K per-cell
// Scenarios:
//   * fleet    — contiguous balanced slices of `fleet.accelerators` (cell c
//     gets N/K slots, the first N%K cells one extra).  Every cell must still
//     cover the catalog (a cell that cannot serve some workload throws when
//     it simulates, same as any under-provisioned fleet).
//   * traffic  — open-loop cells draw their own arrival stream: request
//     counts split proportionally to each cell's slot share, offered QPS
//     scales by the same share, and each cell's trace seed is salted by its
//     cell index, so cells see independent arrival processes at the same
//     per-slot load.  Closed-loop session pools split the same way.  Explicit
//     traces deal requests round-robin (request i -> cell i % K), which keeps
//     each cell's slice arrival-ordered.
//   * seeds    — every seeded process a cell owns (traffic, faults, retry
//     jitter) is salted with `(0xCE11 + cell) * golden-ratio`, so no two
//     cells share an rng stream.
//
// `simulate_sharded(scenario, K)` runs the plan's cells on the global thread
// pool and folds their `FleetMetrics` in ascending cell order via
// `FleetMetrics::merge` (cells retain raw latency state, so merged
// percentiles are exact over the union of samples).  Determinism contracts:
//   * K == 1 returns `simulate(scenario)` — bit-identical to the serial run.
//   * For fixed K, results are bit-identical across `LUMOS_THREADS` settings:
//     cells are chunked by index only, each writes its own result slot, and
//     the merge order is fixed.
//   * K > 1 is *statistically*, not bit-, equivalent to K == 1: the cells
//     draw different (salted) arrival streams and queue independently.
//
// Observers are per-event-loop and unsupported for K > 1 (throws; run K == 1
// to trace).
#pragma once

#include <cstddef>
#include <vector>

#include "serve/simulator.hpp"

namespace lumos::serve {

// The per-cell Scenarios a sharded run simulates.  Exposed (rather than
// hidden inside simulate_sharded) so tests can simulate the cells serially
// and pin the parallel path bit-identical to the serial fold.
struct CellPlan {
  std::vector<Scenario> cells;

  // Partitions `scenario` into `cells` independent cells (see file comment
  // for the split rules).  Throws InvalidArgument for cells == 0, more cells
  // than fleet slots, fewer requests / sessions / trace entries than cells
  // (a cell would be empty), or observers with cells > 1.  cells == 1
  // returns the scenario unchanged (no seed salt — the serial run).
  [[nodiscard]] static CellPlan build(const Scenario& scenario, std::size_t cells);
};

// Simulates `scenario` as `cells` independent cells on the global thread pool
// and returns the merged fleet metrics (ascending-cell-order fold of
// `FleetMetrics::merge`).  cells == 1 short-circuits to `simulate(scenario)`.
// The merged result keeps its raw latency state only when
// `scenario.sim.keep_latency_state` asks for it.
[[nodiscard]] FleetMetrics simulate_sharded(const Scenario& scenario, std::size_t cells);

}  // namespace lumos::serve
