#include "serve/campaign.hpp"

#include <ostream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "common/units.hpp"

namespace lumos::serve {

double fleet_capacity_qps(const WorkloadCatalog& catalog, const AcceleratorSpec& spec,
                          std::size_t fleet_size, std::size_t batch) {
  LUMOS_EXPECTS(fleet_size >= 1 && batch >= 1);
  const EstimateCache cache(spec, catalog);
  double weighted_service_s = 0.0;
  for (std::uint32_t w = 0; w < catalog.size(); ++w) {
    const double per_request_s =
        cache.estimate(w, batch).latency_s / static_cast<double>(batch);
    weighted_service_s += catalog.at(w).mix_weight * per_request_s;
  }
  weighted_service_s /= catalog.total_weight();
  return static_cast<double>(fleet_size) / weighted_service_s;
}

std::vector<CampaignPoint> run_campaign(const CampaignConfig& config,
                                        const WorkloadCatalog& catalog) {
  LUMOS_EXPECTS(!config.qps.empty());
  LUMOS_EXPECTS(!config.schedulers.empty());
  LUMOS_EXPECTS(!config.fleet_sizes.empty());
  LUMOS_EXPECTS(!config.max_batches.empty());
  LUMOS_EXPECTS(catalog.kind() == config.kind);

  std::vector<CampaignPoint> points;
  for (const std::size_t fleet_size : config.fleet_sizes) {
    for (const SchedulerKind scheduler : config.schedulers) {
      // FIFO ignores the batch policy: one grid point per (fleet, qps).
      const std::vector<std::size_t> batches =
          scheduler == SchedulerKind::kFifo ? std::vector<std::size_t>{1}
                                            : config.max_batches;
      for (const std::size_t max_batch : batches) {
        for (const double qps : config.qps) {
          CampaignPoint p;
          p.qps = qps;
          p.scheduler = scheduler;
          p.fleet_size = fleet_size;
          p.max_batch = max_batch;
          points.push_back(p);
        }
      }
    }
  }

  const AcceleratorSpec primary = config.kind == AcceleratorKind::kTron
                                      ? default_tron_spec()
                                      : default_ghost_spec();
  const AcceleratorSpec eco =
      config.kind == AcceleratorKind::kTron ? eco_tron_spec() : eco_ghost_spec();

  // Grid points are independent; each simulates serially in its own chunk and
  // writes only its own slot, so the sweep is bit-reproducible across thread
  // counts.  Trace seeds mix the grid index so points draw independent
  // arrival sequences.
  parallel_for(0, points.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      CampaignPoint& p = points[i];
      const FleetConfig fleet =
          config.heterogeneous
              ? FleetConfig::heterogeneous(primary, eco, p.fleet_size, config.routing)
              : FleetConfig::homogeneous(primary, p.fleet_size, config.routing);
      TraceConfig trace_cfg;
      trace_cfg.offered_qps = p.qps;
      trace_cfg.request_count = config.requests_per_point;
      trace_cfg.process = config.process;
      trace_cfg.seed = config.seed + 0x9E3779B9u * (static_cast<std::uint64_t>(i) + 1);
      const std::vector<Request> trace = generate_trace(catalog, trace_cfg);
      BatchPolicy policy;
      policy.max_batch = p.max_batch;
      policy.max_wait_s = config.max_wait_s;
      SimConfig sim;
      sim.slo_scale = config.slo_scale;
      p.metrics = simulate(fleet, catalog, trace, p.scheduler, policy, sim);
    }
  });
  return points;
}

Table campaign_table(const std::vector<CampaignPoint>& points, const std::string& title) {
  Table t(title);
  t.add_row({"fleet", "sched", "batch", "offered QPS", "goodput QPS", "p50 us", "p99 us",
             "p99.9 us", "mean batch", "uJ/req", "util"});
  for (const CampaignPoint& p : points) {
    const ServeMetrics& m = p.metrics;
    t.add_row({std::to_string(p.fleet_size), scheduler_name(p.scheduler),
               std::to_string(p.max_batch), Table::num(p.qps, 1),
               Table::num(m.goodput_qps, 1), Table::num(units::to_us(m.p50_latency_s), 1),
               Table::num(units::to_us(m.p99_latency_s), 1),
               Table::num(units::to_us(m.p999_latency_s), 1), Table::num(m.mean_batch_size, 2),
               Table::num(m.energy_per_request_j * 1e6, 3),
               Table::num(m.fleet_utilization, 3)});
  }
  return t;
}

void write_campaign_json(const CampaignConfig& config,
                         const std::vector<CampaignPoint>& points, std::ostream& os) {
  os << "{\n";
  os << "  \"campaign\": \"" << json_escape(config.name) << "\",\n";
  os << "  \"accelerator\": \"" << kind_name(config.kind) << "\",\n";
  os << "  \"process\": \"" << process_name(config.process) << "\",\n";
  os << "  \"routing\": \"" << routing_name(config.routing) << "\",\n";
  os << "  \"heterogeneous\": " << (config.heterogeneous ? "true" : "false") << ",\n";
  os << "  \"requests_per_point\": " << config.requests_per_point << ",\n";
  os << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const CampaignPoint& p = points[i];
    const ServeMetrics& m = p.metrics;
    os << "    {\"fleet\": " << p.fleet_size << ", \"scheduler\": \""
       << scheduler_name(p.scheduler) << "\", \"max_batch\": " << p.max_batch
       << ", \"offered_qps\": " << p.qps << ", \"throughput_qps\": " << m.throughput_qps
       << ", \"goodput_qps\": " << m.goodput_qps
       << ", \"slo_latency_s\": " << m.slo_latency_s
       << ", \"slo_attainment\": " << m.slo_attainment
       << ", \"p50_latency_s\": " << m.p50_latency_s
       << ", \"p95_latency_s\": " << m.p95_latency_s
       << ", \"p99_latency_s\": " << m.p99_latency_s
       << ", \"p999_latency_s\": " << m.p999_latency_s
       << ", \"mean_queue_depth\": " << m.mean_queue_depth
       << ", \"peak_queue_depth\": " << m.peak_queue_depth
       << ", \"mean_batch\": " << m.mean_batch_size
       << ", \"energy_per_request_j\": " << m.energy_per_request_j
       << ", \"fleet_energy_j\": " << m.fleet_energy_j
       << ", \"utilization\": " << m.fleet_utilization << "}"
       << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace lumos::serve
