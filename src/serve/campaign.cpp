#include "serve/campaign.hpp"

#include <limits>
#include <ostream>
#include <utility>

#include "arch/registry.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "serve/names.hpp"
#include "serve/shard.hpp"

namespace lumos::serve {

namespace {

// Expected per-request service time of one catalog entry at `batch`.  Fixed
// entries price at the native length (one exact lookup, bit-identical to the
// pre-seqlen estimate); sampled entries average over a fixed-seed Monte Carlo
// draw of bucketised lengths — deterministic, and cheap because the bucketing
// collapses the draws onto a handful of distinct cache keys.
double expected_service_s(const EstimateCache& cache, const WorkloadCatalog& catalog,
                          std::uint32_t w, std::size_t batch) {
  const SeqLenConfig& seqlen = catalog.at(w).seqlen;
  if (seqlen.dist == SeqLenDist::kFixed) {
    return cache.estimate(w, batch).latency_s / static_cast<double>(batch);
  }
  constexpr std::size_t kSamples = 512;
  Rng rng(0xCAFAC17, w);
  double sum_s = 0.0;
  for (std::size_t i = 0; i < kSamples; ++i) {
    const std::uint32_t seq = sample_seq_len(seqlen, rng);
    sum_s += cache.estimate(w, batch, seq).latency_s;
  }
  return sum_s / static_cast<double>(kSamples) / static_cast<double>(batch);
}

// Expected per-request *decode* time of one catalog entry at `batch` lanes:
// (E[tokens] - 1) decode steps priced at the entry's native context,
// amortised over the lanes sharing each step.  0 for decode-free entries (or
// accelerators with no decode path), so pre-decode capacity numbers are
// untouched.
double expected_decode_s(const EstimateCache& cache, const WorkloadCatalog& catalog,
                         std::uint32_t w, std::size_t batch) {
  const DecodeConfig& decode = catalog.at(w).decode;
  if (!decode.enabled() || !cache.can_generate()) return 0.0;
  double mean_tokens = 0.0;
  if (decode.dist == SeqLenDist::kFixed) {
    mean_tokens = static_cast<double>(decode.tokens);
  } else {
    constexpr std::size_t kSamples = 512;
    Rng rng(0xDECAF, w);
    double sum = 0.0;
    for (std::size_t i = 0; i < kSamples; ++i) {
      sum += static_cast<double>(sample_decode_tokens(decode, rng));
    }
    mean_tokens = sum / static_cast<double>(kSamples);
  }
  if (mean_tokens <= 1.0) return 0.0;  // the prefill already made the only token
  const arch::Workload& wl = catalog.workload(w);
  std::uint32_t ctx = 1;
  if (wl.kind() == arch::WorkloadKind::kTransformer) {
    ctx = static_cast<std::uint32_t>(wl.transformer_config().seq_len);
  }
  const std::uint32_t bucket =
      static_cast<std::uint32_t>(std::max<std::size_t>(decode.ctx_bucket, 1));
  ctx = (std::max(ctx, 1u) + bucket - 1) / bucket * bucket;
  const double step_s = cache.decode_step(w, batch, ctx).latency_s;
  return (mean_tokens - 1.0) * step_s / static_cast<double>(batch);
}

// "a+b" join of a fleet template's spec names (labels, JSON).
std::string template_label(const std::vector<std::string>& specs) {
  std::string label;
  for (const std::string& spec : specs) {
    if (!label.empty()) label += '+';
    label += spec;
  }
  return label;
}

// The campaign's effective template axis: the explicit `fleet_templates`
// grid, or the single `fleet_template` when the grid is empty.
std::vector<std::vector<std::string>> effective_templates(const CampaignConfig& config) {
  if (!config.fleet_templates.empty()) return config.fleet_templates;
  return {config.fleet_template};
}

}  // namespace

double fleet_capacity_qps(const WorkloadCatalog& catalog, const std::string& spec,
                          std::size_t fleet_size, std::size_t batch) {
  if (fleet_size < 1) throw InvalidArgument("fleet_size must be >= 1");
  if (batch < 1) throw InvalidArgument("batch must be >= 1");
  const EstimateCache cache(spec, catalog);
  double weighted_service_s = 0.0;
  double served_weight = 0.0;
  for (std::uint32_t w = 0; w < catalog.size(); ++w) {
    if (!cache.can_serve(w)) continue;
    const double per_request_s = expected_service_s(cache, catalog, w, batch) +
                                 expected_decode_s(cache, catalog, w, batch);
    weighted_service_s += catalog.at(w).mix_weight * per_request_s;
    served_weight += catalog.at(w).mix_weight;
  }
  if (served_weight <= 0.0) {
    throw InvalidArgument("accelerator spec '" + spec +
                          "' serves no workload in the catalog");
  }
  weighted_service_s /= served_weight;
  return static_cast<double>(fleet_size) / weighted_service_s;
}

double fleet_capacity_qps(const WorkloadCatalog& catalog, const FleetConfig& fleet,
                          std::size_t batch) {
  if (batch < 1) throw InvalidArgument("batch must be >= 1");
  if (fleet.accelerators.empty()) {
    throw InvalidArgument("FleetConfig.accelerators must not be empty");
  }
  if (catalog.empty()) throw InvalidArgument("WorkloadCatalog must not be empty");
  // Distinct specs with their slot counts (a homogeneous fleet stays one
  // group, so its capacity is exactly fleet_size / mean service time).
  std::vector<std::pair<std::string, std::size_t>> groups;
  for (const std::string& spec : fleet.accelerators) {
    bool found = false;
    for (auto& [name, count] : groups) {
      if (name == spec) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) groups.emplace_back(spec, 1);
  }
  // Per workload kind: the kind's slots sustain their summed rate against the
  // kind's sub-mix, and the offered load splits by mix weight.
  double capacity = std::numeric_limits<double>::infinity();
  for (const arch::WorkloadKind kind :
       {arch::WorkloadKind::kTransformer, arch::WorkloadKind::kGnn}) {
    if (!catalog.has_kind(kind)) continue;
    double kind_weight = 0.0;
    for (std::uint32_t w = 0; w < catalog.size(); ++w) {
      if (catalog.workload(w).kind() == kind) kind_weight += catalog.at(w).mix_weight;
    }
    const double traffic_fraction = kind_weight / catalog.total_weight();
    double rate = 0.0;  // requests/s the kind's slots sustain together
    for (const auto& [spec, count] : groups) {
      if (!arch::spec_serves(spec, kind)) continue;
      // A multi-kind platform splits its unloaded rate across the kinds it
      // serves in proportion to their mix weight; a single-kind fabric's
      // factor is x/x == 1.0 exactly, keeping photonic-only fleets
      // bit-identical to the kind-matched accounting.
      double served_weight = 0.0;
      for (std::uint32_t w = 0; w < catalog.size(); ++w) {
        if (arch::spec_serves(spec, catalog.workload(w).kind())) {
          served_weight += catalog.at(w).mix_weight;
        }
      }
      rate += fleet_capacity_qps(catalog, spec, count, batch) *
              (kind_weight / served_weight);
    }
    if (rate <= 0.0) {
      throw InvalidArgument("fleet '" + fleet.label() + "' has no accelerator for " +
                            std::string(arch::workload_kind_name(kind)) + " workloads");
    }
    capacity = std::min(capacity, rate / traffic_fraction);
  }
  return capacity;
}

void validate_campaign(const CampaignConfig& config) {
  if (config.fleet_template.empty()) {
    throw InvalidArgument("CampaignConfig.fleet_template must not be empty");
  }
  for (const std::vector<std::string>& t : config.fleet_templates) {
    if (t.empty()) {
      throw InvalidArgument("CampaignConfig.fleet_templates entries must not be empty");
    }
  }
  if (config.qps.empty()) throw InvalidArgument("CampaignConfig.qps must not be empty");
  for (const double q : config.qps) {
    if (!(q > 0.0)) {
      throw InvalidArgument("CampaignConfig.qps points must be positive, got " +
                            std::to_string(q));
    }
  }
  if (config.schedulers.empty()) {
    throw InvalidArgument("CampaignConfig.schedulers must not be empty");
  }
  if (config.fleet_sizes.empty()) {
    throw InvalidArgument("CampaignConfig.fleet_sizes must not be empty");
  }
  for (const std::size_t n : config.fleet_sizes) {
    if (n == 0) throw InvalidArgument("CampaignConfig.fleet_sizes entries must be >= 1");
  }
  if (config.max_batches.empty()) {
    throw InvalidArgument("CampaignConfig.max_batches must not be empty");
  }
  for (const std::size_t b : config.max_batches) {
    if (b < 1 || b > BatchPolicy::kMaxBatchLimit) {
      throw InvalidArgument("CampaignConfig.max_batches entries must be in [1, " +
                            std::to_string(BatchPolicy::kMaxBatchLimit) + "], got " +
                            std::to_string(b));
    }
  }
  if (config.max_wait_s < 0.0) {
    throw InvalidArgument("CampaignConfig.max_wait_s must be >= 0");
  }
  if (config.requests_per_point == 0) {
    throw InvalidArgument("CampaignConfig.requests_per_point must be >= 1");
  }
  if (config.autoscalers.empty()) {
    throw InvalidArgument("CampaignConfig.autoscalers must not be empty");
  }
  for (const AutoscalerPolicy policy : config.autoscalers) {
    if (policy == AutoscalerPolicy::kNone) continue;
    AutoscalerConfig knobs = config.autoscale;
    knobs.policy = policy;
    validate_autoscaler(knobs);
  }
  if (config.admissions.empty()) {
    throw InvalidArgument("CampaignConfig.admissions must not be empty");
  }
  for (const AdmissionPolicy policy : config.admissions) {
    AdmissionConfig knobs = config.admission;
    knobs.policy = policy;
    validate_admission(knobs);
  }
  if (config.fault_mtbfs_s.empty()) {
    throw InvalidArgument("CampaignConfig.fault_mtbfs_s must not be empty");
  }
  for (const double mtbf_s : config.fault_mtbfs_s) {
    if (mtbf_s < 0.0) {
      throw InvalidArgument("CampaignConfig.fault_mtbfs_s points must be >= 0, got " +
                            std::to_string(mtbf_s));
    }
    FaultConfig knobs = config.faults;
    knobs.mtbf_s = mtbf_s;
    validate_faults(knobs);
  }
  validate_retry(config.retry);
  if (config.cells == 0) {
    throw InvalidArgument("CampaignConfig.cells must be >= 1");
  }
  for (const std::size_t n : config.fleet_sizes) {
    if (config.cells > n) {
      throw InvalidArgument("CampaignConfig.cells (" + std::to_string(config.cells) +
                            ") must not exceed any fleet size (got fleet size " +
                            std::to_string(n) + ")");
    }
  }
}

std::vector<CampaignPoint> run_campaign(const CampaignConfig& config,
                                        const WorkloadCatalog& catalog) {
  validate_campaign(config);
  if (catalog.empty()) throw InvalidArgument("WorkloadCatalog must not be empty");

  // The template axis is outermost so a single-template campaign enumerates
  // its points — and therefore derives its per-point trace seeds — exactly as
  // the pre-axis campaign did.
  std::vector<CampaignPoint> points;
  for (const std::vector<std::string>& fleet_template : effective_templates(config)) {
    for (const std::size_t fleet_size : config.fleet_sizes) {
      for (const SchedulerKind scheduler : config.schedulers) {
        // FIFO ignores the batch policy: one grid point per (fleet, qps).
        const std::vector<std::size_t> batches =
            scheduler == SchedulerKind::kFifo ? std::vector<std::size_t>{1}
                                              : config.max_batches;
        for (const std::size_t max_batch : batches) {
          for (const AutoscalerPolicy autoscaler : config.autoscalers) {
            for (const AdmissionPolicy admission : config.admissions) {
              for (const double fault_mtbf_s : config.fault_mtbfs_s) {
                for (const double qps : config.qps) {
                  CampaignPoint p;
                  p.fleet_template = fleet_template;
                  p.qps = qps;
                  p.scheduler = scheduler;
                  p.fleet_size = fleet_size;
                  p.max_batch = max_batch;
                  p.autoscaler = autoscaler;
                  p.admission = admission;
                  p.fault_mtbf_s = fault_mtbf_s;
                  points.push_back(p);
                }
              }
            }
          }
        }
      }
    }
  }

  // Grid points are independent; each simulates serially in its own chunk and
  // writes only its own slot, so the sweep is bit-reproducible across thread
  // counts.  Trace seeds mix the grid index so points draw independent
  // arrival sequences.
  parallel_for(0, points.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      CampaignPoint& p = points[i];
      Scenario scenario;
      scenario.fleet =
          FleetConfig::cycled(p.fleet_template, p.fleet_size, config.routing);
      scenario.fleet.cost = config.cost;
      scenario.catalog = catalog;
      scenario.scheduler = p.scheduler;
      scenario.batch.max_batch = p.max_batch;
      scenario.batch.max_wait_s = config.max_wait_s;
      scenario.sim.slo_scale = config.slo_scale;
      scenario.sim.autoscaler = config.autoscale;
      scenario.sim.autoscaler.policy = p.autoscaler;
      scenario.sim.admission = config.admission;
      scenario.sim.admission.policy = p.admission;
      scenario.sim.faults = config.faults;
      scenario.sim.faults.mtbf_s = p.fault_mtbf_s;
      scenario.sim.retry = config.retry;
      scenario.sim.percentile_mode = config.percentile_mode;
      scenario.sim.hdr_relative_error = config.hdr_relative_error;
      scenario.sim.decode_mode = config.decode_mode;
      scenario.traffic.open.offered_qps = p.qps;
      scenario.traffic.open.request_count = config.requests_per_point;
      scenario.traffic.open.process = config.process;
      scenario.traffic.open.seed =
          config.seed + 0x9E3779B9u * (static_cast<std::uint64_t>(i) + 1);
      p.metrics = simulate_sharded(scenario, config.cells);
    }
  });
  return points;
}

Table campaign_table(const std::vector<CampaignPoint>& points, const std::string& title) {
  Table t(title);
  // Robustness columns only when some point exercises them, so fault-free
  // campaign tables keep their familiar shape.
  bool robust = false;
  bool decode = false;
  // The template column appears only when the campaign actually swept
  // templates, so single-template tables keep their familiar shape.
  bool multi_template = false;
  for (const CampaignPoint& p : points) {
    robust = robust || p.admission != AdmissionPolicy::kNone || p.fault_mtbf_s > 0.0 ||
             p.metrics.drop_rate > 0.0;
    decode = decode || p.metrics.decode_requests > 0;
    multi_template =
        multi_template || p.fleet_template != points.front().fleet_template;
  }
  std::vector<std::string> header{"fleet", "sched", "batch", "scaler", "offered QPS",
                                  "goodput QPS", "p50 us", "p99 us", "p99.9 us",
                                  "mean batch", "uJ/req", "$/req", "util"};
  if (multi_template) header.insert(header.begin(), "template");
  // The "admit" column slots between "scaler" and "offered QPS", one place
  // further right when the template column leads.
  const std::size_t admit_at = multi_template ? 5 : 4;
  if (robust) {
    header.insert(header.begin() + static_cast<std::ptrdiff_t>(admit_at), "admit");
    header.push_back("drop");
    header.push_back("avail");
  }
  if (decode) {
    header.push_back("tok/s");
    header.push_back("p95 TTFT us");
    header.push_back("p95 TPOT us");
  }
  t.add_row(header);
  for (const CampaignPoint& p : points) {
    const FleetMetrics& m = p.metrics;
    std::string fleet_cell = std::to_string(p.fleet_size);
    if (p.autoscaler != AutoscalerPolicy::kNone) {
      fleet_cell += "->" + std::to_string(m.final_fleet_size) + " (peak " +
                    std::to_string(m.peak_fleet_size) + ")";
    }
    std::vector<std::string> row{
        fleet_cell, scheduler_name(p.scheduler), std::to_string(p.max_batch),
        autoscaler_name(p.autoscaler), Table::num(p.qps, 1), Table::num(m.goodput_qps, 1),
        Table::num(units::to_us(m.p50_latency_s), 1),
        Table::num(units::to_us(m.p99_latency_s), 1),
        Table::num(units::to_us(m.p999_latency_s), 1), Table::num(m.mean_batch_size, 2),
        Table::num(m.energy_per_request_j * 1e6, 3),
        Table::num(m.cost_per_request_usd, 9), Table::num(m.fleet_utilization, 3)};
    if (multi_template) row.insert(row.begin(), template_label(p.fleet_template));
    if (robust) {
      row.insert(row.begin() + static_cast<std::ptrdiff_t>(admit_at),
                 admission_name(p.admission));
      row.push_back(Table::num(m.drop_rate, 4));
      row.push_back(Table::num(m.fleet_availability, 4));
    }
    if (decode) {
      row.push_back(Table::num(m.tokens_per_s, 1));
      row.push_back(Table::num(units::to_us(m.p95_ttft_s), 1));
      row.push_back(Table::num(units::to_us(m.p95_tpot_s), 1));
    }
    t.add_row(row);
  }
  return t;
}

void write_campaign_json(const CampaignConfig& config,
                         const std::vector<CampaignPoint>& points, std::ostream& os) {
  std::string fleet_template;
  for (const std::string& spec : config.fleet_template) {
    if (!fleet_template.empty()) fleet_template += '+';
    fleet_template += spec;
  }
  os << "{\n";
  os << "  \"campaign\": \"" << json_escape(config.name) << "\",\n";
  os << "  \"fleet_template\": \"" << json_escape(fleet_template) << "\",\n";
  os << "  \"process\": \"" << process_name(config.process) << "\",\n";
  os << "  \"routing\": \"" << routing_name(config.routing) << "\",\n";
  os << "  \"requests_per_point\": " << config.requests_per_point << ",\n";
  os << "  \"cells\": " << config.cells << ",\n";
  os << "  \"decode_mode\": \"" << decode_mode_name(config.decode_mode) << "\",\n";
  os << "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const CampaignPoint& p = points[i];
    const FleetMetrics& m = p.metrics;
    os << "    {\"fleet_template\": \"" << json_escape(template_label(p.fleet_template))
       << "\", \"fleet\": " << p.fleet_size << ", \"scheduler\": \""
       << scheduler_name(p.scheduler) << "\", \"max_batch\": " << p.max_batch
       << ", \"autoscaler\": \"" << autoscaler_name(p.autoscaler) << "\""
       << ", \"admission\": \"" << admission_name(p.admission) << "\""
       << ", \"fault_mtbf_s\": " << p.fault_mtbf_s
       << ", \"offered_qps\": " << p.qps << ", \"throughput_qps\": " << m.throughput_qps
       << ", \"goodput_qps\": " << m.goodput_qps
       << ", \"slo_latency_s\": " << m.slo_latency_s
       << ", \"slo_attainment\": " << m.slo_attainment
       << ", \"p50_latency_s\": " << m.p50_latency_s
       << ", \"p95_latency_s\": " << m.p95_latency_s
       << ", \"p99_latency_s\": " << m.p99_latency_s
       << ", \"p999_latency_s\": " << m.p999_latency_s
       << ", \"mean_queue_depth\": " << m.mean_queue_depth
       << ", \"peak_queue_depth\": " << m.peak_queue_depth
       << ", \"mean_batch\": " << m.mean_batch_size
       << ", \"energy_per_request_j\": " << m.energy_per_request_j
       << ", \"fleet_energy_j\": " << m.fleet_energy_j
       << ", \"fleet_cost_usd\": " << m.fleet_cost_usd
       << ", \"cost_per_request_usd\": " << m.cost_per_request_usd
       << ", \"utilization\": " << m.fleet_utilization
       << ", \"peak_fleet\": " << m.peak_fleet_size
       << ", \"final_fleet\": " << m.final_fleet_size
       << ", \"mean_fleet\": " << m.mean_fleet_size
       << ", \"autoscale_grows\": " << m.autoscale_grows
       << ", \"autoscale_shrinks\": " << m.autoscale_shrinks
       << ", \"estimate_lookups\": " << m.estimate_lookups
       << ", \"estimate_misses\": " << m.estimate_misses
       << ", \"shed\": " << m.shed_requests
       << ", \"timed_out\": " << m.timed_out_requests
       << ", \"retries\": " << m.retried_attempts
       << ", \"failed_batches\": " << m.failed_batches
       << ", \"requeued\": " << m.requeued_requests
       << ", \"slot_failures\": " << m.slot_failures
       << ", \"availability\": " << m.fleet_availability
       << ", \"drop_rate\": " << m.drop_rate
       << ", \"decode_requests\": " << m.decode_requests
       << ", \"generated_tokens\": " << m.generated_tokens
       << ", \"aborted_decode_tokens\": " << m.aborted_decode_tokens
       << ", \"tokens_per_s\": " << m.tokens_per_s
       << ", \"mean_ttft_s\": " << m.mean_ttft_s
       << ", \"p95_ttft_s\": " << m.p95_ttft_s
       << ", \"p99_ttft_s\": " << m.p99_ttft_s
       << ", \"mean_tpot_s\": " << m.mean_tpot_s
       << ", \"p95_tpot_s\": " << m.p95_tpot_s
       << ", \"ttft_attainment\": " << m.ttft_attainment
       << ", \"tpot_attainment\": " << m.tpot_attainment
       << ", \"mean_decode_occupancy\": " << m.mean_decode_occupancy << ",\n"
       << "     \"tenants\": [\n";
    for (std::size_t w = 0; w < m.tenants.size(); ++w) {
      const TenantMetrics& t = m.tenants[w];
      os << "      {\"name\": \"" << json_escape(t.name) << "\", \"priority\": " << t.priority
         << ", \"slo_latency_s\": " << t.slo_latency_s << ", \"completed\": " << t.completed
         << ", \"slo_attainment\": " << t.slo_attainment
         << ", \"goodput_qps\": " << t.goodput_qps
         << ", \"shed\": " << t.shed << ", \"timed_out\": " << t.timed_out
         << ", \"drop_rate\": " << t.drop_rate
         << ", \"cost_usd\": " << t.cost_usd
         << ", \"p50_latency_s\": " << t.p50_latency_s
         << ", \"p99_latency_s\": " << t.p99_latency_s << "}"
         << (w + 1 < m.tenants.size() ? "," : "") << "\n";
    }
    os << "     ]}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace lumos::serve
