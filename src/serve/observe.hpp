// Serving observability: request lifecycle tracing, windowed time-series
// metrics, and event-loop self-profiling for the discrete-event simulator.
//
// The simulator's five event sources (completions, faults, arrivals/retries,
// autoscaling, dispatch) call into a polymorphic `Observer` through an
// `ObserverHub` owned by `simulate()`.  Observation is opt-in per scenario
// (`Scenario::observe`); with every observer disabled — the default — the
// simulator never constructs a hub, every hook site is one null-pointer
// branch, and results are bit-identical to the unobserved simulator (pinned
// by tests/test_observe.cpp the same way PR 6 pinned fault knobs).  Enabled
// observers only *read* the event stream, so observed runs produce the same
// FleetMetrics bit-for-bit too — tracing a simulation can never change it.
//
// Three concrete observers:
//
//   * `LifecycleTracer` — per-request lifecycle spans (arrival -> admission
//     verdict -> queue -> dispatch -> completion / shed / requeue / retry /
//     timeout) and per-slot batch spans, recorded into bounded buffers with
//     deterministic id-hash sampling (`TracerConfig.sample`), exported as
//     Chrome `trace_event` JSON (slots as threads, batches as duration
//     slices, requests as async spans + flow arrows) loadable in
//     chrome://tracing or https://ui.perfetto.dev.  Batch spans live in a
//     ring buffer (newest wins); request events saturate (new requests stop
//     being sampled when the buffer fills, already-sampled requests finish
//     recording) so every exported request span stays balanced.
//   * `TimelineRecorder` — fixed-window time series (arrivals, throughput,
//     goodput, sheds, timeouts, retries, queue depth, fleet size, failed
//     slots, per-tenant attainment per window) exported as CSV or JSON for
//     plotting overload and fault transients.
//   * `EventLoopProfiler` — wall-clock self-profile of the event loop:
//     events and time per source, plus scheduler-pop and estimate-lookup
//     costs inside dispatch, printed as a table.  The only observer that
//     reads a real clock; it still never touches simulated state.
//
// `simulate(scenario, &observation)` moves the scenario's observers into
// `observation` after the run so callers can export (see lumos_cli serve
// --trace-out / --timeline-out / --profile).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/table.hpp"
#include "serve/faults.hpp"
#include "serve/trace.hpp"
#include "serve/workload.hpp"

namespace lumos::serve {

// ---------------------------------------------------------------------------
// Configuration (lives in Scenario::observe; all disabled by default)
// ---------------------------------------------------------------------------

// Lifecycle-tracer knobs.  `sample` is the traced fraction of requests,
// selected by a deterministic hash of the request id (independent of event
// interleaving and of which requests other observers see); batch spans are
// recorded for every dispatch regardless of sampling.
struct TracerConfig {
  bool enabled = false;
  double sample = 1.0;   // fraction of requests traced, in [0, 1]
  std::uint64_t seed = 1;  // id-hash salt (distinct seeds trace distinct subsets)
  std::size_t max_request_events = 1u << 20;  // request-event saturation bound
  std::size_t max_batch_spans = 1u << 16;     // batch-span ring capacity
};

// Timeline-recorder knobs: one row of counters/gauges per `window_s` of
// simulated time.
struct TimelineConfig {
  bool enabled = false;
  double window_s = 1e-3;
};

struct ObserveConfig {
  TracerConfig trace;
  TimelineConfig timeline;
  bool profile = false;  // event-loop self-profiling (wall clock)

  [[nodiscard]] bool enabled() const noexcept {
    return trace.enabled || timeline.enabled || profile;
  }
};

// Throws `InvalidArgument` naming the bad field (sample outside [0, 1], zero
// buffer capacities, non-positive / non-finite window).  A fully disabled
// config is always valid.
void validate_observe(const ObserveConfig& config);

// ---------------------------------------------------------------------------
// Observer interface
// ---------------------------------------------------------------------------

// Passive subscriber to the event loop.  Every hook defaults to a no-op, so
// an observer overrides only what it needs.  Hooks are called in the loop's
// deterministic event order with simulated timestamps; observers must not
// mutate simulation state (they receive const views only).
class Observer {
 public:
  virtual ~Observer() = default;

  // A fleet slot came into existence (initial slots at t=0, grown slots at
  // their activation instant).  `spec` is the slot's registry spec name.
  virtual void on_slot_added(std::size_t slot, const std::string& spec, double now_s) {
    (void)slot, (void)spec, (void)now_s;
  }
  // A fresh request was pulled from the traffic source (retried attempts
  // re-enter through `on_retry`, not here).
  virtual void on_arrival(const Request& request, double now_s) {
    (void)request, (void)now_s;
  }
  // Admission verdict for an arriving attempt (fresh or retried).  A false
  // verdict is terminal: `on_complete` follows with kShed.
  virtual void on_admission(const Request& request, double now_s, bool admitted) {
    (void)request, (void)now_s, (void)admitted;
  }
  // A batch left the queue for slot `slot` (dispatch seq `seq`), due back at
  // `done_s`.
  virtual void on_dispatch(std::size_t slot, std::uint64_t seq,
                           const std::vector<Request>& batch, double now_s,
                           double done_s) {
    (void)slot, (void)seq, (void)batch, (void)now_s, (void)done_s;
  }
  // The in-flight batch on `slot` finished (span [start_s, end_s]).
  virtual void on_batch_complete(std::size_t slot, std::uint64_t seq, double start_s,
                                 double end_s, std::size_t size) {
    (void)slot, (void)seq, (void)start_s, (void)end_s, (void)size;
  }
  // The in-flight batch on `slot` was aborted by a slot failure at `abort_s`;
  // its requests requeue (one `on_requeue` each).
  virtual void on_batch_abort(std::size_t slot, std::uint64_t seq, double start_s,
                              double abort_s, std::size_t size) {
    (void)slot, (void)seq, (void)start_s, (void)abort_s, (void)size;
  }
  virtual void on_requeue(const Request& request, double now_s) {
    (void)request, (void)now_s;
  }
  // An attempt exceeded its timeout.  `will_retry` says whether a retried
  // attempt follows (`on_retry`) or the request terminates (kTimeout).
  virtual void on_attempt_timeout(const Request& request, double now_s, bool will_retry) {
    (void)request, (void)now_s, (void)will_retry;
  }
  // A retried attempt was scheduled to re-arrive at `reissue_s`.
  virtual void on_retry(const Request& request, double now_s, double reissue_s) {
    (void)request, (void)now_s, (void)reissue_s;
  }
  // Terminal outcome of one logical request (exactly one call per request,
  // mirroring TrafficSource::on_complete).  `latency_s` is client-perceived
  // (first issue to now); `within_slo` is false for non-kOk terminals.
  virtual void on_complete(const Request& request, double now_s, CompletionStatus status,
                           double latency_s, bool within_slo) {
    (void)request, (void)now_s, (void)status, (void)latency_s, (void)within_slo;
  }
  virtual void on_slot_failure(std::size_t slot, double now_s) { (void)slot, (void)now_s; }
  virtual void on_slot_recovery(std::size_t slot, double now_s) { (void)slot, (void)now_s; }
  // The autoscaler applied a delta to `family` (+1 grow, -1 shrink).
  virtual void on_autoscale(std::size_t family, int delta, double now_s) {
    (void)family, (void)delta, (void)now_s;
  }
  // One event-loop iteration advanced simulated time to `now_s`.  Gauge
  // snapshot: queued requests, active (dispatchable-family) slots, failed
  // slots.
  virtual void on_tick(double now_s, std::size_t queued, std::size_t active_slots,
                       std::size_t failed_slots) {
    (void)now_s, (void)queued, (void)active_slots, (void)failed_slots;
  }
  // The loop drained; `end_s` is the simulation's final instant.
  virtual void finish(double end_s) { (void)end_s; }
};

// ---------------------------------------------------------------------------
// Lifecycle tracer
// ---------------------------------------------------------------------------

// One recorded transition of a sampled request.
enum class RequestEventKind : std::uint8_t {
  kArrival,         // fresh arrival pulled from the source
  kShed,            // rejected by admission (terminal)
  kDispatch,        // left the queue for a slot
  kRequeue,         // batch aborted by a slot failure; back to the queue
  kAttemptTimeout,  // attempt past its deadline
  kRetry,           // retried attempt scheduled
  kComplete,        // completed (terminal)
  kTimeout,         // timed out with no retry budget (terminal)
};

struct RequestEvent {
  double time_s = 0.0;
  std::uint64_t id = 0;
  std::uint32_t workload = 0;
  std::uint32_t attempt = 0;
  std::int32_t slot = -1;  // kDispatch: target slot; -1 otherwise
  RequestEventKind kind = RequestEventKind::kArrival;
};

// One slot's served (or aborted) batch.
struct BatchSpan {
  double start_s = 0.0;
  double end_s = 0.0;
  std::uint64_t seq = 0;  // dispatch seq
  std::uint32_t slot = 0;
  std::uint32_t workload = 0;
  std::uint32_t size = 0;
  bool aborted = false;
};

// Deterministic id-hash request sampler (SplitMix64 over id ^ salt).  Exposed
// so tests and future observers can reuse the exact sampling decision.
[[nodiscard]] bool trace_sampled(std::uint64_t id, std::uint64_t seed, double sample);

class LifecycleTracer final : public Observer {
 public:
  // `catalog` must outlive the tracer (workload names in the export).
  LifecycleTracer(const TracerConfig& config, const WorkloadCatalog& catalog);

  void on_slot_added(std::size_t slot, const std::string& spec, double now_s) override;
  void on_arrival(const Request& request, double now_s) override;
  void on_dispatch(std::size_t slot, std::uint64_t seq, const std::vector<Request>& batch,
                   double now_s, double done_s) override;
  void on_batch_complete(std::size_t slot, std::uint64_t seq, double start_s, double end_s,
                         std::size_t size) override;
  void on_batch_abort(std::size_t slot, std::uint64_t seq, double start_s, double abort_s,
                      std::size_t size) override;
  void on_requeue(const Request& request, double now_s) override;
  void on_attempt_timeout(const Request& request, double now_s, bool will_retry) override;
  void on_retry(const Request& request, double now_s, double reissue_s) override;
  void on_complete(const Request& request, double now_s, CompletionStatus status,
                   double latency_s, bool within_slo) override;

  // Recorded request events, in event-loop (chronological) order.
  [[nodiscard]] const std::vector<RequestEvent>& request_events() const noexcept {
    return events_;
  }
  // Batch-span ring contents in ring order (use `span.seq` to sort by
  // dispatch when the ring wrapped).
  [[nodiscard]] const std::vector<BatchSpan>& batch_spans() const noexcept {
    return spans_;
  }
  // Requests that arrived while the event buffer was saturated (they were
  // not sampled; their spans are absent, not truncated).
  [[nodiscard]] std::size_t dropped_requests() const noexcept { return dropped_requests_; }
  // Batch spans overwritten by the ring.
  [[nodiscard]] std::size_t dropped_batch_spans() const noexcept { return dropped_spans_; }
  [[nodiscard]] std::size_t sampled_requests() const noexcept { return sampled_requests_; }

  // Chrome trace_event JSON ({"traceEvents": [...]}; timestamps in us).
  // Loadable in chrome://tracing and Perfetto; validated by
  // tools/validate_trace.py.
  void write_chrome_trace(std::ostream& os) const;

 private:
  static constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

  void record(const Request& request, double time_s, RequestEventKind kind,
              std::int32_t slot = -1);
  [[nodiscard]] bool sampled(std::uint64_t id) const noexcept;

  TracerConfig config_;
  const WorkloadCatalog* catalog_;
  std::vector<std::string> slot_specs_;  // slot index -> registry spec name
  std::vector<RequestEvent> events_;
  std::vector<BatchSpan> spans_;  // ring buffer once max_batch_spans is hit
  std::size_t span_next_ = 0;     // ring write cursor
  // Per-slot index into `spans_` of the slot's in-flight batch (kNoSpan when
  // idle): lets a failure cut the right span short.
  std::vector<std::size_t> slot_open_span_;
  // Sampled requests still in flight; keeps saturation from truncating a
  // request's span mid-lifecycle.
  std::unordered_set<std::uint64_t> live_ids_;
  std::size_t sampled_requests_ = 0;
  std::size_t dropped_requests_ = 0;
  std::size_t dropped_spans_ = 0;
  bool saturated_ = false;
};

// ---------------------------------------------------------------------------
// Timeline recorder
// ---------------------------------------------------------------------------

// Counters and gauges of one fixed window of simulated time.  Counters are
// events inside the window; gauges are the last (and max, for queue depth)
// `on_tick` snapshot inside it.
struct TimelineWindow {
  std::size_t arrivals = 0;
  std::size_t admitted = 0;
  std::size_t shed = 0;
  std::size_t completed = 0;
  std::size_t within_slo = 0;
  std::size_t timed_out = 0;
  std::size_t attempt_timeouts = 0;
  std::size_t retries = 0;
  std::size_t requeued = 0;
  std::size_t dispatches = 0;
  std::size_t batch_aborts = 0;
  std::size_t slot_failures = 0;
  std::size_t slot_recoveries = 0;
  std::size_t autoscale_grows = 0;
  std::size_t autoscale_shrinks = 0;
  std::size_t queue_depth_last = 0;
  std::size_t queue_depth_max = 0;
  std::size_t active_slots = 0;
  std::size_t failed_slots = 0;
  // Per catalog entry: completions and within-SLO completions in the window.
  std::vector<std::size_t> tenant_completed;
  std::vector<std::size_t> tenant_within_slo;
};

class TimelineRecorder final : public Observer {
 public:
  // `catalog` must outlive the recorder (tenant names in the export).
  TimelineRecorder(const TimelineConfig& config, const WorkloadCatalog& catalog);

  void on_arrival(const Request& request, double now_s) override;
  void on_admission(const Request& request, double now_s, bool admitted) override;
  void on_dispatch(std::size_t slot, std::uint64_t seq, const std::vector<Request>& batch,
                   double now_s, double done_s) override;
  void on_batch_abort(std::size_t slot, std::uint64_t seq, double start_s, double abort_s,
                      std::size_t size) override;
  void on_requeue(const Request& request, double now_s) override;
  void on_attempt_timeout(const Request& request, double now_s, bool will_retry) override;
  void on_retry(const Request& request, double now_s, double reissue_s) override;
  void on_complete(const Request& request, double now_s, CompletionStatus status,
                   double latency_s, bool within_slo) override;
  void on_slot_failure(std::size_t slot, double now_s) override;
  void on_slot_recovery(std::size_t slot, double now_s) override;
  void on_autoscale(std::size_t family, int delta, double now_s) override;
  void on_tick(double now_s, std::size_t queued, std::size_t active_slots,
               std::size_t failed_slots) override;
  void finish(double end_s) override;

  [[nodiscard]] double window_s() const noexcept { return config_.window_s; }
  [[nodiscard]] const std::vector<TimelineWindow>& windows() const noexcept {
    return windows_;
  }

  // One CSV row per window: t_start_s, counters, gauges, derived
  // throughput/goodput QPS, then per-tenant `<name>_completed` /
  // `<name>_within_slo` columns (README documents the layout).
  void write_csv(std::ostream& os) const;
  // The same series as one JSON object ({"window_s": ..., "tenants": [...],
  // "windows": [...]}).
  void write_json(std::ostream& os) const;

 private:
  [[nodiscard]] TimelineWindow& window_at(double time_s);

  TimelineConfig config_;
  double inv_window_s_ = 0.0;  // 1 / window_s: multiply beats divide per event
  const WorkloadCatalog* catalog_;
  std::vector<TimelineWindow> windows_;
};

// ---------------------------------------------------------------------------
// Event-loop profiler
// ---------------------------------------------------------------------------

// Where event-loop wall time goes.  kDispatch is inclusive of its two
// sub-sources (kSchedulerPop, kEstimate), reported separately so "the
// scheduler is the bottleneck" and "the estimate cache is the bottleneck"
// are directly readable.
enum class LoopSource : std::uint8_t {
  kCompletions = 0,  // completion-heap drain
  kFaults,           // fault-process transitions
  kArrivals,         // traffic-source pulls + admission
  kRetries,          // retry-heap re-issues
  kAutoscale,        // autoscaler evaluation steps
  kDispatch,         // batch formation + routing (inclusive)
  kSchedulerPop,     // scheduler ready/pop inside dispatch
  kEstimate,         // estimate-cache lookups inside dispatch
  kCount,
};

[[nodiscard]] const char* loop_source_name(LoopSource source) noexcept;

// Wall-clock self-profile of one simulation's event loop.  The only observer
// holding a real clock; it reads `steady_clock` only when enabled, so
// unprofiled runs never pay for a clock call.
class EventLoopProfiler {
 public:
  using Clock = std::chrono::steady_clock;

  // Adds `events` events and the wall time since `t0` to `source`.
  void record(LoopSource source, Clock::time_point t0, std::uint64_t events) noexcept;
  void add_iterations(std::uint64_t iterations) noexcept { iterations_ += iterations; }

  [[nodiscard]] std::uint64_t events(LoopSource source) const noexcept;
  [[nodiscard]] double wall_s(LoopSource source) const noexcept;
  [[nodiscard]] std::uint64_t iterations() const noexcept { return iterations_; }
  // Sum over the non-overlapping sources (kSchedulerPop / kEstimate are
  // subsets of kDispatch and excluded).
  [[nodiscard]] double accounted_wall_s() const noexcept;

  // source | events | wall ms | ns/event | share of accounted time.
  [[nodiscard]] Table to_table(const std::string& title) const;

 private:
  std::uint64_t events_[static_cast<std::size_t>(LoopSource::kCount)] = {};
  double wall_s_[static_cast<std::size_t>(LoopSource::kCount)] = {};
  std::uint64_t iterations_ = 0;
};

// ---------------------------------------------------------------------------
// Hub + observation handoff
// ---------------------------------------------------------------------------

// The observers of one run, handed back to the caller by
// `simulate(scenario, &observation)` for export.  Null members were not
// enabled in the scenario.
struct Observation {
  std::unique_ptr<LifecycleTracer> tracer;
  std::unique_ptr<TimelineRecorder> timeline;
  std::unique_ptr<EventLoopProfiler> profiler;
};

// Owns the configured observers of one simulation and fans every hook out to
// them.  The simulator holds a null hub for unobserved runs, so the disabled
// path is one branch per hook site.
class ObserverHub {
 public:
  // Validates `config`; `catalog` must outlive the hub.
  ObserverHub(const ObserveConfig& config, const WorkloadCatalog& catalog);

  // Registers an additional custom observer (tests, future exporters).
  void add(std::unique_ptr<Observer> observer);

  [[nodiscard]] EventLoopProfiler* profiler() noexcept { return profiler_.get(); }

  void on_slot_added(std::size_t slot, const std::string& spec, double now_s);
  void on_arrival(const Request& request, double now_s);
  void on_admission(const Request& request, double now_s, bool admitted);
  void on_dispatch(std::size_t slot, std::uint64_t seq, const std::vector<Request>& batch,
                   double now_s, double done_s);
  void on_batch_complete(std::size_t slot, std::uint64_t seq, double start_s, double end_s,
                         std::size_t size);
  void on_batch_abort(std::size_t slot, std::uint64_t seq, double start_s, double abort_s,
                      std::size_t size);
  void on_requeue(const Request& request, double now_s);
  void on_attempt_timeout(const Request& request, double now_s, bool will_retry);
  void on_retry(const Request& request, double now_s, double reissue_s);
  void on_complete(const Request& request, double now_s, CompletionStatus status,
                   double latency_s, bool within_slo);
  void on_slot_failure(std::size_t slot, double now_s);
  void on_slot_recovery(std::size_t slot, double now_s);
  void on_autoscale(std::size_t family, int delta, double now_s);
  void on_tick(double now_s, std::size_t queued, std::size_t active_slots,
               std::size_t failed_slots);
  void finish(double end_s);

  // Releases the owned observers (call after `finish`).
  [[nodiscard]] Observation take();

 private:
  // The built-in observers are held by concrete (final) type and called
  // directly, so their hooks devirtualise and unoverridden no-ops inline away
  // — the fan-out loop only runs for registered custom observers.
  std::unique_ptr<LifecycleTracer> tracer_;
  std::unique_ptr<TimelineRecorder> timeline_;
  std::unique_ptr<EventLoopProfiler> profiler_;
  std::vector<std::unique_ptr<Observer>> custom_;
};

}  // namespace lumos::serve
