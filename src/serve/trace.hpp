// Open-loop request traces for the serving simulator.
//
// Traces are materialised up front (arrival time + workload index + sampled
// sequence length per request) so a simulation is exactly replayable: the
// same `TraceConfig` always produces the same trace, independent of
// scheduler, fleet, and `LUMOS_THREADS`.  Arrival processes: Poisson, and a
// two-state Markov-modulated Poisson process (bursty) whose long-run rate
// equals the offered QPS.  Arrival times, the workload mix, and sequence
// lengths draw from independent rng streams, so catalogs whose entries are
// all fixed-length produce arrival sequences bit-identical to pre-seqlen
// traces.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/workload.hpp"

namespace lumos::serve {

struct Request {
  // Open-loop requests have no session.
  static constexpr std::uint32_t kNoSession = 0xFFFFFFFFu;

  std::uint64_t id = 0;
  double arrival_s = 0.0;
  std::uint32_t workload = 0;  // WorkloadCatalog index
  // Sampled sequence length (bucketised; see SeqLenConfig); 0 means "the
  // entry's native config" — the only value fixed-length entries produce.
  std::uint32_t seq_len = 0;
  // Closed-loop session that issued the request (kNoSession for open loop).
  std::uint32_t session = kNoSession;
  // Retry attempt index (0: first issue).  Retried requests keep their id and
  // bump this; `arrival_s` moves to the re-issue instant while
  // `first_arrival_s` keeps the client-perceived start (the simulator scores
  // latency from it).
  std::uint32_t attempt = 0;
  double first_arrival_s = 0.0;
  // Sampled decode length: tokens to generate after the prefill (see
  // DecodeConfig).  0 — the only value decode-disabled entries produce —
  // means the request completes at its prefill, as in the pre-decode loop.
  std::uint32_t decode_tokens = 0;
};

enum class ArrivalProcess { kPoisson, kBursty };

struct TraceConfig {
  double offered_qps = 1000.0;
  std::size_t request_count = 100000;
  ArrivalProcess process = ArrivalProcess::kPoisson;
  // Bursty process: the high state arrives `burst_multiplier` times faster
  // than the low state, is occupied `burst_fraction` of the time in the long
  // run, and has exponentially distributed dwells of mean `mean_burst_s`.
  double burst_multiplier = 4.0;
  double burst_fraction = 0.2;
  double mean_burst_s = 0.05;
  std::uint64_t seed = 1;
};

// Arrival-time-ordered trace over `catalog`'s mix (weights are the workloads'
// `mix_weight`s; sequence lengths sample each entry's `seqlen` distribution).
[[nodiscard]] std::vector<Request> generate_trace(const WorkloadCatalog& catalog,
                                                  const TraceConfig& config);

}  // namespace lumos::serve
