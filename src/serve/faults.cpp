#include "serve/faults.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "common/error.hpp"

namespace lumos::serve {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
// Stream bases keep fault draws and retry jitter off every existing stream
// (traces, sessions, tenant assignment).
constexpr std::uint64_t kFaultStreamBase = 0xFA117;
constexpr std::uint64_t kJitterStreamBase = 0x8ACC0FF;
}  // namespace

void validate_faults(const FaultConfig& config) {
  if (!std::isfinite(config.mtbf_s)) {
    throw InvalidArgument("FaultConfig.mtbf_s must be finite, got " +
                          std::to_string(config.mtbf_s));
  }
  if (!config.enabled()) return;
  if (!(config.mttr_s > 0.0) || !std::isfinite(config.mttr_s)) {
    throw InvalidArgument("FaultConfig.mttr_s must be positive and finite, got " +
                          std::to_string(config.mttr_s));
  }
}

void validate_retry(const RetryPolicy& policy) {
  if (policy.max_attempts < 1) {
    throw InvalidArgument("RetryPolicy.max_attempts must be >= 1 (1 means no retries)");
  }
  if (!(policy.base_backoff_s >= 0.0) || !std::isfinite(policy.base_backoff_s)) {
    throw InvalidArgument("RetryPolicy.base_backoff_s must be finite and >= 0, got " +
                          std::to_string(policy.base_backoff_s));
  }
  if (!(policy.multiplier >= 1.0) || !std::isfinite(policy.multiplier)) {
    throw InvalidArgument("RetryPolicy.multiplier must be finite and >= 1, got " +
                          std::to_string(policy.multiplier));
  }
  if (!(policy.jitter >= 0.0) || policy.jitter >= 1.0) {
    throw InvalidArgument("RetryPolicy.jitter must be in [0, 1), got " +
                          std::to_string(policy.jitter));
  }
}

double retry_backoff_s(const RetryPolicy& policy, std::uint64_t request_id,
                       std::size_t attempt) {
  LUMOS_EXPECTS(attempt >= 1);  // attempt 0 is the first issue, never backed off
  double backoff = policy.base_backoff_s;
  for (std::size_t k = 1; k < attempt; ++k) backoff *= policy.multiplier;
  if (policy.jitter > 0.0) {
    // One fresh stream per (request, attempt): the draw cannot depend on how
    // many other requests retried before this one.
    Rng rng(policy.seed, kJitterStreamBase + request_id * 31 + attempt);
    backoff *= rng.uniform(1.0 - policy.jitter, 1.0 + policy.jitter);
  }
  return backoff;
}

void validate_admission(const AdmissionConfig& config) {
  if (config.policy == AdmissionPolicy::kNone) return;
  if (config.policy != AdmissionPolicy::kSloAware && config.queue_cap < 1) {
    throw InvalidArgument("AdmissionConfig.queue_cap must be >= 1");
  }
  if (config.policy == AdmissionPolicy::kTierShed &&
      (!(config.tier_shed_factor > 0.0) || config.tier_shed_factor > 1.0)) {
    throw InvalidArgument("AdmissionConfig.tier_shed_factor must be in (0, 1], got " +
                          std::to_string(config.tier_shed_factor));
  }
  if (config.policy == AdmissionPolicy::kSloAware &&
      (!(config.slo_margin > 0.0) || !std::isfinite(config.slo_margin))) {
    throw InvalidArgument("AdmissionConfig.slo_margin must be positive and finite, got " +
                          std::to_string(config.slo_margin));
  }
}

namespace {

class QueueCapAdmission final : public AdmissionController {
 public:
  explicit QueueCapAdmission(const AdmissionConfig& config) : config_(config) {}
  [[nodiscard]] AdmissionPolicy policy() const noexcept override {
    return AdmissionPolicy::kQueueCap;
  }
  [[nodiscard]] bool admit(const AdmissionSignals& s) override {
    return s.queued < config_.queue_cap;
  }

 private:
  AdmissionConfig config_;
};

// DAGOR-shaped tiered shedding: tier k is admitted while the queue is below
// queue_cap * tier_shed_factor^k, so under mounting backlog the lowest tiers
// stop being admitted first and tier 0 keeps (almost) the whole cap.
class TierShedAdmission final : public AdmissionController {
 public:
  explicit TierShedAdmission(const AdmissionConfig& config) : config_(config) {}
  [[nodiscard]] AdmissionPolicy policy() const noexcept override {
    return AdmissionPolicy::kTierShed;
  }
  [[nodiscard]] bool admit(const AdmissionSignals& s) override {
    double cap = static_cast<double>(config_.queue_cap);
    for (std::uint32_t k = 0; k < s.tier; ++k) cap *= config_.tier_shed_factor;
    return static_cast<double>(s.queued) < cap;
  }

 private:
  AdmissionConfig config_;
};

// Breakwater-shaped cost-based rejection: admit only while the predicted
// completion latency (queue drain ahead of the request plus its own service)
// fits within `slo_margin` of the SLO it will be scored against.
class SloAwareAdmission final : public AdmissionController {
 public:
  explicit SloAwareAdmission(const AdmissionConfig& config) : config_(config) {}
  [[nodiscard]] AdmissionPolicy policy() const noexcept override {
    return AdmissionPolicy::kSloAware;
  }
  [[nodiscard]] bool admit(const AdmissionSignals& s) override {
    return s.predicted_wait_s + s.service_s <= config_.slo_margin * s.slo_s;
  }

 private:
  AdmissionConfig config_;
};

}  // namespace

std::unique_ptr<AdmissionController> make_admission(const AdmissionConfig& config) {
  validate_admission(config);
  switch (config.policy) {
    case AdmissionPolicy::kQueueCap:
      return std::make_unique<QueueCapAdmission>(config);
    case AdmissionPolicy::kTierShed:
      return std::make_unique<TierShedAdmission>(config);
    case AdmissionPolicy::kSloAware:
      return std::make_unique<SloAwareAdmission>(config);
    case AdmissionPolicy::kNone:
      break;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// SlotFaultProcess
// ---------------------------------------------------------------------------

SlotFaultProcess::SlotFaultProcess(const FaultConfig& config) : config_(config) {
  validate_faults(config);
  LUMOS_EXPECTS_MSG(config.enabled(), "SlotFaultProcess needs an enabled FaultConfig");
}

void SlotFaultProcess::add_slot(double now_s) {
  State s;
  s.rng = Rng(config_.seed, kFaultStreamBase + states_.size());
  s.tracked = true;
  s.up = true;
  s.next_s = now_s + s.rng.exponential(config_.mtbf_s);
  states_.push_back(std::move(s));
}

void SlotFaultProcess::remove_slot(std::size_t slot) {
  LUMOS_EXPECTS(slot < states_.size());
  states_[slot].tracked = false;
}

bool SlotFaultProcess::up(std::size_t slot) const noexcept {
  return slot < states_.size() ? states_[slot].up : true;
}

double SlotFaultProcess::next_event_s() const noexcept {
  double next = kNever;
  for (const State& s : states_) {
    if (s.tracked && s.next_s < next) next = s.next_s;
  }
  return next;
}

std::size_t SlotFaultProcess::next_event_slot() const noexcept {
  double next = kNever;
  std::size_t slot = kNoSlot;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const State& s = states_[i];
    if (s.tracked && s.next_s < next) {
      next = s.next_s;
      slot = i;
    }
  }
  return slot;
}

bool SlotFaultProcess::advance(std::size_t slot) {
  LUMOS_EXPECTS(slot < states_.size());
  State& s = states_[slot];
  LUMOS_EXPECTS(s.tracked);
  const double now_s = s.next_s;
  s.up = !s.up;
  s.next_s = now_s + s.rng.exponential(s.up ? config_.mtbf_s : config_.mttr_s);
  return s.up;
}

}  // namespace lumos::serve
