#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sim/registry.hpp"

namespace lumos::serve {

void validate_seqlen(const SeqLenConfig& config, const std::string& workload) {
  if (config.dist == SeqLenDist::kFixed) return;
  if (config.bucket < 1) {
    throw InvalidArgument("seqlen.bucket for workload '" + workload + "' must be >= 1");
  }
  if (config.min_len < 1 || config.max_len < config.min_len) {
    throw InvalidArgument("seqlen bounds for workload '" + workload +
                          "' must satisfy 1 <= min_len <= max_len, got [" +
                          std::to_string(config.min_len) + ", " +
                          std::to_string(config.max_len) + "]");
  }
  if (config.max_len > 0xFFFFFFFFull) {
    throw InvalidArgument("seqlen.max_len for workload '" + workload +
                          "' must fit 32 bits");
  }
  if (config.dist == SeqLenDist::kLogNormal &&
      (!std::isfinite(config.log_mean) || !(config.log_sigma > 0.0) ||
       !std::isfinite(config.log_sigma))) {
    throw InvalidArgument("seqlen log-normal parameters for workload '" + workload +
                          "' must be finite with log_sigma > 0");
  }
}

std::uint32_t sample_seq_len(const SeqLenConfig& config, Rng& rng) {
  if (config.dist == SeqLenDist::kFixed) return 0;
  double len;
  if (config.dist == SeqLenDist::kUniform) {
    const auto span = static_cast<std::uint32_t>(config.max_len - config.min_len + 1);
    len = static_cast<double>(config.min_len + rng.next_below(span));
  } else {
    len = std::exp(rng.normal(config.log_mean, config.log_sigma));
  }
  const double clamped = std::clamp(len, static_cast<double>(config.min_len),
                                    static_cast<double>(config.max_len));
  // Discretise: round up to the bucket grid, capped at max_len (which may sit
  // off-grid — then max_len itself is the last bucket).
  const auto bucket = static_cast<std::uint64_t>(config.bucket);
  const auto raw = static_cast<std::uint64_t>(std::ceil(clamped));
  const std::uint64_t gridded = ((raw + bucket - 1) / bucket) * bucket;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(gridded, static_cast<std::uint64_t>(config.max_len)));
}

void validate_decode(const DecodeConfig& config, const std::string& workload) {
  if (!config.enabled()) return;
  if (config.ctx_bucket < 1) {
    throw InvalidArgument("decode.ctx_bucket for workload '" + workload + "' must be >= 1");
  }
  if (config.dist == SeqLenDist::kFixed) {
    if (config.tokens > 0xFFFFFFFFull) {
      throw InvalidArgument("decode.tokens for workload '" + workload +
                            "' must fit 32 bits");
    }
  } else {
    if (config.min_tokens < 1 || config.max_tokens < config.min_tokens) {
      throw InvalidArgument("decode bounds for workload '" + workload +
                            "' must satisfy 1 <= min_tokens <= max_tokens, got [" +
                            std::to_string(config.min_tokens) + ", " +
                            std::to_string(config.max_tokens) + "]");
    }
    if (config.max_tokens > 0xFFFFFFFFull) {
      throw InvalidArgument("decode.max_tokens for workload '" + workload +
                            "' must fit 32 bits");
    }
  }
  if (config.dist == SeqLenDist::kLogNormal &&
      (!std::isfinite(config.log_mean) || !(config.log_sigma > 0.0) ||
       !std::isfinite(config.log_sigma))) {
    throw InvalidArgument("decode log-normal parameters for workload '" + workload +
                          "' must be finite with log_sigma > 0");
  }
  for (const auto& [slo, what] : {std::pair<double, const char*>{config.ttft_slo_s, "ttft_slo_s"},
                                  {config.tpot_slo_s, "tpot_slo_s"}}) {
    if (slo < 0.0 || !std::isfinite(slo)) {
      throw InvalidArgument(std::string("decode.") + what + " for workload '" + workload +
                            "' must be >= 0 and finite, got " + std::to_string(slo));
    }
  }
}

std::uint32_t sample_decode_tokens(const DecodeConfig& config, Rng& rng) {
  if (!config.enabled()) return 0;
  if (config.dist == SeqLenDist::kFixed) return static_cast<std::uint32_t>(config.tokens);
  double tokens;
  if (config.dist == SeqLenDist::kUniform) {
    const auto span = static_cast<std::uint32_t>(config.max_tokens - config.min_tokens + 1);
    tokens = static_cast<double>(config.min_tokens + rng.next_below(span));
  } else {
    tokens = std::exp(rng.normal(config.log_mean, config.log_sigma));
  }
  const double clamped = std::clamp(tokens, static_cast<double>(config.min_tokens),
                                    static_cast<double>(config.max_tokens));
  return static_cast<std::uint32_t>(std::ceil(clamped));
}

void WorkloadCatalog::add(arch::Workload workload, double weight) {
  if (!(weight > 0.0) || !std::isfinite(weight)) {
    throw InvalidArgument("mix_weight for workload '" + workload.name() +
                          "' must be positive and finite, got " + std::to_string(weight));
  }
  entries_.push_back(CatalogEntry{std::move(workload), weight, 0.0, 0, SeqLenConfig{}, 0.0,
                                  DecodeConfig{}});
}

void WorkloadCatalog::add_transformer(std::string name, nn::TransformerConfig config,
                                      double weight) {
  add(arch::Workload::transformer(std::move(name), std::move(config)), weight);
}

void WorkloadCatalog::add_gnn(std::string name, gnn::GnnModelConfig model,
                              graph::GraphDataset dataset, double weight) {
  std::shared_ptr<const graph::GraphDataset> shared;
  for (const auto& existing : datasets_) {
    if (existing->name == dataset.name) {
      shared = existing;
      break;
    }
  }
  if (!shared) {
    shared = std::make_shared<const graph::GraphDataset>(std::move(dataset));
    datasets_.push_back(shared);
  }
  add(arch::Workload::gnn(std::move(name), std::move(model), std::move(shared)), weight);
}

void WorkloadCatalog::set_slo(std::size_t i, double slo_latency_s) {
  LUMOS_EXPECTS(i < entries_.size());
  if (!(slo_latency_s > 0.0) || !std::isfinite(slo_latency_s)) {
    throw InvalidArgument("slo_latency_s for workload '" + entries_[i].workload.name() +
                          "' must be positive and finite, got " +
                          std::to_string(slo_latency_s));
  }
  entries_[i].slo_latency_s = slo_latency_s;
}

void WorkloadCatalog::set_priority(std::size_t i, std::uint32_t priority) {
  LUMOS_EXPECTS(i < entries_.size());
  entries_[i].priority = priority;
}

void WorkloadCatalog::set_timeout(std::size_t i, double timeout_s) {
  LUMOS_EXPECTS(i < entries_.size());
  if (!(timeout_s > 0.0) || !std::isfinite(timeout_s)) {
    throw InvalidArgument("timeout_s for workload '" + entries_[i].workload.name() +
                          "' must be positive and finite, got " +
                          std::to_string(timeout_s));
  }
  entries_[i].timeout_s = timeout_s;
}

void WorkloadCatalog::apply_timeout(double timeout_s) {
  for (std::size_t i = 0; i < entries_.size(); ++i) set_timeout(i, timeout_s);
}

void WorkloadCatalog::apply_default_tiers() {
  if (entries_.empty()) return;
  const double mean = total_weight() / static_cast<double>(entries_.size());
  for (CatalogEntry& e : entries_) e.priority = e.mix_weight >= mean ? 0 : 1;
}

void WorkloadCatalog::set_seqlen(std::size_t i, const SeqLenConfig& config) {
  LUMOS_EXPECTS(i < entries_.size());
  CatalogEntry& e = entries_[i];
  validate_seqlen(config, e.workload.name());
  if (config.dist != SeqLenDist::kFixed &&
      e.workload.kind() != arch::WorkloadKind::kTransformer) {
    throw InvalidArgument("workload '" + e.workload.name() + "' is a " +
                          arch::workload_kind_name(e.workload.kind()) +
                          " workload and cannot sample sequence lengths");
  }
  e.seqlen = config;
}

void WorkloadCatalog::apply_seqlen_dist(SeqLenDist dist) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const CatalogEntry& e = entries_[i];
    if (e.workload.kind() != arch::WorkloadKind::kTransformer) continue;
    if (dist == SeqLenDist::kFixed) {
      set_seqlen(i, SeqLenConfig{});
      continue;
    }
    const std::size_t native = e.workload.transformer_config().seq_len;
    SeqLenConfig cfg;
    cfg.dist = dist;
    if (dist == SeqLenDist::kUniform) {
      cfg.min_len = std::max<std::size_t>(16, native / 2);
      cfg.max_len = std::max<std::size_t>(cfg.min_len, 2 * native);
    } else {
      cfg.min_len = 16;
      cfg.max_len = std::max<std::size_t>(cfg.min_len, 4 * native);
      cfg.log_mean = std::log(static_cast<double>(std::max<std::size_t>(native, 1)));
      cfg.log_sigma = 0.5;
    }
    set_seqlen(i, cfg);
  }
}

void WorkloadCatalog::set_decode(std::size_t i, const DecodeConfig& config) {
  LUMOS_EXPECTS(i < entries_.size());
  CatalogEntry& e = entries_[i];
  validate_decode(config, e.workload.name());
  if (config.enabled() && e.workload.kind() != arch::WorkloadKind::kTransformer) {
    throw InvalidArgument("workload '" + e.workload.name() + "' is a " +
                          arch::workload_kind_name(e.workload.kind()) +
                          " workload and cannot decode tokens");
  }
  e.decode = config;
}

void WorkloadCatalog::apply_decode(SeqLenDist dist, std::size_t tokens) {
  if (tokens == 0) throw InvalidArgument("apply_decode: tokens must be >= 1");
  bool any = false;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const CatalogEntry& e = entries_[i];
    if (e.workload.kind() != arch::WorkloadKind::kTransformer) continue;
    any = true;
    DecodeConfig cfg;
    cfg.dist = dist;
    if (dist == SeqLenDist::kFixed) {
      cfg.tokens = tokens;
    } else if (dist == SeqLenDist::kUniform) {
      cfg.min_tokens = std::max<std::size_t>(1, tokens / 2);
      cfg.max_tokens = std::max<std::size_t>(cfg.min_tokens, 2 * tokens);
    } else {
      cfg.min_tokens = 1;
      cfg.max_tokens = std::max<std::size_t>(1, 4 * tokens);
      cfg.log_mean = std::log(static_cast<double>(tokens));
      cfg.log_sigma = 0.5;
    }
    set_decode(i, cfg);
  }
  if (!any) {
    throw InvalidArgument(
        "apply_decode: catalog holds no transformer entry to decode on");
  }
}

void WorkloadCatalog::apply_token_slos(double ttft_slo_s, double tpot_slo_s) {
  for (CatalogEntry& e : entries_) {
    if (!e.decode.enabled()) continue;
    DecodeConfig cfg = e.decode;
    cfg.ttft_slo_s = ttft_slo_s;
    cfg.tpot_slo_s = tpot_slo_s;
    validate_decode(cfg, e.workload.name());
    e.decode = cfg;
  }
}

bool WorkloadCatalog::has_decode() const noexcept {
  for (const CatalogEntry& e : entries_) {
    if (e.decode.enabled()) return true;
  }
  return false;
}

const CatalogEntry& WorkloadCatalog::at(std::size_t i) const {
  LUMOS_EXPECTS(i < entries_.size());
  return entries_[i];
}

double WorkloadCatalog::total_weight() const noexcept {
  double total = 0.0;
  for (const CatalogEntry& e : entries_) total += e.mix_weight;
  return total;
}

std::vector<std::string> WorkloadCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const CatalogEntry& e : entries_) out.push_back(e.workload.name());
  return out;
}

std::vector<std::uint32_t> WorkloadCatalog::priorities() const {
  bool tiered = false;
  for (const CatalogEntry& e : entries_) tiered = tiered || e.priority != 0;
  if (!tiered) return {};
  std::vector<std::uint32_t> tiers;
  tiers.reserve(entries_.size());
  for (const CatalogEntry& e : entries_) tiers.push_back(e.priority);
  return tiers;
}

bool WorkloadCatalog::has_kind(arch::WorkloadKind kind) const noexcept {
  for (const CatalogEntry& e : entries_) {
    if (e.workload.kind() == kind) return true;
  }
  return false;
}

WorkloadCatalog WorkloadCatalog::tron_default() {
  WorkloadCatalog c;
  c.add_transformer("bert-base/128", sim::transformer_by_name("bert-base", 128), 4.0);
  c.add_transformer("bert-large/128", sim::transformer_by_name("bert-large", 128), 2.0);
  c.add_transformer("gpt2/256", sim::transformer_by_name("gpt2", 256), 3.0);
  c.add_transformer("vit", sim::transformer_by_name("vit"), 1.0);
  return c;
}

WorkloadCatalog WorkloadCatalog::ghost_default() {
  WorkloadCatalog c;
  c.add_gnn("gcn/cora", sim::gnn_by_name("gcn"), sim::dataset_by_name("cora"), 4.0);
  c.add_gnn("graphsage/citeseer", sim::gnn_by_name("graphsage"),
            sim::dataset_by_name("citeseer"), 3.0);
  c.add_gnn("gin/pubmed", sim::gnn_by_name("gin"), sim::dataset_by_name("pubmed"), 2.0);
  c.add_gnn("gat/cora", sim::gnn_by_name("gat"), sim::dataset_by_name("cora"), 1.0);
  return c;
}

WorkloadCatalog WorkloadCatalog::mixed_default() {
  WorkloadCatalog c = tron_default();
  const WorkloadCatalog ghost = ghost_default();
  for (std::size_t i = 0; i < ghost.size(); ++i) {
    c.add(ghost.at(i).workload, ghost.at(i).mix_weight);
  }
  // Adopt the source catalog's dataset registry too, so later add_gnn calls
  // keep deduplicating against the graphs the copied workloads share.
  c.datasets_.insert(c.datasets_.end(), ghost.datasets_.begin(), ghost.datasets_.end());
  return c;
}

}  // namespace lumos::serve
