#include "serve/workload.hpp"

#include "common/error.hpp"
#include "sim/registry.hpp"

namespace lumos::serve {

const char* kind_name(AcceleratorKind kind) noexcept {
  return kind == AcceleratorKind::kTron ? "TRON" : "GHOST";
}

void WorkloadCatalog::add_transformer(std::string name, nn::TransformerConfig config,
                                      double weight) {
  LUMOS_EXPECTS(weight > 0.0);
  LUMOS_EXPECTS_MSG(workloads_.empty() || kind() == AcceleratorKind::kTron,
                    "catalog already holds GNN workloads");
  ServeWorkload w;
  w.name = std::move(name);
  w.kind = AcceleratorKind::kTron;
  w.transformer = std::move(config);
  w.mix_weight = weight;
  workloads_.push_back(std::move(w));
}

void WorkloadCatalog::add_gnn(std::string name, gnn::GnnModelConfig model,
                              graph::GraphDataset dataset, double weight) {
  LUMOS_EXPECTS(weight > 0.0);
  LUMOS_EXPECTS_MSG(workloads_.empty() || kind() == AcceleratorKind::kGhost,
                    "catalog already holds transformer workloads");
  std::size_t ds_index = datasets_.size();
  for (std::size_t i = 0; i < datasets_.size(); ++i) {
    if (datasets_[i].name == dataset.name) {
      ds_index = i;
      break;
    }
  }
  if (ds_index == datasets_.size()) datasets_.push_back(std::move(dataset));
  ServeWorkload w;
  w.name = std::move(name);
  w.kind = AcceleratorKind::kGhost;
  w.gnn_model = std::move(model);
  w.dataset = ds_index;
  w.mix_weight = weight;
  workloads_.push_back(std::move(w));
}

const ServeWorkload& WorkloadCatalog::at(std::size_t i) const {
  LUMOS_EXPECTS(i < workloads_.size());
  return workloads_[i];
}

const graph::GraphDataset& WorkloadCatalog::dataset(std::size_t i) const {
  LUMOS_EXPECTS(i < datasets_.size());
  return datasets_[i];
}

AcceleratorKind WorkloadCatalog::kind() const {
  LUMOS_EXPECTS_MSG(!workloads_.empty(), "empty workload catalog");
  return workloads_.front().kind;
}

double WorkloadCatalog::total_weight() const noexcept {
  double total = 0.0;
  for (const ServeWorkload& w : workloads_) total += w.mix_weight;
  return total;
}

WorkloadCatalog WorkloadCatalog::tron_default() {
  WorkloadCatalog c;
  c.add_transformer("bert-base/128", sim::transformer_by_name("bert-base", 128), 4.0);
  c.add_transformer("bert-large/128", sim::transformer_by_name("bert-large", 128), 2.0);
  c.add_transformer("gpt2/256", sim::transformer_by_name("gpt2", 256), 3.0);
  c.add_transformer("vit", sim::transformer_by_name("vit"), 1.0);
  return c;
}

WorkloadCatalog WorkloadCatalog::ghost_default() {
  WorkloadCatalog c;
  c.add_gnn("gcn/cora", sim::gnn_by_name("gcn"), sim::dataset_by_name("cora"), 4.0);
  c.add_gnn("graphsage/citeseer", sim::gnn_by_name("graphsage"),
            sim::dataset_by_name("citeseer"), 3.0);
  c.add_gnn("gin/pubmed", sim::gnn_by_name("gin"), sim::dataset_by_name("pubmed"), 2.0);
  c.add_gnn("gat/cora", sim::gnn_by_name("gat"), sim::dataset_by_name("cora"), 1.0);
  return c;
}

AcceleratorSpec default_tron_spec() {
  AcceleratorSpec s;
  s.name = "tron";
  s.kind = AcceleratorKind::kTron;
  s.tron = tron::default_tron_config();
  s.ghost = ghost::default_ghost_config();
  return s;
}

AcceleratorSpec default_ghost_spec() {
  AcceleratorSpec s;
  s.name = "ghost";
  s.kind = AcceleratorKind::kGhost;
  s.tron = tron::default_tron_config();
  s.ghost = ghost::default_ghost_config();
  return s;
}

AcceleratorSpec eco_tron_spec() {
  AcceleratorSpec s = default_tron_spec();
  s.name = "tron-eco";
  // Half the attention-head units and FF arrays: roughly half the fabric's
  // static draw for roughly double the compute time on array-bound ops.
  s.tron.head_units = s.tron.head_units / 2;
  s.tron.ff_arrays = s.tron.ff_arrays / 2;
  return s;
}

AcceleratorSpec eco_ghost_spec() {
  AcceleratorSpec s = default_ghost_spec();
  s.name = "ghost-eco";
  s.ghost.lanes = s.ghost.lanes / 2;
  s.ghost.transform_arrays_per_lane = 1;
  return s;
}

}  // namespace lumos::serve
