#include "serve/workload.hpp"

#include <cmath>

#include "common/error.hpp"
#include "sim/registry.hpp"

namespace lumos::serve {

void WorkloadCatalog::add(arch::Workload workload, double weight) {
  if (!(weight > 0.0) || !std::isfinite(weight)) {
    throw InvalidArgument("mix_weight for workload '" + workload.name() +
                          "' must be positive and finite, got " + std::to_string(weight));
  }
  entries_.push_back(CatalogEntry{std::move(workload), weight});
}

void WorkloadCatalog::add_transformer(std::string name, nn::TransformerConfig config,
                                      double weight) {
  add(arch::Workload::transformer(std::move(name), std::move(config)), weight);
}

void WorkloadCatalog::add_gnn(std::string name, gnn::GnnModelConfig model,
                              graph::GraphDataset dataset, double weight) {
  std::shared_ptr<const graph::GraphDataset> shared;
  for (const auto& existing : datasets_) {
    if (existing->name == dataset.name) {
      shared = existing;
      break;
    }
  }
  if (!shared) {
    shared = std::make_shared<const graph::GraphDataset>(std::move(dataset));
    datasets_.push_back(shared);
  }
  add(arch::Workload::gnn(std::move(name), std::move(model), std::move(shared)), weight);
}

void WorkloadCatalog::set_slo(std::size_t i, double slo_latency_s) {
  LUMOS_EXPECTS(i < entries_.size());
  if (!(slo_latency_s > 0.0) || !std::isfinite(slo_latency_s)) {
    throw InvalidArgument("slo_latency_s for workload '" + entries_[i].workload.name() +
                          "' must be positive and finite, got " +
                          std::to_string(slo_latency_s));
  }
  entries_[i].slo_latency_s = slo_latency_s;
}

void WorkloadCatalog::set_priority(std::size_t i, std::uint32_t priority) {
  LUMOS_EXPECTS(i < entries_.size());
  entries_[i].priority = priority;
}

void WorkloadCatalog::apply_default_tiers() {
  if (entries_.empty()) return;
  const double mean = total_weight() / static_cast<double>(entries_.size());
  for (CatalogEntry& e : entries_) e.priority = e.mix_weight >= mean ? 0 : 1;
}

const CatalogEntry& WorkloadCatalog::at(std::size_t i) const {
  LUMOS_EXPECTS(i < entries_.size());
  return entries_[i];
}

double WorkloadCatalog::total_weight() const noexcept {
  double total = 0.0;
  for (const CatalogEntry& e : entries_) total += e.mix_weight;
  return total;
}

std::vector<std::uint32_t> WorkloadCatalog::priorities() const {
  bool tiered = false;
  for (const CatalogEntry& e : entries_) tiered = tiered || e.priority != 0;
  if (!tiered) return {};
  std::vector<std::uint32_t> tiers;
  tiers.reserve(entries_.size());
  for (const CatalogEntry& e : entries_) tiers.push_back(e.priority);
  return tiers;
}

bool WorkloadCatalog::has_kind(arch::WorkloadKind kind) const noexcept {
  for (const CatalogEntry& e : entries_) {
    if (e.workload.kind() == kind) return true;
  }
  return false;
}

WorkloadCatalog WorkloadCatalog::tron_default() {
  WorkloadCatalog c;
  c.add_transformer("bert-base/128", sim::transformer_by_name("bert-base", 128), 4.0);
  c.add_transformer("bert-large/128", sim::transformer_by_name("bert-large", 128), 2.0);
  c.add_transformer("gpt2/256", sim::transformer_by_name("gpt2", 256), 3.0);
  c.add_transformer("vit", sim::transformer_by_name("vit"), 1.0);
  return c;
}

WorkloadCatalog WorkloadCatalog::ghost_default() {
  WorkloadCatalog c;
  c.add_gnn("gcn/cora", sim::gnn_by_name("gcn"), sim::dataset_by_name("cora"), 4.0);
  c.add_gnn("graphsage/citeseer", sim::gnn_by_name("graphsage"),
            sim::dataset_by_name("citeseer"), 3.0);
  c.add_gnn("gin/pubmed", sim::gnn_by_name("gin"), sim::dataset_by_name("pubmed"), 2.0);
  c.add_gnn("gat/cora", sim::gnn_by_name("gat"), sim::dataset_by_name("cora"), 1.0);
  return c;
}

WorkloadCatalog WorkloadCatalog::mixed_default() {
  WorkloadCatalog c = tron_default();
  const WorkloadCatalog ghost = ghost_default();
  for (std::size_t i = 0; i < ghost.size(); ++i) {
    c.add(ghost.at(i).workload, ghost.at(i).mix_weight);
  }
  // Adopt the source catalog's dataset registry too, so later add_gnn calls
  // keep deduplicating against the graphs the copied workloads share.
  c.datasets_.insert(c.datasets_.end(), ghost.datasets_.begin(), ghost.datasets_.end());
  return c;
}

}  // namespace lumos::serve
