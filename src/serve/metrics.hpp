// Result metrics of one serving simulation: tail-latency percentiles,
// goodput, queueing behaviour, batching behaviour, and fleet energy.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace lumos::serve {

// Exact nearest-rank percentile (q in [0, 1]) of `samples`; sorts in place.
// 0 for an empty vector.
[[nodiscard]] double percentile(std::vector<double>& samples, double q);

struct ServeMetrics {
  // Traffic.
  double offered_qps = 0.0;
  std::size_t completed = 0;
  double duration_s = 0.0;        // first arrival (t=0) to last completion
  double throughput_qps = 0.0;    // completed / duration
  double goodput_qps = 0.0;       // within-SLO completions / duration
  double slo_latency_s = 0.0;
  double slo_attainment = 0.0;    // fraction of completions within the SLO

  // Request latency (arrival -> completion).
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double p999_latency_s = 0.0;
  double mean_latency_s = 0.0;
  double max_latency_s = 0.0;

  // Queueing.
  double mean_queue_depth = 0.0;  // time-weighted
  std::size_t peak_queue_depth = 0;

  // Batching.
  std::size_t dispatches = 0;
  std::vector<std::size_t> batch_histogram;  // [batch size] -> dispatch count
  double mean_batch_size = 0.0;

  // Energy (dispatched batches + idle static burn across the fleet).
  double fleet_energy_j = 0.0;
  double energy_per_request_j = 0.0;
  double fleet_utilization = 0.0;  // busy time / (accelerators x duration)

  // Estimate-cache effectiveness.
  std::size_t estimate_lookups = 0;
  std::size_t estimate_misses = 0;

  [[nodiscard]] Table to_table(const std::string& title) const;
};

}  // namespace lumos::serve
