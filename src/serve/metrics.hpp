// Result metrics of one serving simulation: tail-latency percentiles,
// goodput, queueing behaviour, batching behaviour, fleet energy, autoscaling
// activity, and a per-tenant (per catalog entry) breakdown with each tenant's
// own SLO attainment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"

namespace lumos::serve {

// Exact nearest-rank percentile (q in [0, 1]) of `samples`; sorts in place.
// 0 for an empty vector.
[[nodiscard]] double percentile(std::vector<double>& samples, double q);

// How a simulation computes its latency percentiles (SimConfig.percentile_mode).
// kExact stores and sorts every latency sample (bit-identical to the
// historical path, the default); kHdr streams samples into a bounded-error
// `lumos::HdrHistogram` (SimConfig.hdr_relative_error) so percentile memory
// stops scaling with request count — the 100M-request-scale path.  Mean, max,
// and every counter stay exact in both modes.
enum class PercentileMode {
  kExact,
  kHdr,
};

// Per-tenant slice of a simulation: one catalog entry's completions scored
// against that entry's own SLO (falling back to the simulation-wide SLO when
// the entry does not set one).
struct TenantMetrics {
  std::string name;
  std::uint32_t priority = 0;     // scheduler tier (lower = more urgent)
  double slo_latency_s = 0.0;     // the SLO this tenant was scored against
  std::size_t completed = 0;
  std::size_t within_slo = 0;     // completions within the SLO (merge-exact counter)
  double slo_attainment = 0.0;    // fraction of completions within the SLO
  double goodput_qps = 0.0;       // within-SLO completions / duration
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double max_latency_s = 0.0;
  // Robustness (all zero when admission/timeouts are disabled).
  std::size_t shed = 0;       // rejected at admission
  std::size_t timed_out = 0;  // deadline exceeded, retries exhausted
  double drop_rate = 0.0;     // (shed + timed_out) / issued
  // Dollars attributed to this tenant's completions: served slot-time at the
  // slot's hourly rate plus batch energy at the fleet's $/J (see CostModel).
  // Sums across tenants to <= fleet_cost_usd (idle burn is unattributed).
  double cost_usd = 0.0;
};

// One slot's availability under fault injection (see FaultConfig).
struct SlotAvailability {
  std::string spec;                // registry spec name of the slot
  std::size_t failures = 0;        // failure transitions within the active window
  std::size_t repairs = 0;         // completed repairs
  double uptime_fraction = 1.0;    // up time / active-window time
  double observed_mttr_s = 0.0;    // mean completed repair duration
};

// Raw latency state a simulation can retain for exact cross-run merging
// (SimConfig.keep_latency_state; sharded runs always retain it per cell).
// kExact mode keeps every per-tenant sample; kHdr keeps the per-tenant
// sketches instead.  `FleetMetrics::merge` uses whichever is present to
// recompute merged percentiles from the union multiset — the same numbers a
// single simulation over the union would have produced.
struct LatencyState {
  bool hdr = false;                                // which representation is live
  double hdr_relative_error = 0.01;                // sketch eps (kHdr; must match to merge)
  std::vector<std::vector<double>> tenant_samples; // kExact: per tenant, sorted
  std::vector<HdrHistogram> tenant_hist;           // kHdr: per tenant
  std::vector<double> session_samples;             // closed-loop session latencies
  // Per-token phase latencies of decode requests (kept exact in both
  // percentile modes: decode requests are a slice of the traffic, not the
  // 100M-request firehose the hdr sketches exist for).
  std::vector<double> ttft_samples;                // time to first token
  std::vector<double> tpot_samples;                // mean time per output token
};

struct FleetMetrics {
  // Traffic.
  double offered_qps = 0.0;
  std::size_t completed = 0;
  std::size_t within_slo = 0;     // completions within their SLO (merge-exact counter)
  double duration_s = 0.0;        // first arrival (t=0) to last completion
  double throughput_qps = 0.0;    // completed / duration
  double goodput_qps = 0.0;       // within-SLO completions / duration
  double slo_latency_s = 0.0;     // simulation-wide (fallback) SLO
  double slo_attainment = 0.0;    // fraction of completions within their SLO

  // Request latency (arrival -> completion).
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double p999_latency_s = 0.0;
  double mean_latency_s = 0.0;
  double max_latency_s = 0.0;

  // Queueing.
  double mean_queue_depth = 0.0;  // time-weighted
  std::size_t peak_queue_depth = 0;

  // Batching.
  std::size_t dispatches = 0;
  std::vector<std::size_t> batch_histogram;  // [batch size] -> dispatch count
  double mean_batch_size = 0.0;

  // Energy (dispatched batches + idle static burn across the fleet).
  double fleet_energy_j = 0.0;
  double energy_per_request_j = 0.0;
  double fleet_utilization = 0.0;  // busy time / integral of active slot-time

  // Dollar cost (see CostModel): active slot-time at each slot's hourly rate
  // plus fleet energy at $/J.  Adds exactly across shard folds (disjoint
  // sub-fleets, disjoint energy); cost_per_request recomputes from the merged
  // totals.
  double fleet_cost_usd = 0.0;
  double cost_per_request_usd = 0.0;

  // Autoscaling (all zero / initial==final for static fleets).
  std::size_t autoscale_grows = 0;
  std::size_t autoscale_shrinks = 0;
  std::size_t initial_fleet_size = 0;
  std::size_t peak_fleet_size = 0;
  std::size_t final_fleet_size = 0;   // active (non-draining) slots at the end
  double mean_fleet_size = 0.0;       // time-weighted slot count

  // Robustness: faults, timeouts, retries, admission (all zero when those
  // features are disabled — the default).  `completed` above counts only kOk
  // terminals; completed + shed + timed-out == requests the source issued.
  std::size_t shed_requests = 0;       // rejected at admission (terminal)
  std::size_t timed_out_requests = 0;  // timeout with no retry budget (terminal)
  std::size_t attempt_timeouts = 0;    // attempts past their deadline (retried or not)
  std::size_t retried_attempts = 0;    // re-issued attempts
  std::size_t failed_batches = 0;      // in-flight batches aborted by slot failure
  std::size_t requeued_requests = 0;   // requests requeued by those aborts
  std::size_t slot_failures = 0;       // failure transitions across the fleet
  std::size_t slot_recoveries = 0;     // recovery transitions across the fleet
  double drop_rate = 0.0;              // (shed + timed-out) / issued requests
  double fleet_availability = 1.0;     // up slot-time / active slot-time
  double observed_mttr_s = 0.0;        // mean completed repair duration
  // Per-slot availability, slot order (filled only under fault injection).
  std::vector<SlotAvailability> slot_availability;

  // Per-tenant breakdown, one entry per catalog entry (catalog order).
  std::vector<TenantMetrics> tenants;

  // Closed-loop sessions (all zero for open-loop scenarios).  Session latency
  // is end to end: a session's first issue to its last completion, think
  // times included.
  std::size_t sessions = 0;
  double mean_session_s = 0.0;
  double p50_session_s = 0.0;
  double p99_session_s = 0.0;
  double max_session_s = 0.0;

  // Autoregressive decode (all zero when no catalog entry decodes — the
  // default — so pre-decode scenarios report bit-identical metrics).  TTFT is
  // arrival to first generated token (prefill end); TPOT is a completed
  // request's mean decode-step time, (last token - first token) / (tokens-1),
  // defined for requests generating >= 2 tokens.
  std::size_t decode_requests = 0;        // completions that generated tokens
  std::size_t generated_tokens = 0;       // tokens generated by completions
  std::size_t aborted_decode_tokens = 0;  // tokens lost to mid-decode slot failures
  std::size_t decode_steps = 0;           // token-boundary steps the fleet ran
  double tokens_per_s = 0.0;              // generated_tokens / duration
  double mean_ttft_s = 0.0;
  double p50_ttft_s = 0.0;
  double p95_ttft_s = 0.0;
  double p99_ttft_s = 0.0;
  double max_ttft_s = 0.0;
  double mean_tpot_s = 0.0;
  double p50_tpot_s = 0.0;
  double p95_tpot_s = 0.0;
  double p99_tpot_s = 0.0;
  double max_tpot_s = 0.0;
  // Per-token SLO attainment over decode completions whose entry sets the
  // matching SLO (merge-exact counters; attainment is 1 with no such SLO).
  std::size_t ttft_slo_requests = 0;
  std::size_t within_ttft_slo = 0;
  std::size_t tpot_slo_requests = 0;
  std::size_t within_tpot_slo = 0;
  double ttft_attainment = 1.0;
  double tpot_attainment = 1.0;
  // Decode-batch occupancy: [active lanes] -> decode-step count (index 0
  // unused).  Mean is lane-steps / steps — how full the decode batches ran,
  // the number continuous batching exists to raise.
  std::vector<std::size_t> decode_occupancy;
  double mean_decode_occupancy = 0.0;

  // Estimate-cache effectiveness, summed over the fleet's per-spec caches.
  std::size_t estimate_lookups = 0;
  std::size_t estimate_misses = 0;

  // Retained raw latency state (null unless SimConfig.keep_latency_state was
  // set — sharded cell runs set it so the merge can recompute percentiles
  // exactly).  shared_ptr keeps FleetMetrics cheaply copyable.
  std::shared_ptr<LatencyState> latency_state;

  // Hit fraction (1.0 for a lookup-free run so an untouched cache never reads
  // as "all misses").
  [[nodiscard]] double estimate_hit_rate() const noexcept;

  // Folds `other` — the metrics of an *independent, concurrently simulated*
  // partition (a shard cell, a disjoint sub-fleet) — into this object.  The
  // merge is commutative pairwise; the cell merge folds in ascending cell
  // order so multi-way results are deterministic.  Field semantics:
  //
  //   * Merge-exact (counters add; maxima take the max): completed,
  //     within_slo, dispatches, batch_histogram, shed/timed-out/retried/
  //     requeued/failed-batch counts, slot failures/recoveries, autoscale
  //     grows/shrinks, fleet sizes (disjoint sub-fleets add; peak is the sum
  //     of per-cell peaks), estimate lookups/misses, sessions, max latency,
  //     fleet energy.
  //   * Merge-exact via retained state: every latency percentile (p50/p95/
  //     p99/p99.9, per-tenant p50/p99, session p50/p99) is recomputed from
  //     the union of the two sides' samples (kExact) or merged sketches
  //     (kHdr) when both sides carry `latency_state` of the same mode;
  //     mismatched modes or sketch resolutions throw InvalidArgument.
  //     Without state, percentiles fall back to a completed-weighted average
  //     — a labelled approximation, not a percentile of the union.
  //   * Recomputed from merged primitives: throughput/goodput/attainment/
  //     mean latency/mean batch/drop rate/energy per request.
  //   * Per-run-only (merged by convention, approximate across unequal
  //     horizons): duration_s takes the max (cells run concurrently);
  //     offered_qps adds; mean_queue_depth, mean_fleet_size, utilization,
  //     and availability recombine time-weighted by each side's duration or
  //     slot-time; peak_queue_depth takes the max of per-cell peaks (cells
  //     queue independently — there is no fleet-wide instant to align).
  //   * Positional: tenants merge element-wise (both sides must describe the
  //     same catalog, or InvalidArgument); slot_availability concatenates in
  //     call order.
  void merge(const FleetMetrics& other);

  [[nodiscard]] Table to_table(const std::string& title) const;
  // One row per tenant: priority, SLO, attainment, goodput, tail latency.
  [[nodiscard]] Table tenant_table(const std::string& title) const;
};

}  // namespace lumos::serve
