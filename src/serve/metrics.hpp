// Result metrics of one serving simulation: tail-latency percentiles,
// goodput, queueing behaviour, batching behaviour, fleet energy, autoscaling
// activity, and a per-tenant (per catalog entry) breakdown with each tenant's
// own SLO attainment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace lumos::serve {

// Exact nearest-rank percentile (q in [0, 1]) of `samples`; sorts in place.
// 0 for an empty vector.
[[nodiscard]] double percentile(std::vector<double>& samples, double q);

// Per-tenant slice of a simulation: one catalog entry's completions scored
// against that entry's own SLO (falling back to the simulation-wide SLO when
// the entry does not set one).
struct TenantMetrics {
  std::string name;
  std::uint32_t priority = 0;     // scheduler tier (lower = more urgent)
  double slo_latency_s = 0.0;     // the SLO this tenant was scored against
  std::size_t completed = 0;
  double slo_attainment = 0.0;    // fraction of completions within the SLO
  double goodput_qps = 0.0;       // within-SLO completions / duration
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double max_latency_s = 0.0;
};

struct FleetMetrics {
  // Traffic.
  double offered_qps = 0.0;
  std::size_t completed = 0;
  double duration_s = 0.0;        // first arrival (t=0) to last completion
  double throughput_qps = 0.0;    // completed / duration
  double goodput_qps = 0.0;       // within-SLO completions / duration
  double slo_latency_s = 0.0;     // simulation-wide (fallback) SLO
  double slo_attainment = 0.0;    // fraction of completions within their SLO

  // Request latency (arrival -> completion).
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double p999_latency_s = 0.0;
  double mean_latency_s = 0.0;
  double max_latency_s = 0.0;

  // Queueing.
  double mean_queue_depth = 0.0;  // time-weighted
  std::size_t peak_queue_depth = 0;

  // Batching.
  std::size_t dispatches = 0;
  std::vector<std::size_t> batch_histogram;  // [batch size] -> dispatch count
  double mean_batch_size = 0.0;

  // Energy (dispatched batches + idle static burn across the fleet).
  double fleet_energy_j = 0.0;
  double energy_per_request_j = 0.0;
  double fleet_utilization = 0.0;  // busy time / integral of active slot-time

  // Autoscaling (all zero / initial==final for static fleets).
  std::size_t autoscale_grows = 0;
  std::size_t autoscale_shrinks = 0;
  std::size_t initial_fleet_size = 0;
  std::size_t peak_fleet_size = 0;
  std::size_t final_fleet_size = 0;   // active (non-draining) slots at the end
  double mean_fleet_size = 0.0;       // time-weighted slot count

  // Per-tenant breakdown, one entry per catalog entry (catalog order).
  std::vector<TenantMetrics> tenants;

  // Closed-loop sessions (all zero for open-loop scenarios).  Session latency
  // is end to end: a session's first issue to its last completion, think
  // times included.
  std::size_t sessions = 0;
  double mean_session_s = 0.0;
  double p50_session_s = 0.0;
  double p99_session_s = 0.0;
  double max_session_s = 0.0;

  // Estimate-cache effectiveness, summed over the fleet's per-spec caches.
  std::size_t estimate_lookups = 0;
  std::size_t estimate_misses = 0;
  // Hit fraction (1.0 for a lookup-free run so an untouched cache never reads
  // as "all misses").
  [[nodiscard]] double estimate_hit_rate() const noexcept;

  [[nodiscard]] Table to_table(const std::string& title) const;
  // One row per tenant: priority, SLO, attainment, goodput, tail latency.
  [[nodiscard]] Table tenant_table(const std::string& title) const;
};

}  // namespace lumos::serve
