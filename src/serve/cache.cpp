#include "serve/cache.hpp"

#include "arch/registry.hpp"
#include "common/error.hpp"

namespace lumos::serve {

EstimateCache::EstimateCache(std::unique_ptr<arch::Accelerator> accelerator,
                             const WorkloadCatalog& catalog)
    : acc_(std::move(accelerator)), catalog_(&catalog) {
  LUMOS_EXPECTS_MSG(acc_ != nullptr, "EstimateCache needs an accelerator");
  LUMOS_EXPECTS_MSG(!catalog.empty(), "EstimateCache needs a non-empty workload catalog");
}

EstimateCache::EstimateCache(const std::string& spec_name, const WorkloadCatalog& catalog)
    : EstimateCache(arch::make_accelerator(spec_name), catalog) {}

const PerfReport& EstimateCache::estimate(std::uint32_t workload, std::size_t batch,
                                          std::uint32_t seq_len) const {
  // Key layout: workload 16 bits | seq bucket 32 bits | batch 16 bits.
  LUMOS_EXPECTS(workload < catalog_->size() && catalog_->size() < (std::size_t{1} << 16));
  LUMOS_EXPECTS(batch >= 1 && batch < (std::size_t{1} << 16));
  ++lookups_;
  const std::uint64_t key = (static_cast<std::uint64_t>(workload) << 48) |
                            (static_cast<std::uint64_t>(seq_len) << 16) |
                            static_cast<std::uint64_t>(batch);
  const auto it = reports_.find(key);
  if (it != reports_.end()) return it->second;
  ++misses_;
  PerfReport r =
      seq_len == 0
          ? acc_->estimate_batch(catalog_->workload(workload), batch)
          : acc_->estimate_batch(catalog_->workload(workload).with_seq_len(seq_len), batch);
  return reports_.emplace(key, std::move(r)).first->second;
}

const PerfReport& EstimateCache::decode_step(std::uint32_t workload, std::size_t batch,
                                             std::uint32_t context_len) const {
  // Same key layout as estimate(): workload 16 | context bucket 32 | batch 16.
  LUMOS_EXPECTS(workload < catalog_->size() && catalog_->size() < (std::size_t{1} << 16));
  LUMOS_EXPECTS(batch >= 1 && batch < (std::size_t{1} << 16));
  LUMOS_EXPECTS(context_len >= 1);
  ++lookups_;
  const std::uint64_t key = (static_cast<std::uint64_t>(workload) << 48) |
                            (static_cast<std::uint64_t>(context_len) << 16) |
                            static_cast<std::uint64_t>(batch);
  const auto it = decode_reports_.find(key);
  if (it != decode_reports_.end()) return it->second;
  ++misses_;
  PerfReport r =
      acc_->estimate_decode_step(catalog_->workload(workload), batch, context_len);
  return decode_reports_.emplace(key, std::move(r)).first->second;
}

bool EstimateCache::can_serve(std::uint32_t workload) const {
  LUMOS_EXPECTS(workload < catalog_->size());
  return acc_->can_serve(catalog_->workload(workload));
}

double EstimateCache::static_power_w() const { return acc_->static_power_w(); }

}  // namespace lumos::serve
