#include "serve/cache.hpp"

#include "common/error.hpp"

namespace lumos::serve {

EstimateCache::EstimateCache(const AcceleratorSpec& spec, const WorkloadCatalog& catalog)
    : spec_(spec), catalog_(&catalog) {
  LUMOS_EXPECTS_MSG(catalog.kind() == spec.kind,
                    "workload catalog and accelerator spec disagree on kind");
  if (spec_.kind == AcceleratorKind::kTron) {
    tron_ = std::make_unique<tron::TronAccelerator>(spec_.tron);
  } else {
    ghost_ = std::make_unique<ghost::GhostAccelerator>(spec_.ghost);
  }
}

const PerfReport& EstimateCache::estimate(std::uint32_t workload, std::size_t batch) const {
  LUMOS_EXPECTS(workload < catalog_->size());
  LUMOS_EXPECTS(batch >= 1 && batch < (std::size_t{1} << 32));
  ++lookups_;
  const std::uint64_t key = (static_cast<std::uint64_t>(workload) << 32) |
                            static_cast<std::uint64_t>(batch);
  const auto it = reports_.find(key);
  if (it != reports_.end()) return it->second;
  ++misses_;
  const ServeWorkload& w = catalog_->at(workload);
  PerfReport r = spec_.kind == AcceleratorKind::kTron
                     ? tron_->estimate_batch(w.transformer, batch)
                     : ghost_->estimate_batch(w.gnn_model, catalog_->dataset(w.dataset), batch);
  return reports_.emplace(key, std::move(r)).first->second;
}

double EstimateCache::static_power_w() const {
  return spec_.kind == AcceleratorKind::kTron ? tron_->static_power_w()
                                              : ghost_->static_power_w();
}

}  // namespace lumos::serve
