#include "serve/simulator.hpp"

#include <algorithm>
#include <limits>
#include <memory>

#include "arch/registry.hpp"
#include "common/error.hpp"

namespace lumos::serve {

FleetConfig FleetConfig::homogeneous(const std::string& spec, std::size_t count,
                                     RoutingPolicy routing) {
  return cycled({spec}, count, routing);
}

FleetConfig FleetConfig::heterogeneous(const std::string& primary, const std::string& eco,
                                       std::size_t count, RoutingPolicy routing) {
  return cycled({primary, eco}, count, routing);
}

FleetConfig FleetConfig::cycled(const std::vector<std::string>& specs, std::size_t count,
                                RoutingPolicy routing) {
  if (specs.empty()) throw InvalidArgument("FleetConfig specs must not be empty");
  if (count == 0) throw InvalidArgument("FleetConfig fleet size must be >= 1");
  FleetConfig f;
  f.routing = routing;
  f.accelerators.reserve(count);
  for (std::size_t i = 0; i < count; ++i) f.accelerators.push_back(specs[i % specs.size()]);
  return f;
}

std::string FleetConfig::label() const {
  std::vector<std::string> seen;
  std::string out;
  for (const std::string& name : accelerators) {
    if (std::find(seen.begin(), seen.end(), name) != seen.end()) continue;
    seen.push_back(name);
    if (!out.empty()) out += '+';
    out += name;
  }
  return out;
}

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

struct Completion {
  double time_s = 0.0;
  std::uint64_t seq = 0;  // dispatch order: deterministic tie-break
  std::size_t acc = 0;
  double batch_energy_j = 0.0;
  std::vector<Request> batch;
};

// Min-heap ordering on (time, dispatch seq).
struct CompletionLater {
  bool operator()(const Completion& a, const Completion& b) const noexcept {
    if (a.time_s != b.time_s) return a.time_s > b.time_s;
    return a.seq > b.seq;
  }
};

// One fleet slot.  Slots are append-only: growth pushes a new slot, shrink
// marks one draining (no new dispatches) and retires it once idle, so slot
// indices — and with them dispatch order and the (time, seq) completion order
// — never shift mid-simulation.
struct Slot {
  std::size_t cache = 0;   // estimate cache (shared per spec name)
  std::size_t family = 0;  // spec family this slot scales with
  bool idle = true;
  bool draining = false;
  bool retired = false;
  double busy_s = 0.0;
  double active_start_s = 0.0;
  double active_end_s = -1.0;  // < 0: still present at simulation end
};

bool can_dispatch_to(const Slot& s) noexcept {
  return s.idle && !s.draining && !s.retired;
}

}  // namespace

void validate_scenario(const Scenario& scenario) {
  if (scenario.fleet.accelerators.empty()) {
    throw InvalidArgument("Scenario.fleet: FleetConfig.accelerators must not be empty");
  }
  if (scenario.catalog.empty()) {
    throw InvalidArgument("Scenario.catalog: WorkloadCatalog must not be empty");
  }
  if (scenario.batch.max_batch < 1 ||
      scenario.batch.max_batch > BatchPolicy::kMaxBatchLimit) {
    throw InvalidArgument("Scenario.batch: BatchPolicy.max_batch must be in [1, " +
                          std::to_string(BatchPolicy::kMaxBatchLimit) + "], got " +
                          std::to_string(scenario.batch.max_batch));
  }
  if (scenario.batch.max_wait_s < 0.0) {
    throw InvalidArgument("Scenario.batch: BatchPolicy.max_wait_s must be >= 0");
  }
  validate_autoscaler(scenario.sim.autoscaler);
  if (!scenario.trace.empty()) {
    for (const Request& r : scenario.trace) {
      if (r.workload >= scenario.catalog.size()) {
        throw InvalidArgument("Scenario.trace: request " + std::to_string(r.id) +
                              " names workload index " + std::to_string(r.workload) +
                              ", but the catalog holds " +
                              std::to_string(scenario.catalog.size()) + " workloads");
      }
    }
    return;
  }
  if (scenario.traffic.mode == LoopMode::kClosed) {
    validate_closed_loop(scenario.traffic.closed);
    return;
  }
  if (!(scenario.traffic.open.offered_qps > 0.0)) {
    throw InvalidArgument("Scenario.traffic: TraceConfig.offered_qps must be positive");
  }
  if (scenario.traffic.open.request_count < 1) {
    throw InvalidArgument("Scenario.traffic: TraceConfig.request_count must be >= 1");
  }
}

FleetMetrics simulate(const Scenario& scenario) {
  validate_scenario(scenario);
  const FleetConfig& fleet = scenario.fleet;
  const WorkloadCatalog& catalog = scenario.catalog;
  const BatchPolicy& policy = scenario.batch;
  const SimConfig& sim = scenario.sim;
  // The explicit trace is borrowed, not copied: the Scenario outlives the run.
  const std::unique_ptr<TrafficSource> source =
      scenario.trace.empty()
          ? make_traffic_source(catalog, scenario.traffic)
          : std::make_unique<OpenLoopSource>(&scenario.trace);
  const std::size_t total_requests = source->total_requests();
  LUMOS_ENSURES(total_requests >= 1);
  const std::unique_ptr<Autoscaler> scaler = make_autoscaler(sim.autoscaler);

  // One estimate cache per distinct spec name; fleet slots share caches.
  // Families are the distinct initial spec names in first-appearance order —
  // the units the autoscaler grows and shrinks.
  std::vector<EstimateCache> caches;
  const auto cache_for = [&](const std::string& spec) -> std::size_t {
    for (std::size_t c = 0; c < caches.size(); ++c) {
      if (caches[c].spec().name == spec) return c;
    }
    caches.emplace_back(spec, catalog);
    return caches.size() - 1;
  };

  std::vector<std::string> families;
  std::vector<std::size_t> family_cache;
  std::vector<Slot> slots;
  slots.reserve(fleet.accelerators.size());
  for (const std::string& spec : fleet.accelerators) {
    std::size_t f = kNone;
    for (std::size_t i = 0; i < families.size(); ++i) {
      if (families[i] == spec) {
        f = i;
        break;
      }
    }
    if (f == kNone) {
      families.push_back(spec);
      family_cache.push_back(cache_for(spec));
      f = families.size() - 1;
    }
    Slot s;
    s.cache = family_cache[f];
    s.family = f;
    slots.push_back(s);
  }
  // Grown slots may use a scaled registry variant of the family's spec; build
  // those caches up front so the cache vector is stable during the loop.
  std::vector<std::size_t> family_grow_cache = family_cache;
  if (scaler && sim.autoscaler.grow_scale != 1.0) {
    for (std::size_t f = 0; f < families.size(); ++f) {
      family_grow_cache[f] =
          cache_for(arch::scaled_spec_name(families[f], sim.autoscaler.grow_scale));
    }
  }

  // Kind-aware routing: which caches (and so which fleet slots) can serve
  // each workload, and the first serving slot for unloaded-latency queries.
  std::vector<std::vector<char>> cache_serves(caches.size());
  for (std::size_t c = 0; c < caches.size(); ++c) {
    cache_serves[c].resize(catalog.size());
    for (std::uint32_t w = 0; w < catalog.size(); ++w) {
      cache_serves[c][w] = caches[c].can_serve(w) ? 1 : 0;
    }
  }
  std::vector<std::size_t> first_serving_cache(catalog.size(), kNone);
  for (std::uint32_t w = 0; w < catalog.size(); ++w) {
    for (const Slot& s : slots) {
      if (cache_serves[s.cache][w] != 0) {
        first_serving_cache[w] = s.cache;
        break;
      }
    }
    if (first_serving_cache[w] == kNone) {
      const arch::Workload& wl = catalog.workload(w);
      throw InvalidArgument("fleet '" + fleet.label() + "' cannot serve " +
                            arch::workload_kind_name(wl.kind()) + " workload '" + wl.name() +
                            "': no accelerator of that kind in the fleet");
    }
  }
  // Masks only bind when the fleet mixes families; single-kind fleets keep
  // the (equivalent, cheaper) allow-everything mask.
  bool mixed_fleet = false;
  for (std::size_t c = 1; c < caches.size() && !mixed_fleet; ++c) {
    mixed_fleet = caches[c].spec().serves != caches[0].spec().serves;
  }

  // Simulation-wide fallback SLO, then each tenant's own contract.
  double slo_s = sim.slo_latency_s;
  if (slo_s <= 0.0) {
    double slowest = 0.0;
    for (std::uint32_t w = 0; w < catalog.size(); ++w) {
      slowest = std::max(slowest, caches[first_serving_cache[w]].estimate(w, 1).latency_s);
    }
    slo_s = sim.slo_scale * slowest;
  }
  std::vector<double> slo_of(catalog.size(), slo_s);
  for (std::uint32_t w = 0; w < catalog.size(); ++w) {
    if (catalog.at(w).slo_latency_s > 0.0) slo_of[w] = catalog.at(w).slo_latency_s;
  }

  const std::unique_ptr<Scheduler> sched =
      make_scheduler(scenario.scheduler, policy, catalog.priorities());
  std::vector<Completion> heap;
  std::uint64_t dispatch_seq = 0;

  FleetMetrics m;
  m.batch_histogram.assign(
      (scenario.scheduler == SchedulerKind::kFifo ? std::size_t{1} : policy.max_batch) + 1,
      0);
  m.initial_fleet_size = slots.size();
  m.peak_fleet_size = slots.size();
  double latency_sum = 0.0;
  std::size_t within_slo = 0;
  double dispatched_energy_j = 0.0;
  double depth_time = 0.0;
  std::vector<std::vector<double>> tenant_latencies(catalog.size());
  std::vector<double> tenant_sum(catalog.size(), 0.0);
  std::vector<double> tenant_max(catalog.size(), 0.0);
  std::vector<std::size_t> tenant_within(catalog.size(), 0);

  // Autoscaler signals: per-workload queue depths and the per-family
  // time-integral of busy slots since the last evaluation step (exact busy
  // fraction, not the dispatch-time batch-latency proxy — a batch longer
  // than the interval keeps counting as busy in later intervals).
  std::vector<std::size_t> queued_by_workload(catalog.size(), 0);
  std::vector<double> family_busy_integral_s(families.size(), 0.0);
  std::uint64_t eval_count = 0;
  double next_eval_s = scaler ? sim.autoscaler.interval_s : kNever;

  // Hot-path loops iterate only the live (non-retired) slots; churn from an
  // oscillating policy must not make per-event cost grow with the count of
  // long-retired slots.  Rebuilt on the rare grow/retire events, ascending
  // index order so routing stays deterministic and identical to a full scan.
  std::vector<std::size_t> live;
  const auto rebuild_live = [&]() {
    live.clear();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].retired) live.push_back(i);
    }
  };
  rebuild_live();

  // Scratch for the mixed-fleet dispatch mask: workload w is dispatchable
  // when some idle non-draining accelerator serves it.
  std::vector<char> allowed(catalog.size(), 1);
  const auto current_mask = [&]() -> WorkloadMask {
    if (!mixed_fleet) return WorkloadMask{};
    std::fill(allowed.begin(), allowed.end(), 0);
    for (const std::size_t i : live) {
      const Slot& s = slots[i];
      if (!can_dispatch_to(s)) continue;
      const std::vector<char>& serves = cache_serves[s.cache];
      for (std::uint32_t w = 0; w < catalog.size(); ++w) {
        if (serves[w] != 0) allowed[w] = 1;
      }
    }
    return WorkloadMask{&allowed};
  };

  const auto any_dispatchable = [&]() {
    for (const std::size_t i : live) {
      if (can_dispatch_to(slots[i])) return true;
    }
    return false;
  };

  const auto try_dispatch = [&](double now_s) {
    for (;;) {
      if (!any_dispatchable()) return;
      const WorkloadMask mask = current_mask();
      if (!sched->ready(now_s, mask)) return;
      std::vector<Request> batch = sched->pop(now_s, mask);
      LUMOS_ENSURES(!batch.empty());
      const std::uint32_t workload = batch.front().workload;
      // Batching schedulers never mix seq buckets within a batch (FIFO
      // batches are single requests), so the head's sampled length prices the
      // whole batch.
      const std::uint32_t seq_len = batch.front().seq_len;
      queued_by_workload[workload] -= batch.size();
      std::size_t chosen = kNone;
      for (const std::size_t i : live) {
        if (can_dispatch_to(slots[i]) && cache_serves[slots[i].cache][workload] != 0) {
          chosen = i;
          break;
        }
      }
      LUMOS_ENSURES(chosen != kNone);
      if (fleet.routing == RoutingPolicy::kEnergyAware) {
        double best_j = kNever;
        for (const std::size_t i : live) {
          if (!can_dispatch_to(slots[i]) || cache_serves[slots[i].cache][workload] == 0) {
            continue;
          }
          const double j =
              caches[slots[i].cache].estimate(workload, batch.size(), seq_len).total_energy_j;
          if (j < best_j) {
            best_j = j;
            chosen = i;
          }
        }
      }
      const PerfReport& r = caches[slots[chosen].cache].estimate(workload, batch.size(), seq_len);
      slots[chosen].idle = false;
      slots[chosen].busy_s += r.latency_s;
      ++m.dispatches;
      ++m.batch_histogram[batch.size()];
      heap.push_back({now_s + r.latency_s, dispatch_seq++, chosen, r.total_energy_j,
                      std::move(batch)});
      std::push_heap(heap.begin(), heap.end(), CompletionLater{});
    }
  };

  // One autoscaler step: per family, observe signals over the last interval
  // and apply at most a one-slot delta, clamped to [min_slots, max_slots]
  // active slots.  Shrinks drain before retiring: the slot is closed to new
  // work immediately, retires now if idle, otherwise at its completion.
  // Active (dispatchable-family) slot count across all families, kept
  // incrementally for peak tracking.
  std::size_t active_total = slots.size();
  const auto evaluate_autoscaler = [&](double now_s) {
    bool live_changed = false;
    for (std::size_t f = 0; f < families.size(); ++f) {
      FamilySignals signals;
      signals.min_slots = sim.autoscaler.min_slots;
      signals.max_slots = sim.autoscaler.max_slots;
      for (const std::size_t i : live) {
        const Slot& s = slots[i];
        if (s.family != f) continue;
        if (s.draining) {
          ++signals.draining_slots;
        } else {
          ++signals.active_slots;
        }
      }
      const std::vector<char>& serves = cache_serves[family_cache[f]];
      for (std::uint32_t w = 0; w < catalog.size(); ++w) {
        if (serves[w] != 0) signals.queued += queued_by_workload[w];
      }
      signals.utilization = std::min(
          1.0, family_busy_integral_s[f] / (static_cast<double>(signals.active_slots) *
                                            sim.autoscaler.interval_s));
      family_busy_integral_s[f] = 0.0;
      const int delta = scaler->step(signals);
      if (delta > 0 && signals.active_slots < signals.max_slots) {
        Slot grown;
        grown.cache = family_grow_cache[f];
        grown.family = f;
        grown.active_start_s = now_s;
        slots.push_back(grown);
        live_changed = true;
        ++m.autoscale_grows;
        ++active_total;
        m.peak_fleet_size = std::max(m.peak_fleet_size, active_total);
      } else if (delta < 0 && signals.active_slots > signals.min_slots) {
        for (std::size_t i = slots.size(); i-- > 0;) {
          Slot& s = slots[i];
          if (s.family != f || s.retired || s.draining) continue;
          s.draining = true;
          --active_total;
          if (s.idle) {
            s.retired = true;
            s.active_end_s = now_s;
            live_changed = true;
          }
          ++m.autoscale_shrinks;
          break;
        }
      }
    }
    if (live_changed) rebuild_live();
  };

  double last_arrival_s = 0.0;
  double now_s = 0.0;
  while (m.completed < total_requests) {
    const double t_arr = source->next_arrival_time();
    const double t_done = heap.empty() ? kNever : heap.front().time_s;
    // Deadlines only matter while an accelerator could take the batch; when
    // everything is busy the next completion re-evaluates readiness anyway.
    // In mixed fleets the deadline is masked the same way dispatch is, so a
    // deadline whose workload has no idle compatible accelerator never wakes
    // the loop without progress.
    const double t_dead = any_dispatchable() && sched->queued() > 0
                              ? sched->next_deadline_s(current_mask())
                              : kNever;
    const double t = std::min(std::min(std::min(t_arr, t_done), t_dead), next_eval_s);
    LUMOS_ENSURES(t >= now_s && t < kNever);
    depth_time += static_cast<double>(sched->queued()) * (t - now_s);
    if (scaler && t > now_s) {
      // Exact per-family busy-slot time integral for the utilization signal.
      const double dt = t - now_s;
      for (const std::size_t i : live) {
        if (!slots[i].idle) family_busy_integral_s[slots[i].family] += dt;
      }
    }
    now_s = t;

    while (!heap.empty() && heap.front().time_s <= now_s) {
      std::pop_heap(heap.begin(), heap.end(), CompletionLater{});
      Completion done = std::move(heap.back());
      heap.pop_back();
      Slot& acc = slots[done.acc];
      acc.idle = true;
      if (acc.draining) {
        // Drained: the in-flight batch finished, the slot may now retire.
        acc.retired = true;
        acc.active_end_s = done.time_s;
        rebuild_live();
      }
      dispatched_energy_j += done.batch_energy_j;
      for (const Request& req : done.batch) {
        const double latency = done.time_s - req.arrival_s;
        const std::uint32_t w = req.workload;
        tenant_latencies[w].push_back(latency);
        tenant_sum[w] += latency;
        tenant_max[w] = std::max(tenant_max[w], latency);
        latency_sum += latency;
        m.max_latency_s = std::max(m.max_latency_s, latency);
        if (latency <= slo_of[w]) {
          ++within_slo;
          ++tenant_within[w];
        }
        ++m.completed;
        // Feedback to the source: a closed-loop session may now schedule its
        // next issue (at or after this completion's instant).
        source->on_complete(req, done.time_s);
      }
    }
    while (source->next_arrival_time() <= now_s) {
      const Request r = source->pop_arrival();
      last_arrival_s = r.arrival_s;
      ++queued_by_workload[r.workload];
      sched->enqueue(r, now_s);
      m.peak_queue_depth = std::max(m.peak_queue_depth, sched->queued());
    }
    if (scaler && now_s >= next_eval_s) {
      evaluate_autoscaler(now_s);
      ++eval_count;
      next_eval_s = static_cast<double>(eval_count + 1) * sim.autoscaler.interval_s;
    }
    try_dispatch(now_s);
  }

  const double duration_s = now_s;
  m.offered_qps = static_cast<double>(total_requests) / std::max(last_arrival_s, 1e-300);
  m.duration_s = duration_s;
  m.throughput_qps = static_cast<double>(m.completed) / std::max(duration_s, 1e-300);
  m.goodput_qps = static_cast<double>(within_slo) / std::max(duration_s, 1e-300);
  m.slo_latency_s = slo_s;
  m.slo_attainment =
      static_cast<double>(within_slo) / static_cast<double>(m.completed);
  m.mean_latency_s = latency_sum / static_cast<double>(m.completed);

  // Per-tenant breakdown, then the aggregate percentiles over the union of
  // the tenants' samples (the same multiset the pre-tenant simulator sorted).
  m.tenants.resize(catalog.size());
  for (std::uint32_t w = 0; w < catalog.size(); ++w) {
    TenantMetrics& t = m.tenants[w];
    t.name = catalog.workload(w).name();
    t.priority = catalog.at(w).priority;
    t.slo_latency_s = slo_of[w];
    t.completed = tenant_latencies[w].size();
    t.max_latency_s = tenant_max[w];
    if (t.completed > 0) {
      t.slo_attainment = static_cast<double>(tenant_within[w]) /
                         static_cast<double>(t.completed);
      t.goodput_qps =
          static_cast<double>(tenant_within[w]) / std::max(duration_s, 1e-300);
      t.mean_latency_s = tenant_sum[w] / static_cast<double>(t.completed);
      t.p50_latency_s = percentile(tenant_latencies[w], 0.50);
      t.p99_latency_s = percentile(tenant_latencies[w], 0.99);
    }
  }
  std::vector<double> latencies;
  latencies.reserve(m.completed);
  for (const std::vector<double>& samples : tenant_latencies) {
    latencies.insert(latencies.end(), samples.begin(), samples.end());
  }
  m.p50_latency_s = percentile(latencies, 0.50);
  m.p95_latency_s = percentile(latencies, 0.95);
  m.p99_latency_s = percentile(latencies, 0.99);
  m.p999_latency_s = percentile(latencies, 0.999);
  m.mean_queue_depth = depth_time / std::max(duration_s, 1e-300);
  m.mean_batch_size =
      static_cast<double>(m.completed) / static_cast<double>(std::max<std::size_t>(m.dispatches, 1));

  // Energy and utilization integrate each slot over its active window
  // (activation to retirement, or simulation end).  Static fleets have one
  // full-duration window per slot, matching the pre-elastic accounting.
  double busy_total = 0.0;
  double idle_static_j = 0.0;
  double slot_time_s = 0.0;
  std::size_t final_active = 0;
  for (const Slot& s : slots) {
    const double window_s =
        (s.active_end_s >= 0.0 ? s.active_end_s : duration_s) - s.active_start_s;
    busy_total += s.busy_s;
    slot_time_s += window_s;
    idle_static_j += std::max(0.0, window_s - s.busy_s) * caches[s.cache].static_power_w();
    if (!s.retired && !s.draining) ++final_active;
  }
  if (m.autoscale_grows == 0 && m.autoscale_shrinks == 0) {
    // Static fleet: every window is the full duration; the product keeps the
    // utilization denominator bit-identical to the pre-elastic simulator
    // (repeated addition can round differently from multiplication).
    slot_time_s = static_cast<double>(slots.size()) * duration_s;
  }
  m.final_fleet_size = final_active;
  m.mean_fleet_size = slot_time_s / std::max(duration_s, 1e-300);
  m.fleet_energy_j = dispatched_energy_j + idle_static_j;
  m.energy_per_request_j = m.fleet_energy_j / static_cast<double>(m.completed);
  m.fleet_utilization = busy_total / std::max(slot_time_s, 1e-300);
  for (const EstimateCache& c : caches) {
    m.estimate_lookups += c.lookups();
    m.estimate_misses += c.misses();
  }
  source->finish(m);
  return m;
}

}  // namespace lumos::serve
