#include "serve/simulator.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace lumos::serve {

const char* routing_name(RoutingPolicy policy) noexcept {
  return policy == RoutingPolicy::kFirstIdle ? "first-idle" : "energy-aware";
}

FleetConfig FleetConfig::homogeneous(const AcceleratorSpec& spec, std::size_t count,
                                     RoutingPolicy routing) {
  LUMOS_EXPECTS(count >= 1);
  FleetConfig f;
  f.routing = routing;
  f.accelerators.assign(count, spec);
  return f;
}

FleetConfig FleetConfig::heterogeneous(const AcceleratorSpec& primary,
                                       const AcceleratorSpec& eco, std::size_t count,
                                       RoutingPolicy routing) {
  LUMOS_EXPECTS(count >= 1);
  FleetConfig f;
  f.routing = routing;
  f.accelerators.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    f.accelerators.push_back(i % 2 == 0 ? primary : eco);
  }
  return f;
}

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

struct Completion {
  double time_s = 0.0;
  std::uint64_t seq = 0;  // dispatch order: deterministic tie-break
  std::size_t acc = 0;
  double batch_energy_j = 0.0;
  std::vector<Request> batch;
};

// Min-heap ordering on (time, dispatch seq).
struct CompletionLater {
  bool operator()(const Completion& a, const Completion& b) const noexcept {
    if (a.time_s != b.time_s) return a.time_s > b.time_s;
    return a.seq > b.seq;
  }
};

}  // namespace

ServeMetrics simulate(const FleetConfig& fleet, const WorkloadCatalog& catalog,
                      const std::vector<Request>& trace, SchedulerKind scheduler,
                      const BatchPolicy& policy, const SimConfig& sim) {
  LUMOS_EXPECTS(!fleet.accelerators.empty());
  LUMOS_EXPECTS(!trace.empty());
  LUMOS_EXPECTS(policy.max_batch >= 1 && policy.max_batch <= BatchPolicy::kMaxBatchLimit);

  // One estimate cache per distinct spec name; fleet slots share caches.
  std::vector<EstimateCache> caches;
  caches.reserve(fleet.accelerators.size());
  std::vector<std::size_t> cache_of(fleet.accelerators.size(), kNone);
  for (std::size_t i = 0; i < fleet.accelerators.size(); ++i) {
    for (std::size_t c = 0; c < caches.size(); ++c) {
      if (caches[c].spec().name == fleet.accelerators[i].name) {
        cache_of[i] = c;
        break;
      }
    }
    if (cache_of[i] == kNone) {
      caches.emplace_back(fleet.accelerators[i], catalog);
      cache_of[i] = caches.size() - 1;
    }
  }

  // Goodput SLO.
  double slo_s = sim.slo_latency_s;
  if (slo_s <= 0.0) {
    double slowest = 0.0;
    for (std::uint32_t w = 0; w < catalog.size(); ++w) {
      slowest = std::max(slowest, caches[cache_of[0]].estimate(w, 1).latency_s);
    }
    slo_s = sim.slo_scale * slowest;
  }

  const std::size_t n_acc = fleet.accelerators.size();
  std::vector<bool> idle(n_acc, true);
  std::vector<double> busy_time(n_acc, 0.0);

  const std::unique_ptr<Scheduler> sched = make_scheduler(scheduler, policy);
  std::vector<Completion> heap;
  std::uint64_t dispatch_seq = 0;

  ServeMetrics m;
  m.batch_histogram.assign(
      (scheduler == SchedulerKind::kFifo ? std::size_t{1} : policy.max_batch) + 1, 0);
  std::vector<double> latencies;
  latencies.reserve(trace.size());
  double latency_sum = 0.0;
  std::size_t within_slo = 0;
  double dispatched_energy_j = 0.0;
  double depth_time = 0.0;

  const auto try_dispatch = [&](double now_s) {
    for (;;) {
      std::size_t first_idle = kNone;
      for (std::size_t i = 0; i < n_acc; ++i) {
        if (idle[i]) {
          first_idle = i;
          break;
        }
      }
      if (first_idle == kNone || !sched->ready(now_s)) return;
      std::vector<Request> batch = sched->pop(now_s);
      LUMOS_ENSURES(!batch.empty());
      const std::uint32_t workload = batch.front().workload;
      std::size_t chosen = first_idle;
      if (fleet.routing == RoutingPolicy::kEnergyAware) {
        double best_j = kNever;
        for (std::size_t i = 0; i < n_acc; ++i) {
          if (!idle[i]) continue;
          const double j =
              caches[cache_of[i]].estimate(workload, batch.size()).total_energy_j;
          if (j < best_j) {
            best_j = j;
            chosen = i;
          }
        }
      }
      const PerfReport& r = caches[cache_of[chosen]].estimate(workload, batch.size());
      idle[chosen] = false;
      busy_time[chosen] += r.latency_s;
      ++m.dispatches;
      ++m.batch_histogram[batch.size()];
      heap.push_back({now_s + r.latency_s, dispatch_seq++, chosen, r.total_energy_j,
                      std::move(batch)});
      std::push_heap(heap.begin(), heap.end(), CompletionLater{});
    }
  };

  std::size_t next_arrival = 0;
  double now_s = 0.0;
  while (m.completed < trace.size()) {
    const double t_arr =
        next_arrival < trace.size() ? trace[next_arrival].arrival_s : kNever;
    const double t_done = heap.empty() ? kNever : heap.front().time_s;
    bool any_idle = false;
    for (std::size_t i = 0; i < n_acc && !any_idle; ++i) any_idle = idle[i];
    // Deadlines only matter while an accelerator could take the batch; when
    // everything is busy the next completion re-evaluates readiness anyway.
    const double t_dead =
        any_idle && sched->queued() > 0 ? sched->next_deadline_s() : kNever;
    const double t = std::min(std::min(t_arr, t_done), t_dead);
    LUMOS_ENSURES(t >= now_s && t < kNever);
    depth_time += static_cast<double>(sched->queued()) * (t - now_s);
    now_s = t;

    while (!heap.empty() && heap.front().time_s <= now_s) {
      std::pop_heap(heap.begin(), heap.end(), CompletionLater{});
      Completion done = std::move(heap.back());
      heap.pop_back();
      idle[done.acc] = true;
      dispatched_energy_j += done.batch_energy_j;
      for (const Request& req : done.batch) {
        const double latency = done.time_s - req.arrival_s;
        latencies.push_back(latency);
        latency_sum += latency;
        m.max_latency_s = std::max(m.max_latency_s, latency);
        if (latency <= slo_s) ++within_slo;
        ++m.completed;
      }
    }
    while (next_arrival < trace.size() && trace[next_arrival].arrival_s <= now_s) {
      sched->enqueue(trace[next_arrival], now_s);
      ++next_arrival;
      m.peak_queue_depth = std::max(m.peak_queue_depth, sched->queued());
    }
    try_dispatch(now_s);
  }

  const double duration_s = now_s;
  m.offered_qps = static_cast<double>(trace.size()) /
                  std::max(trace.back().arrival_s, 1e-300);
  m.duration_s = duration_s;
  m.throughput_qps = static_cast<double>(m.completed) / std::max(duration_s, 1e-300);
  m.goodput_qps = static_cast<double>(within_slo) / std::max(duration_s, 1e-300);
  m.slo_latency_s = slo_s;
  m.slo_attainment =
      static_cast<double>(within_slo) / static_cast<double>(m.completed);
  m.mean_latency_s = latency_sum / static_cast<double>(m.completed);
  m.p50_latency_s = percentile(latencies, 0.50);
  m.p95_latency_s = percentile(latencies, 0.95);
  m.p99_latency_s = percentile(latencies, 0.99);
  m.p999_latency_s = percentile(latencies, 0.999);
  m.mean_queue_depth = depth_time / std::max(duration_s, 1e-300);
  m.mean_batch_size =
      static_cast<double>(m.completed) / static_cast<double>(std::max<std::size_t>(m.dispatches, 1));

  double busy_total = 0.0;
  double idle_static_j = 0.0;
  for (std::size_t i = 0; i < n_acc; ++i) {
    busy_total += busy_time[i];
    idle_static_j +=
        std::max(0.0, duration_s - busy_time[i]) * caches[cache_of[i]].static_power_w();
  }
  m.fleet_energy_j = dispatched_energy_j + idle_static_j;
  m.energy_per_request_j = m.fleet_energy_j / static_cast<double>(m.completed);
  m.fleet_utilization = busy_total / (static_cast<double>(n_acc) * std::max(duration_s, 1e-300));
  for (const EstimateCache& c : caches) {
    m.estimate_lookups += c.lookups();
    m.estimate_misses += c.misses();
  }
  return m;
}

}  // namespace lumos::serve
