#include "serve/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "arch/registry.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "serve/arena.hpp"
#include "serve/event.hpp"
#include "serve/event_heap.hpp"

namespace lumos::serve {

FleetConfig FleetConfig::homogeneous(const std::string& spec, std::size_t count,
                                     RoutingPolicy routing) {
  return cycled({spec}, count, routing);
}

FleetConfig FleetConfig::heterogeneous(const std::string& primary, const std::string& eco,
                                       std::size_t count, RoutingPolicy routing) {
  return cycled({primary, eco}, count, routing);
}

FleetConfig FleetConfig::cycled(const std::vector<std::string>& specs, std::size_t count,
                                RoutingPolicy routing) {
  if (specs.empty()) throw InvalidArgument("FleetConfig specs must not be empty");
  if (count == 0) throw InvalidArgument("FleetConfig fleet size must be >= 1");
  FleetConfig f;
  f.routing = routing;
  f.accelerators.reserve(count);
  for (std::size_t i = 0; i < count; ++i) f.accelerators.push_back(specs[i % specs.size()]);
  return f;
}

double CostModel::slot_hour_rate(const std::string& spec, double static_power_w) const {
  for (const auto& [name, rate] : slot_hour_overrides) {
    if (name == spec) return rate;
  }
  return static_power_w * usd_per_watt_hour;
}

std::string FleetConfig::label() const {
  std::vector<std::string> seen;
  std::string out;
  for (const std::string& name : accelerators) {
    if (std::find(seen.begin(), seen.end(), name) != seen.end()) continue;
    seen.push_back(name);
    if (!out.empty()) out += '+';
    out += name;
  }
  return out;
}

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);
constexpr std::uint64_t kNoBatch = static_cast<std::uint64_t>(-1);

// One pending completion.  The batch itself lives on the slot (see Slot):
// a slot failure aborts the in-flight batch in place and the heap entry goes
// stale — detected at pop by the dispatch-seq mismatch.
struct Completion {
  double time_s = 0.0;
  std::uint64_t seq = 0;  // dispatch order: deterministic tie-break
  std::size_t acc = 0;
};

// Min-heap ordering on (time, dispatch seq).
struct CompletionLater {
  bool operator()(const Completion& a, const Completion& b) const noexcept {
    if (a.time_s != b.time_s) return a.time_s > b.time_s;
    return a.seq > b.seq;
  }
};

// One retried arrival, waiting out its backoff.  Min-ordered by (time,
// retry seq) so simultaneous re-issues enqueue in the order they were
// scheduled.
struct PendingRetry {
  double time_s = 0.0;
  std::uint64_t seq = 0;
  Request request;
};

struct RetryLater {
  bool operator()(const PendingRetry& a, const PendingRetry& b) const noexcept {
    if (a.time_s != b.time_s) return a.time_s > b.time_s;
    return a.seq > b.seq;
  }
};

// One decode lane: a request generating tokens on a slot.  The prefill
// produced the first token (generated starts at 1); each decode step the
// slot runs generates one more until `remaining` hits zero.  Joiners admitted
// at a token boundary start at generated 0 (their first token appears at the
// end of the step that prefills them).
struct DecodeLane {
  Request request;
  std::uint32_t remaining = 0;   // tokens still to generate
  std::uint32_t generated = 0;   // tokens generated so far
  double first_token_s = 0.0;    // absolute time of the first token (TTFT anchor)
};

// One fleet slot.  Slots are append-only: growth pushes a new slot, shrink
// marks one draining (no new dispatches) and retires it once idle, so slot
// indices — and with them dispatch order and the (time, seq) completion order
// — never shift mid-simulation.  The slot owns its in-flight batch so a
// failure can abort it without touching the completion heap.
struct Slot {
  std::size_t cache = 0;   // estimate cache (shared per spec name)
  std::size_t family = 0;  // spec family this slot scales with
  bool idle = true;
  bool draining = false;
  bool retired = false;
  bool failed = false;     // down under fault injection
  double busy_s = 0.0;
  double active_start_s = 0.0;
  double active_end_s = -1.0;  // < 0: still present at simulation end

  // In-flight batch (valid while !idle).  The buffer cycles through the
  // run's RequestArena: acquired at dispatch, released at completion or
  // fault-abort.
  std::vector<Request> inflight;
  std::uint64_t inflight_seq = kNoBatch;
  double inflight_start_s = 0.0;
  double inflight_done_s = 0.0;
  double inflight_energy_j = 0.0;

  // Decode phase (valid while decoding; the slot stays !idle).  The in-flight
  // seq/start/done/energy fields describe the current decode step, so the
  // fault-abort staleness check and pro-rata energy accounting work unchanged.
  bool decoding = false;
  std::uint32_t decode_workload = 0;
  std::vector<DecodeLane> lanes;

  // Availability bookkeeping under fault injection.
  std::size_t failures = 0;
  std::size_t repairs = 0;       // completed repairs
  double down_since_s = 0.0;     // start of the current down phase (if failed)
  double down_total_s = 0.0;     // completed down time inside the active window
  double repair_total_s = 0.0;   // completed repair durations (for MTTR)
};

bool can_dispatch_to(const Slot& s) noexcept {
  return s.idle && !s.draining && !s.retired && !s.failed;
}

}  // namespace

void validate_scenario(const Scenario& scenario) {
  if (scenario.fleet.accelerators.empty()) {
    throw InvalidArgument("Scenario.fleet: FleetConfig.accelerators must not be empty");
  }
  if (scenario.catalog.empty()) {
    throw InvalidArgument("Scenario.catalog: WorkloadCatalog must not be empty");
  }
  if (scenario.batch.max_batch < 1 ||
      scenario.batch.max_batch > BatchPolicy::kMaxBatchLimit) {
    throw InvalidArgument("Scenario.batch: BatchPolicy.max_batch must be in [1, " +
                          std::to_string(BatchPolicy::kMaxBatchLimit) + "], got " +
                          std::to_string(scenario.batch.max_batch));
  }
  if (scenario.batch.max_wait_s < 0.0) {
    throw InvalidArgument("Scenario.batch: BatchPolicy.max_wait_s must be >= 0");
  }
  const CostModel& cost = scenario.fleet.cost;
  if (!(cost.usd_per_watt_hour >= 0.0) || !std::isfinite(cost.usd_per_watt_hour)) {
    throw InvalidArgument("Scenario.fleet: CostModel.usd_per_watt_hour must be >= 0");
  }
  if (!(cost.usd_per_joule >= 0.0) || !std::isfinite(cost.usd_per_joule)) {
    throw InvalidArgument("Scenario.fleet: CostModel.usd_per_joule must be >= 0");
  }
  for (const auto& [spec, rate] : cost.slot_hour_overrides) {
    if (!(rate >= 0.0) || !std::isfinite(rate)) {
      throw InvalidArgument("Scenario.fleet: CostModel slot-hour override for '" + spec +
                            "' must be >= 0");
    }
  }
  validate_autoscaler(scenario.sim.autoscaler);
  validate_faults(scenario.sim.faults);
  validate_retry(scenario.sim.retry);
  validate_admission(scenario.sim.admission);
  validate_observe(scenario.observe);
  if (scenario.sim.percentile_mode == PercentileMode::kHdr &&
      (!(scenario.sim.hdr_relative_error > 0.0) || scenario.sim.hdr_relative_error >= 1.0 ||
       !std::isfinite(scenario.sim.hdr_relative_error))) {
    throw InvalidArgument("Scenario.sim: SimConfig.hdr_relative_error must be in (0, 1)");
  }
  if (!scenario.trace.empty()) {
    for (const Request& r : scenario.trace) {
      if (r.workload >= scenario.catalog.size()) {
        throw InvalidArgument("Scenario.trace: request " + std::to_string(r.id) +
                              " names workload index " + std::to_string(r.workload) +
                              ", but the catalog holds " +
                              std::to_string(scenario.catalog.size()) + " workloads");
      }
    }
    return;
  }
  if (scenario.traffic.mode == LoopMode::kClosed) {
    validate_closed_loop(scenario.traffic.closed);
    return;
  }
  if (!(scenario.traffic.open.offered_qps > 0.0)) {
    throw InvalidArgument("Scenario.traffic: TraceConfig.offered_qps must be positive");
  }
  if (scenario.traffic.open.request_count < 1) {
    throw InvalidArgument("Scenario.traffic: TraceConfig.request_count must be >= 1");
  }
}

namespace {

// The event loop proper, compiled twice: kObs=false is the fast path with
// every observer hook and profiler clock read removed at compile time
// (`if constexpr`), not branch-predicted away at run time — the unobserved
// 1M-request headline pays zero per-event observability cost.  kObs=true is
// the instrumented twin; both produce bit-identical metrics because hooks
// never feed back into simulation state.
template <bool kObs>
FleetMetrics simulate_impl(const Scenario& scenario, Observation* observation) {
  const FleetConfig& fleet = scenario.fleet;
  const WorkloadCatalog& catalog = scenario.catalog;
  const BatchPolicy& policy = scenario.batch;
  const SimConfig& sim = scenario.sim;
  // The explicit trace is borrowed, not copied: the Scenario outlives the run.
  const std::unique_ptr<TrafficSource> source =
      scenario.trace.empty()
          ? make_traffic_source(catalog, scenario.traffic)
          : std::make_unique<OpenLoopSource>(&scenario.trace);
  const std::size_t total_requests = source->total_requests();
  LUMOS_ENSURES(total_requests >= 1);
  const std::unique_ptr<Autoscaler> scaler = make_autoscaler(sim.autoscaler);
  const std::unique_ptr<AdmissionController> admission = make_admission(sim.admission);
  const RetryPolicy& retry = sim.retry;

  // Observability: only the kObs instantiation ever constructs the hub; the
  // profiler is the only observer that reads a real clock.
  std::unique_ptr<ObserverHub> hub;
  if constexpr (kObs) {
    hub = std::make_unique<ObserverHub>(scenario.observe, catalog);
  }
  ObserverHub* const obs = hub.get();  // non-null iff kObs
  EventLoopProfiler* const prof = obs ? obs->profiler() : nullptr;
  using ProfClock = EventLoopProfiler::Clock;
  const auto prof_now = [&]() {
    if constexpr (kObs) {
      return prof ? ProfClock::now() : ProfClock::time_point{};
    } else {
      return ProfClock::time_point{};
    }
  };

  // One estimate cache per distinct spec name; fleet slots share caches.
  // Families are the distinct initial spec names in first-appearance order —
  // the units the autoscaler grows and shrinks.
  std::vector<EstimateCache> caches;
  const auto cache_for = [&](const std::string& spec) -> std::size_t {
    for (std::size_t c = 0; c < caches.size(); ++c) {
      if (caches[c].spec().name == spec) return c;
    }
    caches.emplace_back(spec, catalog);
    return caches.size() - 1;
  };

  std::vector<std::string> families;
  std::vector<std::size_t> family_cache;
  std::vector<Slot> slots;
  slots.reserve(fleet.accelerators.size());
  for (const std::string& spec : fleet.accelerators) {
    std::size_t f = kNone;
    for (std::size_t i = 0; i < families.size(); ++i) {
      if (families[i] == spec) {
        f = i;
        break;
      }
    }
    if (f == kNone) {
      families.push_back(spec);
      family_cache.push_back(cache_for(spec));
      f = families.size() - 1;
    }
    Slot s;
    s.cache = family_cache[f];
    s.family = f;
    slots.push_back(std::move(s));
  }
  if constexpr (kObs) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      obs->on_slot_added(i, fleet.accelerators[i], 0.0);
    }
  }
  // Grown slots may use a scaled registry variant of the family's spec; build
  // those caches up front so the cache vector is stable during the loop.
  std::vector<std::size_t> family_grow_cache = family_cache;
  if (scaler && sim.autoscaler.grow_scale != 1.0) {
    for (std::size_t f = 0; f < families.size(); ++f) {
      family_grow_cache[f] =
          cache_for(arch::scaled_spec_name(families[f], sim.autoscaler.grow_scale));
    }
  }

  // Kind-aware routing: which caches (and so which fleet slots) can serve
  // each workload, and the first serving slot for unloaded-latency queries.
  std::vector<std::vector<char>> cache_serves(caches.size());
  for (std::size_t c = 0; c < caches.size(); ++c) {
    cache_serves[c].resize(catalog.size());
    for (std::uint32_t w = 0; w < catalog.size(); ++w) {
      cache_serves[c][w] = caches[c].can_serve(w) ? 1 : 0;
    }
  }
  std::vector<std::size_t> first_serving_cache(catalog.size(), kNone);
  for (std::uint32_t w = 0; w < catalog.size(); ++w) {
    for (const Slot& s : slots) {
      if (cache_serves[s.cache][w] != 0) {
        first_serving_cache[w] = s.cache;
        break;
      }
    }
    if (first_serving_cache[w] == kNone) {
      const arch::Workload& wl = catalog.workload(w);
      throw InvalidArgument("fleet '" + fleet.label() + "' cannot serve " +
                            arch::workload_kind_name(wl.kind()) + " workload '" + wl.name() +
                            "': no accelerator of that kind in the fleet");
    }
  }
  // Masks only bind when the fleet's specs differ in what they can serve;
  // fleets whose slots all accept the same workload set (single-kind, or
  // all-electronic serving everything) skip the mask rebuild entirely
  // (hoisted: the allow-everything mask is a constant, tested once per
  // dispatch round instead of per slot scan).
  bool mixed_fleet = false;
  for (std::size_t c = 1; c < caches.size() && !mixed_fleet; ++c) {
    mixed_fleet = cache_serves[c] != cache_serves[0];
  }

  // Amortised $/slot-hour per cache (== per spec), for cost-aware routing and
  // the dollar-cost metrics.
  std::vector<double> rate_of_cache(caches.size(), 0.0);
  for (std::size_t c = 0; c < caches.size(); ++c) {
    rate_of_cache[c] =
        fleet.cost.slot_hour_rate(caches[c].spec().name, caches[c].static_power_w());
  }

  // Simulation-wide fallback SLO, then each tenant's own contract.
  double slo_s = sim.slo_latency_s;
  if (slo_s <= 0.0) {
    double slowest = 0.0;
    for (std::uint32_t w = 0; w < catalog.size(); ++w) {
      slowest = std::max(slowest, caches[first_serving_cache[w]].estimate(w, 1).latency_s);
    }
    slo_s = sim.slo_scale * slowest;
  }
  std::vector<double> slo_of(catalog.size(), slo_s);
  for (std::uint32_t w = 0; w < catalog.size(); ++w) {
    if (catalog.at(w).slo_latency_s > 0.0) slo_of[w] = catalog.at(w).slo_latency_s;
  }

  // Per-entry request timeouts (0 disables); `has_timeouts` gates every
  // timeout check so timeout-free runs do no extra per-request work.
  std::vector<double> timeout_of(catalog.size(), 0.0);
  bool has_timeouts = false;
  for (std::uint32_t w = 0; w < catalog.size(); ++w) {
    timeout_of[w] = catalog.at(w).timeout_s;
    has_timeouts = has_timeouts || timeout_of[w] > 0.0;
  }

  // SLO-aware admission prices requests with the estimate cache; computed
  // only for that policy so other runs leave the cache counters untouched.
  std::vector<double> service_of(catalog.size(), 0.0);
  double mean_service_s = 0.0;
  const bool slo_admission =
      admission && admission->policy() == AdmissionPolicy::kSloAware;
  if (slo_admission) {
    const std::size_t pricing_batch =
        scenario.scheduler == SchedulerKind::kFifo ? std::size_t{1} : policy.max_batch;
    double weighted = 0.0;
    for (std::uint32_t w = 0; w < catalog.size(); ++w) {
      service_of[w] = caches[first_serving_cache[w]].estimate(w, pricing_batch).latency_s /
                      static_cast<double>(pricing_batch);
      weighted += catalog.at(w).mix_weight * service_of[w];
    }
    mean_service_s = weighted / catalog.total_weight();
  }

  const std::unique_ptr<Scheduler> sched =
      make_scheduler(scenario.scheduler, policy, catalog.priorities());
  EventHeap<Completion, CompletionLater> heap;
  std::uint64_t dispatch_seq = 0;

  // Retried arrivals waiting out their backoff (fifth arrival path).
  EventHeap<PendingRetry, RetryLater> retry_heap;
  std::uint64_t retry_seq = 0;

  // Batch buffers cycle through the arena: dispatch acquires, completion or
  // fault-abort releases, so the steady state allocates nothing per batch.
  RequestArena arena;

  // Per-slot failure/recovery process (nullptr when injection is disabled).
  std::unique_ptr<SlotFaultProcess> faults;
  if (sim.faults.enabled()) {
    faults = std::make_unique<SlotFaultProcess>(sim.faults);
    for (std::size_t i = 0; i < slots.size(); ++i) faults->add_slot(0.0);
  }

  FleetMetrics m;
  m.batch_histogram.assign(
      (scenario.scheduler == SchedulerKind::kFifo ? std::size_t{1} : policy.max_batch) + 1,
      0);
  m.initial_fleet_size = slots.size();
  m.peak_fleet_size = slots.size();
  double latency_sum = 0.0;
  std::size_t within_slo = 0;
  double dispatched_energy_j = 0.0;
  double depth_time = 0.0;
  // Latency samples: the exact mode stores every sample per tenant (sorted at
  // the end — the historical bit-identical path); kHdr streams them into
  // bounded-error sketches instead, so memory stays flat at 100M-request
  // scale.  `tenant_completed` counts completions in both modes.
  const bool hdr = sim.percentile_mode == PercentileMode::kHdr;
  std::vector<std::vector<double>> tenant_latencies(hdr ? 0 : catalog.size());
  std::vector<HdrHistogram> tenant_hist(
      hdr ? catalog.size() : 0, HdrHistogram(hdr ? sim.hdr_relative_error : 0.01));
  std::vector<std::size_t> tenant_completed(catalog.size(), 0);
  std::vector<double> tenant_sum(catalog.size(), 0.0);
  std::vector<double> tenant_max(catalog.size(), 0.0);
  std::vector<std::size_t> tenant_within(catalog.size(), 0);
  std::vector<std::size_t> tenant_shed(catalog.size(), 0);
  std::vector<std::size_t> tenant_timed_out(catalog.size(), 0);
  // Dollars attributed per tenant: served slot-time at the slot's hourly rate
  // plus batch energy at $/J, charged wherever dispatched energy is (batch
  // completions and pro-rata fault aborts).  Sums to <= the fleet cost —
  // idle slot-time and idle static energy stay unattributed.
  std::vector<double> tenant_cost_usd(catalog.size(), 0.0);
  const double usd_per_joule = fleet.cost.usd_per_joule;
  const auto attribute_cost = [&](std::uint32_t w, double served_s, double energy_j,
                                  std::size_t cache) {
    tenant_cost_usd[w] += served_s / 3600.0 * rate_of_cache[cache] +
                          energy_j * usd_per_joule;
  };
  // Terminal outcomes (completed + shed + timed out): the loop's stop target.
  std::size_t terminal = 0;

  // Decode-phase setup, all skipped when nothing decodes: the gated branches
  // below then never fire, keeping decode-free runs bit-identical to the
  // pre-decode event loop (pinned by tests/test_decode.cpp).
  bool has_decode = catalog.has_decode();
  if (!has_decode) {
    for (const Request& r : scenario.trace) {
      if (r.decode_tokens > 0) {
        has_decode = true;
        break;
      }
    }
  }
  const bool continuous = sim.decode_mode == DecodeMode::kContinuous;
  // Decode lanes per slot: the batch width the scheduler dispatches at.
  const std::size_t lane_capacity =
      scenario.scheduler == SchedulerKind::kFifo ? std::size_t{1} : policy.max_batch;
  std::vector<char> cache_generates(caches.size(), 0);
  std::vector<double> ttft_slo_of;
  std::vector<double> tpot_slo_of;
  std::vector<std::uint32_t> ctx_bucket_of;
  std::vector<std::uint32_t> native_seq_of;  // prompt length when seq_len == 0
  // Phase-latency samples of completed decode requests (always exact; see
  // LatencyState).
  std::vector<double> ttft_samples;
  std::vector<double> tpot_samples;
  std::vector<Request> joiner_buf;
  if (has_decode) {
    for (std::size_t c = 0; c < caches.size(); ++c) {
      cache_generates[c] = caches[c].can_generate() ? 1 : 0;
    }
    ttft_slo_of.assign(catalog.size(), 0.0);
    tpot_slo_of.assign(catalog.size(), 0.0);
    ctx_bucket_of.assign(catalog.size(), 32);
    native_seq_of.assign(catalog.size(), 0);
    for (std::uint32_t w = 0; w < catalog.size(); ++w) {
      const DecodeConfig& d = catalog.at(w).decode;
      ttft_slo_of[w] = d.ttft_slo_s;
      tpot_slo_of[w] = d.tpot_slo_s;
      ctx_bucket_of[w] = static_cast<std::uint32_t>(std::max<std::size_t>(d.ctx_bucket, 1));
      if (catalog.workload(w).kind() == arch::WorkloadKind::kTransformer) {
        native_seq_of[w] =
            static_cast<std::uint32_t>(catalog.workload(w).transformer_config().seq_len);
      }
    }
    m.decode_occupancy.assign(lane_capacity + 1, 0);
  }

  // Autoscaler signals: per-workload queue depths and the per-family
  // time-integral of busy slots since the last evaluation step (exact busy
  // fraction, not the dispatch-time batch-latency proxy — a batch longer
  // than the interval keeps counting as busy in later intervals).
  std::vector<std::size_t> queued_by_workload(catalog.size(), 0);
  std::vector<double> family_busy_integral_s(families.size(), 0.0);
  std::uint64_t eval_count = 0;
  double next_eval_s = scaler ? sim.autoscaler.interval_s : kNever;

  // Hot-path loops iterate only the live (non-retired) slots; churn from an
  // oscillating policy must not make per-event cost grow with the count of
  // long-retired slots.  Rebuilt on the rare grow/retire events, ascending
  // index order so routing stays deterministic and identical to a full scan.
  std::vector<std::size_t> live;
  const auto rebuild_live = [&]() {
    live.clear();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].retired) live.push_back(i);
    }
  };
  rebuild_live();

  // Scratch for the mixed-fleet dispatch mask: workload w is dispatchable
  // when some idle non-draining accelerator serves it.  Single-kind fleets
  // never call this (the hoisted allow-everything mask is equivalent).
  std::vector<char> allowed(catalog.size(), 1);
  const auto current_mask = [&]() -> WorkloadMask {
    if (!mixed_fleet) return WorkloadMask{};
    std::fill(allowed.begin(), allowed.end(), 0);
    for (const std::size_t i : live) {
      const Slot& s = slots[i];
      if (!can_dispatch_to(s)) continue;
      const std::vector<char>& serves = cache_serves[s.cache];
      for (std::uint32_t w = 0; w < catalog.size(); ++w) {
        if (serves[w] != 0) allowed[w] = 1;
      }
    }
    return WorkloadMask{&allowed};
  };

  const auto any_dispatchable = [&]() {
    for (const std::size_t i : live) {
      if (can_dispatch_to(slots[i])) return true;
    }
    return false;
  };

  // A timed-out attempt either re-enters through the retry heap (budget
  // left) or terminates as kTimeout.
  const auto handle_timed_out_attempt = [&](const Request& req, double now_s) {
    ++m.attempt_timeouts;
    const bool will_retry =
        static_cast<std::size_t>(req.attempt) + 1 < retry.max_attempts;
    if constexpr (kObs) obs->on_attempt_timeout(req, now_s, will_retry);
    if (will_retry) {
      Request again = req;
      ++again.attempt;
      again.arrival_s = now_s + retry_backoff_s(retry, again.id, again.attempt);
      ++m.retried_attempts;
      if constexpr (kObs) obs->on_retry(again, now_s, again.arrival_s);
      retry_heap.push({again.arrival_s, retry_seq++, std::move(again)});
    } else {
      ++m.timed_out_requests;
      ++tenant_timed_out[req.workload];
      ++terminal;
      if constexpr (kObs) {
        obs->on_complete(req, now_s, CompletionStatus::kTimeout,
                         now_s - req.first_arrival_s, false);
      }
      source->on_complete(req, now_s, CompletionStatus::kTimeout);
    }
  };

  // Full kOk-completion accounting for one request at `t` — shared by the
  // prefill completion path and decode-lane completions; statement-for-
  // statement the historical inline path, so decode-free runs stay
  // bit-identical.  Latency is client-perceived: first issue to now,
  // backoffs included.
  const auto complete_ok = [&](const Request& req, double t) {
    const std::uint32_t w = req.workload;
    const double latency = t - req.first_arrival_s;
    if (hdr) {
      tenant_hist[w].add(latency);
    } else {
      tenant_latencies[w].push_back(latency);
    }
    ++tenant_completed[w];
    tenant_sum[w] += latency;
    tenant_max[w] = std::max(tenant_max[w], latency);
    latency_sum += latency;
    m.max_latency_s = std::max(m.max_latency_s, latency);
    const bool in_slo = latency <= slo_of[w];
    if (in_slo) {
      ++within_slo;
      ++tenant_within[w];
    }
    ++m.completed;
    ++terminal;
    if constexpr (kObs) {
      obs->on_complete(req, t, CompletionStatus::kOk, latency, in_slo);
    }
    // Feedback to the source: a closed-loop session may now schedule its
    // next issue (at or after this completion's instant).
    source->on_complete(req, t, CompletionStatus::kOk);
  };

  // Terminal accounting for a request that decoded: the e2e completion plus
  // the decode-phase metrics (TTFT anchored at the first token, TPOT across
  // the decode steps).  A request finishing past its deadline times out as
  // usual — its generated tokens were wasted work.
  const auto finish_decode_request = [&](const Request& req, double t,
                                         double first_token_s, std::uint32_t generated) {
    const std::uint32_t w = req.workload;
    if (has_timeouts && timeout_of[w] > 0.0 && t - req.arrival_s > timeout_of[w]) {
      m.aborted_decode_tokens += generated;
      handle_timed_out_attempt(req, t);
      return;
    }
    complete_ok(req, t);
    if (generated == 0) return;  // trace-built joiner with no tokens to decode
    ++m.decode_requests;
    m.generated_tokens += generated;
    const double ttft = first_token_s - req.first_arrival_s;
    ttft_samples.push_back(ttft);
    if (ttft_slo_of[w] > 0.0) {
      ++m.ttft_slo_requests;
      if (ttft <= ttft_slo_of[w]) ++m.within_ttft_slo;
    }
    if (generated >= 2) {
      const double tpot = (t - first_token_s) / static_cast<double>(generated - 1);
      tpot_samples.push_back(tpot);
      if (tpot_slo_of[w] > 0.0) {
        ++m.tpot_slo_requests;
        if (tpot <= tpot_slo_of[w]) ++m.within_tpot_slo;
      }
    }
  };

  // Prices and schedules the next decode step of slot `idx` at `now_s`;
  // `extra_s`/`extra_j` fold in the joiners' prefill.  The step keys on the
  // widest lane's context, rounded up to the entry's ctx bucket so the step
  // cache stays small while contexts grow token by token.
  const auto schedule_decode_step = [&](std::size_t idx, double now_s, double extra_s,
                                        double extra_j) {
    Slot& s = slots[idx];
    const std::uint32_t w = s.decode_workload;
    std::uint32_t ctx = 1;
    for (const DecodeLane& lane : s.lanes) {
      const std::uint32_t base =
          lane.request.seq_len != 0 ? lane.request.seq_len : native_seq_of[w];
      ctx = std::max(ctx, base + lane.generated);
    }
    const std::uint32_t bucket = ctx_bucket_of[w];
    ctx = (ctx + bucket - 1) / bucket * bucket;
    const PerfReport& r =
        caches[s.cache].decode_step(w, s.lanes.size(), ctx);
    const double step_s = r.latency_s + extra_s;
    s.busy_s += step_s;
    s.inflight_seq = dispatch_seq;
    s.inflight_start_s = now_s;
    s.inflight_done_s = now_s + step_s;
    s.inflight_energy_j = r.total_energy_j + extra_j;
    heap.push({s.inflight_done_s, dispatch_seq, idx});
    ++dispatch_seq;
  };

  // Token-boundary scheduling decision for slot `idx`: admit waiting prefills
  // into free lanes (continuous mode, non-draining slots), then either run
  // another step or — every lane drained — go idle (retiring a draining
  // slot).  Decode steps carry no observer dispatch/complete batch hooks: the
  // traced lifecycle stays arrival -> dispatch -> completion with the decode
  // phase inside the request's span.
  const auto continue_decode = [&](std::size_t idx, double now_s) {
    Slot& s = slots[idx];
    double extra_s = 0.0;
    double extra_j = 0.0;
    if (continuous && !s.draining && !s.lanes.empty() &&
        s.lanes.size() < lane_capacity) {
      const std::uint32_t w = s.decode_workload;
      joiner_buf.clear();
      const std::size_t popped =
          sched->pop_joiners(w, lane_capacity - s.lanes.size(), now_s, joiner_buf);
      if (popped > 0) {
        queued_by_workload[w] -= popped;
        std::size_t joined = 0;
        std::uint32_t max_seq = 0;
        for (Request& req : joiner_buf) {
          // Lazy queued-timeout cancellation, as in dispatch.
          if (has_timeouts && timeout_of[w] > 0.0 &&
              now_s - req.arrival_s > timeout_of[w]) {
            handle_timed_out_attempt(req, now_s);
            continue;
          }
          DecodeLane lane;
          lane.remaining = req.decode_tokens;
          max_seq = std::max(max_seq, req.seq_len);
          lane.request = std::move(req);
          s.lanes.push_back(std::move(lane));
          ++joined;
        }
        if (joined > 0) {
          // The joining step pays the joiners' prefill on top of the decode
          // step: running lanes stall for it (TPOT interference), joiners
          // get their first token at the step's end.
          const PerfReport& pr = caches[s.cache].estimate(w, joined, max_seq);
          extra_s = pr.latency_s;
          extra_j = pr.total_energy_j;
        }
      }
    }
    if (!s.lanes.empty()) {
      schedule_decode_step(idx, now_s, extra_s, extra_j);
      return;
    }
    s.decoding = false;
    s.inflight_seq = kNoBatch;
    s.idle = true;
    if (s.draining && !s.retired) {
      s.retired = true;
      s.active_end_s = now_s;
      if (faults) faults->remove_slot(idx);
      rebuild_live();
    }
  };

  // Admission decision for one arriving request (fresh or retried).
  const auto admit = [&](const Request& r) {
    AdmissionSignals sig;
    sig.tier = catalog.at(r.workload).priority;
    sig.queued = sched->queued();
    sig.slo_s = slo_of[r.workload];
    std::size_t active = 0;
    for (const std::size_t i : live) {
      const Slot& s = slots[i];
      if (!s.draining && !s.failed) ++active;
    }
    sig.active_slots = active;
    if (slo_admission) {
      sig.service_s = service_of[r.workload];
      sig.predicted_wait_s = static_cast<double>(sig.queued) * mean_service_s /
                             static_cast<double>(std::max<std::size_t>(active, 1));
    }
    return admission->admit(sig);
  };

  // Routes one arriving request (fresh or retried) through admission into the
  // scheduler, or terminates it as kShed.
  const auto accept_arrival = [&](const Request& r, double now_s) {
    const bool admitted = !admission || admit(r);
    if constexpr (kObs) obs->on_admission(r, now_s, admitted);
    if (!admitted) {
      ++m.shed_requests;
      ++tenant_shed[r.workload];
      ++terminal;
      if constexpr (kObs) {
        obs->on_complete(r, now_s, CompletionStatus::kShed, now_s - r.first_arrival_s,
                         false);
      }
      source->on_complete(r, now_s, CompletionStatus::kShed);
      return;
    }
    ++queued_by_workload[r.workload];
    sched->enqueue(r, now_s);
    m.peak_queue_depth = std::max(m.peak_queue_depth, sched->queued());
  };

  const auto try_dispatch = [&](double now_s) {
    for (;;) {
      if (!any_dispatchable()) return;
      const WorkloadMask mask = current_mask();
      const auto t_pop = prof_now();
      if (!sched->ready(now_s, mask)) return;
      std::vector<Request> batch = arena.acquire();
      sched->pop(now_s, mask, batch);
      if (prof) prof->record(LoopSource::kSchedulerPop, t_pop, 1);
      LUMOS_ENSURES(!batch.empty());
      const std::uint32_t workload = batch.front().workload;
      queued_by_workload[workload] -= batch.size();
      if (has_timeouts && timeout_of[workload] > 0.0) {
        // Lazy queued-timeout cancellation: expired requests never dispatch.
        std::size_t kept = 0;
        for (Request& req : batch) {
          if (now_s - req.arrival_s > timeout_of[workload]) {
            handle_timed_out_attempt(req, now_s);
          } else {
            batch[kept++] = std::move(req);
          }
        }
        batch.resize(kept);
        if (batch.empty()) {
          arena.release(std::move(batch));
          continue;
        }
      }
      // Batching schedulers never mix seq buckets within a batch (FIFO
      // batches are single requests), so the head's sampled length prices the
      // whole batch.
      const std::uint32_t seq_len = batch.front().seq_len;
      std::size_t chosen = kNone;
      for (const std::size_t i : live) {
        if (can_dispatch_to(slots[i]) && cache_serves[slots[i].cache][workload] != 0) {
          chosen = i;
          break;
        }
      }
      LUMOS_ENSURES(chosen != kNone);
      std::uint64_t estimate_calls = 1;  // the pricing call below
      const auto t_est = prof_now();
      if (fleet.routing == RoutingPolicy::kEnergyAware) {
        double best_j = kNever;
        for (const std::size_t i : live) {
          if (!can_dispatch_to(slots[i]) || cache_serves[slots[i].cache][workload] == 0) {
            continue;
          }
          const double j =
              caches[slots[i].cache].estimate(workload, batch.size(), seq_len).total_energy_j;
          ++estimate_calls;
          if (j < best_j) {
            best_j = j;
            chosen = i;
          }
        }
      } else if (fleet.routing == RoutingPolicy::kCostAware) {
        // Cheapest compatible idle slot still predicted to land the batch
        // head inside the tenant's SLO; with no such candidate `chosen` keeps
        // the first-idle pick, so overloaded fleets degrade to first-idle
        // rather than stall.
        double best_usd = kNever;
        for (const std::size_t i : live) {
          if (!can_dispatch_to(slots[i]) || cache_serves[slots[i].cache][workload] == 0) {
            continue;
          }
          const PerfReport& est = caches[slots[i].cache].estimate(workload, batch.size(), seq_len);
          ++estimate_calls;
          if (now_s + est.latency_s - batch.front().first_arrival_s > slo_of[workload]) {
            continue;
          }
          const double usd = est.latency_s / 3600.0 * rate_of_cache[slots[i].cache] +
                             est.total_energy_j * fleet.cost.usd_per_joule;
          if (usd < best_usd) {
            best_usd = usd;
            chosen = i;
          }
        }
      }
      const PerfReport& r = caches[slots[chosen].cache].estimate(workload, batch.size(), seq_len);
      if (prof) prof->record(LoopSource::kEstimate, t_est, estimate_calls);
      Slot& sl = slots[chosen];
      sl.idle = false;
      sl.busy_s += r.latency_s;
      ++m.dispatches;
      ++m.batch_histogram[batch.size()];
      sl.inflight = std::move(batch);
      sl.inflight_seq = dispatch_seq;
      sl.inflight_start_s = now_s;
      sl.inflight_done_s = now_s + r.latency_s;
      sl.inflight_energy_j = r.total_energy_j;
      if constexpr (kObs) {
        obs->on_dispatch(chosen, dispatch_seq, sl.inflight, now_s, sl.inflight_done_s);
      }
      heap.push({sl.inflight_done_s, dispatch_seq, chosen});
      ++dispatch_seq;
    }
  };

  // Live failed-slot count for the observer gauge; kept incrementally so the
  // on_tick hook never scans the fleet.
  std::size_t failed_total = 0;

  // Applies every pending fault transition up to `now_s`; returns how many it
  // applied.  A failure aborts the slot's in-flight batch (partial
  // busy/energy accounting, requests requeued) and hides the slot from
  // routing; a draining slot that fails retires on the spot (its batch was
  // going to be its last anyway).
  const auto process_faults = [&](double now_s) -> std::size_t {
    std::size_t transitions = 0;
    while (faults->next_event_s() <= now_s) {
      const std::size_t i = faults->next_event_slot();
      const double t_ev = faults->next_event_s();
      const bool up = faults->advance(i);
      ++transitions;
      Slot& s = slots[i];
      if (!up) {
        s.failed = true;
        ++s.failures;
        ++m.slot_failures;
        ++failed_total;
        if constexpr (kObs) obs->on_slot_failure(i, t_ev);
        s.down_since_s = t_ev;
        if (!s.idle) {
          ++m.failed_batches;
          if constexpr (kObs) {
            obs->on_batch_abort(i, s.inflight_seq, s.inflight_start_s, t_ev,
                                s.decoding ? s.lanes.size() : s.inflight.size());
          }
          // The unserved remainder was never busy time; the dynamic energy
          // already burned is charged pro rata (for a decoding slot: of the
          // current decode step) — and so are the aborted batch's dollars.
          s.busy_s -= s.inflight_done_s - t_ev;
          const double span = s.inflight_done_s - s.inflight_start_s;
          if (span > 0.0) {
            const double served_s = t_ev - s.inflight_start_s;
            const double energy_j = s.inflight_energy_j * (served_s / span);
            dispatched_energy_j += energy_j;
            const std::uint32_t aborted_w =
                s.decoding ? s.decode_workload : s.inflight.front().workload;
            attribute_cost(aborted_w, served_s, energy_j, s.cache);
          }
          if (s.decoding) {
            // Mid-decode failure: the KV state is gone, so each lane's
            // request requeues as a fresh prefill (decode length intact) and
            // its generated-so-far tokens count as aborted work.
            for (const DecodeLane& lane : s.lanes) {
              m.aborted_decode_tokens += lane.generated;
              ++queued_by_workload[lane.request.workload];
              sched->enqueue(lane.request, t_ev);
              ++m.requeued_requests;
              if constexpr (kObs) obs->on_requeue(lane.request, t_ev);
            }
            s.lanes.clear();
            s.decoding = false;
          } else {
            std::vector<Request> aborted = std::move(s.inflight);
            for (const Request& req : aborted) {
              ++queued_by_workload[req.workload];
              sched->enqueue(req, t_ev);
              ++m.requeued_requests;
              if constexpr (kObs) obs->on_requeue(req, t_ev);
            }
            arena.release(std::move(aborted));
          }
          s.inflight_seq = kNoBatch;
          s.idle = true;
          m.peak_queue_depth = std::max(m.peak_queue_depth, sched->queued());
        }
        if (s.draining && !s.retired) {
          s.retired = true;
          s.active_end_s = t_ev;
          --failed_total;
          faults->remove_slot(i);
          rebuild_live();
        }
      } else {
        s.failed = false;
        ++s.repairs;
        ++m.slot_recoveries;
        --failed_total;
        if constexpr (kObs) obs->on_slot_recovery(i, t_ev);
        const double repair_s = t_ev - s.down_since_s;
        s.down_total_s += repair_s;
        s.repair_total_s += repair_s;
      }
    }
    return transitions;
  };

  // One autoscaler step: per family, observe signals over the last interval
  // and apply at most a one-slot delta, clamped to [min_slots, max_slots]
  // active slots.  Shrinks drain before retiring: the slot is closed to new
  // work immediately, retires now if idle, otherwise at its completion.
  // Failed slots are invisible (reported via `failed_slots`, not `active`).
  // Active (dispatchable-family) slot count across all families, kept
  // incrementally for peak tracking.
  std::size_t active_total = slots.size();
  const auto evaluate_autoscaler = [&](double now_s) {
    bool live_changed = false;
    for (std::size_t f = 0; f < families.size(); ++f) {
      FamilySignals signals;
      signals.min_slots = sim.autoscaler.min_slots;
      signals.max_slots = sim.autoscaler.max_slots;
      for (const std::size_t i : live) {
        const Slot& s = slots[i];
        if (s.family != f) continue;
        if (s.draining) {
          ++signals.draining_slots;
        } else if (s.failed) {
          ++signals.failed_slots;
        } else {
          ++signals.active_slots;
        }
      }
      const std::vector<char>& serves = cache_serves[family_cache[f]];
      for (std::uint32_t w = 0; w < catalog.size(); ++w) {
        if (serves[w] != 0) signals.queued += queued_by_workload[w];
      }
      signals.utilization =
          signals.active_slots > 0
              ? std::min(1.0, family_busy_integral_s[f] /
                                  (static_cast<double>(signals.active_slots) *
                                   sim.autoscaler.interval_s))
              : 0.0;
      family_busy_integral_s[f] = 0.0;
      const int delta = scaler->step(signals);
      if (delta > 0 && signals.active_slots < signals.max_slots) {
        Slot grown;
        grown.cache = family_grow_cache[f];
        grown.family = f;
        grown.active_start_s = now_s;
        slots.push_back(std::move(grown));
        if (faults) faults->add_slot(now_s);
        if constexpr (kObs) {
          obs->on_autoscale(f, 1, now_s);
          obs->on_slot_added(slots.size() - 1, caches[slots.back().cache].spec().name,
                             now_s);
        }
        live_changed = true;
        ++m.autoscale_grows;
        ++active_total;
        m.peak_fleet_size = std::max(m.peak_fleet_size, active_total);
      } else if (delta < 0 && signals.active_slots > signals.min_slots) {
        for (std::size_t i = slots.size(); i-- > 0;) {
          Slot& s = slots[i];
          if (s.family != f || s.retired || s.draining) continue;
          s.draining = true;
          if constexpr (kObs) obs->on_autoscale(f, -1, now_s);
          --active_total;
          if (s.idle) {
            s.retired = true;
            s.active_end_s = now_s;
            if (faults) faults->remove_slot(i);
            live_changed = true;
          }
          ++m.autoscale_shrinks;
          break;
        }
      }
    }
    if (live_changed) rebuild_live();
  };

  double last_arrival_s = 0.0;
  double now_s = 0.0;
  while (terminal < total_requests) {
    const double t_arr = source->next_arrival_time();
    const double t_retry = retry_heap.next_time_s();
    const double t_done = heap.next_time_s();
    const double t_fault = faults ? faults->next_event_s() : kNever;
    // Deadlines only matter while an accelerator could take the batch; when
    // everything is busy the next completion re-evaluates readiness anyway.
    // In mixed fleets the deadline is masked the same way dispatch is, so a
    // deadline whose workload has no idle compatible accelerator never wakes
    // the loop without progress.
    const double t_dead = any_dispatchable() && sched->queued() > 0
                              ? sched->next_deadline_s(current_mask())
                              : kNever;
    const double t = std::min({t_arr, t_retry, t_done, t_dead, t_fault, next_eval_s});
    LUMOS_ENSURES(t >= now_s && t < kNever);
    depth_time += static_cast<double>(sched->queued()) * (t - now_s);
    if (scaler && t > now_s) {
      // Exact per-family busy-slot time integral for the utilization signal.
      const double dt = t - now_s;
      for (const std::size_t i : live) {
        if (!slots[i].idle) family_busy_integral_s[slots[i].family] += dt;
      }
    }
    now_s = t;

    const auto t_completions = prof_now();
    std::uint64_t completion_events = 0;
    while (!heap.empty() && heap.top().time_s <= now_s) {
      const Completion done = heap.pop();
      Slot& acc = slots[done.acc];
      if (acc.inflight_seq != done.seq) continue;  // batch aborted by a failure
      ++completion_events;
      if (acc.decoding) {
        // Token boundary: the decode step finished; each active lane emits
        // one token, drained lanes complete, and the slot decides whether
        // another step runs (see continue_decode).
        dispatched_energy_j += acc.inflight_energy_j;
        attribute_cost(acc.decode_workload, acc.inflight_done_s - acc.inflight_start_s,
                       acc.inflight_energy_j, acc.cache);
        ++m.decode_steps;
        ++m.decode_occupancy[acc.lanes.size()];
        std::size_t kept = 0;
        for (DecodeLane& lane : acc.lanes) {
          if (lane.remaining > 0) {
            --lane.remaining;
            ++lane.generated;
            if (lane.generated == 1) lane.first_token_s = done.time_s;
          }
          if (lane.remaining == 0) {
            finish_decode_request(lane.request, done.time_s, lane.first_token_s,
                                  lane.generated);
          } else {
            acc.lanes[kept++] = std::move(lane);
          }
        }
        acc.lanes.resize(kept);
        continue_decode(done.acc, done.time_s);
        continue;
      }
      if constexpr (kObs) {
        obs->on_batch_complete(done.acc, done.seq, acc.inflight_start_s, done.time_s,
                               acc.inflight.size());
      }
      std::vector<Request> batch = std::move(acc.inflight);
      acc.inflight.clear();
      acc.inflight_seq = kNoBatch;
      dispatched_energy_j += acc.inflight_energy_j;
      // Batches never mix workloads, so the head names the paying tenant.
      attribute_cost(batch.front().workload, acc.inflight_done_s - acc.inflight_start_s,
                     acc.inflight_energy_j, acc.cache);
      const bool can_gen = has_decode && cache_generates[acc.cache] != 0;
      for (const Request& req : batch) {
        const std::uint32_t w = req.workload;
        if (has_timeouts && timeout_of[w] > 0.0 &&
            done.time_s - req.arrival_s > timeout_of[w]) {
          // Finished past its deadline: the result is useless to the client.
          handle_timed_out_attempt(req, done.time_s);
          continue;
        }
        if (can_gen && req.decode_tokens > 0) {
          // The prefill produced this request's first token.  Single-token
          // requests are done; the rest become decode lanes on this slot.
          if (req.decode_tokens == 1) {
            finish_decode_request(req, done.time_s, done.time_s, 1);
          } else {
            DecodeLane lane;
            lane.request = req;
            lane.remaining = req.decode_tokens - 1;
            lane.generated = 1;
            lane.first_token_s = done.time_s;
            acc.lanes.push_back(std::move(lane));
          }
          continue;
        }
        complete_ok(req, done.time_s);
      }
      arena.release(std::move(batch));
      if (!acc.lanes.empty()) {
        // Enter the decode phase: the slot stays busy and re-enters the loop
        // at every token boundary; in continuous mode waiting prefills may
        // join its free lanes starting right now.
        acc.decoding = true;
        acc.decode_workload = acc.lanes.front().request.workload;
        continue_decode(done.acc, done.time_s);
      } else {
        acc.idle = true;
        if (acc.draining) {
          // Drained: the in-flight batch finished, the slot may now retire.
          acc.retired = true;
          acc.active_end_s = done.time_s;
          if (faults) faults->remove_slot(done.acc);
          rebuild_live();
        }
      }
    }
    if (prof) prof->record(LoopSource::kCompletions, t_completions, completion_events);
    if (faults) {
      const auto t_faults = prof_now();
      const std::size_t transitions = process_faults(now_s);
      if (prof) prof->record(LoopSource::kFaults, t_faults, transitions);
    }
    const auto t_arrivals = prof_now();
    std::uint64_t arrival_events = 0;
    while (source->next_arrival_time() <= now_s) {
      Request r = source->pop_arrival();
      last_arrival_s = r.arrival_s;
      r.first_arrival_s = r.arrival_s;
      ++arrival_events;
      if constexpr (kObs) obs->on_arrival(r, now_s);
      accept_arrival(r, now_s);
    }
    if (prof) prof->record(LoopSource::kArrivals, t_arrivals, arrival_events);
    if (!retry_heap.empty()) {
      const auto t_retries = prof_now();
      std::uint64_t retry_events = 0;
      while (!retry_heap.empty() && retry_heap.top().time_s <= now_s) {
        const Request r = std::move(retry_heap.pop().request);
        ++retry_events;
        accept_arrival(r, now_s);
      }
      if (prof) prof->record(LoopSource::kRetries, t_retries, retry_events);
    }
    if (scaler && now_s >= next_eval_s) {
      const auto t_scale = prof_now();
      evaluate_autoscaler(now_s);
      ++eval_count;
      next_eval_s = static_cast<double>(eval_count + 1) * sim.autoscaler.interval_s;
      if (prof) prof->record(LoopSource::kAutoscale, t_scale, 1);
    }
    const auto t_dispatch = prof_now();
    const std::size_t dispatched_before = m.dispatches;
    try_dispatch(now_s);
    if (prof) {
      prof->record(LoopSource::kDispatch, t_dispatch, m.dispatches - dispatched_before);
      prof->add_iterations(1);
    }
    if constexpr (kObs) obs->on_tick(now_s, sched->queued(), active_total, failed_total);
  }
  if constexpr (kObs) obs->finish(now_s);

  const double duration_s = now_s;
  m.offered_qps = static_cast<double>(total_requests) / std::max(last_arrival_s, 1e-300);
  m.duration_s = duration_s;
  m.throughput_qps = static_cast<double>(m.completed) / std::max(duration_s, 1e-300);
  m.goodput_qps = static_cast<double>(within_slo) / std::max(duration_s, 1e-300);
  m.slo_latency_s = slo_s;
  m.within_slo = within_slo;
  m.slo_attainment =
      m.completed > 0
          ? static_cast<double>(within_slo) / static_cast<double>(m.completed)
          : 0.0;
  m.mean_latency_s =
      m.completed > 0 ? latency_sum / static_cast<double>(m.completed) : 0.0;
  m.drop_rate = static_cast<double>(m.shed_requests + m.timed_out_requests) /
                static_cast<double>(total_requests);

  // Per-tenant breakdown, then the aggregate percentiles over the union of
  // the tenants' samples (the same multiset the pre-tenant simulator sorted).
  m.tenants.resize(catalog.size());
  for (std::uint32_t w = 0; w < catalog.size(); ++w) {
    TenantMetrics& t = m.tenants[w];
    t.name = catalog.workload(w).name();
    t.priority = catalog.at(w).priority;
    t.slo_latency_s = slo_of[w];
    t.completed = tenant_completed[w];
    t.within_slo = tenant_within[w];
    t.max_latency_s = tenant_max[w];
    t.shed = tenant_shed[w];
    t.timed_out = tenant_timed_out[w];
    t.cost_usd = tenant_cost_usd[w];
    const std::size_t issued = t.completed + t.shed + t.timed_out;
    if (issued > 0) {
      t.drop_rate = static_cast<double>(t.shed + t.timed_out) / static_cast<double>(issued);
    }
    if (t.completed > 0) {
      t.slo_attainment = static_cast<double>(tenant_within[w]) /
                         static_cast<double>(t.completed);
      t.goodput_qps =
          static_cast<double>(tenant_within[w]) / std::max(duration_s, 1e-300);
      t.mean_latency_s = tenant_sum[w] / static_cast<double>(t.completed);
      if (hdr) {
        t.p50_latency_s = tenant_hist[w].percentile(0.50);
        t.p99_latency_s = tenant_hist[w].percentile(0.99);
      } else {
        t.p50_latency_s = percentile(tenant_latencies[w], 0.50);
        t.p99_latency_s = percentile(tenant_latencies[w], 0.99);
      }
    }
  }
  if (hdr) {
    // Aggregate sketch: merging the tenants' histograms is exact (bucket
    // counts add), so the fleet percentiles see the same multiset the exact
    // path sorts.
    HdrHistogram all(sim.hdr_relative_error);
    for (const HdrHistogram& h : tenant_hist) all.merge(h);
    m.p50_latency_s = all.percentile(0.50);
    m.p95_latency_s = all.percentile(0.95);
    m.p99_latency_s = all.percentile(0.99);
    m.p999_latency_s = all.percentile(0.999);
  } else {
    std::vector<double> latencies;
    latencies.reserve(m.completed);
    for (const std::vector<double>& samples : tenant_latencies) {
      latencies.insert(latencies.end(), samples.begin(), samples.end());
    }
    m.p50_latency_s = percentile(latencies, 0.50);
    m.p95_latency_s = percentile(latencies, 0.95);
    m.p99_latency_s = percentile(latencies, 0.99);
    m.p999_latency_s = percentile(latencies, 0.999);
  }
  m.mean_queue_depth = depth_time / std::max(duration_s, 1e-300);
  m.mean_batch_size =
      static_cast<double>(m.completed) / static_cast<double>(std::max<std::size_t>(m.dispatches, 1));
  if (has_decode) {
    m.tokens_per_s =
        static_cast<double>(m.generated_tokens) / std::max(duration_s, 1e-300);
    m.ttft_attainment = m.ttft_slo_requests > 0
                            ? static_cast<double>(m.within_ttft_slo) /
                                  static_cast<double>(m.ttft_slo_requests)
                            : 1.0;
    m.tpot_attainment = m.tpot_slo_requests > 0
                            ? static_cast<double>(m.within_tpot_slo) /
                                  static_cast<double>(m.tpot_slo_requests)
                            : 1.0;
    std::size_t steps = 0;
    std::size_t lane_steps = 0;
    for (std::size_t lanes = 0; lanes < m.decode_occupancy.size(); ++lanes) {
      steps += m.decode_occupancy[lanes];
      lane_steps += lanes * m.decode_occupancy[lanes];
    }
    m.mean_decode_occupancy =
        steps > 0 ? static_cast<double>(lane_steps) / static_cast<double>(steps) : 0.0;
    if (!ttft_samples.empty()) {
      double sum = 0.0;
      for (const double v : ttft_samples) {
        sum += v;
        m.max_ttft_s = std::max(m.max_ttft_s, v);
      }
      m.mean_ttft_s = sum / static_cast<double>(ttft_samples.size());
      m.p50_ttft_s = percentile(ttft_samples, 0.50);
      m.p95_ttft_s = percentile(ttft_samples, 0.95);
      m.p99_ttft_s = percentile(ttft_samples, 0.99);
    }
    if (!tpot_samples.empty()) {
      double sum = 0.0;
      for (const double v : tpot_samples) {
        sum += v;
        m.max_tpot_s = std::max(m.max_tpot_s, v);
      }
      m.mean_tpot_s = sum / static_cast<double>(tpot_samples.size());
      m.p50_tpot_s = percentile(tpot_samples, 0.50);
      m.p95_tpot_s = percentile(tpot_samples, 0.95);
      m.p99_tpot_s = percentile(tpot_samples, 0.99);
    }
  }

  // Energy and utilization integrate each slot over its active window
  // (activation to retirement, or simulation end).  Static fleets have one
  // full-duration window per slot, matching the pre-elastic accounting.
  double busy_total = 0.0;
  double idle_static_j = 0.0;
  double slot_time_s = 0.0;
  double slot_cost_usd = 0.0;
  std::size_t final_active = 0;
  for (const Slot& s : slots) {
    const double window_s =
        (s.active_end_s >= 0.0 ? s.active_end_s : duration_s) - s.active_start_s;
    busy_total += s.busy_s;
    slot_time_s += window_s;
    slot_cost_usd += window_s / 3600.0 * rate_of_cache[s.cache];
    idle_static_j += std::max(0.0, window_s - s.busy_s) * caches[s.cache].static_power_w();
    if (!s.retired && !s.draining) ++final_active;
  }
  if (m.autoscale_grows == 0 && m.autoscale_shrinks == 0) {
    // Static fleet: every window is the full duration; the product keeps the
    // utilization denominator bit-identical to the pre-elastic simulator
    // (repeated addition can round differently from multiplication).
    slot_time_s = static_cast<double>(slots.size()) * duration_s;
  }
  m.final_fleet_size = final_active;
  m.mean_fleet_size = slot_time_s / std::max(duration_s, 1e-300);
  m.fleet_energy_j = dispatched_energy_j + idle_static_j;
  m.energy_per_request_j =
      m.completed > 0 ? m.fleet_energy_j / static_cast<double>(m.completed) : 0.0;
  // Fleet dollars: every active slot-hour at its amortised rate plus all
  // energy at the marginal $/J (per-tenant attribution above covers only the
  // served share; the idle burn lands here).
  m.fleet_cost_usd = slot_cost_usd + m.fleet_energy_j * fleet.cost.usd_per_joule;
  m.cost_per_request_usd =
      m.completed > 0 ? m.fleet_cost_usd / static_cast<double>(m.completed) : 0.0;
  m.fleet_utilization = busy_total / std::max(slot_time_s, 1e-300);
  for (const EstimateCache& c : caches) {
    m.estimate_lookups += c.lookups();
    m.estimate_misses += c.misses();
  }

  // Availability: up slot-time over each slot's active window.
  if (faults) {
    m.slot_availability.reserve(slots.size());
    double window_total_s = 0.0;
    double down_total_s = 0.0;
    double repair_total_s = 0.0;
    std::size_t repairs_total = 0;
    for (const Slot& s : slots) {
      const double window_end_s = s.active_end_s >= 0.0 ? s.active_end_s : duration_s;
      const double window_s = window_end_s - s.active_start_s;
      double down_s = s.down_total_s;
      if (s.failed) down_s += std::max(0.0, window_end_s - s.down_since_s);
      SlotAvailability a;
      a.spec = caches[s.cache].spec().name;
      a.failures = s.failures;
      a.repairs = s.repairs;
      a.uptime_fraction =
          window_s > 0.0 ? std::max(0.0, window_s - down_s) / window_s : 1.0;
      a.observed_mttr_s =
          s.repairs > 0 ? s.repair_total_s / static_cast<double>(s.repairs) : 0.0;
      m.slot_availability.push_back(std::move(a));
      window_total_s += window_s;
      down_total_s += down_s;
      repair_total_s += s.repair_total_s;
      repairs_total += s.repairs;
    }
    m.fleet_availability =
        window_total_s > 0.0
            ? std::max(0.0, window_total_s - down_total_s) / window_total_s
            : 1.0;
    m.observed_mttr_s =
        repairs_total > 0 ? repair_total_s / static_cast<double>(repairs_total) : 0.0;
  }
  // Exact-merge support: hand the raw latency state to the caller before the
  // source reports (a closed-loop source appends its session samples to it).
  // The samples land sorted (percentile() sorts in place above); merge
  // re-sorts unions anyway.
  if (sim.keep_latency_state) {
    auto st = std::make_shared<LatencyState>();
    st->hdr = hdr;
    st->hdr_relative_error = sim.hdr_relative_error;
    if (hdr) {
      st->tenant_hist = std::move(tenant_hist);
    } else {
      st->tenant_samples = std::move(tenant_latencies);
    }
    st->ttft_samples = std::move(ttft_samples);
    st->tpot_samples = std::move(tpot_samples);
    m.latency_state = std::move(st);
  }
  source->finish(m);
  if constexpr (kObs) {
    if (observation != nullptr) *observation = hub->take();
  }
  return m;
}

}  // namespace

FleetMetrics simulate(const Scenario& scenario, Observation* observation) {
  validate_scenario(scenario);
  // Template split: unobserved runs take the kObs=false instantiation, whose
  // hook sites do not exist in the compiled loop at all.
  if (scenario.observe.enabled()) {
    return simulate_impl<true>(scenario, observation);
  }
  return simulate_impl<false>(scenario, observation);
}

}  // namespace lumos::serve
