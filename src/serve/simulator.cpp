#include "serve/simulator.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace lumos::serve {

const char* routing_name(RoutingPolicy policy) noexcept {
  return policy == RoutingPolicy::kFirstIdle ? "first-idle" : "energy-aware";
}

FleetConfig FleetConfig::homogeneous(const std::string& spec, std::size_t count,
                                     RoutingPolicy routing) {
  return cycled({spec}, count, routing);
}

FleetConfig FleetConfig::heterogeneous(const std::string& primary, const std::string& eco,
                                       std::size_t count, RoutingPolicy routing) {
  return cycled({primary, eco}, count, routing);
}

FleetConfig FleetConfig::cycled(const std::vector<std::string>& specs, std::size_t count,
                                RoutingPolicy routing) {
  if (specs.empty()) throw InvalidArgument("FleetConfig specs must not be empty");
  if (count == 0) throw InvalidArgument("FleetConfig fleet size must be >= 1");
  FleetConfig f;
  f.routing = routing;
  f.accelerators.reserve(count);
  for (std::size_t i = 0; i < count; ++i) f.accelerators.push_back(specs[i % specs.size()]);
  return f;
}

std::string FleetConfig::label() const {
  std::vector<std::string> seen;
  std::string out;
  for (const std::string& name : accelerators) {
    if (std::find(seen.begin(), seen.end(), name) != seen.end()) continue;
    seen.push_back(name);
    if (!out.empty()) out += '+';
    out += name;
  }
  return out;
}

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

struct Completion {
  double time_s = 0.0;
  std::uint64_t seq = 0;  // dispatch order: deterministic tie-break
  std::size_t acc = 0;
  double batch_energy_j = 0.0;
  std::vector<Request> batch;
};

// Min-heap ordering on (time, dispatch seq).
struct CompletionLater {
  bool operator()(const Completion& a, const Completion& b) const noexcept {
    if (a.time_s != b.time_s) return a.time_s > b.time_s;
    return a.seq > b.seq;
  }
};

}  // namespace

ServeMetrics simulate(const FleetConfig& fleet, const WorkloadCatalog& catalog,
                      const std::vector<Request>& trace, SchedulerKind scheduler,
                      const BatchPolicy& policy, const SimConfig& sim) {
  if (fleet.accelerators.empty()) {
    throw InvalidArgument("FleetConfig.accelerators must not be empty");
  }
  if (catalog.empty()) throw InvalidArgument("WorkloadCatalog must not be empty");
  if (trace.empty()) throw InvalidArgument("request trace must not be empty");
  for (const Request& r : trace) {
    if (r.workload >= catalog.size()) {
      throw InvalidArgument("trace request " + std::to_string(r.id) +
                            " names workload index " + std::to_string(r.workload) +
                            ", but the catalog holds " + std::to_string(catalog.size()) +
                            " workloads");
    }
  }
  if (policy.max_batch < 1 || policy.max_batch > BatchPolicy::kMaxBatchLimit) {
    throw InvalidArgument("BatchPolicy.max_batch must be in [1, " +
                          std::to_string(BatchPolicy::kMaxBatchLimit) + "], got " +
                          std::to_string(policy.max_batch));
  }

  // One estimate cache per distinct spec name; fleet slots share caches.
  std::vector<EstimateCache> caches;
  caches.reserve(fleet.accelerators.size());
  std::vector<std::size_t> cache_of(fleet.accelerators.size(), kNone);
  for (std::size_t i = 0; i < fleet.accelerators.size(); ++i) {
    for (std::size_t c = 0; c < caches.size(); ++c) {
      if (caches[c].spec().name == fleet.accelerators[i]) {
        cache_of[i] = c;
        break;
      }
    }
    if (cache_of[i] == kNone) {
      caches.emplace_back(fleet.accelerators[i], catalog);
      cache_of[i] = caches.size() - 1;
    }
  }

  // Kind-aware routing: which caches (and so which fleet slots) can serve
  // each workload, and the first serving slot for unloaded-latency queries.
  const std::size_t n_acc = fleet.accelerators.size();
  std::vector<std::vector<char>> cache_serves(caches.size());
  for (std::size_t c = 0; c < caches.size(); ++c) {
    cache_serves[c].resize(catalog.size());
    for (std::uint32_t w = 0; w < catalog.size(); ++w) {
      cache_serves[c][w] = caches[c].can_serve(w) ? 1 : 0;
    }
  }
  std::vector<std::size_t> first_serving_cache(catalog.size(), kNone);
  for (std::uint32_t w = 0; w < catalog.size(); ++w) {
    for (std::size_t i = 0; i < n_acc; ++i) {
      if (cache_serves[cache_of[i]][w] != 0) {
        first_serving_cache[w] = cache_of[i];
        break;
      }
    }
    if (first_serving_cache[w] == kNone) {
      const arch::Workload& wl = catalog.workload(w);
      throw InvalidArgument("fleet '" + fleet.label() + "' cannot serve " +
                            arch::workload_kind_name(wl.kind()) + " workload '" + wl.name() +
                            "': no accelerator of that kind in the fleet");
    }
  }
  // Masks only bind when the fleet mixes families; single-kind fleets keep
  // the (equivalent, cheaper) allow-everything mask.
  bool mixed_fleet = false;
  for (std::size_t c = 1; c < caches.size() && !mixed_fleet; ++c) {
    mixed_fleet = caches[c].spec().serves != caches[0].spec().serves;
  }

  // Goodput SLO.
  double slo_s = sim.slo_latency_s;
  if (slo_s <= 0.0) {
    double slowest = 0.0;
    for (std::uint32_t w = 0; w < catalog.size(); ++w) {
      slowest = std::max(slowest, caches[first_serving_cache[w]].estimate(w, 1).latency_s);
    }
    slo_s = sim.slo_scale * slowest;
  }

  std::vector<bool> idle(n_acc, true);
  std::vector<double> busy_time(n_acc, 0.0);

  const std::unique_ptr<Scheduler> sched = make_scheduler(scheduler, policy);
  std::vector<Completion> heap;
  std::uint64_t dispatch_seq = 0;

  ServeMetrics m;
  m.batch_histogram.assign(
      (scheduler == SchedulerKind::kFifo ? std::size_t{1} : policy.max_batch) + 1, 0);
  std::vector<double> latencies;
  latencies.reserve(trace.size());
  double latency_sum = 0.0;
  std::size_t within_slo = 0;
  double dispatched_energy_j = 0.0;
  double depth_time = 0.0;

  // Scratch for the mixed-fleet dispatch mask: workload w is dispatchable
  // when some idle accelerator serves it.
  std::vector<char> allowed(catalog.size(), 1);
  const auto current_mask = [&]() -> WorkloadMask {
    if (!mixed_fleet) return WorkloadMask{};
    std::fill(allowed.begin(), allowed.end(), 0);
    for (std::size_t i = 0; i < n_acc; ++i) {
      if (!idle[i]) continue;
      const std::vector<char>& serves = cache_serves[cache_of[i]];
      for (std::uint32_t w = 0; w < catalog.size(); ++w) {
        if (serves[w] != 0) allowed[w] = 1;
      }
    }
    return WorkloadMask{&allowed};
  };

  const auto try_dispatch = [&](double now_s) {
    for (;;) {
      bool any_idle = false;
      for (std::size_t i = 0; i < n_acc && !any_idle; ++i) any_idle = idle[i];
      if (!any_idle) return;
      const WorkloadMask mask = current_mask();
      if (!sched->ready(now_s, mask)) return;
      std::vector<Request> batch = sched->pop(now_s, mask);
      LUMOS_ENSURES(!batch.empty());
      const std::uint32_t workload = batch.front().workload;
      std::size_t chosen = kNone;
      for (std::size_t i = 0; i < n_acc; ++i) {
        if (idle[i] && cache_serves[cache_of[i]][workload] != 0) {
          chosen = i;
          break;
        }
      }
      LUMOS_ENSURES(chosen != kNone);
      if (fleet.routing == RoutingPolicy::kEnergyAware) {
        double best_j = kNever;
        for (std::size_t i = 0; i < n_acc; ++i) {
          if (!idle[i] || cache_serves[cache_of[i]][workload] == 0) continue;
          const double j =
              caches[cache_of[i]].estimate(workload, batch.size()).total_energy_j;
          if (j < best_j) {
            best_j = j;
            chosen = i;
          }
        }
      }
      const PerfReport& r = caches[cache_of[chosen]].estimate(workload, batch.size());
      idle[chosen] = false;
      busy_time[chosen] += r.latency_s;
      ++m.dispatches;
      ++m.batch_histogram[batch.size()];
      heap.push_back({now_s + r.latency_s, dispatch_seq++, chosen, r.total_energy_j,
                      std::move(batch)});
      std::push_heap(heap.begin(), heap.end(), CompletionLater{});
    }
  };

  std::size_t next_arrival = 0;
  double now_s = 0.0;
  while (m.completed < trace.size()) {
    const double t_arr =
        next_arrival < trace.size() ? trace[next_arrival].arrival_s : kNever;
    const double t_done = heap.empty() ? kNever : heap.front().time_s;
    bool any_idle = false;
    for (std::size_t i = 0; i < n_acc && !any_idle; ++i) any_idle = idle[i];
    // Deadlines only matter while an accelerator could take the batch; when
    // everything is busy the next completion re-evaluates readiness anyway.
    // In mixed fleets the deadline is masked the same way dispatch is, so a
    // deadline whose workload has no idle compatible accelerator never wakes
    // the loop without progress.
    const double t_dead = any_idle && sched->queued() > 0
                              ? sched->next_deadline_s(current_mask())
                              : kNever;
    const double t = std::min(std::min(t_arr, t_done), t_dead);
    LUMOS_ENSURES(t >= now_s && t < kNever);
    depth_time += static_cast<double>(sched->queued()) * (t - now_s);
    now_s = t;

    while (!heap.empty() && heap.front().time_s <= now_s) {
      std::pop_heap(heap.begin(), heap.end(), CompletionLater{});
      Completion done = std::move(heap.back());
      heap.pop_back();
      idle[done.acc] = true;
      dispatched_energy_j += done.batch_energy_j;
      for (const Request& req : done.batch) {
        const double latency = done.time_s - req.arrival_s;
        latencies.push_back(latency);
        latency_sum += latency;
        m.max_latency_s = std::max(m.max_latency_s, latency);
        if (latency <= slo_s) ++within_slo;
        ++m.completed;
      }
    }
    while (next_arrival < trace.size() && trace[next_arrival].arrival_s <= now_s) {
      sched->enqueue(trace[next_arrival], now_s);
      ++next_arrival;
      m.peak_queue_depth = std::max(m.peak_queue_depth, sched->queued());
    }
    try_dispatch(now_s);
  }

  const double duration_s = now_s;
  m.offered_qps = static_cast<double>(trace.size()) /
                  std::max(trace.back().arrival_s, 1e-300);
  m.duration_s = duration_s;
  m.throughput_qps = static_cast<double>(m.completed) / std::max(duration_s, 1e-300);
  m.goodput_qps = static_cast<double>(within_slo) / std::max(duration_s, 1e-300);
  m.slo_latency_s = slo_s;
  m.slo_attainment =
      static_cast<double>(within_slo) / static_cast<double>(m.completed);
  m.mean_latency_s = latency_sum / static_cast<double>(m.completed);
  m.p50_latency_s = percentile(latencies, 0.50);
  m.p95_latency_s = percentile(latencies, 0.95);
  m.p99_latency_s = percentile(latencies, 0.99);
  m.p999_latency_s = percentile(latencies, 0.999);
  m.mean_queue_depth = depth_time / std::max(duration_s, 1e-300);
  m.mean_batch_size =
      static_cast<double>(m.completed) / static_cast<double>(std::max<std::size_t>(m.dispatches, 1));

  double busy_total = 0.0;
  double idle_static_j = 0.0;
  for (std::size_t i = 0; i < n_acc; ++i) {
    busy_total += busy_time[i];
    idle_static_j +=
        std::max(0.0, duration_s - busy_time[i]) * caches[cache_of[i]].static_power_w();
  }
  m.fleet_energy_j = dispatched_energy_j + idle_static_j;
  m.energy_per_request_j = m.fleet_energy_j / static_cast<double>(m.completed);
  m.fleet_utilization = busy_total / (static_cast<double>(n_acc) * std::max(duration_s, 1e-300));
  for (const EstimateCache& c : caches) {
    m.estimate_lookups += c.lookups();
    m.estimate_misses += c.misses();
  }
  return m;
}

}  // namespace lumos::serve
