#include "serve/traffic.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "serve/event.hpp"

namespace lumos::serve {

void validate_closed_loop(const ClosedLoopConfig& config) {
  if (config.sessions < 1) {
    throw InvalidArgument("ClosedLoopConfig.sessions must be >= 1");
  }
  if (config.requests_per_session < 1) {
    throw InvalidArgument("ClosedLoopConfig.requests_per_session must be >= 1");
  }
  if (!(config.think_time_mean_s >= 0.0) || !std::isfinite(config.think_time_mean_s)) {
    throw InvalidArgument("ClosedLoopConfig.think_time_mean_s must be finite and >= 0, got " +
                          std::to_string(config.think_time_mean_s));
  }
  if (config.sessions > 0xFFFFFFFEull) {
    throw InvalidArgument("ClosedLoopConfig.sessions must fit a session id");
  }
}

// ---------------------------------------------------------------------------
// OpenLoopSource
// ---------------------------------------------------------------------------

OpenLoopSource::OpenLoopSource(std::vector<Request> trace)
    : owned_(std::move(trace)), trace_(&owned_) {}

OpenLoopSource::OpenLoopSource(const std::vector<Request>* trace) : trace_(trace) {
  LUMOS_EXPECTS_MSG(trace != nullptr, "OpenLoopSource needs a trace");
}

std::size_t OpenLoopSource::total_requests() const noexcept { return trace_->size(); }

double OpenLoopSource::next_arrival_time() const noexcept {
  return next_ < trace_->size() ? (*trace_)[next_].arrival_s : kNever;
}

Request OpenLoopSource::pop_arrival() {
  LUMOS_EXPECTS(next_ < trace_->size());
  return (*trace_)[next_++];
}

void OpenLoopSource::on_complete(const Request&, double, CompletionStatus) {}

void OpenLoopSource::finish(FleetMetrics&) {}

// ---------------------------------------------------------------------------
// ClosedLoopSource
// ---------------------------------------------------------------------------

ClosedLoopSource::ClosedLoopSource(const WorkloadCatalog& catalog,
                                   const ClosedLoopConfig& config)
    : catalog_(&catalog), config_(config) {
  LUMOS_EXPECTS_MSG(!catalog.empty(), "ClosedLoopSource needs a non-empty catalog");
  validate_closed_loop(config);

  // Tenant assignment: one seeded mix draw per session, so the session pool
  // follows the catalog's weights independently of think-time draws.
  Rng tenant_rng(config.seed, /*stream=*/0x5E55);
  std::vector<double> cumulative;
  cumulative.reserve(catalog.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    acc += catalog.at(i).mix_weight;
    cumulative.push_back(acc);
  }

  sessions_.resize(config.sessions);
  session_latencies_s_.reserve(config.sessions);
  for (std::uint32_t s = 0; s < config.sessions; ++s) {
    const double u = tenant_rng.next_double() * cumulative.back();
    std::uint32_t workload = 0;
    while (cumulative[workload] <= u && workload + 1 < cumulative.size()) ++workload;
    sessions_[s].workload = workload;
    // Per-session stream: every draw a session ever makes (initial stagger,
    // think times, sequence lengths) comes from its own sequence, so the
    // draws cannot depend on how sessions interleave.
    sessions_[s].rng = Rng(config.seed, /*stream=*/0xC0FFEEull + s);
    // Stagger the first issues with one think draw each: sessions do not all
    // slam the fleet at t = 0.
    schedule(s, 0.0);
  }
}

void ClosedLoopSource::schedule(std::uint32_t session, double not_before_s) {
  Session& s = sessions_[session];
  const double think_s =
      config_.think_time_mean_s > 0.0 ? s.rng.exponential(config_.think_time_mean_s) : 0.0;
  const std::uint32_t seq_len = sample_seq_len(catalog_->at(s.workload).seqlen, s.rng);
  // Decode-free tenants draw nothing here, so their sessions' streams (and
  // every pre-decode scenario) replay bit-identically.
  const std::uint32_t decode_tokens =
      sample_decode_tokens(catalog_->at(s.workload).decode, s.rng);
  pending_.push({not_before_s + think_s, session, seq_len, decode_tokens});
}

std::size_t ClosedLoopSource::total_requests() const noexcept {
  return config_.sessions * config_.requests_per_session;
}

double ClosedLoopSource::next_arrival_time() const noexcept {
  return pending_.next_time_s();
}

Request ClosedLoopSource::pop_arrival() {
  LUMOS_EXPECTS(!pending_.empty());
  const Pending p = pending_.pop();
  Session& s = sessions_[p.session];
  if (s.issued == 0) s.first_issue_s = p.time_s;
  ++s.issued;
  Request r;
  r.id = next_id_++;
  r.arrival_s = p.time_s;
  r.workload = s.workload;
  r.seq_len = p.seq_len;
  r.session = p.session;
  r.decode_tokens = p.decode_tokens;
  return r;
}

void ClosedLoopSource::on_complete(const Request& request, double time_s,
                                   CompletionStatus /*status*/) {
  // A shed or timed-out request still unblocks its session: the client saw a
  // terminal answer (fast rejection or deadline expiry) and moves on.
  if (request.session == Request::kNoSession) return;
  LUMOS_EXPECTS(request.session < sessions_.size());
  Session& s = sessions_[request.session];
  ++s.completed;
  if (s.issued < config_.requests_per_session) {
    // The client thinks, then issues its next request.
    schedule(request.session, time_s);
  } else if (s.completed == config_.requests_per_session) {
    // Session done: end-to-end latency from first issue to last completion.
    session_latencies_s_.push_back(time_s - s.first_issue_s);
  }
}

void ClosedLoopSource::finish(FleetMetrics& metrics) {
  metrics.sessions = session_latencies_s_.size();
  if (session_latencies_s_.empty()) return;
  if (metrics.latency_state) {
    // Exact-merge support: stash the raw session latencies so a sharded
    // run's merge can recompute session percentiles over the union.
    metrics.latency_state->session_samples.insert(
        metrics.latency_state->session_samples.end(), session_latencies_s_.begin(),
        session_latencies_s_.end());
  }
  double sum = 0.0;
  double max = 0.0;
  for (const double v : session_latencies_s_) {
    sum += v;
    max = std::max(max, v);
  }
  metrics.mean_session_s = sum / static_cast<double>(session_latencies_s_.size());
  metrics.max_session_s = max;
  metrics.p50_session_s = percentile(session_latencies_s_, 0.50);
  metrics.p99_session_s = percentile(session_latencies_s_, 0.99);
}

std::unique_ptr<TrafficSource> make_traffic_source(const WorkloadCatalog& catalog,
                                                   const TrafficConfig& config) {
  if (config.mode == LoopMode::kClosed) {
    return std::make_unique<ClosedLoopSource>(catalog, config.closed);
  }
  return std::make_unique<OpenLoopSource>(generate_trace(catalog, config.open));
}

}  // namespace lumos::serve
