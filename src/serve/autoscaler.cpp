#include "serve/autoscaler.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"

namespace lumos::serve {

void validate_autoscaler(const AutoscalerConfig& config) {
  if (config.policy == AutoscalerPolicy::kNone) return;
  if (!(config.interval_s > 0.0) || !std::isfinite(config.interval_s)) {
    throw InvalidArgument("AutoscalerConfig.interval_s must be positive and finite, got " +
                          std::to_string(config.interval_s));
  }
  if (config.min_slots == 0) {
    throw InvalidArgument("AutoscalerConfig.min_slots must be >= 1 (a family with zero "
                          "slots could never serve its workload kind again)");
  }
  if (config.max_slots < config.min_slots) {
    throw InvalidArgument("AutoscalerConfig.max_slots must be >= min_slots, got " +
                          std::to_string(config.max_slots) + " < " +
                          std::to_string(config.min_slots));
  }
  if (!(config.queue_high_per_slot > 0.0)) {
    throw InvalidArgument("AutoscalerConfig.queue_high_per_slot must be positive");
  }
  if (config.queue_low_utilization < 0.0 || config.queue_low_utilization > 1.0) {
    throw InvalidArgument("AutoscalerConfig.queue_low_utilization must be in [0, 1]");
  }
  if (config.target_utilization <= 0.0 || config.target_utilization > 1.0) {
    throw InvalidArgument("AutoscalerConfig.target_utilization must be in (0, 1]");
  }
  if (config.utilization_band < 0.0 || config.utilization_band >= 1.0) {
    throw InvalidArgument("AutoscalerConfig.utilization_band must be in [0, 1)");
  }
  if (!(config.grow_scale > 0.0) || !std::isfinite(config.grow_scale)) {
    throw InvalidArgument("AutoscalerConfig.grow_scale must be positive and finite, got " +
                          std::to_string(config.grow_scale));
  }
}

namespace {

// Reactive backlog policy: a queue deeper than `queue_high_per_slot` requests
// per active slot means the family is falling behind — grow.  An empty queue
// with the family mostly idle over the last interval means capacity is wasted
// — shrink one slot.
class QueueDepthAutoscaler final : public Autoscaler {
 public:
  explicit QueueDepthAutoscaler(const AutoscalerConfig& config) : config_(config) {}

  [[nodiscard]] AutoscalerPolicy policy() const noexcept override {
    return AutoscalerPolicy::kQueueDepth;
  }

  [[nodiscard]] int step(const FamilySignals& s) override {
    // max(1, active): every slot of the family may be failed under fault
    // injection, and a backlog with zero active slots must read as "grow".
    const double per_slot = static_cast<double>(s.queued) /
                            static_cast<double>(std::max<std::size_t>(s.active_slots, 1));
    if (per_slot > config_.queue_high_per_slot) return 1;
    if (s.queued == 0 && s.utilization < config_.queue_low_utilization) return -1;
    return 0;
  }

 private:
  AutoscalerConfig config_;
};

// Set-point policy: keep utilization inside a dead band around the target.
// Never shrinks into a backlog deeper than the active slots (the queue would
// immediately re-trigger growth and the fleet would oscillate).
class TargetUtilizationAutoscaler final : public Autoscaler {
 public:
  explicit TargetUtilizationAutoscaler(const AutoscalerConfig& config) : config_(config) {}

  [[nodiscard]] AutoscalerPolicy policy() const noexcept override {
    return AutoscalerPolicy::kTargetUtilization;
  }

  [[nodiscard]] int step(const FamilySignals& s) override {
    if (s.utilization > config_.target_utilization + config_.utilization_band) return 1;
    if (s.utilization < config_.target_utilization - config_.utilization_band &&
        s.queued <= s.active_slots) {
      return -1;
    }
    return 0;
  }

 private:
  AutoscalerConfig config_;
};

}  // namespace

std::unique_ptr<Autoscaler> make_autoscaler(const AutoscalerConfig& config) {
  validate_autoscaler(config);
  switch (config.policy) {
    case AutoscalerPolicy::kQueueDepth:
      return std::make_unique<QueueDepthAutoscaler>(config);
    case AutoscalerPolicy::kTargetUtilization:
      return std::make_unique<TargetUtilizationAutoscaler>(config);
    case AutoscalerPolicy::kNone:
      break;
  }
  return nullptr;
}

}  // namespace lumos::serve
