// Memoized accelerator estimates for the serving simulator.
//
// `estimate()` on TRON/GHOST is pure: the same (config, workload, batch)
// always yields the same PerfReport, so the event loop looks service times
// and energies up in a config x workload x batch cache instead of re-running
// the analytic mapping per dispatch.  That is what lets a simulation push
// millions of requests through a fleet in seconds: the distinct
// (workload, batch) keys number in the dozens while dispatches number in the
// millions.  Cached reports are bit-identical to uncached calls.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/perf.hpp"
#include "ghost/accelerator.hpp"
#include "serve/workload.hpp"
#include "tron/accelerator.hpp"

namespace lumos::serve {

class EstimateCache {
 public:
  EstimateCache(const AcceleratorSpec& spec, const WorkloadCatalog& catalog);

  // The memoized PerfReport of serving `batch` pipelined requests of
  // `workload` on this accelerator.  References stay valid for the cache's
  // lifetime.
  const PerfReport& estimate(std::uint32_t workload, std::size_t batch) const;

  [[nodiscard]] double static_power_w() const;
  [[nodiscard]] const AcceleratorSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t lookups() const noexcept { return lookups_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  AcceleratorSpec spec_;
  const WorkloadCatalog* catalog_;
  std::unique_ptr<tron::TronAccelerator> tron_;
  std::unique_ptr<ghost::GhostAccelerator> ghost_;
  mutable std::unordered_map<std::uint64_t, PerfReport> reports_;
  mutable std::size_t lookups_ = 0;
  mutable std::size_t misses_ = 0;
};

}  // namespace lumos::serve
