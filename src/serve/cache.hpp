// Memoized accelerator estimates for the serving simulator.
//
// `estimate()` on an `arch::Accelerator` is pure: the same (spec, workload,
// batch, seq-bucket) always yields the same PerfReport, so the event loop
// looks service times and energies up in a spec x workload x batch x
// seq-bucket cache instead of re-running the analytic mapping per dispatch.
// That is what lets a simulation push millions of requests through a fleet in
// seconds: sequence lengths are bucketised (see SeqLenConfig), so the
// distinct keys number in the dozens-to-hundreds while dispatches number in
// the millions.  Cached reports are bit-identical to uncached calls; seq 0
// (the fixed-length default) scores the entry's native config.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "arch/accelerator.hpp"
#include "common/perf.hpp"
#include "serve/workload.hpp"

namespace lumos::serve {

class EstimateCache {
 public:
  // Takes ownership of `accelerator`; `catalog` must outlive the cache and
  // must not be empty.
  EstimateCache(std::unique_ptr<arch::Accelerator> accelerator,
                const WorkloadCatalog& catalog);
  // Convenience: builds the accelerator from an `arch` registry spec name.
  EstimateCache(const std::string& spec_name, const WorkloadCatalog& catalog);

  // The memoized PerfReport of serving `batch` pipelined requests of
  // `workload` at sequence length `seq_len` (0: the entry's native config) on
  // this accelerator.  References stay valid for the cache's lifetime.  The
  // workload must be serveable (`can_serve`).
  const PerfReport& estimate(std::uint32_t workload, std::size_t batch,
                             std::uint32_t seq_len = 0) const;

  // The memoized PerfReport of ONE decode step of `batch` lanes of `workload`
  // at KV context `context_len` (callers bucketise the context first — see
  // DecodeConfig::ctx_bucket — to keep the keyspace bounded).  Lives in its
  // own keyspace so decode steps never collide with prefill estimates.  The
  // accelerator must generate (`can_generate`).
  const PerfReport& decode_step(std::uint32_t workload, std::size_t batch,
                                std::uint32_t context_len) const;

  [[nodiscard]] bool can_serve(std::uint32_t workload) const;
  [[nodiscard]] bool can_generate() const noexcept { return acc_->can_generate(); }
  [[nodiscard]] double static_power_w() const;
  [[nodiscard]] const arch::Accelerator& accelerator() const noexcept { return *acc_; }
  [[nodiscard]] const arch::SpecInfo& spec() const noexcept { return acc_->spec(); }
  [[nodiscard]] std::size_t lookups() const noexcept { return lookups_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  std::unique_ptr<arch::Accelerator> acc_;
  const WorkloadCatalog* catalog_;
  mutable std::unordered_map<std::uint64_t, PerfReport> reports_;
  mutable std::unordered_map<std::uint64_t, PerfReport> decode_reports_;
  mutable std::size_t lookups_ = 0;
  mutable std::size_t misses_ = 0;
};

}  // namespace lumos::serve
