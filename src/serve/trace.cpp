#include "serve/trace.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace lumos::serve {

const char* process_name(ArrivalProcess process) noexcept {
  return process == ArrivalProcess::kPoisson ? "poisson" : "bursty";
}

namespace {
double exponential(Rng& rng, double mean) {
  // next_double() < 1, so the log argument stays in (0, 1].
  return -std::log(1.0 - rng.next_double()) * mean;
}
}  // namespace

std::vector<Request> generate_trace(const WorkloadCatalog& catalog,
                                    const TraceConfig& config) {
  LUMOS_EXPECTS(config.offered_qps > 0.0);
  LUMOS_EXPECTS(config.request_count >= 1);
  LUMOS_EXPECTS(catalog.size() >= 1);

  // Independent streams: arrival times stay identical when only the mix
  // changes, and vice versa.
  Rng arrival_rng(config.seed, /*stream=*/0xA221);
  Rng mix_rng(config.seed, /*stream=*/0x317C);

  std::vector<double> cumulative;
  cumulative.reserve(catalog.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    acc += catalog.at(i).mix_weight;
    cumulative.push_back(acc);
  }

  // Two-state MMPP with the long-run mean pinned to offered_qps:
  //   f * high + (1 - f) * low = qps,  high = m * low
  //   => low = qps / (1 + f * (m - 1)).
  const double f = config.burst_fraction;
  const double m = config.burst_multiplier;
  LUMOS_EXPECTS(config.process == ArrivalProcess::kPoisson ||
                (f > 0.0 && f < 1.0 && m >= 1.0 && config.mean_burst_s > 0.0));
  const double low_qps = config.process == ArrivalProcess::kPoisson
                             ? config.offered_qps
                             : config.offered_qps / (1.0 + f * (m - 1.0));
  const double high_qps = config.process == ArrivalProcess::kPoisson ? low_qps : m * low_qps;
  const double mean_low_dwell_s = config.mean_burst_s * (1.0 - f) / std::max(f, 1e-12);

  std::vector<Request> trace;
  trace.reserve(config.request_count);
  double now = 0.0;
  bool high = false;
  double state_end_s = config.process == ArrivalProcess::kPoisson
                           ? std::numeric_limits<double>::infinity()
                           : exponential(arrival_rng, mean_low_dwell_s);
  for (std::uint64_t id = 0; id < config.request_count; ++id) {
    for (;;) {
      const double rate = high ? high_qps : low_qps;
      const double dt = exponential(arrival_rng, 1.0 / rate);
      if (now + dt <= state_end_s) {
        now += dt;
        break;
      }
      // The exponential is memoryless: discard the draw past the state switch
      // and redraw at the new state's rate from the switch instant.
      now = state_end_s;
      high = !high;
      state_end_s =
          now + exponential(arrival_rng, high ? config.mean_burst_s : mean_low_dwell_s);
    }
    const double u = mix_rng.next_double() * cumulative.back();
    std::uint32_t workload = 0;
    while (cumulative[workload] <= u && workload + 1 < cumulative.size()) ++workload;
    trace.push_back({id, now, workload});
  }
  return trace;
}

}  // namespace lumos::serve
