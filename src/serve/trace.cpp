#include "serve/trace.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace lumos::serve {

std::vector<Request> generate_trace(const WorkloadCatalog& catalog,
                                    const TraceConfig& config) {
  LUMOS_EXPECTS(config.offered_qps > 0.0);
  LUMOS_EXPECTS(config.request_count >= 1);
  LUMOS_EXPECTS(catalog.size() >= 1);

  // Independent streams: arrival times stay identical when only the mix
  // changes, the mix when only the seqlen distributions change, and so on.
  Rng arrival_rng(config.seed, /*stream=*/0xA221);
  Rng mix_rng(config.seed, /*stream=*/0x317C);
  Rng seqlen_rng(config.seed, /*stream=*/0x5E9B);
  Rng decode_rng(config.seed, /*stream=*/0xDEC0);

  std::vector<double> cumulative;
  cumulative.reserve(catalog.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    acc += catalog.at(i).mix_weight;
    cumulative.push_back(acc);
  }

  // Two-state MMPP with the long-run mean pinned to offered_qps:
  //   f * high + (1 - f) * low = qps,  high = m * low
  //   => low = qps / (1 + f * (m - 1)).
  const double f = config.burst_fraction;
  const double m = config.burst_multiplier;
  LUMOS_EXPECTS(config.process == ArrivalProcess::kPoisson ||
                (f > 0.0 && f < 1.0 && m >= 1.0 && config.mean_burst_s > 0.0));
  const double low_qps = config.process == ArrivalProcess::kPoisson
                             ? config.offered_qps
                             : config.offered_qps / (1.0 + f * (m - 1.0));
  const double high_qps = config.process == ArrivalProcess::kPoisson ? low_qps : m * low_qps;
  const double mean_low_dwell_s = config.mean_burst_s * (1.0 - f) / std::max(f, 1e-12);

  std::vector<Request> trace;
  trace.reserve(config.request_count);
  double now = 0.0;
  bool high = false;
  double state_end_s = config.process == ArrivalProcess::kPoisson
                           ? std::numeric_limits<double>::infinity()
                           : arrival_rng.exponential(mean_low_dwell_s);
  for (std::uint64_t id = 0; id < config.request_count; ++id) {
    for (;;) {
      const double rate = high ? high_qps : low_qps;
      const double dt = arrival_rng.exponential(1.0 / rate);
      if (now + dt <= state_end_s) {
        now += dt;
        break;
      }
      // The exponential is memoryless: discard the draw past the state switch
      // and redraw at the new state's rate from the switch instant.
      now = state_end_s;
      high = !high;
      state_end_s =
          now + arrival_rng.exponential(high ? config.mean_burst_s : mean_low_dwell_s);
    }
    const double u = mix_rng.next_double() * cumulative.back();
    std::uint32_t workload = 0;
    while (cumulative[workload] <= u && workload + 1 < cumulative.size()) ++workload;
    const std::uint32_t seq_len = sample_seq_len(catalog.at(workload).seqlen, seqlen_rng);
    trace.push_back({id, now, workload, seq_len});
    // Decode lengths draw from their own stream (and decode-free entries draw
    // nothing), so decode-disabled catalogs replay bit-identical traces.
    trace.back().decode_tokens =
        sample_decode_tokens(catalog.at(workload).decode, decode_rng);
  }
  return trace;
}

}  // namespace lumos::serve
