// String <-> enum conversions for every user-facing serve enum, in one place.
//
// The CLI, campaign JSON writers, tables, and benches all need the same three
// faces per enum — canonical print name, strict parse (throws
// `InvalidArgument` listing the accepted names), and the name list for
// discovery (`lumos_cli list`) — previously hand-rolled per call site.  One
// `common/enum_names` table per enum drives all three, so printing and
// parsing can never drift apart.  Parse accepts aliases where the CLI
// historically did (routing "energy" for "energy-aware").
#pragma once

#include <string>
#include <vector>

#include "serve/autoscaler.hpp"
#include "serve/scheduler.hpp"
#include "serve/simulator.hpp"
#include "serve/traffic.hpp"
#include "serve/workload.hpp"

namespace lumos::serve {

[[nodiscard]] const char* process_name(ArrivalProcess process) noexcept;
[[nodiscard]] ArrivalProcess process_from_name(const std::string& name);
[[nodiscard]] std::vector<std::string> process_names();

[[nodiscard]] const char* scheduler_name(SchedulerKind kind) noexcept;
[[nodiscard]] SchedulerKind scheduler_from_name(const std::string& name);
[[nodiscard]] std::vector<std::string> scheduler_names();

[[nodiscard]] const char* routing_name(RoutingPolicy policy) noexcept;
[[nodiscard]] RoutingPolicy routing_from_name(const std::string& name);
[[nodiscard]] std::vector<std::string> routing_names();

[[nodiscard]] const char* autoscaler_name(AutoscalerPolicy policy) noexcept;
[[nodiscard]] AutoscalerPolicy autoscaler_from_name(const std::string& name);
[[nodiscard]] std::vector<std::string> autoscaler_names();

[[nodiscard]] const char* loop_mode_name(LoopMode mode) noexcept;
[[nodiscard]] LoopMode loop_mode_from_name(const std::string& name);
[[nodiscard]] std::vector<std::string> loop_mode_names();

[[nodiscard]] const char* seqlen_dist_name(SeqLenDist dist) noexcept;
[[nodiscard]] SeqLenDist seqlen_dist_from_name(const std::string& name);
[[nodiscard]] std::vector<std::string> seqlen_dist_names();

[[nodiscard]] const char* admission_name(AdmissionPolicy policy) noexcept;
[[nodiscard]] AdmissionPolicy admission_from_name(const std::string& name);
[[nodiscard]] std::vector<std::string> admission_names();

[[nodiscard]] const char* completion_status_name(CompletionStatus status) noexcept;
[[nodiscard]] CompletionStatus completion_status_from_name(const std::string& name);
[[nodiscard]] std::vector<std::string> completion_status_names();

[[nodiscard]] const char* percentile_mode_name(PercentileMode mode) noexcept;
[[nodiscard]] PercentileMode percentile_mode_from_name(const std::string& name);
[[nodiscard]] std::vector<std::string> percentile_mode_names();

[[nodiscard]] const char* decode_mode_name(DecodeMode mode) noexcept;
[[nodiscard]] DecodeMode decode_mode_from_name(const std::string& name);
[[nodiscard]] std::vector<std::string> decode_mode_names();

}  // namespace lumos::serve
