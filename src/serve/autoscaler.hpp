// Autoscaling policies for the serving simulator: elastic fleets.
//
// An `Autoscaler` is a step-based control policy the event loop evaluates
// every `interval_s` of *simulated* time, once per spec family (the distinct
// registry names the fleet was built from).  Each step sees the family's
// signals — active slot count, queued requests it could serve, utilization
// over the last interval — and returns a desired slot delta.  The simulator
// applies the delta by instantiating a new registry-named accelerator
// (growth) or retiring one (shrink).  Retiring always drains first: the slot
// stops receiving dispatches immediately but finishes its in-flight batch, so
// no request is ever dropped and the event loop's (time, seq) total order is
// preserved — simulations stay bit-reproducible.
//
// Growth can instantiate scaled registry variants ("tron@0.5") via
// `grow_scale`, giving policies a continuous-ish action space over the
// discrete slot count.
#pragma once

#include <cstddef>
#include <memory>

namespace lumos::serve {

enum class AutoscalerPolicy {
  kNone,               // static fleet (bit-identical to the non-elastic simulator)
  kQueueDepth,         // reactive: grow on backlog, shrink on idle capacity
  kTargetUtilization,  // track a utilization set point with a dead band
};

struct AutoscalerConfig {
  AutoscalerPolicy policy = AutoscalerPolicy::kNone;
  // Evaluation step, in simulated seconds.
  double interval_s = 5e-3;

  // kQueueDepth: grow when the family's queue exceeds this many requests per
  // active slot; shrink when the queue is empty and utilization over the last
  // interval fell below `queue_low_utilization`.
  double queue_high_per_slot = 4.0;
  double queue_low_utilization = 0.3;

  // kTargetUtilization: grow above `target_utilization + utilization_band`,
  // shrink below `target_utilization - utilization_band` (never with a
  // backlog deeper than the active slots).
  double target_utilization = 0.65;
  double utilization_band = 0.15;

  // Per-family slot bounds.  `min_slots >= 1` keeps every workload kind
  // serveable, so elastic simulations can never livelock.
  std::size_t min_slots = 1;
  std::size_t max_slots = 64;

  // Spec scale of grown slots: 1 reuses the family's spec verbatim; other
  // values instantiate the registry's "<base>@<scale>" variant (e.g. 0.5
  // grows half-size burst capacity).
  double grow_scale = 1.0;
};

// Throws `InvalidArgument` naming the bad field (non-positive interval or
// grow_scale, min_slots of 0, max < min, out-of-range thresholds).  A kNone
// config is always valid.
void validate_autoscaler(const AutoscalerConfig& config);

// One spec family's observable state at an evaluation step.
struct FamilySignals {
  std::size_t active_slots = 0;    // accepting dispatches (up, not draining)
  std::size_t draining_slots = 0;  // finishing in-flight work before retiring
  std::size_t failed_slots = 0;    // down under fault injection (see faults.hpp);
                                   // invisible to routing until they recover
  std::size_t queued = 0;          // waiting requests this family could serve
  double utilization = 0.0;        // family busy fraction over the last interval
  std::size_t min_slots = 1;
  std::size_t max_slots = 64;
};

class Autoscaler {
 public:
  virtual ~Autoscaler() = default;

  [[nodiscard]] virtual AutoscalerPolicy policy() const noexcept = 0;

  // Desired slot delta for one family at one step (positive grows, negative
  // shrinks; the simulator clamps so active slots stay within
  // [min_slots, max_slots]).  Policies are pure functions of the signals, so
  // elastic simulations replay bit-for-bit.
  [[nodiscard]] virtual int step(const FamilySignals& signals) = 0;
};

// Builds the configured policy; nullptr for kNone.  Validates `config`.
[[nodiscard]] std::unique_ptr<Autoscaler> make_autoscaler(const AutoscalerConfig& config);

}  // namespace lumos::serve
