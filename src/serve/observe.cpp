#include "serve/observe.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace lumos::serve {

namespace {

// SplitMix64 finaliser: a well-mixed 64-bit hash, so the sampling decision is
// a pure function of (id, seed) — independent of event interleaving, fleet
// shape, and LUMOS_THREADS.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Trace emission helpers.  Timestamps are microseconds (the trace_event
// contract); `%.3f` keeps nanosecond resolution without 17-digit noise.
std::string us(double time_s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", time_s * 1e6);
  return buf;
}

// tid layout: 1 is the synthetic "clients" thread (arrivals, request spans),
// slot i is tid i + 2.
constexpr int kClientsTid = 1;
int slot_tid(std::size_t slot) { return static_cast<int>(slot) + 2; }

}  // namespace

void validate_observe(const ObserveConfig& config) {
  const TracerConfig& t = config.trace;
  if (t.enabled) {
    if (!(t.sample >= 0.0 && t.sample <= 1.0)) {
      throw InvalidArgument("ObserveConfig.trace: TracerConfig.sample must be in [0, 1]");
    }
    if (t.max_request_events == 0) {
      throw InvalidArgument(
          "ObserveConfig.trace: TracerConfig.max_request_events must be >= 1");
    }
    if (t.max_batch_spans == 0) {
      throw InvalidArgument("ObserveConfig.trace: TracerConfig.max_batch_spans must be >= 1");
    }
  }
  if (config.timeline.enabled) {
    if (!(config.timeline.window_s > 0.0) || !std::isfinite(config.timeline.window_s)) {
      throw InvalidArgument(
          "ObserveConfig.timeline: TimelineConfig.window_s must be positive and finite");
    }
  }
}

bool trace_sampled(std::uint64_t id, std::uint64_t seed, double sample) {
  if (sample >= 1.0) return true;
  if (sample <= 0.0) return false;
  // Threshold compare in the hash's own 64-bit space; ldexp avoids the
  // uint64 -> double rounding pitfalls of dividing by 2^64.
  const double h = std::ldexp(static_cast<double>(splitmix64(id ^ seed)), -64);
  return h < sample;
}

// ---------------------------------------------------------------------------
// LifecycleTracer
// ---------------------------------------------------------------------------

LifecycleTracer::LifecycleTracer(const TracerConfig& config, const WorkloadCatalog& catalog)
    : config_(config), catalog_(&catalog) {
  spans_.reserve(std::min<std::size_t>(config_.max_batch_spans, 4096));
}

bool LifecycleTracer::sampled(std::uint64_t id) const noexcept {
  return trace_sampled(id, config_.seed, config_.sample);
}

void LifecycleTracer::on_slot_added(std::size_t slot, const std::string& spec, double) {
  if (slot_specs_.size() <= slot) slot_specs_.resize(slot + 1);
  slot_specs_[slot] = spec;
}

void LifecycleTracer::record(const Request& request, double time_s, RequestEventKind kind,
                             std::int32_t slot) {
  RequestEvent ev;
  ev.time_s = time_s;
  ev.id = request.id;
  ev.workload = request.workload;
  ev.attempt = request.attempt;
  ev.slot = slot;
  ev.kind = kind;
  events_.push_back(ev);
}

void LifecycleTracer::on_arrival(const Request& request, double now_s) {
  if (!sampled(request.id)) return;
  // Saturation refuses whole requests, never truncates one mid-span: a
  // request either has its complete lifecycle in the buffer or is absent.
  if (saturated_ || events_.size() >= config_.max_request_events) {
    saturated_ = true;
    ++dropped_requests_;
    return;
  }
  live_ids_.insert(request.id);
  ++sampled_requests_;
  record(request, now_s, RequestEventKind::kArrival);
}

void LifecycleTracer::on_dispatch(std::size_t slot, std::uint64_t seq,
                                  const std::vector<Request>& batch, double now_s,
                                  double done_s) {
  BatchSpan span;
  span.start_s = now_s;
  span.end_s = done_s;
  span.seq = seq;
  span.slot = static_cast<std::uint32_t>(slot);
  span.workload = batch.front().workload;
  span.size = static_cast<std::uint32_t>(batch.size());
  if (slot_open_span_.size() <= slot) slot_open_span_.resize(slot + 1, kNoSpan);
  if (spans_.size() < config_.max_batch_spans) {
    slot_open_span_[slot] = spans_.size();
    spans_.push_back(span);
  } else {
    // Ring: the oldest recorded span makes room for the newest.
    spans_[span_next_] = span;
    slot_open_span_[slot] = span_next_;
    span_next_ = (span_next_ + 1) % config_.max_batch_spans;
    ++dropped_spans_;
  }
  if (live_ids_.empty()) return;  // nothing sampled in flight; skip the scan
  for (const Request& req : batch) {
    if (live_ids_.count(req.id) != 0) {
      record(req, now_s, RequestEventKind::kDispatch, static_cast<std::int32_t>(slot));
    }
  }
}

void LifecycleTracer::on_batch_complete(std::size_t slot, std::uint64_t seq, double, double,
                                        std::size_t) {
  // The span's end was already the predicted completion; just close the slot.
  if (slot < slot_open_span_.size() && slot_open_span_[slot] != kNoSpan &&
      spans_[slot_open_span_[slot]].seq == seq) {
    slot_open_span_[slot] = kNoSpan;
  }
}

void LifecycleTracer::on_batch_abort(std::size_t slot, std::uint64_t seq, double,
                                     double abort_s, std::size_t) {
  if (slot < slot_open_span_.size() && slot_open_span_[slot] != kNoSpan) {
    BatchSpan& span = spans_[slot_open_span_[slot]];
    if (span.seq == seq) {
      // The batch never ran to its predicted end; the span is cut short.
      span.end_s = abort_s;
      span.aborted = true;
    }
    slot_open_span_[slot] = kNoSpan;
  }
}

void LifecycleTracer::on_requeue(const Request& request, double now_s) {
  if (live_ids_.count(request.id) != 0) {
    record(request, now_s, RequestEventKind::kRequeue);
  }
}

void LifecycleTracer::on_attempt_timeout(const Request& request, double now_s, bool) {
  if (live_ids_.count(request.id) != 0) {
    record(request, now_s, RequestEventKind::kAttemptTimeout);
  }
}

void LifecycleTracer::on_retry(const Request& request, double now_s, double) {
  if (live_ids_.count(request.id) != 0) {
    record(request, now_s, RequestEventKind::kRetry);
  }
}

void LifecycleTracer::on_complete(const Request& request, double now_s,
                                  CompletionStatus status, double, bool) {
  const auto it = live_ids_.find(request.id);
  if (it == live_ids_.end()) return;
  live_ids_.erase(it);
  switch (status) {
    case CompletionStatus::kOk:
      record(request, now_s, RequestEventKind::kComplete);
      break;
    case CompletionStatus::kShed:
      record(request, now_s, RequestEventKind::kShed);
      break;
    case CompletionStatus::kTimeout:
      record(request, now_s, RequestEventKind::kTimeout);
      break;
  }
}

void LifecycleTracer::write_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& json) {
    if (!first) os << ",";
    first = false;
    os << "\n" << json;
  };

  // Metadata: name the process and every thread lane.
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
       "\"args\":{\"name\":\"lumos serve\"}}");
  emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
       std::to_string(kClientsTid) + ",\"args\":{\"name\":\"clients\"}}");
  for (std::size_t i = 0; i < slot_specs_.size(); ++i) {
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
         std::to_string(slot_tid(i)) + ",\"args\":{\"name\":\"slot " + std::to_string(i) +
         " [" + json_escape(slot_specs_[i]) + "]\"}}");
  }

  // Batch spans, ring order (seq in args recovers dispatch order).
  for (const BatchSpan& span : spans_) {
    const std::string name = json_escape(catalog_->workload(span.workload).name());
    std::ostringstream ev;
    ev << "{\"name\":\"" << name << " x" << span.size << "\",\"cat\":\"batch\","
       << "\"ph\":\"X\",\"ts\":" << us(span.start_s)
       << ",\"dur\":" << us(std::max(0.0, span.end_s - span.start_s))
       << ",\"pid\":1,\"tid\":" << slot_tid(span.slot) << ",\"args\":{\"seq\":" << span.seq
       << ",\"batch\":" << span.size << ",\"aborted\":" << (span.aborted ? "true" : "false")
       << "}}";
    emit(ev.str());
    if (span.aborted) {
      std::ostringstream ab;
      ab << "{\"name\":\"batch-abort\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
         << us(span.end_s) << ",\"pid\":1,\"tid\":" << slot_tid(span.slot)
         << ",\"args\":{\"seq\":" << span.seq << "}}";
      emit(ab.str());
    }
  }

  // Request lifecycles: one async span per request (cat "req", id = request
  // id) from arrival to its terminal event, instants for the transitions, and
  // flow arrows from each queue entry ("s" on the clients lane) to the
  // dispatch that drained it ("f" on the slot lane).
  for (const RequestEvent& ev : events_) {
    const std::string id = std::to_string(ev.id);
    const std::string ts = us(ev.time_s);
    const std::string common = "\"cat\":\"req\",\"id\":" + id + ",\"ts\":" + ts +
                               ",\"pid\":1,\"tid\":" + std::to_string(kClientsTid);
    const std::string flow_common =
        "\"cat\":\"queue\",\"id\":" + id + ",\"ts\":" + ts + ",\"pid\":1";
    switch (ev.kind) {
      case RequestEventKind::kArrival:
        emit("{\"name\":\"req " + id + "\",\"ph\":\"b\"," + common +
             ",\"args\":{\"workload\":\"" +
             json_escape(catalog_->workload(ev.workload).name()) + "\"}}");
        emit("{\"name\":\"queue\",\"ph\":\"s\"," + flow_common +
             ",\"tid\":" + std::to_string(kClientsTid) + "}");
        break;
      case RequestEventKind::kDispatch:
        emit("{\"name\":\"dispatch\",\"ph\":\"n\"," + common + ",\"args\":{\"slot\":" +
             std::to_string(ev.slot) + ",\"attempt\":" + std::to_string(ev.attempt) + "}}");
        emit("{\"name\":\"queue\",\"ph\":\"f\",\"bp\":\"e\"," + flow_common +
             ",\"tid\":" + std::to_string(slot_tid(static_cast<std::size_t>(
                               std::max<std::int32_t>(ev.slot, 0)))) +
             "}");
        break;
      case RequestEventKind::kRequeue:
        emit("{\"name\":\"requeue\",\"ph\":\"n\"," + common + "}");
        emit("{\"name\":\"queue\",\"ph\":\"s\"," + flow_common +
             ",\"tid\":" + std::to_string(kClientsTid) + "}");
        break;
      case RequestEventKind::kAttemptTimeout:
        emit("{\"name\":\"attempt-timeout\",\"ph\":\"n\"," + common + ",\"args\":{\"attempt\":" +
             std::to_string(ev.attempt) + "}}");
        break;
      case RequestEventKind::kRetry:
        emit("{\"name\":\"retry\",\"ph\":\"n\"," + common + ",\"args\":{\"attempt\":" +
             std::to_string(ev.attempt) + "}}");
        emit("{\"name\":\"queue\",\"ph\":\"s\"," + flow_common +
             ",\"tid\":" + std::to_string(kClientsTid) + "}");
        break;
      case RequestEventKind::kShed:
        emit("{\"name\":\"shed\",\"ph\":\"n\"," + common + "}");
        emit("{\"name\":\"req " + id + "\",\"ph\":\"e\"," + common +
             ",\"args\":{\"status\":\"shed\"}}");
        break;
      case RequestEventKind::kTimeout:
        emit("{\"name\":\"timeout\",\"ph\":\"n\"," + common + "}");
        emit("{\"name\":\"req " + id + "\",\"ph\":\"e\"," + common +
             ",\"args\":{\"status\":\"timeout\"}}");
        break;
      case RequestEventKind::kComplete:
        emit("{\"name\":\"req " + id + "\",\"ph\":\"e\"," + common +
             ",\"args\":{\"status\":\"ok\"}}");
        break;
    }
  }
  os << "\n]}";
  os << "\n";
}

// ---------------------------------------------------------------------------
// TimelineRecorder
// ---------------------------------------------------------------------------

TimelineRecorder::TimelineRecorder(const TimelineConfig& config,
                                   const WorkloadCatalog& catalog)
    : config_(config), inv_window_s_(1.0 / config.window_s), catalog_(&catalog) {}

TimelineWindow& TimelineRecorder::window_at(double time_s) {
  // Truncating cast of a non-negative product == floor; the multiply (vs a
  // divide) keeps this hook cheap since every counter bump lands here.
  const std::size_t idx = static_cast<std::size_t>(std::max(0.0, time_s) * inv_window_s_);
  if (idx < windows_.size()) return windows_[idx];
  while (windows_.size() <= idx) {
    TimelineWindow w;
    if (!windows_.empty()) {
      // Gauges carry forward through quiet windows so plots hold their level
      // instead of dropping to zero between events; counters reset.
      const TimelineWindow& prev = windows_.back();
      w.queue_depth_last = prev.queue_depth_last;
      w.queue_depth_max = prev.queue_depth_last;
      w.active_slots = prev.active_slots;
      w.failed_slots = prev.failed_slots;
    }
    w.tenant_completed.assign(catalog_->size(), 0);
    w.tenant_within_slo.assign(catalog_->size(), 0);
    windows_.push_back(std::move(w));
  }
  return windows_[idx];
}

void TimelineRecorder::on_arrival(const Request&, double now_s) {
  ++window_at(now_s).arrivals;
}

void TimelineRecorder::on_admission(const Request&, double now_s, bool admitted) {
  if (admitted) ++window_at(now_s).admitted;
}

void TimelineRecorder::on_dispatch(std::size_t, std::uint64_t, const std::vector<Request>&,
                                   double now_s, double) {
  ++window_at(now_s).dispatches;
}

void TimelineRecorder::on_batch_abort(std::size_t, std::uint64_t, double, double abort_s,
                                      std::size_t) {
  ++window_at(abort_s).batch_aborts;
}

void TimelineRecorder::on_requeue(const Request&, double now_s) {
  ++window_at(now_s).requeued;
}

void TimelineRecorder::on_attempt_timeout(const Request&, double now_s, bool) {
  ++window_at(now_s).attempt_timeouts;
}

void TimelineRecorder::on_retry(const Request&, double now_s, double) {
  ++window_at(now_s).retries;
}

void TimelineRecorder::on_complete(const Request& request, double now_s,
                                   CompletionStatus status, double, bool within_slo) {
  TimelineWindow& w = window_at(now_s);
  switch (status) {
    case CompletionStatus::kOk:
      ++w.completed;
      ++w.tenant_completed[request.workload];
      if (within_slo) {
        ++w.within_slo;
        ++w.tenant_within_slo[request.workload];
      }
      break;
    case CompletionStatus::kShed:
      ++w.shed;
      break;
    case CompletionStatus::kTimeout:
      ++w.timed_out;
      break;
  }
}

void TimelineRecorder::on_slot_failure(std::size_t, double now_s) {
  ++window_at(now_s).slot_failures;
}

void TimelineRecorder::on_slot_recovery(std::size_t, double now_s) {
  ++window_at(now_s).slot_recoveries;
}

void TimelineRecorder::on_autoscale(std::size_t, int delta, double now_s) {
  TimelineWindow& w = window_at(now_s);
  if (delta > 0) {
    ++w.autoscale_grows;
  } else if (delta < 0) {
    ++w.autoscale_shrinks;
  }
}

void TimelineRecorder::on_tick(double now_s, std::size_t queued, std::size_t active_slots,
                               std::size_t failed_slots) {
  TimelineWindow& w = window_at(now_s);
  w.queue_depth_last = queued;
  w.queue_depth_max = std::max(w.queue_depth_max, queued);
  w.active_slots = active_slots;
  w.failed_slots = failed_slots;
}

void TimelineRecorder::finish(double end_s) {
  // Materialise the final window so the series spans the whole run even when
  // the last events landed earlier.
  if (end_s > 0.0) (void)window_at(end_s);
}

void TimelineRecorder::write_csv(std::ostream& os) const {
  os << "t_s,arrivals,admitted,shed,completed,within_slo,timed_out,attempt_timeouts,"
        "retries,requeued,dispatches,batch_aborts,slot_failures,slot_recoveries,"
        "autoscale_grows,autoscale_shrinks,queue_depth_last,queue_depth_max,"
        "active_slots,failed_slots,throughput_qps,goodput_qps";
  for (std::size_t i = 0; i < catalog_->size(); ++i) {
    const std::string name = catalog_->workload(i).name();
    os << "," << name << "_completed," << name << "_within_slo";
  }
  os << "\n";
  char buf[64];
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const TimelineWindow& w = windows_[i];
    std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(i) * config_.window_s);
    os << buf << "," << w.arrivals << "," << w.admitted << "," << w.shed << ","
       << w.completed << "," << w.within_slo << "," << w.timed_out << ","
       << w.attempt_timeouts << "," << w.retries << "," << w.requeued << ","
       << w.dispatches << "," << w.batch_aborts << "," << w.slot_failures << ","
       << w.slot_recoveries << "," << w.autoscale_grows << "," << w.autoscale_shrinks << ","
       << w.queue_depth_last << "," << w.queue_depth_max << "," << w.active_slots << ","
       << w.failed_slots;
    std::snprintf(buf, sizeof buf, "%.9g",
                  static_cast<double>(w.completed) / config_.window_s);
    os << "," << buf;
    std::snprintf(buf, sizeof buf, "%.9g",
                  static_cast<double>(w.within_slo) / config_.window_s);
    os << "," << buf;
    for (std::size_t t = 0; t < w.tenant_completed.size(); ++t) {
      os << "," << w.tenant_completed[t] << "," << w.tenant_within_slo[t];
    }
    os << "\n";
  }
}

void TimelineRecorder::write_json(std::ostream& os) const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", config_.window_s);
  os << "{\n  \"window_s\": " << buf << ",\n  \"tenants\": [";
  for (std::size_t i = 0; i < catalog_->size(); ++i) {
    os << (i == 0 ? "" : ", ") << "\"" << json_escape(catalog_->workload(i).name()) << "\"";
  }
  os << "],\n  \"windows\": [";
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const TimelineWindow& w = windows_[i];
    std::snprintf(buf, sizeof buf, "%.9g", static_cast<double>(i) * config_.window_s);
    os << (i == 0 ? "" : ",") << "\n    {\"t_s\": " << buf << ", \"arrivals\": " << w.arrivals
       << ", \"admitted\": " << w.admitted << ", \"shed\": " << w.shed
       << ", \"completed\": " << w.completed << ", \"within_slo\": " << w.within_slo
       << ", \"timed_out\": " << w.timed_out << ", \"attempt_timeouts\": " << w.attempt_timeouts
       << ", \"retries\": " << w.retries << ", \"requeued\": " << w.requeued
       << ", \"dispatches\": " << w.dispatches << ", \"batch_aborts\": " << w.batch_aborts
       << ", \"slot_failures\": " << w.slot_failures
       << ", \"slot_recoveries\": " << w.slot_recoveries
       << ", \"autoscale_grows\": " << w.autoscale_grows
       << ", \"autoscale_shrinks\": " << w.autoscale_shrinks
       << ", \"queue_depth_last\": " << w.queue_depth_last
       << ", \"queue_depth_max\": " << w.queue_depth_max
       << ", \"active_slots\": " << w.active_slots << ", \"failed_slots\": " << w.failed_slots
       << ", \"tenant_completed\": [";
    for (std::size_t t = 0; t < w.tenant_completed.size(); ++t) {
      os << (t == 0 ? "" : ", ") << w.tenant_completed[t];
    }
    os << "], \"tenant_within_slo\": [";
    for (std::size_t t = 0; t < w.tenant_within_slo.size(); ++t) {
      os << (t == 0 ? "" : ", ") << w.tenant_within_slo[t];
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
}

// ---------------------------------------------------------------------------
// EventLoopProfiler
// ---------------------------------------------------------------------------

const char* loop_source_name(LoopSource source) noexcept {
  switch (source) {
    case LoopSource::kCompletions: return "completions";
    case LoopSource::kFaults: return "faults";
    case LoopSource::kArrivals: return "arrivals";
    case LoopSource::kRetries: return "retries";
    case LoopSource::kAutoscale: return "autoscale";
    case LoopSource::kDispatch: return "dispatch";
    case LoopSource::kSchedulerPop: return "scheduler-pop";
    case LoopSource::kEstimate: return "estimate-cache";
    case LoopSource::kCount: break;
  }
  return "?";
}

void EventLoopProfiler::record(LoopSource source, Clock::time_point t0,
                               std::uint64_t events) noexcept {
  const std::size_t i = static_cast<std::size_t>(source);
  wall_s_[i] += std::chrono::duration<double>(Clock::now() - t0).count();
  events_[i] += events;
}

std::uint64_t EventLoopProfiler::events(LoopSource source) const noexcept {
  return events_[static_cast<std::size_t>(source)];
}

double EventLoopProfiler::wall_s(LoopSource source) const noexcept {
  return wall_s_[static_cast<std::size_t>(source)];
}

double EventLoopProfiler::accounted_wall_s() const noexcept {
  double total = 0.0;
  for (const LoopSource s : {LoopSource::kCompletions, LoopSource::kFaults,
                             LoopSource::kArrivals, LoopSource::kRetries,
                             LoopSource::kAutoscale, LoopSource::kDispatch}) {
    total += wall_s(s);
  }
  return total;
}

Table EventLoopProfiler::to_table(const std::string& title) const {
  Table t(title);
  t.add_row({"source", "events", "wall ms", "ns/event", "share"});
  const double total = accounted_wall_s();
  const auto row = [&](LoopSource s, bool in_total) {
    const std::uint64_t n = events(s);
    const double w = wall_s(s);
    t.add_row({std::string(in_total ? "" : "  ") + loop_source_name(s), std::to_string(n),
               Table::num(w * 1e3, 3),
               Table::num(n > 0 ? w * 1e9 / static_cast<double>(n) : 0.0, 1),
               in_total ? Table::num(total > 0.0 ? w / total : 0.0, 3) : "-"});
  };
  row(LoopSource::kCompletions, true);
  row(LoopSource::kFaults, true);
  row(LoopSource::kArrivals, true);
  row(LoopSource::kRetries, true);
  row(LoopSource::kAutoscale, true);
  row(LoopSource::kDispatch, true);
  // Sub-sources of dispatch, indented and excluded from the share column.
  row(LoopSource::kSchedulerPop, false);
  row(LoopSource::kEstimate, false);
  t.add_row({"loop total", std::to_string(iterations_) + " iters",
             Table::num(total * 1e3, 3),
             Table::num(iterations_ > 0 ? total * 1e9 / static_cast<double>(iterations_) : 0.0,
                        1),
             "1.000"});
  return t;
}

// ---------------------------------------------------------------------------
// ObserverHub
// ---------------------------------------------------------------------------

ObserverHub::ObserverHub(const ObserveConfig& config, const WorkloadCatalog& catalog) {
  validate_observe(config);
  if (config.trace.enabled) {
    tracer_ = std::make_unique<LifecycleTracer>(config.trace, catalog);
  }
  if (config.timeline.enabled) {
    timeline_ = std::make_unique<TimelineRecorder>(config.timeline, catalog);
  }
  if (config.profile) profiler_ = std::make_unique<EventLoopProfiler>();
}

void ObserverHub::add(std::unique_ptr<Observer> observer) {
  LUMOS_EXPECTS(observer != nullptr);
  custom_.push_back(std::move(observer));
}

// Fan-out order: tracer, timeline, then custom observers.  The built-in calls
// go through the concrete (final) types, so hooks a built-in does not
// override cost nothing here.
#define LUMOS_OBSERVE_FANOUT(call)                  \
  do {                                              \
    if (tracer_) tracer_->call;                     \
    if (timeline_) timeline_->call;                 \
    for (const auto& o : custom_) o->call;          \
  } while (0)

void ObserverHub::on_slot_added(std::size_t slot, const std::string& spec, double now_s) {
  LUMOS_OBSERVE_FANOUT(on_slot_added(slot, spec, now_s));
}
void ObserverHub::on_arrival(const Request& request, double now_s) {
  LUMOS_OBSERVE_FANOUT(on_arrival(request, now_s));
}
void ObserverHub::on_admission(const Request& request, double now_s, bool admitted) {
  LUMOS_OBSERVE_FANOUT(on_admission(request, now_s, admitted));
}
void ObserverHub::on_dispatch(std::size_t slot, std::uint64_t seq,
                              const std::vector<Request>& batch, double now_s,
                              double done_s) {
  LUMOS_OBSERVE_FANOUT(on_dispatch(slot, seq, batch, now_s, done_s));
}
void ObserverHub::on_batch_complete(std::size_t slot, std::uint64_t seq, double start_s,
                                    double end_s, std::size_t size) {
  LUMOS_OBSERVE_FANOUT(on_batch_complete(slot, seq, start_s, end_s, size));
}
void ObserverHub::on_batch_abort(std::size_t slot, std::uint64_t seq, double start_s,
                                 double abort_s, std::size_t size) {
  LUMOS_OBSERVE_FANOUT(on_batch_abort(slot, seq, start_s, abort_s, size));
}
void ObserverHub::on_requeue(const Request& request, double now_s) {
  LUMOS_OBSERVE_FANOUT(on_requeue(request, now_s));
}
void ObserverHub::on_attempt_timeout(const Request& request, double now_s, bool will_retry) {
  LUMOS_OBSERVE_FANOUT(on_attempt_timeout(request, now_s, will_retry));
}
void ObserverHub::on_retry(const Request& request, double now_s, double reissue_s) {
  LUMOS_OBSERVE_FANOUT(on_retry(request, now_s, reissue_s));
}
void ObserverHub::on_complete(const Request& request, double now_s, CompletionStatus status,
                              double latency_s, bool within_slo) {
  LUMOS_OBSERVE_FANOUT(on_complete(request, now_s, status, latency_s, within_slo));
}
void ObserverHub::on_slot_failure(std::size_t slot, double now_s) {
  LUMOS_OBSERVE_FANOUT(on_slot_failure(slot, now_s));
}
void ObserverHub::on_slot_recovery(std::size_t slot, double now_s) {
  LUMOS_OBSERVE_FANOUT(on_slot_recovery(slot, now_s));
}
void ObserverHub::on_autoscale(std::size_t family, int delta, double now_s) {
  LUMOS_OBSERVE_FANOUT(on_autoscale(family, delta, now_s));
}
void ObserverHub::on_tick(double now_s, std::size_t queued, std::size_t active_slots,
                          std::size_t failed_slots) {
  LUMOS_OBSERVE_FANOUT(on_tick(now_s, queued, active_slots, failed_slots));
}
void ObserverHub::finish(double end_s) {
  LUMOS_OBSERVE_FANOUT(finish(end_s));
}

#undef LUMOS_OBSERVE_FANOUT

Observation ObserverHub::take() {
  Observation out;
  out.tracer = std::move(tracer_);
  out.timeline = std::move(timeline_);
  out.profiler = std::move(profiler_);
  return out;
}

}  // namespace lumos::serve
