// Fault and overload machinery for the serving simulator: slot failure
// injection, request timeouts/retries, and admission control.
//
// Three independent knobs, all disabled by default and all bit-reproducible:
//
//   * `FaultConfig` — a seeded per-slot failure/recovery process.  Each slot
//     draws exponential time-to-failure (mean `mtbf_s`) and time-to-repair
//     (mean `mttr_s`) from its own rng stream (keyed by slot index), so the
//     fault schedule is independent of event interleaving and of how many
//     slots exist at any instant.  A failing slot aborts its in-flight batch
//     (the simulator requeues the requests) and is invisible to routing and
//     autoscaling until it recovers.
//   * `RetryPolicy` — bounded retries with exponential backoff plus
//     deterministic jitter for attempts that time out (`CatalogEntry.
//     timeout_s`).  Backoff for attempt k is
//     base_backoff_s * multiplier^(k-1) * (1 +/- jitter), the jitter drawn
//     from a stream keyed by the request id so retried arrivals replay
//     bit-for-bit.
//   * `AdmissionConfig` — a polymorphic admission controller consulted at
//     every arrival (retries included).  Policies: admit everything, a global
//     queue cap, tier-aware shedding (lower-priority tiers see geometrically
//     smaller caps, so tier 0 keeps its goodput while tier 1 sheds — the
//     DAGOR/Breakwater shape), and SLO-aware cost-based rejection using the
//     estimate cache's predicted service times.
//
// Terminal request outcomes are `CompletionStatus`; the traffic source sees
// exactly one terminal status per logical request via
// `TrafficSource::on_complete`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace lumos::serve {

// Terminal outcome of one logical request (one `on_complete` call each).
enum class CompletionStatus {
  kOk,       // completed; scored against its SLO
  kShed,     // rejected by admission control at arrival
  kTimeout,  // exceeded its timeout with no retry budget left
};

// Per-slot failure/recovery process knobs.  `mtbf_s <= 0` (the default)
// disables injection entirely — the simulator takes the bit-identical
// fault-free path.
struct FaultConfig {
  double mtbf_s = 0.0;   // mean time between failures per slot; <= 0 disables
  double mttr_s = 1e-3;  // mean time to repair a failed slot
  std::uint64_t seed = 1;

  [[nodiscard]] bool enabled() const noexcept { return mtbf_s > 0.0; }
};

// Throws `InvalidArgument` naming the bad field (non-finite mtbf, non-positive
// or non-finite mttr while enabled).  A disabled config is always valid.
void validate_faults(const FaultConfig& config);

// Retry knobs for timed-out attempts.  `max_attempts` counts every attempt
// including the first, so 1 (the default) means "no retries".
struct RetryPolicy {
  std::size_t max_attempts = 1;  // total attempts per logical request
  double base_backoff_s = 1e-3;  // backoff before the second attempt
  double multiplier = 2.0;       // backoff growth per further attempt
  double jitter = 0.1;           // +/- fraction of the backoff, seeded draw
  std::uint64_t seed = 1;        // jitter stream

  [[nodiscard]] bool enabled() const noexcept { return max_attempts > 1; }
};

// Throws `InvalidArgument` naming the bad field (zero attempts, negative
// backoff, multiplier < 1, jitter outside [0, 1)).
void validate_retry(const RetryPolicy& policy);

// Backoff delay before re-issuing request `request_id` as retry number
// `attempt` (1-based: the first retry passes 1 and waits `base_backoff_s`,
// scaled by `multiplier` per further retry, then jittered).  Pure
// function of (policy, request_id, attempt): retried schedules replay
// bit-for-bit regardless of event interleaving.
[[nodiscard]] double retry_backoff_s(const RetryPolicy& policy, std::uint64_t request_id,
                                     std::size_t attempt);

enum class AdmissionPolicy {
  kNone,      // admit everything (bit-identical to the pre-admission loop)
  kQueueCap,  // reject when the queue already holds `queue_cap` requests
  kTierShed,  // per-tier caps: queue_cap * tier_shed_factor^tier — lower
              // tiers shed first, tier 0 keeps (almost) the full cap
  kSloAware,  // reject when predicted wait + service exceeds the request's SLO
};

struct AdmissionConfig {
  AdmissionPolicy policy = AdmissionPolicy::kNone;
  std::size_t queue_cap = 256;     // kQueueCap / kTierShed: tier-0 queue bound
  double tier_shed_factor = 0.25;  // kTierShed: cap shrink per priority tier
  double slo_margin = 1.0;         // kSloAware: admit while predicted latency
                                   // <= slo_margin * SLO
};

// Throws `InvalidArgument` naming the bad field (zero cap, shed factor
// outside (0, 1], non-positive margin).  A kNone config is always valid.
void validate_admission(const AdmissionConfig& config);

// What an admission decision may look at: the arriving request's tier and
// SLO, the queue, and the fleet's predicted cost of serving it.  The
// simulator fills `predicted_wait_s`/`service_s` only for policies that need
// them (kSloAware), so disabled-policy runs never touch the estimate cache.
struct AdmissionSignals {
  std::uint32_t tier = 0;        // priority tier of the arriving request
  std::size_t queued = 0;        // requests waiting in the scheduler
  std::size_t active_slots = 1;  // dispatchable (up, non-draining) slots
  double predicted_wait_s = 0.0;  // estimated queue-drain time ahead of it
  double service_s = 0.0;         // estimated service time of this request
  double slo_s = 0.0;             // SLO the request will be scored against
};

class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  [[nodiscard]] virtual AdmissionPolicy policy() const noexcept = 0;

  // True to admit.  Pure function of the signals: admission decisions replay
  // bit-for-bit.
  [[nodiscard]] virtual bool admit(const AdmissionSignals& signals) = 0;
};

// Builds the configured controller; nullptr for kNone.  Validates `config`.
[[nodiscard]] std::unique_ptr<AdmissionController> make_admission(
    const AdmissionConfig& config);

// Seeded per-slot failure/recovery process.  Tracked slots alternate up and
// down phases with exponential dwell times; every slot owns an rng stream
// keyed by its index, so one slot's phase sequence never depends on another's
// (or on when slots are grown).  `next_event_s`/`next_event_slot` expose the
// earliest pending transition (ties break on the lowest slot index), which
// the event loop folds in as its fifth event source.
class SlotFaultProcess {
 public:
  // Validates `config` (must be enabled: callers gate on `config.enabled()`).
  explicit SlotFaultProcess(const FaultConfig& config);

  // Starts tracking the next slot index (up from `now_s`; first failure drawn
  // immediately).  Call once per fleet slot in index order, growth included.
  void add_slot(double now_s);
  // Stops tracking `slot` (retired slots neither fail nor recover).
  void remove_slot(std::size_t slot);

  [[nodiscard]] std::size_t slots() const noexcept { return states_.size(); }
  [[nodiscard]] bool up(std::size_t slot) const noexcept;

  // Earliest pending transition instant (+infinity when nothing is tracked)
  // and the slot it belongs to.
  [[nodiscard]] double next_event_s() const noexcept;
  [[nodiscard]] std::size_t next_event_slot() const noexcept;

  // Applies `slot`'s pending transition; returns its new up state (false:
  // just failed, true: just recovered).  The next transition is drawn from
  // the slot's own stream at the call.
  bool advance(std::size_t slot);

 private:
  struct State {
    Rng rng;
    bool tracked = false;
    bool up = true;
    double next_s = 0.0;

    State() : rng(0) {}
  };

  FaultConfig config_;
  std::vector<State> states_;
};

}  // namespace lumos::serve
