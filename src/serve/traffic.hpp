// Pluggable traffic sources for the serving simulator: the pull-based API
// that feeds the event loop its requests.
//
// `TrafficSource` inverts the old "pre-materialised trace" contract.  The
// event loop asks the source when the next request arrives
// (`next_arrival_time`), pops it when simulated time reaches that instant
// (`pop_arrival`), and feeds every completion back (`on_complete`).  The
// feedback hook is what makes closed-loop clients expressible: a session's
// next arrival does not exist until its previous request completes.
//
// Implementations:
//   * `OpenLoopSource` — wraps a materialised arrival-time-ordered trace
//     (Poisson / MMPP, see trace.hpp); ignores completions.  Bit-identical to
//     the pre-source simulator: same trace, same events, same metrics.
//   * `ClosedLoopSource` — a pool of client sessions, each pinned to one
//     catalog entry (tenant) by seeded mix draw.  A session issues one
//     request, waits for its completion, thinks for an exponential
//     `think_time_mean_s`, then issues the next — `sessions` requests in
//     flight at most, arrival rate set by service speed instead of an offered
//     QPS.  Each session owns an rng stream derived from (seed, session), so
//     think times and sampled sequence lengths are independent of event
//     interleaving, and pending issues order by (time, session id): runs are
//     bit-reproducible across repeats and `LUMOS_THREADS`.
//
// Sources are single-use: one `simulate()` consumes one source.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "serve/event_heap.hpp"
#include "serve/faults.hpp"
#include "serve/metrics.hpp"
#include "serve/trace.hpp"
#include "serve/workload.hpp"

namespace lumos::serve {

// Open- vs closed-loop load generation.
enum class LoopMode { kOpen, kClosed };

struct ClosedLoopConfig {
  std::size_t sessions = 32;              // concurrent client sessions
  std::size_t requests_per_session = 64;  // issues per session before it ends
  double think_time_mean_s = 2e-3;        // exponential think time after a completion
  std::uint64_t seed = 1;
};

// Throws `InvalidArgument` naming the bad field (zero sessions or requests,
// negative / non-finite think time).
void validate_closed_loop(const ClosedLoopConfig& config);

// Which traffic a Scenario runs: open-loop generator knobs or closed-loop
// session knobs, selected by `mode`.
struct TrafficConfig {
  LoopMode mode = LoopMode::kOpen;
  TraceConfig open;
  ClosedLoopConfig closed;
};

class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  // Total requests this source will ever issue (the simulation's completion
  // target).
  [[nodiscard]] virtual std::size_t total_requests() const noexcept = 0;

  // Arrival instant of the next pending request; +infinity while none is
  // pending (closed loop: every live session is waiting on a completion).
  [[nodiscard]] virtual double next_arrival_time() const noexcept = 0;

  // Pops the pending request (call only when `next_arrival_time()` is
  // finite).  Ids are assigned in pop (arrival) order.
  [[nodiscard]] virtual Request pop_arrival() = 0;

  // Feedback hook: `request` reached its terminal state at `time_s` —
  // completed (kOk), rejected by admission (kShed), or timed out with no
  // retry budget left (kTimeout).  Exactly one call per logical request
  // (retried attempts are not terminal).  The event loop calls this in
  // deterministic order — (time, dispatch seq), batch order within a batch —
  // before pulling further arrivals, so sources may schedule new arrivals at
  // or after `time_s`.
  virtual void on_complete(const Request& request, double time_s,
                           CompletionStatus status) = 0;

  // Writes source-side results (session counts and latencies) into `metrics`
  // once the loop has drained.  Open-loop sources report nothing.
  virtual void finish(FleetMetrics& metrics) = 0;
};

// A materialised open-loop trace behind the source API.
class OpenLoopSource final : public TrafficSource {
 public:
  // Owning: takes the trace by value (the generated-trace path).  `trace`
  // must be arrival-time ordered (generate_trace's contract).
  explicit OpenLoopSource(std::vector<Request> trace);
  // Borrowing: serves `*trace` without copying it (the explicit-trace path —
  // a Scenario's trace outlives the run).  Same ordering contract.
  explicit OpenLoopSource(const std::vector<Request>* trace);

  [[nodiscard]] std::size_t total_requests() const noexcept override;
  [[nodiscard]] double next_arrival_time() const noexcept override;
  [[nodiscard]] Request pop_arrival() override;
  void on_complete(const Request& request, double time_s, CompletionStatus status) override;
  void finish(FleetMetrics& metrics) override;

 private:
  std::vector<Request> owned_;
  const std::vector<Request>* trace_;  // owned_ or the borrowed vector
  std::size_t next_ = 0;
};

// Closed-loop session pool behind the source API.
class ClosedLoopSource final : public TrafficSource {
 public:
  // `catalog` must outlive the source.  Validates `config`.
  ClosedLoopSource(const WorkloadCatalog& catalog, const ClosedLoopConfig& config);

  [[nodiscard]] std::size_t total_requests() const noexcept override;
  [[nodiscard]] double next_arrival_time() const noexcept override;
  [[nodiscard]] Request pop_arrival() override;
  void on_complete(const Request& request, double time_s, CompletionStatus status) override;
  void finish(FleetMetrics& metrics) override;

 private:
  struct Session {
    std::uint32_t workload = 0;   // catalog entry this session drives
    std::size_t issued = 0;       // requests popped so far
    std::size_t completed = 0;    // requests finished so far
    double first_issue_s = 0.0;   // first pop instant (session latency start)
    Rng rng;                      // per-session stream: think times + seq lengths

    Session() : rng(0) {}
  };

  // One scheduled issue.  Min-ordered by (time, session id) — the session id
  // tie-break keeps pop order deterministic when think times collide.
  struct Pending {
    double time_s = 0.0;
    std::uint32_t session = 0;
    std::uint32_t seq_len = 0;
    std::uint32_t decode_tokens = 0;
  };
  struct PendingLater {
    bool operator()(const Pending& a, const Pending& b) const noexcept {
      if (a.time_s != b.time_s) return a.time_s > b.time_s;
      return a.session > b.session;
    }
  };

  void schedule(std::uint32_t session, double not_before_s);

  const WorkloadCatalog* catalog_;
  ClosedLoopConfig config_;
  std::vector<Session> sessions_;
  EventHeap<Pending, PendingLater> pending_;
  std::vector<double> session_latencies_s_;
  std::uint64_t next_id_ = 0;
};

// Builds the configured source; open-loop materialises the trace via
// `generate_trace` (so a Scenario's open-loop results are bit-identical to
// simulating that trace directly).
[[nodiscard]] std::unique_ptr<TrafficSource> make_traffic_source(
    const WorkloadCatalog& catalog, const TrafficConfig& config);

}  // namespace lumos::serve
