#include "baselines/platforms.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace lumos::baselines {

PlatformModel::PlatformModel(PlatformSpec spec) : spec_(std::move(spec)) {
  LUMOS_EXPECTS(spec_.peak_ops_per_s > 0.0);
  LUMOS_EXPECTS(spec_.memory_bandwidth_bps > 0.0);
  LUMOS_EXPECTS(spec_.board_power_w > 0.0);
  LUMOS_EXPECTS(spec_.transformer_utilization > 0.0 && spec_.transformer_utilization <= 1.0);
  LUMOS_EXPECTS(spec_.gnn_utilization > 0.0 && spec_.gnn_utilization <= 1.0);
  LUMOS_EXPECTS(spec_.streaming_bw_efficiency > 0.0 && spec_.streaming_bw_efficiency <= 1.0);
  LUMOS_EXPECTS(spec_.random_bw_efficiency > 0.0 && spec_.random_bw_efficiency <= 1.0);
}

PerfReport PlatformModel::estimate(const std::string& workload, std::size_t op_count,
                                   double bytes_moved, WorkloadClass cls) const {
  const bool transformer = cls == WorkloadClass::kTransformer;
  const double util = transformer ? spec_.transformer_utilization : spec_.gnn_utilization;
  const double bw_eff = transformer ? spec_.streaming_bw_efficiency
                                    : spec_.random_bw_efficiency;
  const double overhead = transformer ? spec_.transformer_overhead_s : spec_.gnn_overhead_s;

  PerfReport r;
  r.workload = workload;
  r.platform = spec_.name;
  r.op_count = op_count;
  r.bits = spec_.bits;
  const double compute_s = static_cast<double>(op_count) / (spec_.peak_ops_per_s * util);
  const double memory_s = bytes_moved / (spec_.memory_bandwidth_bps * bw_eff);
  r.latency_s = std::max(compute_s, memory_s) + overhead;
  r.breakdown.matmul_time_s = compute_s;
  r.breakdown.memory_stall_s = std::max(0.0, memory_s - compute_s);
  // Active power = idle floor + activity-proportional remainder.
  const double busy = std::max(compute_s, memory_s);
  const double activity = r.latency_s > 0.0 ? busy / r.latency_s : 0.0;
  const double power =
      spec_.board_power_w * (spec_.idle_power_fraction +
                             (1.0 - spec_.idle_power_fraction) * activity);
  r.static_power_w = spec_.board_power_w * spec_.idle_power_fraction;
  r.total_energy_j = power * r.latency_s;
  r.static_energy_j = r.static_power_w * r.latency_s;
  r.dynamic_energy_j = r.total_energy_j - r.static_energy_j;
  return r;
}

PerfReport PlatformModel::estimate_transformer(const nn::TransformerConfig& model) const {
  // Bytes: weights once + activations per layer (several reads/writes each).
  const double weight_bytes = static_cast<double>(model.parameter_count());
  const double act_bytes = static_cast<double>(model.layers) *
                           static_cast<double>(model.seq_len) *
                           static_cast<double>(model.d_model) * 4.0;
  return estimate(model.name, model.op_count(), weight_bytes + act_bytes,
                  WorkloadClass::kTransformer);
}

PerfReport PlatformModel::estimate_gnn(const gnn::GnnModelConfig& model,
                                       const graph::GraphDataset& dataset) const {
  // Irregular gathers: every edge re-fetches its neighbour's feature vector
  // (caches are ineffective at citation-graph reuse distances), plus weights.
  double bytes = 0.0;
  for (const gnn::GnnLayerConfig& l : model.layers_for(dataset)) {
    bytes += static_cast<double>(dataset.graph.edge_count()) * static_cast<double>(l.in_dim);
    bytes += static_cast<double>(dataset.graph.node_count()) * static_cast<double>(l.in_dim);
    bytes += static_cast<double>(l.in_dim) * static_cast<double>(l.out_dim);
  }
  return estimate(model.name + "/" + dataset.name, gnn::model_op_count(model, dataset), bytes,
                  WorkloadClass::kGnn);
}

// ---------------------------------------------------------------------------
// LLM comparison set (paper Figs. 8-9).  Operating points use datasheet peaks
// with effective utilisations / overheads consistent with measured batch-1
// transformer inference on each platform class; EXPERIMENTS.md records the
// calibration rationale.
// ---------------------------------------------------------------------------

PlatformModel xeon_cpu() {
  PlatformSpec s{"Xeon CPU", 3.0e12, 130e9, 150.0, 0.45, 0.08, 0.008};
  s.transformer_overhead_s = 2e-3;   // framework / thread-pool dispatch
  s.gnn_overhead_s = 2e-3;           // sparse kernels, per-layer passes
  return PlatformModel(s);
}

PlatformModel v100_gpu() {
  // V100-SXM2: 62.4 TOPS int8 tensor cores, 900 GB/s HBM2, 300 W; ~7% of
  // peak on batch-1 attention (measured BERT-base latencies are ~5 ms).
  PlatformSpec s{"V100 GPU", 62.4e12, 900e9, 300.0, 0.35, 0.07, 0.004};
  s.transformer_overhead_s = 300e-6;
  s.gnn_overhead_s = 1.2e-3;  // sparse kernel launches dominate small graphs
  return PlatformModel(s);
}

PlatformModel tpu_v2() {
  // TPU v2: 45 TFLOPS bf16 (~90 TOPS int8-equivalent), 600 GB/s, 280 W;
  // systolic fill/drain limits batch-1 attention to a few percent of peak.
  PlatformSpec s{"TPU v2", 90.0e12, 600e9, 280.0, 0.30, 0.05, 0.004};
  s.transformer_overhead_s = 500e-6;
  s.gnn_overhead_s = 2e-3;
  return PlatformModel(s);
}

PlatformModel transpim() {
  // TransPIM (HPCA'22): HBM PIM with token-based dataflow; the strongest
  // electronic baseline in the paper's comparison.
  PlatformSpec s{"TransPIM", 20.0e12, 1024e9, 50.0, 0.25, 0.35, 0.10};
  s.transformer_overhead_s = 50e-6;
  s.gnn_overhead_s = 100e-6;
  return PlatformModel(s);
}

PlatformModel fpga_acc1() {
  // SOCC'20 MHA+FF accelerator (Xilinx VU13P): ~1 TOPS effective, 25 W.
  PlatformSpec s{"FPGA_Acc1", 1.5e12, 77e9, 25.0, 0.30, 0.70, 0.15};
  s.transformer_overhead_s = 100e-6;
  s.gnn_overhead_s = 200e-6;
  return PlatformModel(s);
}

PlatformModel vaqf() {
  // VAQF (low-bit ViT on FPGA): ~2.5 TOPS equivalent, 20 W.
  PlatformSpec s{"VAQF", 2.5e12, 77e9, 20.0, 0.30, 0.70, 0.15};
  s.transformer_overhead_s = 100e-6;
  s.gnn_overhead_s = 200e-6;
  return PlatformModel(s);
}

PlatformModel fpga_acc2() {
  // ICCAD'21 co-optimised transformer framework (Alveo U200): ~3 TOPS, 45 W.
  PlatformSpec s{"FPGA_Acc2", 3.0e12, 77e9, 45.0, 0.30, 0.70, 0.15};
  s.transformer_overhead_s = 100e-6;
  s.gnn_overhead_s = 200e-6;
  return PlatformModel(s);
}

std::vector<PlatformModel> llm_baselines() {
  return {xeon_cpu(), v100_gpu(), tpu_v2(),   transpim(),
          fpga_acc1(), vaqf(),    fpga_acc2()};
}

// ---------------------------------------------------------------------------
// GNN comparison set (paper Figs. 10-11).  Citation graphs are tiny, so every
// electronic platform is dominated by per-layer dispatch and irregular-gather
// inefficiency — consistent with the measured GCN latencies (hundreds of
// microseconds to milliseconds) reported by the cited accelerator papers.
// ---------------------------------------------------------------------------

PlatformModel a100_gpu() {
  PlatformSpec s{"A100 GPU", 624e12, 1555e9, 400.0, 0.35, 0.08, 0.002};
  s.transformer_overhead_s = 250e-6;
  s.gnn_overhead_s = 1e-3;
  return PlatformModel(s);
}

PlatformModel tpu_v4() {
  PlatformSpec s{"TPU v4", 275e12, 1200e9, 192.0, 0.30, 0.06, 0.004};
  s.transformer_overhead_s = 400e-6;
  s.gnn_overhead_s = 1.5e-3;
  return PlatformModel(s);
}

PlatformModel grip() {
  // GRIP (IEEE TC'22): dedicated GNN pipeline, ~5 W.
  PlatformSpec s{"GRIP", 1.0e12, 128e9, 5.0, 0.25, 0.50, 0.40};
  s.gnn_overhead_s = 60e-6;
  return PlatformModel(s);
}

PlatformModel hygcn() {
  // HyGCN (HPCA'20): hybrid aggregation/combination engines, 6.7 W.
  PlatformSpec s{"HyGCN", 8.0e12, 256e9, 6.7, 0.25, 0.50, 0.06};
  s.gnn_overhead_s = 80e-6;
  return PlatformModel(s);
}

PlatformModel engn() {
  // EnGN (arXiv'19): clustered PEs with ring-edge-reduce dataflow, 10 W.
  PlatformSpec s{"EnGN", 6.0e12, 256e9, 10.0, 0.25, 0.50, 0.06};
  s.gnn_overhead_s = 80e-6;
  return PlatformModel(s);
}

PlatformModel hw_acc() {
  // DAC'19 GNN accelerator (Auten et al.): ~3 W prototype.
  PlatformSpec s{"HW_ACC", 0.75e12, 64e9, 3.0, 0.25, 0.50, 0.25};
  s.gnn_overhead_s = 100e-6;
  return PlatformModel(s);
}

PlatformModel regnn() {
  // ReGNN (DAC'22): ReRAM PIM for general GNNs; best electronic baseline.
  // The per-inference overhead covers ReRAM crossbar programming setup.
  PlatformSpec s{"ReGNN", 18.0e12, 512e9, 12.0, 0.20, 0.55, 0.10};
  s.gnn_overhead_s = 130e-6;
  return PlatformModel(s);
}

PlatformModel regraphx() {
  // ReGraphX (DATE'21): 3D ReRAM + NoC, training-oriented, 18 W.
  PlatformSpec s{"ReGraphX", 14.0e12, 512e9, 18.0, 0.20, 0.55, 0.08};
  s.gnn_overhead_s = 80e-6;
  return PlatformModel(s);
}

std::vector<PlatformModel> gnn_baselines() {
  return {grip(),  hygcn(),    engn(),  hw_acc(), regnn(),
          regraphx(), tpu_v4(), xeon_cpu(), a100_gpu()};
}

}  // namespace lumos::baselines
