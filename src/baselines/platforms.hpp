// Electronic comparison platforms (paper Section VI).
//
// The paper compares TRON against Tesla V100-SXM2, TPU v2, Intel Xeon,
// TransPIM [10], FPGA_Acc1 [13], VAQF [33], and FPGA_Acc2 [14]; and GHOST
// against GRIP [19], HyGCN [18], EnGN [17], HW_ACC [16], ReGNN [20],
// ReGraphX [21], TPU v4, Intel Xeon, and NVIDIA A100.  Exactly as the paper
// does, we "utilize reported power, latency, and energy values for the chosen
// accelerators" — each platform is a roofline-style analytic model whose
// operating point (effective int8 throughput at a given utilisation, memory
// bandwidth, board power) comes from the published datasheet/paper numbers.
//
// `estimate()` produces the same PerfReport the photonic accelerators emit,
// so the figure benches can tabulate EPB and GOPS uniformly.
#pragma once

#include <string>
#include <vector>

#include "common/perf.hpp"
#include "gnn/models.hpp"
#include "graph/generators.hpp"
#include "nn/transformer.hpp"

namespace lumos::baselines {

// Which workload family a utilisation figure applies to.  Dense transformer
// kernels utilise wide units well; sparse GNN aggregation does not.
enum class WorkloadClass { kTransformer, kGnn };

struct PlatformSpec {
  std::string name;
  double peak_ops_per_s = 0.0;        // int8-equivalent peak
  double memory_bandwidth_bps = 0.0;  // bytes/s, peak
  double board_power_w = 0.0;         // TDP / reported board power
  double idle_power_fraction = 0.35;  // fraction of TDP drawn regardless
  double transformer_utilization = 0.10;  // fraction of peak on dense attention
  double gnn_utilization = 0.03;          // fraction of peak on sparse aggregation
  // Fraction of peak bandwidth sustained on streaming (dense) vs gather
  // (sparse, DRAM-row-thrashing) access patterns.
  double streaming_bw_efficiency = 0.75;
  double random_bw_efficiency = 0.30;
  // Per-inference fixed cost (kernel launches, graph preprocessing, host
  // round-trips) — dominant on small graphs, as every measured GNN study
  // shows for citation networks.
  double transformer_overhead_s = 0.0;
  double gnn_overhead_s = 0.0;
  int bits = 8;
};

class PlatformModel {
 public:
  explicit PlatformModel(PlatformSpec spec);

  // Latency/energy for a workload of `op_count` operations touching
  // `bytes_moved` of memory, under `cls` utilisation.
  [[nodiscard]] PerfReport estimate(const std::string& workload, std::size_t op_count,
                                    double bytes_moved, WorkloadClass cls) const;

  // Transformer inference: ops from the model config; bytes = parameters +
  // activations streamed per pass.
  [[nodiscard]] PerfReport estimate_transformer(const nn::TransformerConfig& model) const;

  // GNN inference: ops from the model/dataset; bytes = features re-fetched
  // per edge (electronic platforms suffer the irregular access pattern) +
  // weights.
  [[nodiscard]] PerfReport estimate_gnn(const gnn::GnnModelConfig& model,
                                        const graph::GraphDataset& dataset) const;

  [[nodiscard]] const PlatformSpec& spec() const noexcept { return spec_; }

 private:
  PlatformSpec spec_;
};

// ---- LLM comparison set (paper Figs. 8-9) ----------------------------------
[[nodiscard]] PlatformModel xeon_cpu();
[[nodiscard]] PlatformModel v100_gpu();
[[nodiscard]] PlatformModel tpu_v2();
[[nodiscard]] PlatformModel transpim();
[[nodiscard]] PlatformModel fpga_acc1();
[[nodiscard]] PlatformModel vaqf();
[[nodiscard]] PlatformModel fpga_acc2();
[[nodiscard]] std::vector<PlatformModel> llm_baselines();

// ---- GNN comparison set (paper Figs. 10-11) ---------------------------------
[[nodiscard]] PlatformModel a100_gpu();
[[nodiscard]] PlatformModel tpu_v4();
[[nodiscard]] PlatformModel grip();
[[nodiscard]] PlatformModel hygcn();
[[nodiscard]] PlatformModel engn();
[[nodiscard]] PlatformModel hw_acc();
[[nodiscard]] PlatformModel regnn();
[[nodiscard]] PlatformModel regraphx();
[[nodiscard]] std::vector<PlatformModel> gnn_baselines();

}  // namespace lumos::baselines
