// Synthetic graph generators and the citation-network dataset stand-ins.
//
// The paper evaluates GHOST on standard GNN datasets; we cannot ship the real
// label/feature files, so each dataset is reproduced as a synthetic graph
// with the published node count, edge count, feature dimension, and class
// count (accelerator performance depends on those dimensions and on degree
// structure, not on label semantics — see DESIGN.md substitution table).
// RMAT provides power-law graphs for scaling sweeps beyond the fixed
// datasets.
#pragma once

#include <string>

#include "common/rng.hpp"
#include "graph/csr.hpp"

namespace lumos::graph {

// A GNN workload: topology plus input/output dimensionality.
struct GraphDataset {
  std::string name;
  CsrGraph graph;
  std::size_t feature_dim = 0;
  std::size_t class_count = 0;
};

// Erdős–Rényi G(n, m): `edge_count` distinct undirected edges.
[[nodiscard]] CsrGraph erdos_renyi(std::size_t node_count, std::size_t edge_count,
                                   std::uint64_t seed);

// RMAT power-law generator (Chakrabarti et al.) with partition probabilities
// (a, b, c, d = 1-a-b-c); undirected output.
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
};
[[nodiscard]] CsrGraph rmat(std::size_t scale, std::size_t edges_per_node, RmatParams params,
                            std::uint64_t seed);

// Citation-network stand-ins with the published dimensions:
//   Cora:     2708 nodes,  5429 undirected edges, 1433 features,  7 classes
//   Citeseer: 3327 nodes,  4732 undirected edges, 3703 features,  6 classes
//   Pubmed:  19717 nodes, 44338 undirected edges,  500 features,  3 classes
[[nodiscard]] GraphDataset synthetic_cora(std::uint64_t seed = 0xC0DA);
[[nodiscard]] GraphDataset synthetic_citeseer(std::uint64_t seed = 0xC17E);
[[nodiscard]] GraphDataset synthetic_pubmed(std::uint64_t seed = 0x9B3D);

// Larger-scale stand-in with the ogbn-arxiv dimensions (169343 nodes,
// 1166243 directed edges, 128 features, 40 classes) for scaling studies
// beyond the citation trio; generated with RMAT-like skew.
[[nodiscard]] GraphDataset synthetic_arxiv(std::uint64_t seed = 0xA58);

// Small dataset for functional (noise-path) validation.
[[nodiscard]] GraphDataset tiny_dataset(std::uint64_t seed = 42);

// The evaluation suite used by the GNN figures.
[[nodiscard]] std::vector<GraphDataset> gnn_dataset_zoo();

}  // namespace lumos::graph
