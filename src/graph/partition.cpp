#include "graph/partition.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace lumos::graph {

std::size_t PartitionSchedule::covered_edges() const noexcept {
  std::size_t total = 0;
  for (const PartitionTile& t : tiles) total += t.edge_count;
  return total;
}

double PartitionSchedule::refetch_factor() const noexcept {
  if (input_block_count == 0) return 0.0;
  return static_cast<double>(tiles.size()) / static_cast<double>(input_block_count);
}

PartitionSchedule partition(const CsrGraph& graph, const PartitionConfig& config) {
  LUMOS_EXPECTS(config.lane_count >= 1);
  LUMOS_EXPECTS(config.input_block_size >= 1);
  const std::size_t n = graph.node_count();
  PartitionSchedule s;
  s.config = config;
  s.output_block_count = (n + config.lane_count - 1) / config.lane_count;
  s.input_block_count = (n + config.input_block_size - 1) / config.input_block_size;

  // The output block index v / lane_count is monotone in v, so one sweep over
  // the vertices visits output blocks in order.  Edges of the current output
  // block accumulate into a dense per-input-block counter (plus a touched
  // list for sparse reset); each finished block flushes its occupied input
  // blocks in ascending order, yielding the same (ob, ib)-ordered tiles as
  // the reference map-based tiling without any per-edge container work.
  std::vector<std::size_t> ib_edges(s.input_block_count, 0);
  std::vector<std::size_t> touched;
  const auto flush = [&](std::size_t ob) {
    std::sort(touched.begin(), touched.end());
    for (const std::size_t ib : touched) {
      s.tiles.push_back({ob, ib, ib_edges[ib]});
      ib_edges[ib] = 0;
    }
    touched.clear();
  };
  // The per-edge input-block index is the hot operation; when the block size
  // is a power of two (every shipped configuration) the divide becomes a
  // shift.
  const std::size_t bs = config.input_block_size;
  const bool pow2 = (bs & (bs - 1)) == 0;
  std::size_t shift = 0;
  while (pow2 && (std::size_t{1} << shift) < bs) ++shift;
  std::size_t current_ob = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t ob = v / config.lane_count;
    if (ob != current_ob) {
      flush(current_ob);
      current_ob = ob;
    }
    for (const NodeId u : graph.neighbors(static_cast<NodeId>(v))) {
      const std::size_t ib = pow2 ? u >> shift : u / bs;
      if (ib_edges[ib] == 0) touched.push_back(ib);
      ++ib_edges[ib];
    }
  }
  if (n > 0) flush(current_ob);
  LUMOS_ENSURES(s.covered_edges() == graph.edge_count());
  return s;
}

PartitionSchedule partition_reference(const CsrGraph& graph, const PartitionConfig& config) {
  LUMOS_EXPECTS(config.lane_count >= 1);
  LUMOS_EXPECTS(config.input_block_size >= 1);
  const std::size_t n = graph.node_count();
  PartitionSchedule s;
  s.config = config;
  s.output_block_count = (n + config.lane_count - 1) / config.lane_count;
  s.input_block_count = (n + config.input_block_size - 1) / config.input_block_size;

  // Count edges per (output block, input block) pair.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> tile_edges;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t ob = v / config.lane_count;
    for (const NodeId u : graph.neighbors(static_cast<NodeId>(v))) {
      const std::size_t ib = u / config.input_block_size;
      ++tile_edges[{ob, ib}];
    }
  }
  s.tiles.reserve(tile_edges.size());
  for (const auto& [key, count] : tile_edges) {
    s.tiles.push_back({key.first, key.second, count});
  }
  LUMOS_ENSURES(s.covered_edges() == graph.edge_count());
  return s;
}

CsrGraph sample_neighbors(const CsrGraph& graph, std::size_t max_degree, std::uint64_t seed) {
  LUMOS_EXPECTS(max_degree >= 1);
  lumos::Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(graph.edge_count());
  std::vector<NodeId> pool;
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    const auto nbrs = graph.neighbors(static_cast<NodeId>(v));
    if (nbrs.size() <= max_degree) {
      for (const NodeId u : nbrs) edges.push_back({static_cast<NodeId>(v), u});
      continue;
    }
    // Uniform sample without replacement via partial Fisher-Yates.
    pool.assign(nbrs.begin(), nbrs.end());
    for (std::size_t i = 0; i < max_degree; ++i) {
      const std::size_t j =
          i + rng.next_below(static_cast<std::uint32_t>(pool.size() - i));
      std::swap(pool[i], pool[j]);
      edges.push_back({static_cast<NodeId>(v), pool[i]});
    }
  }
  // Directed semantics: sampling is per destination vertex, so the result is
  // not re-symmetrised (u may keep v without v keeping u), as in GraphSAGE.
  return CsrGraph(graph.node_count(), std::move(edges), /*symmetrize=*/false);
}

double lane_imbalance(const CsrGraph& graph, std::size_t lane_count, bool degree_sorted) {
  LUMOS_EXPECTS(lane_count >= 1);
  const std::size_t n = graph.node_count();
  if (n == 0) return 1.0;

  std::vector<std::size_t> order(n);
  if (degree_sorted) {
    // Longest-processing-time heuristic: place heavy vertices first so
    // round-robin spreads them across lanes.  Counting sort on the degree
    // (descending): the greedy assignment below depends only on item weights,
    // so any order among equal-degree vertices yields the same lane loads —
    // and this runs in O(V + max_degree) instead of O(V log V).
    const std::size_t max_deg = graph.max_degree();
    std::vector<std::size_t> offset(max_deg + 2, 0);
    for (std::size_t v = 0; v < n; ++v) {
      ++offset[max_deg - graph.degree(static_cast<NodeId>(v)) + 1];
    }
    for (std::size_t d = 1; d < offset.size(); ++d) offset[d] += offset[d - 1];
    for (std::size_t v = 0; v < n; ++v) {
      order[offset[max_deg - graph.degree(static_cast<NodeId>(v))]++] = v;
    }
  } else {
    std::iota(order.begin(), order.end(), 0);
  }

  std::vector<std::size_t> lane_work(lane_count, 0);
  if (degree_sorted) {
    // Greedy: next vertex to the least-loaded lane.
    for (const std::size_t v : order) {
      auto it = std::min_element(lane_work.begin(), lane_work.end());
      *it += graph.degree(static_cast<NodeId>(v)) + 1;  // +1: combine work per vertex
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      lane_work[i % lane_count] += graph.degree(static_cast<NodeId>(order[i])) + 1;
    }
  }
  const auto busiest = static_cast<double>(*std::max_element(lane_work.begin(), lane_work.end()));
  const double total = static_cast<double>(
      std::accumulate(lane_work.begin(), lane_work.end(), std::size_t{0}));
  const double average = total / static_cast<double>(lane_count);
  return average > 0.0 ? busiest / average : 1.0;
}

}  // namespace lumos::graph
