// Compressed-sparse-row graph container and degree statistics.
//
// GHOST's workloads are graphs; all adjacency walks in the accelerator
// models, the partitioner, and the GNN reference executions go through this
// structure.  Graphs are stored directed; undirected inputs are symmetrised
// at construction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lumos::graph {

using NodeId = std::uint32_t;

struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
};

// One entry of the degree histogram: `count` vertices have exactly `degree`
// neighbours.
struct DegreeBucket {
  std::size_t degree = 0;
  std::size_t count = 0;
};

class CsrGraph {
 public:
  CsrGraph() = default;

  // Builds from an edge list over `node_count` nodes.  Self-loops are kept,
  // exact duplicate edges are merged.  When `symmetrize` is true, the reverse
  // of every edge is inserted as well (undirected semantics).
  CsrGraph(std::size_t node_count, std::vector<Edge> edges, bool symmetrize);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return row_ptr_.empty() ? 0 : row_ptr_.size() - 1;
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return col_idx_.size(); }

  // In-neighbours = out-neighbours after symmetrisation; `neighbors(v)` is
  // the adjacency list of `v`.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return {col_idx_.data() + row_ptr_[v], row_ptr_[v + 1] - row_ptr_[v]};
  }
  [[nodiscard]] std::size_t degree(NodeId v) const noexcept {
    return row_ptr_[v + 1] - row_ptr_[v];
  }

  [[nodiscard]] std::span<const std::size_t> row_ptr() const noexcept { return row_ptr_; }
  [[nodiscard]] std::span<const NodeId> col_idx() const noexcept { return col_idx_; }

  [[nodiscard]] double average_degree() const noexcept;
  [[nodiscard]] std::size_t max_degree() const noexcept;
  // Fraction of the dense adjacency matrix that is occupied.
  [[nodiscard]] double density() const noexcept;

  // Degree histogram in ascending-degree order, one bucket per distinct
  // degree, precomputed once at construction.  Any per-node cost model whose
  // contribution depends only on the degree can be evaluated per bucket,
  // collapsing O(V) loops to O(distinct degrees) — real graphs (power-law or
  // otherwise) have far fewer distinct degrees than vertices.
  [[nodiscard]] std::span<const DegreeBucket> degree_histogram() const noexcept {
    return degree_histogram_;
  }

 private:
  std::vector<std::size_t> row_ptr_;
  std::vector<NodeId> col_idx_;
  std::vector<DegreeBucket> degree_histogram_;
};

}  // namespace lumos::graph
