#include "graph/csr.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace lumos::graph {

CsrGraph::CsrGraph(std::size_t node_count, std::vector<Edge> edges, bool symmetrize) {
  LUMOS_EXPECTS(node_count > 0);
  if (symmetrize) {
    const std::size_t original = edges.size();
    edges.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      if (edges[i].src != edges[i].dst) edges.push_back({edges[i].dst, edges[i].src});
    }
  }
  for (const Edge& e : edges) {
    LUMOS_EXPECTS_MSG(e.src < node_count && e.dst < node_count, "edge endpoint out of range");
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.src == b.src && a.dst == b.dst;
                          }),
              edges.end());

  row_ptr_.assign(node_count + 1, 0);
  col_idx_.resize(edges.size());
  for (const Edge& e : edges) ++row_ptr_[e.src + 1];
  for (std::size_t v = 0; v < node_count; ++v) row_ptr_[v + 1] += row_ptr_[v];
  for (std::size_t i = 0; i < edges.size(); ++i) col_idx_[i] = edges[i].dst;

  // Degree histogram (ascending, one bucket per distinct degree): bucket the
  // degrees, then compress the occupied counts.
  std::vector<std::size_t> counts(max_degree() + 1, 0);
  for (std::size_t v = 0; v < node_count; ++v) ++counts[degree(static_cast<NodeId>(v))];
  for (std::size_t d = 0; d < counts.size(); ++d) {
    if (counts[d] > 0) degree_histogram_.push_back({d, counts[d]});
  }
}

double CsrGraph::average_degree() const noexcept {
  const std::size_t n = node_count();
  if (n == 0) return 0.0;
  return static_cast<double>(edge_count()) / static_cast<double>(n);
}

std::size_t CsrGraph::max_degree() const noexcept {
  if (!degree_histogram_.empty()) return degree_histogram_.back().degree;
  std::size_t mx = 0;
  for (std::size_t v = 0; v < node_count(); ++v) mx = std::max(mx, degree(static_cast<NodeId>(v)));
  return mx;
}

double CsrGraph::density() const noexcept {
  const double n = static_cast<double>(node_count());
  if (n == 0.0) return 0.0;
  return static_cast<double>(edge_count()) / (n * n);
}

}  // namespace lumos::graph
