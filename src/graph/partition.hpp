// Buffer-and-partition scheduling for GHOST's aggregate phase.
//
// Paper Section V.D: "this technique dictates splitting the input graph into
// blocks of N and V where the aggregate block then is composed of N edge
// control units, V gather units, and V reduce units.  Each execution lane is
// assigned one output node per cycle while N input nodes are fetched by the
// edge control units."
//
// The partitioner tiles the vertex set into output blocks of V (one vertex
// per execution lane) and input blocks of N (vertices resident in the
// on-chip input buffer).  For every (output block, input block) pair that
// contains at least one edge, the schedule records how many edges it covers;
// the accelerator model turns those tiles into buffer traffic and reduce-unit
// work.  The re-fetch factor — how many times the average input vertex is
// re-loaded — is the quantity the optimisation suppresses.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace lumos::graph {

struct PartitionConfig {
  std::size_t lane_count = 8;          // V: output vertices processed per step
  std::size_t input_block_size = 512;  // N: input vertices buffered on-chip
};

// One schedulable tile: the edges between an output block and an input block.
struct PartitionTile {
  std::size_t output_block = 0;
  std::size_t input_block = 0;
  std::size_t edge_count = 0;
};

struct PartitionSchedule {
  PartitionConfig config;
  std::size_t output_block_count = 0;
  std::size_t input_block_count = 0;
  std::vector<PartitionTile> tiles;  // ordered by output block, then input block

  // Total edges covered (must equal the graph's edge count).
  [[nodiscard]] std::size_t covered_edges() const noexcept;
  // Number of input-block loads the schedule performs.
  [[nodiscard]] std::size_t input_block_loads() const noexcept { return tiles.size(); }
  // Average number of times each input block is (re)loaded across output
  // blocks; 1.0 means perfect reuse.
  [[nodiscard]] double refetch_factor() const noexcept;
};

// Tiles `graph` under `config`.  Vertices are assigned to blocks by index
// (contiguous ranges), matching the paper's streaming layout.  Runs in
// O(E + blocks) by accumulating per-input-block edge counts while sweeping
// output blocks in order (output block index is monotone in the vertex id).
[[nodiscard]] PartitionSchedule partition(const CsrGraph& graph, const PartitionConfig& config);

// Reference implementation of `partition` (the original map-based tiling).
// Produces an identical schedule; retained for parity tests and as the
// pre-optimisation baseline in bench_kernels.
[[nodiscard]] PartitionSchedule partition_reference(const CsrGraph& graph,
                                                    const PartitionConfig& config);

// Workload-balance statistic for lane assignment: the ratio of the busiest
// lane's edge work to the average over lanes, for vertex->lane round-robin
// (lower is better; 1.0 is perfectly balanced).  GHOST's workload balancing
// sorts vertices by degree before assignment; `degree_sorted` selects that.
[[nodiscard]] double lane_imbalance(const CsrGraph& graph, std::size_t lane_count,
                                    bool degree_sorted);

// Neighbour sampling (paper Fig. 2, stage 1: the input graph "is usually
// preprocessed offline for purposes such as sampling the graph").  Keeps at
// most `max_degree` uniformly chosen neighbours per vertex (GraphSAGE-style
// fan-out capping), bounding the reduce-unit work per output vertex.
[[nodiscard]] CsrGraph sample_neighbors(const CsrGraph& graph, std::size_t max_degree,
                                        std::uint64_t seed);

}  // namespace lumos::graph
