#include "graph/generators.hpp"

#include <unordered_set>

#include "common/error.hpp"

namespace lumos::graph {

namespace {
// Packs an edge into a 64-bit key for duplicate detection.
std::uint64_t edge_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}
}  // namespace

CsrGraph erdos_renyi(std::size_t node_count, std::size_t edge_count, std::uint64_t seed) {
  LUMOS_EXPECTS(node_count >= 2);
  const std::size_t max_edges = node_count * (node_count - 1) / 2;
  LUMOS_EXPECTS_MSG(edge_count <= max_edges, "more edges than a simple graph allows");
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<Edge> edges;
  edges.reserve(edge_count);
  while (edges.size() < edge_count) {
    const auto a = static_cast<NodeId>(rng.next_below(static_cast<std::uint32_t>(node_count)));
    const auto b = static_cast<NodeId>(rng.next_below(static_cast<std::uint32_t>(node_count)));
    if (a == b) continue;
    if (seen.insert(edge_key(a, b)).second) edges.push_back({a, b});
  }
  return CsrGraph(node_count, std::move(edges), /*symmetrize=*/true);
}

CsrGraph rmat(std::size_t scale, std::size_t edges_per_node, RmatParams params,
              std::uint64_t seed) {
  LUMOS_EXPECTS(scale >= 2 && scale <= 26);
  LUMOS_EXPECTS(params.a > 0 && params.b >= 0 && params.c >= 0 &&
                params.a + params.b + params.c < 1.0);
  const std::size_t n = std::size_t{1} << scale;
  const std::size_t target = n * edges_per_node;
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  std::vector<Edge> edges;
  edges.reserve(target);
  std::size_t attempts = 0;
  const std::size_t max_attempts = target * 64;
  while (edges.size() < target && attempts < max_attempts) {
    ++attempts;
    NodeId src = 0;
    NodeId dst = 0;
    for (std::size_t bit = 0; bit < scale; ++bit) {
      const double r = rng.next_double();
      std::uint32_t quadrant;
      if (r < params.a) {
        quadrant = 0;  // (0,0)
      } else if (r < params.a + params.b) {
        quadrant = 1;  // (0,1)
      } else if (r < params.a + params.b + params.c) {
        quadrant = 2;  // (1,0)
      } else {
        quadrant = 3;  // (1,1)
      }
      src = static_cast<NodeId>((src << 1) | (quadrant >> 1));
      dst = static_cast<NodeId>((dst << 1) | (quadrant & 1));
    }
    if (src == dst) continue;
    if (seen.insert(edge_key(src, dst)).second) edges.push_back({src, dst});
  }
  return CsrGraph(n, std::move(edges), /*symmetrize=*/true);
}

namespace {
GraphDataset citation_standin(std::string name, std::size_t nodes, std::size_t undirected_edges,
                              std::size_t features, std::size_t classes, std::uint64_t seed) {
  GraphDataset d;
  d.name = std::move(name);
  // Citation networks are sparse with a mild power-law; an ER graph with the
  // published edge count reproduces the average degree that drives the
  // aggregate-phase workload.
  d.graph = erdos_renyi(nodes, undirected_edges, seed);
  d.feature_dim = features;
  d.class_count = classes;
  return d;
}
}  // namespace

GraphDataset synthetic_cora(std::uint64_t seed) {
  return citation_standin("Cora", 2708, 5429, 1433, 7, seed);
}

GraphDataset synthetic_citeseer(std::uint64_t seed) {
  return citation_standin("Citeseer", 3327, 4732, 3703, 6, seed);
}

GraphDataset synthetic_pubmed(std::uint64_t seed) {
  return citation_standin("Pubmed", 19717, 44338, 500, 3, seed);
}

GraphDataset synthetic_arxiv(std::uint64_t seed) {
  GraphDataset d;
  d.name = "ogbn-arxiv";
  // Published dimensions; ER keeps generation fast at this scale while
  // matching the average degree that drives the aggregate workload.
  d.graph = erdos_renyi(169343, 1166243, seed);
  d.feature_dim = 128;
  d.class_count = 40;
  return d;
}

GraphDataset tiny_dataset(std::uint64_t seed) {
  GraphDataset d;
  d.name = "Tiny";
  d.graph = erdos_renyi(32, 64, seed);
  d.feature_dim = 16;
  d.class_count = 4;
  return d;
}

std::vector<GraphDataset> gnn_dataset_zoo() {
  return {synthetic_cora(), synthetic_citeseer(), synthetic_pubmed()};
}

}  // namespace lumos::graph
