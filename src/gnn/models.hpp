// GNN model descriptions, exact reference executions, and per-phase op
// accounting (paper Section III, Fig. 2: aggregate -> combine -> update).
//
// Supported model families (paper Section III): GCN, GraphSAGE, GIN (the
// GCN-derived isomorphism network), and GAT (attention-based).  Each follows
// the aggregate/combine/update template with a different reduction and
// combine rule:
//   GCN:       h'_v = act( W * sum_{u in N(v) ∪ {v}} h_u / norm(u,v) )
//   GraphSAGE: h'_v = act( W * [h_v || mean_{u in N(v)} h_u] )
//   GIN:       h'_v = act( MLP( (1+eps) h_v + sum_{u in N(v)} h_u ) )
//   GAT:       h'_v = act( sum_{u} alpha_vu W h_u ),  alpha = softmax of a
//              learned pairwise score (extra per-edge MACs + per-node softmax)
#pragma once

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "nn/tensor.hpp"

namespace lumos::gnn {

enum class GnnKind { kGcn, kGraphSage, kGin, kGat };

[[nodiscard]] const char* kind_name(GnnKind kind) noexcept;

enum class Reduction { kSum, kMean, kMax };

struct GnnLayerConfig {
  GnnKind kind = GnnKind::kGcn;
  std::size_t in_dim = 0;
  std::size_t out_dim = 0;
  Reduction reduction = Reduction::kSum;
  std::size_t gat_heads = 1;  // GAT only
};

struct GnnModelConfig {
  std::string name;
  GnnKind kind = GnnKind::kGcn;
  std::size_t hidden_dim = 16;
  std::size_t layer_count = 2;

  // Expands to concrete per-layer configs for `dataset` (input -> hidden ->
  // ... -> classes).
  [[nodiscard]] std::vector<GnnLayerConfig> layers_for(
      const graph::GraphDataset& dataset) const;
};

// The four models evaluated in the GNN figures.
[[nodiscard]] std::vector<GnnModelConfig> gnn_model_zoo();
[[nodiscard]] GnnModelConfig gcn_model();
[[nodiscard]] GnnModelConfig graphsage_model();
[[nodiscard]] GnnModelConfig gin_model();
[[nodiscard]] GnnModelConfig gat_model();

// Weights of one layer (combine transform + GAT attention vectors).
struct GnnLayerWeights {
  GnnLayerConfig config;
  nn::Matrix w;            // combine transform (in[x2 for SAGE] x out)
  nn::Matrix gat_a_src;    // GAT: per-head source score vector (out_dim x heads)
  nn::Matrix gat_a_dst;    // GAT: per-head dest score vector
  double gin_eps = 0.0;

  static GnnLayerWeights random(const GnnLayerConfig& config, std::uint64_t seed);
};

// Per-phase operation counts of one layer on one graph (the unit GHOST's
// performance model consumes).
struct GnnLayerOps {
  std::size_t aggregate_ops = 0;  // per-edge reductions (adds/compares)
  std::size_t combine_macs = 0;   // dense transform MACs
  std::size_t update_ops = 0;     // element-wise activation ops
  std::size_t attention_macs = 0; // GAT pairwise-score MACs
  std::size_t attention_softmax_elems = 0;  // GAT per-edge softmax elements

  [[nodiscard]] std::size_t total_ops() const noexcept {
    return aggregate_ops + 2 * combine_macs + update_ops + 2 * attention_macs +
           attention_softmax_elems;
  }
};

[[nodiscard]] GnnLayerOps count_layer_ops(const GnnLayerConfig& config,
                                          const graph::CsrGraph& graph);

// Exact reference forward of one layer: features (node_count x in_dim) ->
// (node_count x out_dim), ReLU update (identity on the final layer is the
// caller's choice via `apply_activation`).
[[nodiscard]] nn::Matrix reference_layer_forward(const GnnLayerWeights& weights,
                                                 const graph::CsrGraph& graph,
                                                 const nn::Matrix& features,
                                                 bool apply_activation = true);

// Full-model forward over `dataset` with deterministic random weights.
struct GnnModelWeights {
  GnnModelConfig config;
  std::vector<GnnLayerWeights> layers;

  static GnnModelWeights random(const GnnModelConfig& config,
                                const graph::GraphDataset& dataset, std::uint64_t seed);
};

[[nodiscard]] nn::Matrix reference_forward(const GnnModelWeights& weights,
                                           const graph::CsrGraph& graph,
                                           const nn::Matrix& features);

// Total op count of a full model pass (the denominator of GOPS/EPB).
[[nodiscard]] std::size_t model_op_count(const GnnModelConfig& config,
                                         const graph::GraphDataset& dataset);

}  // namespace lumos::gnn
