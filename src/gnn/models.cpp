#include "gnn/models.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "nn/ops.hpp"

namespace lumos::gnn {

const char* kind_name(GnnKind kind) noexcept {
  switch (kind) {
    case GnnKind::kGcn:
      return "GCN";
    case GnnKind::kGraphSage:
      return "GraphSAGE";
    case GnnKind::kGin:
      return "GIN";
    case GnnKind::kGat:
      return "GAT";
  }
  return "?";
}

std::vector<GnnLayerConfig> GnnModelConfig::layers_for(const graph::GraphDataset& dataset) const {
  LUMOS_EXPECTS(layer_count >= 1);
  std::vector<GnnLayerConfig> out;
  out.reserve(layer_count);
  std::size_t in = dataset.feature_dim;
  for (std::size_t i = 0; i < layer_count; ++i) {
    GnnLayerConfig l;
    l.kind = kind;
    l.in_dim = in;
    l.out_dim = (i + 1 == layer_count) ? dataset.class_count : hidden_dim;
    l.reduction = kind == GnnKind::kGraphSage ? Reduction::kMean : Reduction::kSum;
    l.gat_heads = kind == GnnKind::kGat ? 4 : 1;
    out.push_back(l);
    in = l.out_dim;
  }
  return out;
}

GnnModelConfig gcn_model() { return {"GCN", GnnKind::kGcn, 16, 2}; }
GnnModelConfig graphsage_model() { return {"GraphSAGE", GnnKind::kGraphSage, 64, 2}; }
GnnModelConfig gin_model() { return {"GIN", GnnKind::kGin, 64, 2}; }
GnnModelConfig gat_model() { return {"GAT", GnnKind::kGat, 64, 2}; }

std::vector<GnnModelConfig> gnn_model_zoo() {
  return {gcn_model(), graphsage_model(), gin_model(), gat_model()};
}

GnnLayerWeights GnnLayerWeights::random(const GnnLayerConfig& config, std::uint64_t seed) {
  LUMOS_EXPECTS(config.in_dim > 0 && config.out_dim > 0);
  Rng rng(seed);
  GnnLayerWeights w;
  w.config = config;
  const std::size_t in = config.kind == GnnKind::kGraphSage ? 2 * config.in_dim : config.in_dim;
  w.w = nn::Matrix(in, config.out_dim);
  w.w.fill_normal(rng, 1.0 / std::sqrt(static_cast<double>(in)));
  if (config.kind == GnnKind::kGat) {
    w.gat_a_src = nn::Matrix(config.out_dim, config.gat_heads);
    w.gat_a_dst = nn::Matrix(config.out_dim, config.gat_heads);
    w.gat_a_src.fill_normal(rng, 1.0 / std::sqrt(static_cast<double>(config.out_dim)));
    w.gat_a_dst.fill_normal(rng, 1.0 / std::sqrt(static_cast<double>(config.out_dim)));
  }
  if (config.kind == GnnKind::kGin) w.gin_eps = 0.1;
  return w;
}

GnnLayerOps count_layer_ops(const GnnLayerConfig& config, const graph::CsrGraph& graph) {
  GnnLayerOps ops;
  const std::size_t v = graph.node_count();
  const std::size_t e = graph.edge_count();
  const std::size_t din = config.in_dim;
  const std::size_t dout = config.out_dim;

  switch (config.kind) {
    case GnnKind::kGcn:
    case GnnKind::kGin:
      // Sum over neighbours (+ self), per feature.
      ops.aggregate_ops = (e + v) * din;
      ops.combine_macs = v * din * dout;
      break;
    case GnnKind::kGraphSage:
      // Mean over neighbours, then concat with self -> 2*din input.
      ops.aggregate_ops = e * din + v * din;  // sums + divides
      ops.combine_macs = v * (2 * din) * dout;
      break;
    case GnnKind::kGat:
      // Transform first (v * din * dout), then per-edge attention scores
      // (2 * dout MACs per edge per head), softmax per edge element, and the
      // weighted aggregation (e * dout).
      ops.combine_macs = v * din * dout;
      ops.attention_macs = e * 2 * dout * config.gat_heads;
      ops.attention_softmax_elems = e * config.gat_heads;
      ops.aggregate_ops = e * dout;
      break;
  }
  ops.update_ops = v * dout;
  return ops;
}

namespace {

// Sum/mean/max aggregation of neighbour features into `out` (v's row).
void reduce_neighbors(const graph::CsrGraph& graph, const nn::Matrix& features,
                      graph::NodeId v, Reduction reduction, std::span<double> out) {
  const auto nbrs = graph.neighbors(v);
  std::fill(out.begin(), out.end(), reduction == Reduction::kMax ? -1e300 : 0.0);
  for (const graph::NodeId u : nbrs) {
    const auto row = features.row(u);
    for (std::size_t c = 0; c < out.size(); ++c) {
      if (reduction == Reduction::kMax) {
        out[c] = std::max(out[c], row[c]);
      } else {
        out[c] += row[c];
      }
    }
  }
  if (nbrs.empty() && reduction == Reduction::kMax) {
    std::fill(out.begin(), out.end(), 0.0);
  }
  if (reduction == Reduction::kMean && !nbrs.empty()) {
    const double inv = 1.0 / static_cast<double>(nbrs.size());
    for (double& x : out) x *= inv;
  }
}

double leaky_relu(double x) noexcept { return x > 0.0 ? x : 0.2 * x; }

}  // namespace

nn::Matrix reference_layer_forward(const GnnLayerWeights& weights, const graph::CsrGraph& graph,
                                   const nn::Matrix& features, bool apply_activation) {
  const GnnLayerConfig& cfg = weights.config;
  LUMOS_EXPECTS(features.rows() == graph.node_count());
  LUMOS_EXPECTS(features.cols() == cfg.in_dim);
  const std::size_t n = graph.node_count();
  nn::Matrix out;

  switch (cfg.kind) {
    case GnnKind::kGcn: {
      // Symmetric-normalised sum including self-loop:
      //   agg_v = sum_{u in N(v) ∪ {v}} h_u / sqrt((d_u+1)(d_v+1)).
      nn::Matrix agg(n, cfg.in_dim);
      for (std::size_t v = 0; v < n; ++v) {
        const auto vd = static_cast<double>(graph.degree(static_cast<graph::NodeId>(v)) + 1);
        auto row = agg.row(v);
        // Self contribution.
        const auto self = features.row(v);
        for (std::size_t c = 0; c < row.size(); ++c) row[c] = self[c] / vd;
        for (const graph::NodeId u : graph.neighbors(static_cast<graph::NodeId>(v))) {
          const auto ud = static_cast<double>(graph.degree(u) + 1);
          const double norm = 1.0 / std::sqrt(vd * ud);
          const auto urow = features.row(u);
          for (std::size_t c = 0; c < row.size(); ++c) row[c] += urow[c] * norm;
        }
      }
      out = agg.matmul(weights.w);
      break;
    }
    case GnnKind::kGraphSage: {
      nn::Matrix concat(n, 2 * cfg.in_dim);
      std::vector<double> mean(cfg.in_dim);
      for (std::size_t v = 0; v < n; ++v) {
        reduce_neighbors(graph, features, static_cast<graph::NodeId>(v), cfg.reduction, mean);
        const auto self = features.row(v);
        auto row = concat.row(v);
        for (std::size_t c = 0; c < cfg.in_dim; ++c) {
          row[c] = self[c];
          row[cfg.in_dim + c] = mean[c];
        }
      }
      out = concat.matmul(weights.w);
      break;
    }
    case GnnKind::kGin: {
      nn::Matrix agg(n, cfg.in_dim);
      std::vector<double> sum(cfg.in_dim);
      for (std::size_t v = 0; v < n; ++v) {
        reduce_neighbors(graph, features, static_cast<graph::NodeId>(v), Reduction::kSum, sum);
        const auto self = features.row(v);
        auto row = agg.row(v);
        for (std::size_t c = 0; c < cfg.in_dim; ++c) {
          row[c] = (1.0 + weights.gin_eps) * self[c] + sum[c];
        }
      }
      out = agg.matmul(weights.w);
      break;
    }
    case GnnKind::kGat: {
      // Single-head-equivalent evaluation per head, averaged (standard for a
      // final GAT layer; keeps output dim = out_dim).
      const nn::Matrix transformed = features.matmul(weights.w);  // n x out_dim
      out = nn::Matrix(n, cfg.out_dim);
      // Per-node score halves for every head in two dense products (n x
      // heads each): e_vu = LeakyReLU(a_src.h_v + a_dst.h_u) then only needs
      // per-edge lookups instead of per-edge dot products.
      const nn::Matrix src_scores = transformed.matmul(weights.gat_a_src);
      const nn::Matrix dst_scores = transformed.matmul(weights.gat_a_dst);
      std::vector<double> scores;
      for (std::size_t head = 0; head < cfg.gat_heads; ++head) {
        for (std::size_t v = 0; v < n; ++v) {
          const auto nbrs = graph.neighbors(static_cast<graph::NodeId>(v));
          scores.assign(nbrs.size() + 1, 0.0);
          const double src_score = src_scores(v, head);
          const auto score_of = [&](graph::NodeId u) {
            return leaky_relu(src_score + dst_scores(u, head));
          };
          scores[0] = score_of(static_cast<graph::NodeId>(v));
          for (std::size_t i = 0; i < nbrs.size(); ++i) scores[i + 1] = score_of(nbrs[i]);
          nn::softmax_inplace(scores);
          auto row = out.row(v);
          const double head_w = 1.0 / static_cast<double>(cfg.gat_heads);
          for (std::size_t c = 0; c < cfg.out_dim; ++c) {
            row[c] += head_w * scores[0] * transformed(v, c);
          }
          for (std::size_t i = 0; i < nbrs.size(); ++i) {
            for (std::size_t c = 0; c < cfg.out_dim; ++c) {
              row[c] += head_w * scores[i + 1] * transformed(nbrs[i], c);
            }
          }
        }
      }
      break;
    }
  }

  if (apply_activation) nn::relu(out);
  return out;
}

GnnModelWeights GnnModelWeights::random(const GnnModelConfig& config,
                                        const graph::GraphDataset& dataset,
                                        std::uint64_t seed) {
  GnnModelWeights w;
  w.config = config;
  std::uint64_t layer_seed = seed;
  for (const GnnLayerConfig& l : config.layers_for(dataset)) {
    w.layers.push_back(GnnLayerWeights::random(l, layer_seed++));
  }
  return w;
}

nn::Matrix reference_forward(const GnnModelWeights& weights, const graph::CsrGraph& graph,
                             const nn::Matrix& features) {
  nn::Matrix h = features;
  for (std::size_t i = 0; i < weights.layers.size(); ++i) {
    const bool last = (i + 1 == weights.layers.size());
    h = reference_layer_forward(weights.layers[i], graph, h, /*apply_activation=*/!last);
  }
  return h;
}

std::size_t model_op_count(const GnnModelConfig& config, const graph::GraphDataset& dataset) {
  std::size_t total = 0;
  for (const GnnLayerConfig& l : config.layers_for(dataset)) {
    total += count_layer_ops(l, dataset.graph).total_ops();
  }
  return total;
}

}  // namespace lumos::gnn
