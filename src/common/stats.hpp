// Small numeric helpers: descriptive statistics, sequence generation, and
// geometric means used when summarising speedup/efficiency factors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lumos {

// Online accumulator for mean / variance / extrema (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Arithmetic mean of `values`; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> values) noexcept;

// Geometric mean of strictly positive `values`; 0 for an empty span.
// Used to aggregate speedup factors across workloads, as is conventional.
[[nodiscard]] double geometric_mean(std::span<const double> values);

// Smallest / largest element; 0 for an empty span.
[[nodiscard]] double min_value(std::span<const double> values) noexcept;
[[nodiscard]] double max_value(std::span<const double> values) noexcept;

// `count` points linearly spaced over [lo, hi] inclusive (count >= 2),
// or {lo} when count == 1.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t count);

// `count` points logarithmically spaced over [lo, hi] inclusive (lo, hi > 0).
[[nodiscard]] std::vector<double> logspace(double lo, double hi, std::size_t count);

}  // namespace lumos
