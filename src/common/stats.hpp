// Small numeric helpers: descriptive statistics, sequence generation, and
// geometric means used when summarising speedup/efficiency factors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lumos {

// Online accumulator for mean / variance / extrema (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Arithmetic mean of `values`; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> values) noexcept;

// Geometric mean of strictly positive `values`; 0 for an empty span.
// Used to aggregate speedup factors across workloads, as is conventional.
[[nodiscard]] double geometric_mean(std::span<const double> values);

// Smallest / largest element; 0 for an empty span.
[[nodiscard]] double min_value(std::span<const double> values) noexcept;
[[nodiscard]] double max_value(std::span<const double> values) noexcept;

// `count` points linearly spaced over [lo, hi] inclusive (count >= 2),
// or {lo} when count == 1.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t count);

// `count` points logarithmically spaced over [lo, hi] inclusive (lo, hi > 0).
[[nodiscard]] std::vector<double> logspace(double lo, double hi, std::size_t count);

// Streaming percentile sketch with bounded relative error: values land in
// geometrically spaced buckets (HdrHistogram-style), so `percentile(q)`
// returns a representative within `relative_error` of the true nearest-rank
// sample, in O(1) memory per decade of dynamic range and O(buckets) query
// time — no per-sample storage, no sort.  Deterministic: the estimate is a
// pure function of the multiset of added values (insertion order and thread
// count never matter), so sketched metrics stay bit-reproducible.
//
// Layout: bucket 0 holds values in (0, min_value_hint] (and everything
// non-positive); bucket i >= 1 holds (min_value_hint * b^(i-1),
// min_value_hint * b^i] with b = (1 + relative_error)^2.  A bucket's
// representative is its geometric midpoint, so |representative - v| <=
// relative_error * v for every v in it.  Estimates clamp to the observed
// [min, max], which keeps extreme quantiles exact at the ends.
class HdrHistogram {
 public:
  // `relative_error` in (0, 1); `min_value_hint` (> 0) is the smallest value
  // resolved individually — smaller values collapse into bucket 0 (still
  // counted, bounded only by min_value_hint).  The default hint resolves
  // nanosecond-scale latencies in seconds.
  explicit HdrHistogram(double relative_error = 0.01, double min_value_hint = 1e-9);

  void add(double value) noexcept;
  // Folds `other` (same relative_error and min_value_hint, or throws
  // `InvalidArgument`) into this sketch.
  void merge(const HdrHistogram& other);

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept;  // exact (running sum)
  [[nodiscard]] double relative_error() const noexcept { return relative_error_; }
  // Nearest-rank percentile estimate (q in [0, 1]); 0 when empty.
  [[nodiscard]] double percentile(double q) const;

 private:
  [[nodiscard]] std::size_t bucket_of(double value) const noexcept;

  double relative_error_;
  double min_hint_;
  double inv_log_base_;  // 1 / ln(b), cached for bucket_of
  double log_base_;      // ln(b)
  std::vector<std::size_t> buckets_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace lumos
