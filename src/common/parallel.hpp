// Shared thread pool and deterministic data-parallel loops.
//
// Every dense kernel and row-wise operation in the library parallelises
// through `parallel_for`.  Determinism contract: the range is split into
// chunks whose boundaries depend only on (begin, end, grain) — never on the
// worker count or on scheduling — and each chunk owns a disjoint slice of the
// output.  Chunks may execute in any order on any thread, so results are
// bit-reproducible across runs and across `LUMOS_THREADS` settings as long as
// the body writes only its own slice (which every caller in this library
// does).  Floating-point reductions that must stay ordered are combined
// per-chunk in ascending chunk order by the caller.
#pragma once

#include <cstddef>
#include <functional>

namespace lumos {

// A fixed-size pool of worker threads servicing one parallel loop at a time.
// Loops are cooperative: the calling thread executes chunks alongside the
// workers, so a pool of size 1 (or a nested call from inside a worker) simply
// runs the loop inline.
class ThreadPool {
 public:
  // `thread_count` is the TOTAL parallelism (workers + calling thread);
  // 0 or 1 means fully serial.
  explicit ThreadPool(std::size_t thread_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept;

  // Runs `body(chunk_index)` for every chunk in [0, chunk_count).  Chunks are
  // claimed dynamically (work stealing via an atomic counter); the call
  // returns when all chunks have finished.  The first exception thrown by any
  // chunk is rethrown on the calling thread after the loop drains.
  void run_chunks(std::size_t chunk_count, const std::function<void(std::size_t)>& body);

  // The process-wide pool.  Sized from the LUMOS_THREADS environment variable
  // when set (minimum 1), otherwise from std::thread::hardware_concurrency().
  static ThreadPool& global();

 private:
  struct Impl;
  Impl* impl_;
};

// Splits [begin, end) into chunks of `grain` indices (the last chunk may be
// short) and runs `body(chunk_begin, chunk_end)` for each on the global pool.
// Runs inline when the range fits in one chunk, when the pool is serial, or
// when called from inside another parallel_for (no nested parallelism).
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

// Convenience overload: one index per call (`grain` chunking still applies
// internally with a default grain of 1).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace lumos
