// Physical-unit conversion helpers and decibel math.
//
// The library represents physical quantities as plain `double`s in base SI
// units (watts, joules, seconds, metres, hertz).  Variable names carry the
// unit as a suffix (`power_w`, `latency_s`, `wavelength_m`, ...).  This header
// centralises the conversion constants and the dB/linear conversions that the
// photonic loss-budget code uses throughout.
#pragma once

#include <cmath>

namespace lumos::units {

// ---- SI prefixes (multiply to convert INTO base units) ---------------------
inline constexpr double kTera = 1e12;
inline constexpr double kGiga = 1e9;
inline constexpr double kMega = 1e6;
inline constexpr double kKilo = 1e3;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;
inline constexpr double kFemto = 1e-15;
inline constexpr double kAtto = 1e-18;

// ---- Convenience constructors ----------------------------------------------
[[nodiscard]] constexpr double ghz(double v) { return v * kGiga; }
[[nodiscard]] constexpr double mhz(double v) { return v * kMega; }
[[nodiscard]] constexpr double nm(double v) { return v * kNano; }
[[nodiscard]] constexpr double um(double v) { return v * kMicro; }
[[nodiscard]] constexpr double mm(double v) { return v * kMilli; }
[[nodiscard]] constexpr double ns(double v) { return v * kNano; }
[[nodiscard]] constexpr double ps(double v) { return v * kPico; }
[[nodiscard]] constexpr double us(double v) { return v * kMicro; }
[[nodiscard]] constexpr double ms(double v) { return v * kMilli; }
[[nodiscard]] constexpr double mw(double v) { return v * kMilli; }
[[nodiscard]] constexpr double uw(double v) { return v * kMicro; }
[[nodiscard]] constexpr double pj(double v) { return v * kPico; }
[[nodiscard]] constexpr double fj(double v) { return v * kFemto; }

// ---- Read-out helpers (convert OUT of base units) ---------------------------
[[nodiscard]] constexpr double to_ghz(double hz) { return hz / kGiga; }
[[nodiscard]] constexpr double to_nm(double m) { return m / kNano; }
[[nodiscard]] constexpr double to_ns(double s) { return s / kNano; }
[[nodiscard]] constexpr double to_us(double s) { return s / kMicro; }
[[nodiscard]] constexpr double to_mw(double w) { return w / kMilli; }
[[nodiscard]] constexpr double to_pj(double j) { return j / kPico; }
[[nodiscard]] constexpr double to_fj(double j) { return j / kFemto; }
[[nodiscard]] constexpr double to_gops(double ops_per_s) { return ops_per_s / kGiga; }

// ---- Decibel math ------------------------------------------------------------
// Power ratio <-> dB.  Loss stacks in photonic links are naturally additive in
// dB; detector sensitivities are quoted in dBm.
[[nodiscard]] inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
[[nodiscard]] inline double linear_to_db(double ratio) { return 10.0 * std::log10(ratio); }

// Absolute power <-> dBm (decibels referenced to 1 mW).
[[nodiscard]] inline double dbm_to_watts(double dbm) { return 1e-3 * std::pow(10.0, dbm / 10.0); }
[[nodiscard]] inline double watts_to_dbm(double watts) { return 10.0 * std::log10(watts / 1e-3); }

// Attenuation helper: apply `loss_db` (positive = loss) to a power in watts.
[[nodiscard]] inline double attenuate(double power_w, double loss_db) {
  return power_w * db_to_linear(-loss_db);
}

}  // namespace lumos::units
