#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace lumos {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) {
    LUMOS_EXPECTS_MSG(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double min_value(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  LUMOS_EXPECTS(count >= 1);
  if (count == 1) return {lo};
  std::vector<double> out(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;  // avoid accumulated rounding at the endpoint
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t count) {
  LUMOS_EXPECTS(lo > 0.0 && hi > 0.0);
  std::vector<double> out = linspace(std::log10(lo), std::log10(hi), count);
  for (double& v : out) v = std::pow(10.0, v);
  return out;
}

}  // namespace lumos
