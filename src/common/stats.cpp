#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace lumos {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) {
    LUMOS_EXPECTS_MSG(v > 0.0, "geometric mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double min_value(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  LUMOS_EXPECTS(count >= 1);
  if (count == 1) return {lo};
  std::vector<double> out(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;  // avoid accumulated rounding at the endpoint
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t count) {
  LUMOS_EXPECTS(lo > 0.0 && hi > 0.0);
  std::vector<double> out = linspace(std::log10(lo), std::log10(hi), count);
  for (double& v : out) v = std::pow(10.0, v);
  return out;
}

HdrHistogram::HdrHistogram(double relative_error, double min_value_hint)
    : relative_error_(relative_error), min_hint_(min_value_hint) {
  LUMOS_EXPECTS_MSG(relative_error > 0.0 && relative_error < 1.0,
                    "HdrHistogram relative_error must be in (0, 1)");
  LUMOS_EXPECTS_MSG(min_value_hint > 0.0 && std::isfinite(min_value_hint),
                    "HdrHistogram min_value_hint must be positive and finite");
  // Bucket width b = (1+e)^2: a bucket's geometric midpoint is then within a
  // factor (1+e) of both edges, i.e. within relative error e of every value
  // in the bucket.
  log_base_ = 2.0 * std::log1p(relative_error);
  inv_log_base_ = 1.0 / log_base_;
}

std::size_t HdrHistogram::bucket_of(double value) const noexcept {
  if (!(value > min_hint_)) return 0;
  // (min_hint * b^(i-1), min_hint * b^i] -> i; ceil via floor+1 off the open
  // lower edge.
  const double x = std::log(value / min_hint_) * inv_log_base_;
  return static_cast<std::size_t>(std::ceil(x - 1e-12));
}

void HdrHistogram::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const std::size_t i = bucket_of(value);
  if (buckets_.size() <= i) buckets_.resize(i + 1, 0);
  ++buckets_[i];
}

void HdrHistogram::merge(const HdrHistogram& other) {
  LUMOS_EXPECTS_MSG(relative_error_ == other.relative_error_ && min_hint_ == other.min_hint_,
                    "HdrHistogram::merge requires identical bucket layouts");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (buckets_.size() < other.buckets_.size()) buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

double HdrHistogram::mean() const noexcept {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double HdrHistogram::percentile(double q) const {
  LUMOS_EXPECTS(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  // Same nearest-rank convention as serve::percentile on the raw samples.
  const double rank_d = std::ceil(q * static_cast<double>(count_));
  const std::size_t rank = rank_d <= 1.0 ? 1 : static_cast<std::size_t>(rank_d);
  std::size_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      // Geometric midpoint representative; bucket 0 is bounded by the hint.
      const double rep =
          i == 0 ? min_hint_
                 : min_hint_ * std::exp((static_cast<double>(i) - 0.5) * log_base_);
      return std::clamp(rep, min_, max_);
    }
  }
  return max_;
}

}  // namespace lumos
