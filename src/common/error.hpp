// Precondition / invariant checking for the library.
//
// The simulators are configured programmatically; violated preconditions are
// programming errors in the caller, so they throw `lumos::InvalidArgument`
// (derived from std::invalid_argument) with the failing expression and
// location.  Internal invariant violations throw `lumos::InternalError`.
#pragma once

#include <stdexcept>
#include <string>

namespace lumos {

// Thrown when a caller passes an argument that violates a documented
// precondition of a public API.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

// Thrown when an internal invariant of the library is violated (a bug in the
// library itself rather than in the caller).
class InternalError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file, int line,
                                            const std::string& msg) {
  std::string what = std::string("precondition failed: ") + expr + " at " + file + ":" +
                     std::to_string(line);
  if (!msg.empty()) what += " (" + msg + ")";
  throw InvalidArgument(what);
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file, int line) {
  throw InternalError(std::string("invariant failed: ") + expr + " at " + file + ":" +
                      std::to_string(line));
}
}  // namespace detail

}  // namespace lumos

// Validates a documented precondition of a public API entry point.
#define LUMOS_EXPECTS(expr)                                                   \
  do {                                                                        \
    if (!(expr)) ::lumos::detail::throw_precondition(#expr, __FILE__, __LINE__, ""); \
  } while (false)

// Same, with an explanatory message appended to the exception text.
#define LUMOS_EXPECTS_MSG(expr, msg)                                          \
  do {                                                                        \
    if (!(expr)) ::lumos::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

// Validates an internal invariant (library bug if it fires).
#define LUMOS_ENSURES(expr)                                                   \
  do {                                                                        \
    if (!(expr)) ::lumos::detail::throw_invariant(#expr, __FILE__, __LINE__); \
  } while (false)
