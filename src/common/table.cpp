#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace lumos {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  const double mag = std::fabs(v);
  if (v != 0.0 && (mag >= 1e7 || mag < 1e-3)) {
    std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  } else {
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  }
  return buf;
}

void Table::print(std::ostream& os) const {
  if (rows_.empty()) return;
  std::size_t cols = 0;
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<std::size_t> widths(cols, 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto hline = [&] {
    os << '+';
    for (std::size_t c = 0; c < cols; ++c) {
      for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  hline();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << '|';
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < rows_[r].size() ? rows_[r][c] : std::string{};
      os << ' ' << cell;
      for (std::size_t i = cell.size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
    if (r == 0) hline();  // rule under the header
  }
  hline();
}

void Table::print_csv(std::ostream& os) const {
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      // Quote cells containing separators.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (const char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  }
}

}  // namespace lumos
