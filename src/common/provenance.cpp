#include "common/provenance.hpp"

#include "common/json.hpp"

namespace lumos {

std::string build_compiler() {
#if defined(__clang__)
  const char* id = "clang";
#elif defined(__GNUC__)
  const char* id = "gcc";
#else
  const char* id = "unknown";
#endif
#if defined(__VERSION__)
  return std::string(id) + " " + __VERSION__;
#else
  return id;
#endif
}

std::string build_type() {
#if defined(NDEBUG)
  return "release";
#else
  return "debug";
#endif
}

std::string provenance_json(std::size_t threads) {
  return "\"provenance\": {\"schema_version\": " + std::to_string(kBenchSchemaVersion) +
         ", \"compiler\": \"" + json_escape(build_compiler()) + "\", \"build_type\": \"" +
         json_escape(build_type()) + "\", \"threads\": " + std::to_string(threads) + "}";
}

}  // namespace lumos
