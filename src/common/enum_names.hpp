// Table-driven string <-> enum conversion.
//
// Every user-facing enum (arrival processes, schedulers, routing and
// autoscaling policies, ...) needs the same three faces: a canonical print
// name, a parse that throws `InvalidArgument` listing the accepted names, and
// the name list itself for `lumos_cli list` and usage text.  One table per
// enum drives all three, so a new enumerator added to the table can never be
// printable-but-unparsable (or vice versa).  Tables may carry aliases:
// additional rows for the same value parse but never print (printing returns
// the first row that matches).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace lumos {

template <typename E>
struct EnumName {
  E value;
  const char* name;
};

// Canonical (first-row) name of `value`; "?" for a value missing from the
// table (indicates the table is out of date with the enum).
template <typename E, std::size_t N>
[[nodiscard]] const char* enum_to_name(const EnumName<E> (&table)[N], E value) noexcept {
  for (const EnumName<E>& entry : table) {
    if (entry.value == value) return entry.name;
  }
  return "?";
}

// "a|b|c" join of the table's names (aliases included), for error/usage text.
template <typename E, std::size_t N>
[[nodiscard]] std::string enum_joined_names(const EnumName<E> (&table)[N]) {
  std::string out;
  for (const EnumName<E>& entry : table) {
    if (!out.empty()) out += '|';
    out += entry.name;
  }
  return out;
}

// Parses `name` (canonical names and aliases); throws `InvalidArgument`
// naming `what` and listing every accepted name on a miss.
template <typename E, std::size_t N>
[[nodiscard]] E enum_from_name(const EnumName<E> (&table)[N], const std::string& name,
                               const char* what) {
  for (const EnumName<E>& entry : table) {
    if (name == entry.name) return entry.value;
  }
  throw InvalidArgument("unknown " + std::string(what) + ": '" + name + "' (expected " +
                        enum_joined_names(table) + ")");
}

// The table's names in order (aliases included), for discovery listings.
template <typename E, std::size_t N>
[[nodiscard]] std::vector<std::string> enum_name_list(const EnumName<E> (&table)[N]) {
  std::vector<std::string> names;
  names.reserve(N);
  for (const EnumName<E>& entry : table) names.emplace_back(entry.name);
  return names;
}

}  // namespace lumos
