// Build/run provenance stamped into every bench JSON, so a committed baseline
// records *what produced it* (compiler, build type, thread count) next to its
// numbers.  `tools/bench_check.py` ignores the provenance object when
// diffing — it is context for humans debugging a drifted baseline, never a
// gated value.
#pragma once

#include <cstddef>
#include <string>

namespace lumos {

// Version of the bench JSON schema; bump when a bench emitter changes its
// field layout so stale baselines are recognisable at a glance.
inline constexpr int kBenchSchemaVersion = 2;

// Compiler identity of this build ("gcc 13.2.0 ..." / "clang ..."), from the
// compiler's own version macros.
[[nodiscard]] std::string build_compiler();

// "release" (NDEBUG) or "debug".
[[nodiscard]] std::string build_type();

// The complete `"provenance": {...}` JSON member (no surrounding comma):
// schema version, compiler, build type, and the effective worker-thread
// count (`threads` — pass ThreadPool::global().thread_count()).
[[nodiscard]] std::string provenance_json(std::size_t threads);

}  // namespace lumos
