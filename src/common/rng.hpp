// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (synthetic weights, graph
// generators, analog noise draws) is seeded explicitly so that experiments
// are exactly reproducible run-to-run.  We use our own small PCG32
// implementation rather than <random> engines so that sequences are stable
// across standard-library implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace lumos {

// PCG32 (O'Neill 2014): 64-bit state, 32-bit output, period 2^64.
class Rng {
 public:
  // Seeds the generator; `stream` selects one of 2^63 independent sequences.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) noexcept;

  // Uniform 32-bit integer.
  [[nodiscard]] std::uint32_t next_u32() noexcept;

  // Uniform 64-bit integer.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  // Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  [[nodiscard]] std::uint32_t next_below(std::uint32_t bound) noexcept;

  // Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  // Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  // Exponential deviate with the given mean (inter-arrival gaps, think times).
  [[nodiscard]] double exponential(double mean) noexcept;

  // Standard normal deviate (Box–Muller; caches the second deviate).
  [[nodiscard]] double normal() noexcept;

  // Normal deviate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  // Fisher–Yates shuffle of `values`.
  void shuffle(std::vector<std::uint32_t>& values) noexcept;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace lumos
