#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace lumos {

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept
    : state_(0), inc_((stream << 1u) | 1u) {
  // Standard PCG32 seeding sequence.
  (void)next_u32();
  state_ += seed;
  (void)next_u32();
}

std::uint32_t Rng::next_u32() noexcept {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Rng::next_u64() noexcept {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

std::uint32_t Rng::next_below(std::uint32_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
  auto lo = static_cast<std::uint32_t>(m);
  if (lo < bound) {
    const std::uint32_t threshold = (0u - bound) % bound;
    while (lo < threshold) {
      m = static_cast<std::uint64_t>(next_u32()) * bound;
      lo = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32);
}

double Rng::next_double() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * next_double(); }

double Rng::exponential(double mean) noexcept {
  // next_double() < 1, so the log argument stays in (0, 1].
  return -std::log(1.0 - next_double()) * mean;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller with guard against log(0).
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

void Rng::shuffle(std::vector<std::uint32_t>& values) noexcept {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::uint32_t j = next_below(static_cast<std::uint32_t>(i));
    std::swap(values[i - 1], values[j]);
  }
}

}  // namespace lumos
