// ASCII table / CSV emission used by the benchmark harnesses to print the
// paper's figure series in a readable, diff-friendly format.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace lumos {

// Column-aligned text table.  Cells are strings; numeric helpers format with
// a fixed precision.  The first added row is treated as the header.
class Table {
 public:
  explicit Table(std::string title = {});

  // Appends a row of preformatted cells.
  Table& add_row(std::vector<std::string> cells);

  // Formats `v` with `precision` significant-looking decimal digits, using
  // scientific notation for very large/small magnitudes.
  [[nodiscard]] static std::string num(double v, int precision = 3);

  // Renders the table with box-drawing rules to `os`.
  void print(std::ostream& os) const;

  // Renders the table as CSV (header row first) to `os`.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

 private:
  std::string title_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lumos
