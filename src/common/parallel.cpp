#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace lumos {

namespace {
// Set while a thread is executing chunks of a parallel loop; nested
// parallel_for calls from such a thread run inline instead of deadlocking on
// the shared pool.
thread_local bool t_in_parallel_region = false;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("LUMOS_THREADS")) {
    // Documented as "minimum 1": any set value below 1 (including 0 and
    // unparseable strings) means serial, never silent fallback to full
    // hardware concurrency.
    const long parsed = std::strtol(env, nullptr, 10);
    return parsed >= 1 ? static_cast<std::size_t>(parsed) : 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}
}  // namespace

struct ThreadPool::Impl {
  std::size_t total_threads = 1;  // workers + the calling thread
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable work_done;
  bool shutting_down = false;

  // Current loop (one at a time; concurrent run_chunks calls serialise).
  std::mutex loop_mutex;
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t chunk_count = 0;
  std::atomic<std::size_t> next_chunk{0};
  std::size_t active_workers = 0;
  std::uint64_t generation = 0;
  std::exception_ptr first_error;

  void drain_chunks() {
    t_in_parallel_region = true;
    for (;;) {
      const std::size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunk_count) break;
      try {
        (*body)(chunk);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
    t_in_parallel_region = false;
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mutex);
      work_ready.wait(lock,
                      [&] { return shutting_down || generation != seen_generation; });
      if (shutting_down) return;
      seen_generation = generation;
      ++active_workers;
      lock.unlock();

      drain_chunks();

      lock.lock();
      --active_workers;
      if (active_workers == 0) work_done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t thread_count) : impl_(new Impl) {
  impl_->total_threads = thread_count < 1 ? 1 : thread_count;
  const std::size_t workers = impl_->total_threads - 1;
  impl_->workers.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutting_down = true;
  }
  impl_->work_ready.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

std::size_t ThreadPool::thread_count() const noexcept { return impl_->total_threads; }

void ThreadPool::run_chunks(std::size_t chunk_count,
                            const std::function<void(std::size_t)>& body) {
  if (chunk_count == 0) return;
  if (impl_->workers.empty() || chunk_count == 1 || t_in_parallel_region) {
    // Serial pool, trivial loop, or nested call: execute inline.
    const bool was_nested = t_in_parallel_region;
    t_in_parallel_region = true;
    struct Restore {
      bool value;
      ~Restore() { t_in_parallel_region = value; }
    } restore{was_nested};
    for (std::size_t chunk = 0; chunk < chunk_count; ++chunk) body(chunk);
    return;
  }

  std::lock_guard<std::mutex> loop_lock(impl_->loop_mutex);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->body = &body;
    impl_->chunk_count = chunk_count;
    impl_->next_chunk.store(0, std::memory_order_relaxed);
    impl_->first_error = nullptr;
    ++impl_->generation;
  }
  impl_->work_ready.notify_all();

  impl_->drain_chunks();  // the calling thread participates

  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->work_done.wait(lock, [&] { return impl_->active_workers == 0; });
  impl_->body = nullptr;
  if (impl_->first_error) std::rethrow_exception(impl_->first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  LUMOS_EXPECTS(grain >= 1);
  const std::size_t span = end - begin;
  const std::size_t chunk_count = (span + grain - 1) / grain;
  if (chunk_count == 1) {
    body(begin, end);
    return;
  }
  ThreadPool::global().run_chunks(chunk_count, [&](std::size_t chunk) {
    const std::size_t lo = begin + chunk * grain;
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    body(lo, hi);
  });
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for(begin, end, 1, body);
}

}  // namespace lumos
