// Performance/energy report shared by every platform model in the library
// (TRON, GHOST, and the electronic baselines), so the figure benches can
// compare EPB and GOPS uniformly.
#pragma once

#include <cstddef>
#include <string>

namespace lumos {

// Per-stage accounting of one inference pass (photonic accelerators fill the
// stages that apply; baselines typically only use the totals).
struct PerfBreakdown {
  double matmul_time_s = 0.0;
  double softmax_time_s = 0.0;
  double elementwise_time_s = 0.0;  // residual adds, LN, activations
  double aggregation_time_s = 0.0;  // GHOST: reduce-phase time
  double memory_stall_s = 0.0;      // DRAM streaming not hidden by compute

  double laser_dac_adc_energy_j = 0.0;
  double partial_sum_energy_j = 0.0;
  double softmax_energy_j = 0.0;
  double elementwise_energy_j = 0.0;
  double aggregation_energy_j = 0.0;
  double sram_energy_j = 0.0;
  double dram_energy_j = 0.0;
};

struct PerfReport {
  std::string workload;
  std::string platform;
  double latency_s = 0.0;  // one full inference
  double dynamic_energy_j = 0.0;
  double static_power_w = 0.0;
  double static_energy_j = 0.0;
  double total_energy_j = 0.0;
  std::size_t op_count = 0;
  int bits = 8;
  PerfBreakdown breakdown;

  // Throughput in operations per second (the paper's GOPS figures / 1e9).
  [[nodiscard]] double ops_per_second() const noexcept {
    return latency_s > 0.0 ? static_cast<double>(op_count) / latency_s : 0.0;
  }
  // Energy per bit: total energy over all processed operand bits.
  [[nodiscard]] double energy_per_bit_j() const noexcept {
    const double bits_total = static_cast<double>(op_count) * bits;
    return bits_total > 0.0 ? total_energy_j / bits_total : 0.0;
  }
  [[nodiscard]] double average_power_w() const noexcept {
    return latency_s > 0.0 ? total_energy_j / latency_s : 0.0;
  }
};

}  // namespace lumos
