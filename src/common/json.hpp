// Minimal JSON string escaping shared by every JSON writer in the library
// (bench emitters, campaign dumps, the CLI's --json mode).
#pragma once

#include <string>

namespace lumos {

// Escapes `s` for embedding inside a JSON string literal: quotes,
// backslashes, and control characters (as \uXXXX / the short forms).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace lumos
