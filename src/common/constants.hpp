// Fundamental physical constants and silicon-photonics material parameters
// used by the device models in `lumos::phot`.
//
// Material values are the standard numbers for silicon-on-insulator strip
// waveguides around the 1550 nm C-band, as used by the TRON/GHOST papers'
// device-level references (CrossLight DAC'21, SONIC ASPDAC'22).
#pragma once

namespace lumos::constants {

// ---- Fundamental constants ---------------------------------------------------
inline constexpr double kSpeedOfLight = 2.99792458e8;   // m/s
inline constexpr double kPlanck = 6.62607015e-34;       // J*s
inline constexpr double kElectronCharge = 1.602176634e-19;  // C
inline constexpr double kBoltzmann = 1.380649e-23;      // J/K

// ---- Silicon-on-insulator waveguide parameters (C-band, 1550 nm) --------------
// Effective index of the fundamental TE mode of a 450x220 nm strip waveguide.
inline constexpr double kSiEffectiveIndex = 2.35;
// Group index of the same mode (sets FSR and tuning efficiency).
inline constexpr double kSiGroupIndex = 4.2;
// Thermo-optic coefficient of silicon dn/dT at 300 K.
inline constexpr double kSiThermoOpticCoeff = 1.86e-4;  // 1/K
// Free-carrier plasma-dispersion EO index change achievable per volt for a
// depletion-type pn microring phase shifter (small-signal, conservative).
inline constexpr double kSiEoIndexShiftPerVolt = 4.0e-5;  // 1/V

// ---- C-band definition ---------------------------------------------------------
inline constexpr double kCBandCenterWavelength = 1550e-9;  // m
inline constexpr double kCBandMinWavelength = 1530e-9;     // m
inline constexpr double kCBandMaxWavelength = 1565e-9;     // m

// ---- Room temperature -----------------------------------------------------------
inline constexpr double kRoomTemperature = 300.0;  // K

}  // namespace lumos::constants
