#include "tron/accelerator.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace lumos::tron {

namespace {
SoftmaxLutConfig softmax_config_from(const TronConfig& c) {
  SoftmaxLutConfig s;
  s.parallel_units = c.softmax_lut_units;
  s.clock_hz = c.digital_clock_hz;
  s.energy_per_element_j = c.lut_energy_per_element_j;
  return s;
}
}  // namespace

TronConfig default_tron_config() {
  TronConfig c;
  // Bank design: 16 wavelengths per waveguide is the feasibility fixed point
  // of the WDM search at Q = 8000 / 8-bit SNR (see bench_ablation_crosstalk).
  c.bank.wavelength_count = c.array_rows;
  c.bank.symbol_rate_hz = c.symbol_rate_hz;
  c.bank.heterodyne.channel_count = c.array_rows;
  // Two HBM2 stacks, as assumed by the paper's TransPIM-class competitors.
  c.dram.bandwidth_bytes_per_s = 512e9;
  return c;
}

TronAccelerator::TronAccelerator(const TronConfig& config)
    : config_(config),
      head_(config, softmax_config_from(config)),
      residual_adder_(config.bank, config.homodyne, 2),
      ln_ring_(config.bank),
      soa_({}),
      weight_buffer_(config.weight_buffer),
      activation_buffer_(config.activation_buffer),
      dram_(config.dram),
      mapping_array_(config.bank, config.array_cols),
      pass_energies_(mapping_array_.pass_energies()),
      mapping_softmax_(softmax_config_from(config)) {
  LUMOS_EXPECTS(config.head_units >= 1);
  LUMOS_EXPECTS(config.array_rows >= 1 && config.array_cols >= 1);
  LUMOS_EXPECTS(config.symbol_rate_hz > 0.0);
}

double TronAccelerator::static_power_w() const {
  const double per_array = mapping_array_.matvec_cost().static_power_w;
  const double arrays = static_cast<double>(config_.total_arrays());
  const phot::SoaConfig soa_cfg;
  // One SOA bank (array_cols amplifiers) serves the FF activations.
  const double soa_bias = static_cast<double>(config_.array_cols) * soa_cfg.bias_power_w;
  return arrays * per_array + config_.digital_static_power_w +
         weight_buffer_.leakage_power_w() + activation_buffer_.leakage_power_w() +
         dram_.static_power_w() + soa_bias;
}

double TronAccelerator::map_trace(const std::vector<nn::OpSpec>& trace, std::size_t batch,
                                  PerfBreakdown& b) const {
  const phot::MrBankArray::PassEnergies& pe = pass_energies_;
  const SoftmaxLut& softmax = mapping_softmax_;
  const double rate = config_.symbol_rate_hz;
  const std::size_t kh = config_.array_rows;
  const std::size_t nh = config_.array_cols;

  double compute_s = 0.0;
  for (const nn::OpSpec& op : trace) {
    // Batched execution streams `batch` sequences through the stationary
    // weights: every row count scales by the batch.
    const std::size_t m = op.m * batch;
    switch (op.kind) {
      case nn::OpKind::kMatMul: {
        const std::size_t tiles_k = (op.k + kh - 1) / kh;
        const std::size_t tiles_n = (op.n + nh - 1) / nh;
        const std::size_t passes = m * tiles_k * tiles_n * op.repeat;
        // FF MatMuls run on the FF unit's arrays; attention MatMuls are
        // spread over the head units' arrays.
        const bool is_ff = op.label[0] == 'F';
        const std::size_t arrays =
            is_ff ? config_.ff_arrays : config_.attention_arrays();
        const double t = std::ceil(static_cast<double>(passes) / static_cast<double>(arrays)) /
                         rate;
        compute_s += t;
        b.matmul_time_s += t;
        // Weight-stationary dataflow: read-outs and laser per row pass; input
        // rows imprinted once per K-tile and broadcast to the arrays working
        // the parallel column tiles; weight imprints once per tile reprogram.
        // Partially filled edge tiles only pay for the rows/columns they use.
        const double frac_k = static_cast<double>(op.k) / static_cast<double>(tiles_k * kh);
        const double frac_n = static_cast<double>(op.n) / static_cast<double>(tiles_n * nh);
        const double input_charges = static_cast<double>(m * tiles_k * op.repeat);
        const double tile_reprograms =
            static_cast<double>(tiles_k * tiles_n * op.repeat);
        b.laser_dac_adc_energy_j +=
            input_charges * pe.input_dac_j * frac_k +
            static_cast<double>(passes) * (pe.adc_j * frac_n + pe.laser_j * frac_k * frac_n) +
            tile_reprograms * pe.weight_dac_j * frac_k * frac_n;
        // Digital partial-sum accumulation across K tiles.
        const double psums = static_cast<double>(m * op.n * op.repeat) *
                             static_cast<double>(tiles_k > 0 ? tiles_k - 1 : 0);
        b.partial_sum_energy_j += psums * config_.partial_sum_add_energy_j;
        // SRAM traffic: read inputs + weights, write outputs (int8).
        const double bytes = static_cast<double>(m * op.k + op.k * op.n + m * op.n) *
                             static_cast<double>(op.repeat);
        const double words = bytes / static_cast<double>(config_.activation_buffer.word_bytes);
        b.sram_energy_j += words * activation_buffer_.read_energy_j();
        break;
      }
      case nn::OpKind::kSoftmax: {
        const std::size_t elems = op.elements() * batch;
        compute_s += softmax.latency_s(elems);
        b.softmax_time_s += softmax.latency_s(elems);
        b.softmax_energy_j += softmax.energy_j(elems);
        break;
      }
      case nn::OpKind::kLayerNorm:
      case nn::OpKind::kActivation:
      case nn::OpKind::kResidualAdd: {
        // Element-wise optical stages: array_cols lanes at the symbol rate.
        const std::size_t elems = op.elements() * batch;
        const double t =
            std::ceil(static_cast<double>(elems) / static_cast<double>(nh)) / rate;
        compute_s += t;
        b.elementwise_time_s += t;
        const phot::DacModel dac(config_.bank.dac);
        b.elementwise_energy_j += static_cast<double>(elems) * dac.energy_per_conversion_j();
        break;
      }
    }
  }
  return compute_s;
}

namespace {
// Accumulates `src` scaled by `factor` into `dst` (dynamic energies + times).
void merge_scaled(PerfBreakdown& dst, const PerfBreakdown& src, double factor) {
  dst.matmul_time_s += src.matmul_time_s * factor;
  dst.softmax_time_s += src.softmax_time_s * factor;
  dst.elementwise_time_s += src.elementwise_time_s * factor;
  dst.laser_dac_adc_energy_j += src.laser_dac_adc_energy_j * factor;
  dst.partial_sum_energy_j += src.partial_sum_energy_j * factor;
  dst.softmax_energy_j += src.softmax_energy_j * factor;
  dst.elementwise_energy_j += src.elementwise_energy_j * factor;
  dst.sram_energy_j += src.sram_energy_j * factor;
}
}  // namespace

PerfReport TronAccelerator::estimate_batch(const nn::TransformerConfig& model,
                                           std::size_t batch) const {
  LUMOS_EXPECTS(batch >= 1);
  PerfReport r;
  r.workload = model.name;
  r.platform = "TRON";
  r.bits = config_.bits;
  r.op_count = model.op_count() * batch;
  PerfBreakdown& b = r.breakdown;

  // Per-layer weight streaming from DRAM (int8), double-buffered against
  // compute and amortised over the whole batch: a layer stalls only for the
  // part of the stream not hidden behind its batched compute.
  const double total_layers =
      static_cast<double>(model.layers + model.decoder_layers);
  const double layer_weight_bytes =
      static_cast<double>(model.parameter_count()) / total_layers;
  const double dram_stream_s =
      dram_.transfer_latency_s(static_cast<std::size_t>(layer_weight_bytes));
  const double dram_stream_j =
      dram_.transfer_energy_j(static_cast<std::size_t>(layer_weight_bytes));

  PerfBreakdown enc_b;
  const double enc_compute_s = map_trace(nn::layer_trace(model), batch, enc_b);
  const double enc_layers = static_cast<double>(model.layers);
  double latency = std::max(enc_compute_s, dram_stream_s) * enc_layers;
  b.memory_stall_s = std::max(0.0, dram_stream_s - enc_compute_s) * enc_layers;
  merge_scaled(b, enc_b, enc_layers);

  // Seq2seq decoders (paper Fig. 1) add cross-attention layers.
  if (model.decoder_layers > 0) {
    PerfBreakdown dec_b;
    const double dec_compute_s =
        map_trace(nn::decoder_layer_trace(model), batch, dec_b);
    const double dec_layers = static_cast<double>(model.decoder_layers);
    latency += std::max(dec_compute_s, dram_stream_s) * dec_layers;
    b.memory_stall_s += std::max(0.0, dram_stream_s - dec_compute_s) * dec_layers;
    merge_scaled(b, dec_b, dec_layers);
  }
  b.dram_energy_j = dram_stream_j * total_layers;
  r.latency_s = latency;

  r.dynamic_energy_j = b.laser_dac_adc_energy_j + b.partial_sum_energy_j +
                       b.softmax_energy_j + b.elementwise_energy_j + b.sram_energy_j +
                       b.dram_energy_j;
  r.static_power_w = static_power_w();
  r.static_energy_j = r.static_power_w * r.latency_s;
  r.total_energy_j = r.dynamic_energy_j + r.static_energy_j;
  return r;
}

PerfReport TronAccelerator::estimate(const nn::TransformerConfig& model) const {
  return estimate_batch(model, 1);
}

PerfReport TronAccelerator::estimate_generation(const nn::TransformerConfig& model,
                                                std::size_t prompt_len,
                                                std::size_t generated_tokens) const {
  LUMOS_EXPECTS(prompt_len >= 1);
  LUMOS_EXPECTS(generated_tokens >= 1);
  PerfReport r;
  r.workload = model.name + " (generate " + std::to_string(generated_tokens) + ")";
  r.platform = "TRON";
  r.bits = config_.bits;
  PerfBreakdown& b = r.breakdown;

  const double layers = static_cast<double>(model.layers);
  const double layer_weight_bytes =
      static_cast<double>(model.parameter_count()) / static_cast<double>(model.layers);
  const double dram_stream_s =
      dram_.transfer_latency_s(static_cast<std::size_t>(layer_weight_bytes));
  const double dram_stream_j =
      dram_.transfer_energy_j(static_cast<std::size_t>(layer_weight_bytes));

  std::size_t ops = 0;
  double latency = 0.0;
  for (std::size_t t = 0; t < generated_tokens; ++t) {
    const std::size_t ctx = prompt_len + t;
    PerfBreakdown step;
    const double step_compute = map_trace(nn::generation_layer_trace(model, ctx), 1, step);
    // Single-token decode: weights re-stream each step (the KV cache stays
    // resident, the 85+ MB of weights do not) — the memory-bound regime.
    const double step_latency = std::max(step_compute, dram_stream_s) * layers;
    latency += step_latency;
    b.memory_stall_s += std::max(0.0, dram_stream_s - step_compute) * layers;
    b.dram_energy_j += dram_stream_j * layers;
    b.matmul_time_s += step.matmul_time_s * layers;
    b.softmax_time_s += step.softmax_time_s * layers;
    b.elementwise_time_s += step.elementwise_time_s * layers;
    b.laser_dac_adc_energy_j += step.laser_dac_adc_energy_j * layers;
    b.partial_sum_energy_j += step.partial_sum_energy_j * layers;
    b.softmax_energy_j += step.softmax_energy_j * layers;
    b.elementwise_energy_j += step.elementwise_energy_j * layers;
    b.sram_energy_j += step.sram_energy_j * layers;
    ops += 2 * nn::generation_step_macs(model, ctx);
  }

  r.op_count = ops;
  r.latency_s = latency;
  r.dynamic_energy_j = b.laser_dac_adc_energy_j + b.partial_sum_energy_j +
                       b.softmax_energy_j + b.elementwise_energy_j + b.sram_energy_j +
                       b.dram_energy_j;
  r.static_power_w = static_power_w();
  r.static_energy_j = r.static_power_w * r.latency_s;
  r.total_energy_j = r.dynamic_energy_j + r.static_energy_j;
  return r;
}

PerfReport TronAccelerator::estimate_decode_step(const nn::TransformerConfig& model,
                                                 std::size_t batch,
                                                 std::size_t context_len) const {
  LUMOS_EXPECTS(batch >= 1);
  LUMOS_EXPECTS(context_len >= 1);
  PerfReport r;
  r.workload = model.name + " (decode step @" + std::to_string(context_len) + ")";
  r.platform = "TRON";
  r.bits = config_.bits;
  PerfBreakdown& b = r.breakdown;

  const double layers = static_cast<double>(model.layers);
  const double layer_weight_bytes =
      static_cast<double>(model.parameter_count()) / static_cast<double>(model.layers);
  const double dram_stream_s =
      dram_.transfer_latency_s(static_cast<std::size_t>(layer_weight_bytes));
  const double dram_stream_j =
      dram_.transfer_energy_j(static_cast<std::size_t>(layer_weight_bytes));

  PerfBreakdown step;
  const double step_compute =
      map_trace(nn::generation_layer_trace(model, context_len), batch, step);
  // The weight re-stream is paid once per step no matter how many lanes
  // decode; only the compute side scales with the batch.
  r.latency_s = std::max(step_compute, dram_stream_s) * layers;
  b.memory_stall_s = std::max(0.0, dram_stream_s - step_compute) * layers;
  b.dram_energy_j = dram_stream_j * layers;
  merge_scaled(b, step, layers);
  r.op_count = 2 * nn::generation_step_macs(model, context_len) * batch;
  r.dynamic_energy_j = b.laser_dac_adc_energy_j + b.partial_sum_energy_j +
                       b.softmax_energy_j + b.elementwise_energy_j + b.sram_energy_j +
                       b.dram_energy_j;
  r.static_power_w = static_power_w();
  r.static_energy_j = r.static_power_w * r.latency_s;
  r.total_energy_j = r.dynamic_energy_j + r.static_energy_j;
  return r;
}

phot::AreaReport TronAccelerator::area() const {
  phot::AreaReport fabric = phot::bank_array_area(config_.array_rows, config_.array_cols);
  // One bank array's report scaled to the full fabric.
  phot::AreaReport r;
  const std::size_t arrays = config_.total_arrays();
  for (const phot::AreaItem& item : fabric.items) {
    r.items.push_back({item.component, item.count * arrays,
                       item.total_m2 * static_cast<double>(arrays)});
  }
  const phot::DeviceAreas d;
  r.add("coherent residual adders (VCSEL pairs + BPD)", config_.array_cols,
        2 * d.vcsel_m2 + d.balanced_pd_m2);
  r.add("LayerNorm microrings", config_.array_cols, d.microring_m2);
  r.add("FF SOA bank", config_.array_cols, d.soa_m2);
  r.add("softmax LUT + digital control", 1, d.digital_logic_m2);
  r.add("weight buffer SRAM", config_.weight_buffer.capacity_bytes, d.sram_m2_per_byte);
  r.add("activation buffer SRAM", config_.activation_buffer.capacity_bytes,
        d.sram_m2_per_byte);
  return r;
}

nn::Matrix TronAccelerator::forward(const nn::TransformerWeights& weights, const nn::Matrix& x,
                                    Rng& rng, const phot::AnalogNoiseConfig& noise) const {
  const nn::TransformerConfig& cfg = weights.config;
  LUMOS_EXPECTS(x.cols() == cfg.d_model);
  const std::size_t hd = cfg.head_dim();

  nn::Matrix h = x;
  // Per-head projection slices and the head-concat buffer are reused across
  // heads and layers (their shapes are layer-invariant).
  nn::Matrix concat;
  nn::Matrix wq(cfg.d_model, hd);
  nn::Matrix wk(cfg.d_model, hd);
  nn::Matrix wv(cfg.d_model, hd);
  for (const nn::TransformerLayerWeights& layer : weights.layers) {
    // ---- MHA: per-head slices through the attention-head unit ----
    concat.resize(h.rows(), cfg.d_model);
    for (std::size_t head = 0; head < cfg.heads; ++head) {
      // Column slices of the projection matrices for this head.
      const std::size_t off = head * hd;
      for (std::size_t r = 0; r < cfg.d_model; ++r) {
        for (std::size_t c = 0; c < hd; ++c) {
          wq(r, c) = layer.wq(r, off + c);
          wk(r, c) = layer.wk(r, off + c);
          wv(r, c) = layer.wv(r, off + c);
        }
      }
      const nn::Matrix out = head_.forward(h, wq, wk, wv, rng, noise);
      for (std::size_t r = 0; r < out.rows(); ++r)
        for (std::size_t c = 0; c < hd; ++c) concat(r, off + c) = out(r, c);
    }
    const nn::Matrix attn = photonic_matmul(concat, layer.wo, head_.array(), rng, noise);

    // ---- Residual + optical LayerNorm ----
    const nn::Matrix res1 = photonic_residual_add(attn, h, residual_adder_, rng, noise);
    nn::Matrix h1 =
        photonic_layer_norm(res1, layer.ln1_gamma, layer.ln1_beta, ln_ring_, rng, noise);

    // ---- FF with SOA ReLU ----
    nn::Matrix ff = photonic_matmul(h1, layer.w1, head_.array(), rng, noise);
    const double act_scale = std::max(ff.max_abs(), 1e-12);
    for (double& v : ff.flat()) {
      v = soa_.activate(phot::OpticalActivation::kRelu, std::clamp(v / act_scale, -1.0, 1.0)) *
          act_scale;
    }
    const nn::Matrix ff2 = photonic_matmul(ff, layer.w2, head_.array(), rng, noise);

    const nn::Matrix res2 = photonic_residual_add(ff2, h1, residual_adder_, rng, noise);
    h = photonic_layer_norm(res2, layer.ln2_gamma, layer.ln2_beta, ln_ring_, rng, noise);
  }
  return h;
}

}  // namespace lumos::tron
