// Attention-head unit (paper Fig. 5a) with the eq. (3) decomposition.
//
//   Q . K^T = Q . (X . W_K)^T = (Q . W_K^T) . X^T                      (3)
//
// "Such decomposition mitigates the need to convert the optical signals
// (matrix K) to the digital domain to perform its transpose operation before
// the multiplication with matrix Q.  Conversely, matrices X, W_Q, W_K^T/d_K,
// and X^T are computed and stored offline, which allows us to perform the
// MatMul completely in the optical domain."
//
// The unit owns seven K x N MR bank arrays: five MatMul stages
// (Q = X W_Q,  B = Q W_K^T/sqrt(d_K),  S = B X^T,  V = X W_V,  O = P V)
// plus two staging arrays that double-buffer weights for the next layer while
// the current one computes.
#pragma once

#include "nn/tensor.hpp"
#include "tron/config.hpp"
#include "tron/photonic_ops.hpp"
#include "tron/softmax_lut.hpp"

namespace lumos::tron {

// Conversion/operation counts for one head's score computation, used by the
// eq. (3) ablation (bench_ablation_decomposition).
struct ScorePathCosts {
  std::size_t adc_conversions = 0;  // optical -> digital
  std::size_t dac_conversions = 0;  // digital -> optical
  std::size_t matmul_passes = 0;    // bank-array symbol passes
  double latency_s = 0.0;
  double energy_j = 0.0;
};

class AttentionHeadUnit {
 public:
  AttentionHeadUnit(const TronConfig& config, const SoftmaxLutConfig& softmax_config);

  // Functional head computation on real matrices via the photonic path.
  // x: L x d_model; wq/wk/wv: d_model x d_head slices for this head.
  // Returns the L x d_head head output.
  [[nodiscard]] nn::Matrix forward(const nn::Matrix& x, const nn::Matrix& wq,
                                   const nn::Matrix& wk, const nn::Matrix& wv, Rng& rng,
                                   const phot::AnalogNoiseConfig& noise) const;

  // Costs of producing the L x L score matrix with the eq. (3) decomposition
  // (everything optical until the single post-score ADC for softmax).
  [[nodiscard]] ScorePathCosts decomposed_score_costs(std::size_t seq_len,
                                                      std::size_t d_model,
                                                      std::size_t d_head) const;

  // Costs of the naive ordering: K = X W_K is detected (ADC), transposed
  // digitally, re-imprinted (DAC), then multiplied with Q.
  [[nodiscard]] ScorePathCosts naive_score_costs(std::size_t seq_len, std::size_t d_model,
                                                 std::size_t d_head) const;

  [[nodiscard]] const phot::MrBankArray& array() const noexcept { return array_; }
  [[nodiscard]] const SoftmaxLut& softmax() const noexcept { return softmax_; }

 private:
  // Symbol passes for an M x K x N MatMul on this unit's array geometry.
  [[nodiscard]] std::size_t matmul_passes(std::size_t m, std::size_t k, std::size_t n) const;

  TronConfig config_;
  phot::MrBankArray array_;
  SoftmaxLut softmax_;
};

}  // namespace lumos::tron
