// Digital LUT softmax unit (paper Section V.C: "the results are converted to
// the digital domain to undergo softmax computation using lookup tables
// (LUTs) and simple digital circuits").
//
// Functional model: exp() is read from a `table_size`-entry LUT over a
// clamped input range (scores are max-subtracted first, so inputs lie in
// [-range, 0]); normalisation uses an exact divide.  The LUT's quantisation
// is the unit's approximation error, which the fidelity tests measure.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lumos::tron {

struct SoftmaxLutConfig {
  std::size_t table_size = 256;
  double input_range = 16.0;   // covers exp(-16) ~ 1e-7, below int8 resolution
  std::size_t parallel_units = 256;
  double clock_hz = 1e9;
  double energy_per_element_j = 0.7e-12;
};

class SoftmaxLut {
 public:
  explicit SoftmaxLut(const SoftmaxLutConfig& config);

  // In-place LUT softmax over `row`.
  void apply(std::span<double> row) const;

  // Worst |LUT - exact| softmax output difference over random probes.
  [[nodiscard]] double approximation_error(std::size_t samples = 64,
                                           std::size_t width = 64) const;

  // Cost of softmaxing `elements` values.
  [[nodiscard]] double latency_s(std::size_t elements) const noexcept;
  [[nodiscard]] double energy_j(std::size_t elements) const noexcept;

  [[nodiscard]] const SoftmaxLutConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] double lut_exp(double x) const noexcept;

  SoftmaxLutConfig config_;
  std::vector<double> table_;
};

}  // namespace lumos::tron
