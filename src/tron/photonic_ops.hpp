// Functional photonic tensor operations built on MR bank arrays.
//
// These helpers push real matrices through the analog device chain
// (normalisation -> DAC -> MR imprint -> crosstalk -> BPD -> ADC) tile by
// tile, exactly as the hardware streams them, so end-to-end fidelity against
// the exact reference implementations can be measured.  Both TRON and GHOST
// use them (GHOST's transform unit is the same bank-array primitive).
#pragma once

#include "nn/tensor.hpp"
#include "photonics/mr_bank.hpp"

namespace lumos::tron {

// Photonic C = A * B with per-operand symmetric normalisation.  A is M x K,
// B is K x N.  Tiles A's rows over the array's wavelength count and B's
// columns over the array's column count; partial sums accumulate digitally.
[[nodiscard]] nn::Matrix photonic_matmul(const nn::Matrix& a, const nn::Matrix& b,
                                         const phot::MrBankArray& array, Rng& rng,
                                         const phot::AnalogNoiseConfig& noise);

// Photonic residual add via coherent summation (paper Fig. 3b):
// returns a + b element-wise, each element passing through the summation unit.
[[nodiscard]] nn::Matrix photonic_residual_add(const nn::Matrix& a, const nn::Matrix& b,
                                               const phot::CoherentSummationUnit& adder,
                                               Rng& rng, const phot::AnalogNoiseConfig& noise);

// Optical LayerNorm (paper Section V.C: "layer normalization is implemented
// optically using a single MR, tuned by the LN parameter").  The statistics
// are computed digitally (they are per-row scalars); the per-element scale
// is applied in the optical domain through an MR imprint, which contributes
// its transmission error.
[[nodiscard]] nn::Matrix photonic_layer_norm(const nn::Matrix& x,
                                             std::span<const double> gamma,
                                             std::span<const double> beta,
                                             const phot::MrBank& ln_ring, Rng& rng,
                                             const phot::AnalogNoiseConfig& noise);

}  // namespace lumos::tron
