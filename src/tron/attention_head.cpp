#include "tron/attention_head.hpp"

#include <cmath>

#include "common/error.hpp"

namespace lumos::tron {

AttentionHeadUnit::AttentionHeadUnit(const TronConfig& config,
                                     const SoftmaxLutConfig& softmax_config)
    : config_(config),
      array_(config.bank, config.array_cols),
      softmax_(softmax_config) {}

nn::Matrix AttentionHeadUnit::forward(const nn::Matrix& x, const nn::Matrix& wq,
                                      const nn::Matrix& wk, const nn::Matrix& wv, Rng& rng,
                                      const phot::AnalogNoiseConfig& noise) const {
  LUMOS_EXPECTS(x.cols() == wq.rows());
  const double inv_sqrt_dk = 1.0 / std::sqrt(static_cast<double>(wq.cols()));

  // Offline-prepared operands (paper Fig. 5a): W_K^T / sqrt(d_K) and X^T.
  nn::Matrix wk_t = wk.transposed();
  for (double& v : wk_t.flat()) v *= inv_sqrt_dk;
  const nn::Matrix x_t = x.transposed();

  // All-optical score pipeline per eq. (3).
  const nn::Matrix q = photonic_matmul(x, wq, array_, rng, noise);
  const nn::Matrix b = photonic_matmul(q, wk_t, array_, rng, noise);
  nn::Matrix scores = photonic_matmul(b, x_t, array_, rng, noise);

  // Single O/E conversion: digital LUT softmax.
  for (std::size_t r = 0; r < scores.rows(); ++r) softmax_.apply(scores.row(r));

  // V and the attention-weighted values, optical again.
  const nn::Matrix v = photonic_matmul(x, wv, array_, rng, noise);
  return photonic_matmul(scores, v, array_, rng, noise);
}

std::size_t AttentionHeadUnit::matmul_passes(std::size_t m, std::size_t k, std::size_t n) const {
  const std::size_t kh = config_.array_rows;
  const std::size_t nh = config_.array_cols;
  const std::size_t tiles_k = (k + kh - 1) / kh;
  const std::size_t tiles_n = (n + nh - 1) / nh;
  return m * tiles_k * tiles_n;
}

namespace {
// Input-vector imprints for an M x K MatMul: each row is imprinted once per
// K-tile and broadcast to the arrays covering the parallel column tiles.
std::size_t input_imprints(std::size_t m, std::size_t k, std::size_t kh) {
  return m * ((k + kh - 1) / kh) * kh;
}
}  // namespace

ScorePathCosts AttentionHeadUnit::decomposed_score_costs(std::size_t seq_len,
                                                         std::size_t d_model,
                                                         std::size_t d_head) const {
  const phot::DacModel dac(config_.bank.dac);
  const phot::AdcModel adc(config_.bank.adc);
  const std::size_t kh = config_.array_rows;
  ScorePathCosts c;
  // Q = X W_Q (L x d_model x d_head), B = Q W_K^T (L x d_head x d_model),
  // S = B X^T (L x d_model x L): all stay optical.  The only ADCs are the
  // L*L score read-outs feeding softmax.
  const std::size_t p1 = matmul_passes(seq_len, d_model, d_head);
  const std::size_t p2 = matmul_passes(seq_len, d_head, d_model);
  const std::size_t p3 = matmul_passes(seq_len, d_model, seq_len);
  c.matmul_passes = p1 + p2 + p3;
  c.dac_conversions = input_imprints(seq_len, d_model, kh) +
                      input_imprints(seq_len, d_head, kh) +
                      input_imprints(seq_len, d_model, kh);
  c.adc_conversions = seq_len * seq_len;  // scores only
  c.latency_s = static_cast<double>(c.matmul_passes) / config_.symbol_rate_hz;
  c.energy_j = static_cast<double>(c.dac_conversions) * dac.energy_per_conversion_j() +
               static_cast<double>(c.adc_conversions) * adc.energy_per_conversion_j();
  return c;
}

ScorePathCosts AttentionHeadUnit::naive_score_costs(std::size_t seq_len, std::size_t d_model,
                                                    std::size_t d_head) const {
  const phot::DacModel dac(config_.bank.dac);
  const phot::AdcModel adc(config_.bank.adc);
  const std::size_t kh = config_.array_rows;
  ScorePathCosts c;
  // Q = X W_Q and K = X W_K (each L x d_model x d_head); K is detected
  // (L*d_head ADCs), transposed digitally, re-imprinted (L*d_head DACs), then
  // S = Q K^T (L x d_head x L).
  const std::size_t pq = matmul_passes(seq_len, d_model, d_head);
  const std::size_t pk = matmul_passes(seq_len, d_model, d_head);
  const std::size_t ps = matmul_passes(seq_len, d_head, seq_len);
  c.matmul_passes = pq + pk + ps;
  c.dac_conversions = 2 * input_imprints(seq_len, d_model, kh) +
                      input_imprints(seq_len, d_head, kh) + seq_len * d_head;
  c.adc_conversions = seq_len * seq_len + seq_len * d_head;
  // The transpose round-trip serialises: add the K read-out + re-imprint time
  // (one conversion each way per K element, ADC/DAC lanes = array columns).
  const double conversion_lanes = static_cast<double>(config_.array_cols);
  const double roundtrip_s =
      std::ceil(static_cast<double>(seq_len * d_head) / conversion_lanes) *
      (adc.conversion_latency_s() + dac.conversion_latency_s());
  c.latency_s = static_cast<double>(c.matmul_passes) / config_.symbol_rate_hz + roundtrip_s;
  c.energy_j = static_cast<double>(c.dac_conversions) * dac.energy_per_conversion_j() +
               static_cast<double>(c.adc_conversions) * adc.energy_per_conversion_j();
  return c;
}

}  // namespace lumos::tron
