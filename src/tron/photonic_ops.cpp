#include "tron/photonic_ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace lumos::tron {

nn::Matrix photonic_matmul(const nn::Matrix& a, const nn::Matrix& b,
                           const phot::MrBankArray& array, Rng& rng,
                           const phot::AnalogNoiseConfig& noise) {
  LUMOS_EXPECTS(a.cols() == b.rows());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  const std::size_t kh = array.rows();
  const std::size_t nh = array.columns();

  // Per-operand symmetric normalisation into [-1, 1] (the DAC range).
  const double sa = a.max_abs();
  const double sb = b.max_abs();
  nn::Matrix c(m, n);
  if (sa == 0.0 || sb == 0.0) return c;
  const double restore = sa * sb;

  std::vector<double> x_tile(kh);
  std::vector<double> w_tile;
  for (std::size_t k0 = 0; k0 < k; k0 += kh) {
    const std::size_t kt = std::min(kh, k - k0);
    for (std::size_t n0 = 0; n0 < n; n0 += nh) {
      const std::size_t nt = std::min(nh, n - n0);
      // Stage the weight tile once per (k0, n0); rows stream through it.
      w_tile.assign(kt * nt, 0.0);
      for (std::size_t kk = 0; kk < kt; ++kk)
        for (std::size_t nn_ = 0; nn_ < nt; ++nn_)
          w_tile[kk * nt + nn_] = b(k0 + kk, n0 + nn_) / sb;
      for (std::size_t row = 0; row < m; ++row) {
        x_tile.resize(kt);
        for (std::size_t kk = 0; kk < kt; ++kk) x_tile[kk] = a(row, k0 + kk) / sa;
        const std::vector<double> y = array.matvec(
            std::span<const double>(x_tile.data(), kt),
            std::span<const double>(w_tile.data(), kt * nt), rng, noise);
        // Digital partial-sum accumulation across K tiles.
        for (std::size_t nn_ = 0; nn_ < nt; ++nn_) c(row, n0 + nn_) += y[nn_] * restore;
      }
    }
  }
  return c;
}

nn::Matrix photonic_residual_add(const nn::Matrix& a, const nn::Matrix& b,
                                 const phot::CoherentSummationUnit& adder, Rng& rng,
                                 const phot::AnalogNoiseConfig& noise) {
  LUMOS_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  // Normalise the pair into the unit's [-1,1] window, sum optically, restore.
  const double scale = std::max(a.max_abs(), b.max_abs());
  nn::Matrix out(a.rows(), a.cols());
  if (scale == 0.0) return out;
  double vals[2];
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      vals[0] = a(r, c) / scale;
      vals[1] = b(r, c) / scale;
      out(r, c) = adder.sum(std::span<const double>(vals, 2), rng, noise) * scale;
    }
  }
  return out;
}

nn::Matrix photonic_layer_norm(const nn::Matrix& x, std::span<const double> gamma,
                               std::span<const double> beta, const phot::MrBank& ln_ring,
                               Rng& rng, const phot::AnalogNoiseConfig& noise) {
  LUMOS_EXPECTS(gamma.size() == x.cols() && beta.size() == x.cols());
  nn::Matrix out(x.rows(), x.cols());
  constexpr double kEps = 1e-5;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    double mean = 0.0;
    for (const double v : row) mean += v;
    mean /= static_cast<double>(row.size());
    double var = 0.0;
    for (const double v : row) var += (v - mean) * (v - mean);
    var /= static_cast<double>(row.size());
    const double inv = 1.0 / std::sqrt(var + kEps);
    // The normalised value passes through a single MR whose tuning encodes
    // the per-element LN scale; the imprint's transmission error is the
    // optical contribution to LN error.
    auto orow = out.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      const double normalised = (row[c] - mean) * inv;  // ~N(0,1): clamp to [-3,3]
      const double clamped = std::clamp(normalised / 3.0, -1.0, 1.0);
      double mag = std::fabs(clamped);
      double tuning_error = 0.0;
      if (noise.mr_tuning_error) tuning_error = rng.normal(0.0, noise.tuning_error_sigma_m);
      const double t = ln_ring.reference_ring().imprint(mag, tuning_error);
      const double floor = ln_ring.reference_ring().extinction_floor();
      const double span = ln_ring.reference_ring().max_transmission() - floor;
      const double read = std::clamp((t - floor) / span, 0.0, 1.0);
      const double signed_read = clamped < 0.0 ? -read : read;
      orow[c] = signed_read * 3.0 * gamma[c] + beta[c];
    }
  }
  return out;
}

}  // namespace lumos::tron
