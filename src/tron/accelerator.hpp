// TRON: the silicon-photonic transformer accelerator (paper Section V.C).
//
// Two faces, matching the paper's own Python simulator:
//   * `estimate()` — analytic performance/energy mapping of a transformer
//     configuration onto the photonic fabric (latency, energy, power, GOPS,
//     EPB, with per-stage breakdowns);
//   * `forward()` — functional execution of a (small) transformer through the
//     noisy analog device models, validated against the exact reference.
#pragma once

#include <string>
#include <vector>

#include "common/perf.hpp"
#include "nn/transformer.hpp"
#include "photonics/area.hpp"
#include "photonics/soa.hpp"
#include "tron/attention_head.hpp"
#include "tron/config.hpp"

namespace lumos::tron {

using lumos::PerfBreakdown;
using lumos::PerfReport;

class TronAccelerator {
 public:
  explicit TronAccelerator(const TronConfig& config);

  // Analytic mapping of `model` (one full-sequence inference, batch 1).
  [[nodiscard]] PerfReport estimate(const nn::TransformerConfig& model) const;

  // Batched inference: the per-layer weight stream from DRAM is amortised
  // over `batch` sequences pipelined through each layer's stationary weights.
  [[nodiscard]] PerfReport estimate_batch(const nn::TransformerConfig& model,
                                          std::size_t batch) const;

  // Autoregressive decoding: generates `generated_tokens` tokens after a
  // `prompt_len`-token prompt with a resident KV cache.  Each step is a
  // single-token pass whose weights must re-stream (batch-1 decode is the
  // classic memory-bound regime).
  [[nodiscard]] PerfReport estimate_generation(const nn::TransformerConfig& model,
                                               std::size_t prompt_len,
                                               std::size_t generated_tokens) const;

  // ONE autoregressive decode step at context length `context_len`, batched
  // over `batch` concurrent sequences (decode lanes) sharing the step's
  // per-layer weight re-stream.  Batch-1 decode is memory-bound, so batching
  // lanes amortises the DRAM stream — the continuous-batching win the serving
  // simulator schedules around.  At batch 1 the per-step latency/energies are
  // exactly one iteration of `estimate_generation`'s loop (pinned by test).
  [[nodiscard]] PerfReport estimate_decode_step(const nn::TransformerConfig& model,
                                                std::size_t batch,
                                                std::size_t context_len) const;

  // Floorplan summary of the whole fabric (bank arrays, converters, softmax
  // logic, SRAM, SOAs).
  [[nodiscard]] phot::AreaReport area() const;

  // Functional forward through the noisy photonic path.  Intended for small
  // configs (tiny_transformer): cost grows with model size like a real
  // software simulation of the analog datapath.
  [[nodiscard]] nn::Matrix forward(const nn::TransformerWeights& weights, const nn::Matrix& x,
                                   Rng& rng, const phot::AnalogNoiseConfig& noise) const;

  [[nodiscard]] const TronConfig& config() const noexcept { return config_; }
  [[nodiscard]] const AttentionHeadUnit& head_unit() const noexcept { return head_; }

  // Fabric-wide static (hold) power: tuning, converters, lasers idling,
  // digital control, SRAM leakage, DRAM standby, SOA bias.
  [[nodiscard]] double static_power_w() const;

 private:
  // Maps one pass of `trace` (scaled by `batch` rows) onto the fabric,
  // accumulating compute time and dynamic energies into `breakdown`.
  // Returns the pass's compute latency.
  [[nodiscard]] double map_trace(const std::vector<nn::OpSpec>& trace, std::size_t batch,
                                 PerfBreakdown& breakdown) const;

  TronConfig config_;
  AttentionHeadUnit head_;
  phot::CoherentSummationUnit residual_adder_;
  phot::MrBank ln_ring_;
  phot::Soa soa_;
  mem::SramModel weight_buffer_;
  mem::SramModel activation_buffer_;
  mem::DramModel dram_;
  // Mapping units hoisted out of map_trace so repeated estimates (the serving
  // simulator's cache misses) pay construction once per accelerator.
  phot::MrBankArray mapping_array_;
  phot::MrBankArray::PassEnergies pass_energies_;
  SoftmaxLut mapping_softmax_;
};

}  // namespace lumos::tron
