// TRON architecture configuration (paper Section V.C, Figs. 4-5).
//
// The accelerator is a pool of K x N microring bank arrays organised into
// H attention-head units (seven arrays each, per Fig. 5a) and a feed-forward
// unit, plus digital softmax LUT blocks, coherent-summation residual adders,
// LayerNorm rings, and SRAM buffers in front of an HBM-class main memory.
#pragma once

#include <cstddef>

#include "mem/sram.hpp"
#include "photonics/mr_bank.hpp"

namespace lumos::tron {

struct TronConfig {
  // ---- Photonic compute fabric ----
  std::size_t head_units = 12;          // H attention-head units
  std::size_t arrays_per_head = 7;      // paper Fig. 5a
  std::size_t ff_arrays = 32;           // bank arrays dedicated to the FF unit
  std::size_t array_rows = 16;          // K: wavelengths per waveguide (SNR-limited)
  std::size_t array_cols = 64;          // N: parallel dot-product columns
  double symbol_rate_hz = 10e9;         // photonic vector rate

  // ---- Digital support ----
  double digital_clock_hz = 1e9;
  std::size_t softmax_lut_units = 256;  // parallel LUT lanes
  double lut_energy_per_element_j = 0.7e-12;  // LUT read + normalise ALU ops
  double partial_sum_add_energy_j = 0.05e-12; // int accumulate per partial sum
  double digital_static_power_w = 1.5;

  // ---- Precision ----
  int bits = 8;

  // ---- Device models ----
  phot::MrBankConfig bank;              // ring/detector/converter/laser designs
  phot::HomodyneConfig homodyne;        // coherent residual adders

  // ---- Memory system ----
  mem::SramConfig weight_buffer{2 * 1024 * 1024, 64, 16, 32.0};
  mem::SramConfig activation_buffer{1 * 1024 * 1024, 64, 16, 32.0};
  mem::DramConfig dram;

  // Total bank arrays in the fabric.
  [[nodiscard]] std::size_t attention_arrays() const noexcept {
    return head_units * arrays_per_head;
  }
  [[nodiscard]] std::size_t total_arrays() const noexcept {
    return attention_arrays() + ff_arrays;
  }
};

// Default design point: the fixed point of the WDM design-space search (see
// bench_ablation_crosstalk) with the architectural counts from the paper's
// design-space analysis.
[[nodiscard]] TronConfig default_tron_config();

}  // namespace lumos::tron
