#include "tron/softmax_lut.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/ops.hpp"

namespace lumos::tron {

SoftmaxLut::SoftmaxLut(const SoftmaxLutConfig& config) : config_(config) {
  LUMOS_EXPECTS(config.table_size >= 8);
  LUMOS_EXPECTS(config.input_range > 0.0);
  LUMOS_EXPECTS(config.parallel_units >= 1);
  LUMOS_EXPECTS(config.clock_hz > 0.0);
  table_.resize(config.table_size);
  // Entry i holds exp(-range * i / (size-1)); inputs are in [-range, 0] after
  // max subtraction.
  for (std::size_t i = 0; i < config.table_size; ++i) {
    const double x = -config.input_range * static_cast<double>(i) /
                     static_cast<double>(config.table_size - 1);
    table_[i] = std::exp(x);
  }
}

double SoftmaxLut::lut_exp(double x) const noexcept {
  // x <= 0 expected; clamp to the covered range and round to the nearest
  // table entry (nearest-neighbour lookup, as a hardware LUT does).
  const double clamped = std::clamp(-x, 0.0, config_.input_range);
  const auto idx = static_cast<std::size_t>(
      std::lround(clamped / config_.input_range *
                  static_cast<double>(config_.table_size - 1)));
  return table_[idx];
}

void SoftmaxLut::apply(std::span<double> row) const {
  if (row.empty()) return;
  double mx = row[0];
  for (const double v : row) mx = std::max(mx, v);
  double sum = 0.0;
  for (double& v : row) {
    v = lut_exp(v - mx);
    sum += v;
  }
  for (double& v : row) v /= sum;
}

double SoftmaxLut::approximation_error(std::size_t samples, std::size_t width) const {
  Rng rng(0x50F7);
  double worst = 0.0;
  std::vector<double> probe(width);
  std::vector<double> exact(width);
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t i = 0; i < width; ++i) probe[i] = rng.uniform(-8.0, 8.0);
    exact = probe;
    nn::softmax_inplace(exact);
    apply(probe);
    for (std::size_t i = 0; i < width; ++i) {
      worst = std::max(worst, std::fabs(probe[i] - exact[i]));
    }
  }
  return worst;
}

double SoftmaxLut::latency_s(std::size_t elements) const noexcept {
  // Two passes (exp+sum, normalise) over the elements, `parallel_units` wide.
  const double cycles =
      2.0 * std::ceil(static_cast<double>(elements) / static_cast<double>(config_.parallel_units));
  return cycles / config_.clock_hz;
}

double SoftmaxLut::energy_j(std::size_t elements) const noexcept {
  return static_cast<double>(elements) * config_.energy_per_element_j;
}

}  // namespace lumos::tron
