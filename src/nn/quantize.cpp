#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace lumos::nn {

Quantizer::Quantizer(int bits) : bits_(bits) {
  LUMOS_EXPECTS(bits >= 2 && bits <= 16);
  qmax_ = (1 << (bits - 1)) - 1;
}

QuantizedMatrix Quantizer::quantize(const Matrix& m) const {
  QuantizedMatrix q;
  q.rows = m.rows();
  q.cols = m.cols();
  q.codes.resize(m.size());
  const double amax = m.max_abs();
  q.scale = amax > 0.0 ? amax / static_cast<double>(qmax_) : 1.0;
  const auto data = m.flat();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double code = std::round(data[i] / q.scale);
    const double clamped = std::clamp(code, -static_cast<double>(qmax_),
                                      static_cast<double>(qmax_));
    q.codes[i] = static_cast<std::int8_t>(clamped);
  }
  return q;
}

Matrix Quantizer::dequantize(const QuantizedMatrix& q) {
  Matrix m(q.rows, q.cols);
  auto out = m.flat();
  for (std::size_t i = 0; i < q.codes.size(); ++i) {
    out[i] = static_cast<double>(q.codes[i]) * q.scale;
  }
  return m;
}

Matrix Quantizer::normalized(const QuantizedMatrix& q, double* scale_out) {
  // The largest representable code maps to 1.0.
  double qmax = 0.0;
  for (const std::int8_t c : q.codes) {
    qmax = std::max(qmax, std::fabs(static_cast<double>(c)));
  }
  // Preserve exact zeros; normalise against the symmetric grid maximum so
  // that the restoring scale is shared per-tensor.
  const double grid_max = 127.0;  // defensive: normalized() is int8-specific
  Matrix m(q.rows, q.cols);
  auto out = m.flat();
  for (std::size_t i = 0; i < q.codes.size(); ++i) {
    out[i] = static_cast<double>(q.codes[i]) / grid_max;
  }
  if (scale_out != nullptr) *scale_out = q.scale * grid_max;
  return m;
}

double Quantizer::max_round_trip_error(const Matrix& m) const {
  const double amax = m.max_abs();
  const double scale = amax > 0.0 ? amax / static_cast<double>(qmax_) : 1.0;
  return scale / 2.0;
}

}  // namespace lumos::nn
