#include "nn/transformer.hpp"

#include <cmath>

#include "common/error.hpp"

namespace lumos::nn {

std::size_t TransformerConfig::parameter_count() const noexcept {
  // Per layer: 4 attention projections (d^2) + FF (2 * d * d_ff) + LN params.
  const std::size_t per_layer =
      4 * d_model * d_model + 2 * d_model * d_ff + 4 * d_model;
  // Seq2seq decoder layers add a cross-attention block (another 4 d^2 + LN).
  const std::size_t per_decoder_layer = per_layer + 4 * d_model * d_model + 2 * d_model;
  return layers * per_layer + decoder_layers * per_decoder_layer;
}

std::size_t TransformerConfig::mac_count() const noexcept {
  const std::size_t l = seq_len;
  const std::size_t d = d_model;
  // QKV projections + output projection: 4 * L * d * d.
  // Attention scores and weighted values: 2 * L * L * d (summed over heads).
  // Feed-forward: 2 * L * d * d_ff.
  const std::size_t per_layer = 4 * l * d * d + 2 * l * l * d + 2 * l * d * d_ff;
  std::size_t total = layers * per_layer;
  if (decoder_layers > 0) {
    const std::size_t s = src_len;
    // Decoder layer = self-attention + FF (as per_layer with L = dst) plus
    // cross-attention: Q/output projections over dst (2*L*d^2), K/V over the
    // encoder output (2*S*d^2), and score/value MatMuls (2*L*S*d).
    const std::size_t cross = 2 * l * d * d + 2 * s * d * d + 2 * l * s * d;
    total += decoder_layers * (per_layer + cross);
  }
  return total;
}

TransformerConfig bert_base(std::size_t seq_len) {
  return {"BERT-base", TransformerKind::kEncoder, 12, 768, 12, 3072, seq_len};
}

TransformerConfig bert_large(std::size_t seq_len) {
  return {"BERT-large", TransformerKind::kEncoder, 24, 1024, 16, 4096, seq_len};
}

TransformerConfig gpt2_small(std::size_t seq_len) {
  return {"GPT-2", TransformerKind::kDecoder, 12, 768, 12, 3072, seq_len};
}

TransformerConfig vit_base() {
  // ViT-Base/16 at 224x224: 196 patch tokens + [class].
  return {"ViT-Base", TransformerKind::kVision, 12, 768, 12, 3072, 197};
}

TransformerConfig original_transformer(std::size_t src_len, std::size_t dst_len) {
  TransformerConfig c{"Transformer-base", TransformerKind::kSeq2Seq, 6, 512, 8, 2048, dst_len};
  c.decoder_layers = 6;
  c.src_len = src_len;
  return c;
}

TransformerConfig tiny_transformer(std::size_t seq_len) {
  return {"Tiny", TransformerKind::kEncoder, 2, 32, 2, 64, seq_len};
}

std::vector<TransformerConfig> llm_model_zoo() {
  return {bert_base(), bert_large(), gpt2_small(), vit_base()};
}

TransformerWeights TransformerWeights::random(const TransformerConfig& config,
                                              std::uint64_t seed) {
  LUMOS_EXPECTS(config.layers >= 1);
  LUMOS_EXPECTS(config.d_model % config.heads == 0);
  Rng rng(seed);
  TransformerWeights w;
  w.config = config;
  w.layers.resize(config.layers);
  const double attn_std = 1.0 / std::sqrt(static_cast<double>(config.d_model));
  const double ff_std = 1.0 / std::sqrt(static_cast<double>(config.d_ff));
  for (auto& layer : w.layers) {
    layer.wq = Matrix(config.d_model, config.d_model);
    layer.wk = Matrix(config.d_model, config.d_model);
    layer.wv = Matrix(config.d_model, config.d_model);
    layer.wo = Matrix(config.d_model, config.d_model);
    layer.w1 = Matrix(config.d_model, config.d_ff);
    layer.w2 = Matrix(config.d_ff, config.d_model);
    layer.wq.fill_normal(rng, attn_std);
    layer.wk.fill_normal(rng, attn_std);
    layer.wv.fill_normal(rng, attn_std);
    layer.wo.fill_normal(rng, attn_std);
    layer.w1.fill_normal(rng, attn_std);
    layer.w2.fill_normal(rng, ff_std);
    layer.ln1_gamma.assign(config.d_model, 1.0);
    layer.ln1_beta.assign(config.d_model, 0.0);
    layer.ln2_gamma.assign(config.d_model, 1.0);
    layer.ln2_beta.assign(config.d_model, 0.0);
  }
  return w;
}

namespace {
// Scratch buffers for one layer forward, reused across layers and heads so
// the reference execution performs no repeated allocations after the first
// layer (every matmul below is a *_into into one of these).
struct LayerWorkspace {
  Matrix q, k, v;        // projections (seq x d_model)
  Matrix qh, kh, vh;     // per-head slices (seq x head_dim)
  Matrix scores, oh;     // attention scratch / per-head output
  Matrix concat, attn;   // concatenated heads, output projection
  Matrix h1, ff, ff2;    // residual 1, feed-forward hidden and output
};

// Extracts head `h`'s slice (seq x head_dim) from a seq x d_model matrix.
void head_slice_into(const Matrix& m, std::size_t h, std::size_t head_dim, Matrix& out) {
  out.resize(m.rows(), head_dim);
  const std::size_t off = h * head_dim;
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < head_dim; ++c) out(r, c) = m(r, off + c);
}

void write_head_slice(Matrix& dst, const Matrix& src, std::size_t h, std::size_t head_dim) {
  const std::size_t off = h * head_dim;
  for (std::size_t r = 0; r < src.rows(); ++r)
    for (std::size_t c = 0; c < head_dim; ++c) dst(r, off + c) = src(r, c);
}

// y = a + b element-wise into a reused buffer.
void add_into(const Matrix& a, const Matrix& b, Matrix& y) {
  y.resize(a.rows(), a.cols());
  const auto fa = a.flat();
  const auto fb = b.flat();
  const auto fy = y.flat();
  for (std::size_t i = 0; i < fy.size(); ++i) fy[i] = fa[i] + fb[i];
}

void layer_forward_ws(const TransformerLayerWeights& w, const TransformerConfig& config,
                      const Matrix& x, LayerWorkspace& ws, Matrix& out) {
  LUMOS_EXPECTS(x.cols() == config.d_model);
  const std::size_t head_dim = config.head_dim();

  // Multi-head attention.
  x.matmul_into(w.wq, ws.q);
  x.matmul_into(w.wk, ws.k);
  x.matmul_into(w.wv, ws.v);
  ws.concat.resize(x.rows(), config.d_model);
  for (std::size_t h = 0; h < config.heads; ++h) {
    head_slice_into(ws.q, h, head_dim, ws.qh);
    head_slice_into(ws.k, h, head_dim, ws.kh);
    head_slice_into(ws.v, h, head_dim, ws.vh);
    scaled_dot_product_attention_into(ws.qh, ws.kh, ws.vh, ws.scores, ws.oh);
    write_head_slice(ws.concat, ws.oh, h, head_dim);
  }
  ws.concat.matmul_into(w.wo, ws.attn);

  // Residual + LayerNorm.
  add_into(ws.attn, x, ws.h1);
  layer_norm_rows(ws.h1, w.ln1_gamma, w.ln1_beta);

  // Feed-forward with ReLU (paper Section II: "two dense layers with a RELU
  // activation in between").
  ws.h1.matmul_into(w.w1, ws.ff);
  relu(ws.ff);
  ws.ff.matmul_into(w.w2, ws.ff2);

  add_into(ws.ff2, ws.h1, out);
  layer_norm_rows(out, w.ln2_gamma, w.ln2_beta);
}
}  // namespace

Matrix reference_layer_forward(const TransformerLayerWeights& w, const TransformerConfig& config,
                               const Matrix& x) {
  LayerWorkspace ws;
  Matrix out;
  layer_forward_ws(w, config, x, ws, out);
  return out;
}

Matrix reference_forward(const TransformerWeights& weights, const Matrix& x) {
  // One workspace (and one ping-pong output buffer) for the whole stack: the
  // steady state allocates nothing per layer or per head.
  LayerWorkspace ws;
  Matrix h = x;
  Matrix out;
  for (const auto& layer : weights.layers) {
    layer_forward_ws(layer, weights.config, h, ws, out);
    std::swap(h, out);
  }
  return h;
}

std::vector<OpSpec> layer_trace(const TransformerConfig& config) {
  const std::size_t l = config.seq_len;
  const std::size_t d = config.d_model;
  const std::size_t hd = config.head_dim();
  const std::size_t h = config.heads;
  std::vector<OpSpec> ops;
  ops.push_back({OpKind::kMatMul, l, d, d, 1, "Q = X Wq"});
  ops.push_back({OpKind::kMatMul, l, d, d, 1, "K = X Wk"});
  ops.push_back({OpKind::kMatMul, l, d, d, 1, "V = X Wv"});
  ops.push_back({OpKind::kMatMul, l, hd, l, h, "S = Q K^T (per head)"});
  ops.push_back({OpKind::kSoftmax, l, 0, l, h, "softmax(S)"});
  ops.push_back({OpKind::kMatMul, l, l, hd, h, "A = softmax(S) V (per head)"});
  ops.push_back({OpKind::kMatMul, l, d, d, 1, "O = concat(A) Wo"});
  ops.push_back({OpKind::kResidualAdd, l, 0, d, 1, "O + X"});
  ops.push_back({OpKind::kLayerNorm, l, 0, d, 1, "LN1"});
  ops.push_back({OpKind::kMatMul, l, d, config.d_ff, 1, "F1 = H W1"});
  ops.push_back({OpKind::kActivation, l, 0, config.d_ff, 1, "ReLU"});
  ops.push_back({OpKind::kMatMul, l, config.d_ff, d, 1, "F2 = F1 W2"});
  ops.push_back({OpKind::kResidualAdd, l, 0, d, 1, "F2 + H"});
  ops.push_back({OpKind::kLayerNorm, l, 0, d, 1, "LN2"});
  return ops;
}

std::vector<OpSpec> decoder_layer_trace(const TransformerConfig& config) {
  LUMOS_EXPECTS(config.decoder_layers > 0 && config.src_len > 0);
  const std::size_t l = config.seq_len;  // target length
  const std::size_t s = config.src_len;  // source (encoder output) length
  const std::size_t d = config.d_model;
  const std::size_t hd = config.head_dim();
  const std::size_t h = config.heads;
  // Masked self-attention (same shape as an encoder layer at full sequence).
  std::vector<OpSpec> ops = layer_trace(config);
  // Remove the FF tail (it runs after cross-attention); the encoder trace is
  // [0..6] attention, [7..8] add+LN, [9..13] FF+add+LN.
  ops.resize(9);
  // Cross-attention block.
  ops.push_back({OpKind::kMatMul, l, d, d, 1, "Qx = H Wq (cross)"});
  ops.push_back({OpKind::kMatMul, s, d, d, 1, "Kx = E Wk (cross)"});
  ops.push_back({OpKind::kMatMul, s, d, d, 1, "Vx = E Wv (cross)"});
  ops.push_back({OpKind::kMatMul, l, hd, s, h, "Sx = Qx Kx^T (per head)"});
  ops.push_back({OpKind::kSoftmax, l, 0, s, h, "softmax(Sx)"});
  ops.push_back({OpKind::kMatMul, l, s, hd, h, "Ax = softmax(Sx) Vx (per head)"});
  ops.push_back({OpKind::kMatMul, l, d, d, 1, "Ox = concat(Ax) Wo (cross)"});
  ops.push_back({OpKind::kResidualAdd, l, 0, d, 1, "Ox + H"});
  ops.push_back({OpKind::kLayerNorm, l, 0, d, 1, "LNx"});
  // Feed-forward tail.
  ops.push_back({OpKind::kMatMul, l, d, config.d_ff, 1, "F1 = H W1"});
  ops.push_back({OpKind::kActivation, l, 0, config.d_ff, 1, "ReLU"});
  ops.push_back({OpKind::kMatMul, l, config.d_ff, d, 1, "F2 = F1 W2"});
  ops.push_back({OpKind::kResidualAdd, l, 0, d, 1, "F2 + H"});
  ops.push_back({OpKind::kLayerNorm, l, 0, d, 1, "LN3"});
  return ops;
}

std::vector<OpSpec> generation_layer_trace(const TransformerConfig& config,
                                           std::size_t context_len) {
  LUMOS_EXPECTS(context_len >= 1);
  const std::size_t d = config.d_model;
  const std::size_t hd = config.head_dim();
  const std::size_t h = config.heads;
  const std::size_t ctx = context_len;
  std::vector<OpSpec> ops;
  // One new token: projections are single-row; attention runs against the
  // KV cache of length ctx.
  ops.push_back({OpKind::kMatMul, 1, d, d, 1, "q = x Wq"});
  ops.push_back({OpKind::kMatMul, 1, d, d, 1, "k = x Wk"});
  ops.push_back({OpKind::kMatMul, 1, d, d, 1, "v = x Wv"});
  ops.push_back({OpKind::kMatMul, 1, hd, ctx, h, "s = q K_cache^T (per head)"});
  ops.push_back({OpKind::kSoftmax, 1, 0, ctx, h, "softmax(s)"});
  ops.push_back({OpKind::kMatMul, 1, ctx, hd, h, "a = softmax(s) V_cache (per head)"});
  ops.push_back({OpKind::kMatMul, 1, d, d, 1, "o = concat(a) Wo"});
  ops.push_back({OpKind::kResidualAdd, 1, 0, d, 1, "o + x"});
  ops.push_back({OpKind::kLayerNorm, 1, 0, d, 1, "LN1"});
  ops.push_back({OpKind::kMatMul, 1, d, config.d_ff, 1, "F1 = h W1"});
  ops.push_back({OpKind::kActivation, 1, 0, config.d_ff, 1, "ReLU"});
  ops.push_back({OpKind::kMatMul, 1, config.d_ff, d, 1, "F2 = F1 W2"});
  ops.push_back({OpKind::kResidualAdd, 1, 0, d, 1, "F2 + h"});
  ops.push_back({OpKind::kLayerNorm, 1, 0, d, 1, "LN2"});
  return ops;
}

std::size_t generation_step_macs(const TransformerConfig& config, std::size_t context_len) {
  std::size_t macs = 0;
  for (const OpSpec& op : generation_layer_trace(config, context_len)) macs += op.macs();
  return macs * config.layers;
}

}  // namespace lumos::nn
