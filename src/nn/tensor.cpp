#include "nn/tensor.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace lumos::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill_uniform(Rng& rng, double lo, double hi) {
  for (double& v : data_) v = rng.uniform(lo, hi);
}

void Matrix::fill_normal(Rng& rng, double stddev) {
  for (double& v : data_) v = rng.normal(0.0, stddev);
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (const double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

namespace {

// Kernel blocking parameters.  MR x NR is the register tile (MR independent
// accumulator rows of NR contiguous output columns — both compile-time
// constants so the accumulators live entirely in vector registers and the
// column loop vectorises without reassociating any sum); KC bounds the
// k-panel so the active B panel (KC x NR doubles) stays L1-resident while
// the tile sweeps the chunk's rows.  4 x 32 at KC 256 measured fastest on
// AVX-512 (16 accumulator registers) and stays sensible on AVX2.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 32;
constexpr std::size_t kKc = 256;

// Row grain for parallel chunking: sized so one chunk is a few million MACs
// (keeps scheduling overhead negligible), depending only on the shapes so
// chunk boundaries — and therefore results — never depend on the worker
// count.
std::size_t row_grain(std::size_t k, std::size_t n) {
  const std::size_t macs_per_row = k * n < 1 ? 1 : k * n;
  const std::size_t g = (std::size_t{1} << 22) / macs_per_row;
  return g < kMr ? kMr : g;
}

// C[r][j0..j0+NR) += A[r][kb..ke) * B[kb..ke)[j0..j0+NR) for MR rows.
// Accumulation order over k is strictly ascending (same order as a naive
// k-inner loop), so blocking never changes the result bits.
template <std::size_t MR>
void micro_tile(const double* __restrict a, std::size_t lda, const double* __restrict b,
                std::size_t ldb, double* __restrict c, std::size_t ldc, std::size_t kb,
                std::size_t ke, std::size_t j0) {
  double acc[MR][kNr];
  for (std::size_t r = 0; r < MR; ++r)
    for (std::size_t j = 0; j < kNr; ++j) acc[r][j] = c[r * ldc + j0 + j];
  for (std::size_t k = kb; k < ke; ++k) {
    const double* __restrict brow = b + k * ldb + j0;
    for (std::size_t r = 0; r < MR; ++r) {
      const double av = a[r * lda + k];
      for (std::size_t j = 0; j < kNr; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (std::size_t r = 0; r < MR; ++r)
    for (std::size_t j = 0; j < kNr; ++j) c[r * ldc + j0 + j] = acc[r][j];
}

// C[r0..r1) = A[r0..r1) * B for one row chunk (full k and n extents).
void gemm_chunk(const double* __restrict a, const double* __restrict b, double* __restrict c,
                std::size_t r0, std::size_t r1, std::size_t k, std::size_t n) {
  for (std::size_t r = r0; r < r1; ++r)
    for (std::size_t j = 0; j < n; ++j) c[r * n + j] = 0.0;
  const std::size_t n_main = n - n % kNr;
  const std::size_t rows = r1 - r0;
  const std::size_t r_main = r1 - rows % kMr;
  for (std::size_t kb = 0; kb < k; kb += kKc) {
    const std::size_t ke = kb + kKc < k ? kb + kKc : k;
    for (std::size_t j0 = 0; j0 < n_main; j0 += kNr) {
      std::size_t r = r0;
      for (; r < r_main; r += kMr) micro_tile<kMr>(a + r * k, k, b, n, c + r * n, n, kb, ke, j0);
      for (; r < r1; ++r) micro_tile<1>(a + r * k, k, b, n, c + r * n, n, kb, ke, j0);
    }
    // Column tail: scalar accumulators, still ascending in k.
    for (std::size_t r = r0; r < r1; ++r) {
      for (std::size_t j = n_main; j < n; ++j) {
        double acc = c[r * n + j];
        for (std::size_t kk = kb; kk < ke; ++kk) acc += a[r * k + kk] * b[kk * n + j];
        c[r * n + j] = acc;
      }
    }
  }
}

// C[r0..r1) = A[r0..r1) * B^T where B is n x k (dot-product form; both
// operands stream contiguously along k, so no transpose is materialised).
// Each dot runs 8 fixed k-lane partial sums (lane l accumulates k = l mod 8)
// combined in ascending lane order — a deterministic reassociation that lets
// the compiler keep the lanes in one vector register.  Four output columns
// share each pass over the A row.
void gemm_nt_chunk(const double* __restrict a, const double* __restrict b,
                   double* __restrict c, std::size_t r0, std::size_t r1, std::size_t k,
                   std::size_t n) {
  constexpr std::size_t kLanes = 8;
  constexpr std::size_t kJt = 4;
  const std::size_t n_main = n - n % kJt;
  const std::size_t k_main = k - k % kLanes;
  for (std::size_t r = r0; r < r1; ++r) {
    const double* __restrict arow = a + r * k;
    double* __restrict crow = c + r * n;
    for (std::size_t j0 = 0; j0 < n_main; j0 += kJt) {
      double lane[kJt][kLanes] = {};
      for (std::size_t kk = 0; kk < k_main; kk += kLanes) {
        for (std::size_t t = 0; t < kJt; ++t) {
          const double* __restrict brow = b + (j0 + t) * k + kk;
          for (std::size_t l = 0; l < kLanes; ++l) lane[t][l] += arow[kk + l] * brow[l];
        }
      }
      for (std::size_t t = 0; t < kJt; ++t) {
        double s = 0.0;
        for (std::size_t l = 0; l < kLanes; ++l) s += lane[t][l];
        for (std::size_t kk = k_main; kk < k; ++kk) s += arow[kk] * b[(j0 + t) * k + kk];
        crow[j0 + t] = s;
      }
    }
    for (std::size_t j = n_main; j < n; ++j) {
      const double* __restrict brow = b + j * k;
      double lane[kLanes] = {};
      for (std::size_t kk = 0; kk < k_main; kk += kLanes)
        for (std::size_t l = 0; l < kLanes; ++l) lane[l] += arow[kk + l] * brow[kk + l];
      double s = 0.0;
      for (std::size_t l = 0; l < kLanes; ++l) s += lane[l];
      for (std::size_t kk = k_main; kk < k; ++kk) s += arow[kk] * brow[kk];
      crow[j] = s;
    }
  }
}

}  // namespace

void Matrix::matmul_into(const Matrix& other, Matrix& out) const {
  LUMOS_EXPECTS_MSG(cols_ == other.rows_, "matmul inner dimensions must agree");
  LUMOS_EXPECTS_MSG(&out != this && &out != &other, "matmul_into output must not alias");
  out.resize(rows_, other.cols_);
  const std::size_t k = cols_;
  const std::size_t n = other.cols_;
  const double* a = data_.data();
  const double* b = other.data_.data();
  double* c = out.data_.data();
  parallel_for(0, rows_, row_grain(k, n),
               [&](std::size_t r0, std::size_t r1) { gemm_chunk(a, b, c, r0, r1, k, n); });
}

Matrix Matrix::matmul(const Matrix& other) const {
  Matrix out;
  matmul_into(other, out);
  return out;
}

void Matrix::matmul_nt_into(const Matrix& other, Matrix& out) const {
  LUMOS_EXPECTS_MSG(cols_ == other.cols_, "matmul_nt contraction dimensions must agree");
  LUMOS_EXPECTS_MSG(&out != this && &out != &other, "matmul_nt_into output must not alias");
  out.resize(rows_, other.rows_);
  const std::size_t k = cols_;
  const std::size_t n = other.rows_;
  const double* a = data_.data();
  const double* b = other.data_.data();
  double* c = out.data_.data();
  parallel_for(0, rows_, row_grain(k, n),
               [&](std::size_t r0, std::size_t r1) { gemm_nt_chunk(a, b, c, r0, r1, k, n); });
}

Matrix Matrix::matmul_nt(const Matrix& other) const {
  Matrix out;
  matmul_nt_into(other, out);
  return out;
}

Matrix Matrix::add(const Matrix& other) const {
  LUMOS_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + other.data_[i];
  return out;
}

double Matrix::relative_error(const Matrix& reference) const {
  LUMOS_EXPECTS(rows_ == reference.rows_ && cols_ == reference.cols_);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - reference.data_[i];
    num += d * d;
    den += reference.data_[i] * reference.data_[i];
  }
  if (den == 0.0) {
    return num == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return std::sqrt(num / den);
}

}  // namespace lumos::nn
