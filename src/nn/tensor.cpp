#include "nn/tensor.hpp"

#include <cmath>

#include "common/error.hpp"

namespace lumos::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill_uniform(Rng& rng, double lo, double hi) {
  for (double& v : data_) v = rng.uniform(lo, hi);
}

void Matrix::fill_normal(Rng& rng, double stddev) {
  for (double& v : data_) v = rng.normal(0.0, stddev);
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (const double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::matmul(const Matrix& other) const {
  LUMOS_EXPECTS_MSG(cols_ == other.rows_, "matmul inner dimensions must agree");
  Matrix out(rows_, other.cols_);
  // ikj loop order for cache-friendly access of `other`.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const std::size_t n = other.cols_;
      for (std::size_t j = 0; j < n; ++j) out(i, j) += a * other(k, j);
    }
  }
  return out;
}

Matrix Matrix::add(const Matrix& other) const {
  LUMOS_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + other.data_[i];
  return out;
}

double Matrix::relative_error(const Matrix& reference) const {
  LUMOS_EXPECTS(rows_ == reference.rows_ && cols_ == reference.cols_);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - reference.data_[i];
    num += d * d;
    den += reference.data_[i] * reference.data_[i];
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : 1e300;
  return std::sqrt(num / den);
}

}  // namespace lumos::nn
