// Exact functional layer operations shared by the reference transformer and
// GNN executions.  These are the ground truth the photonic paths are
// validated against.
#pragma once

#include <span>

#include "nn/tensor.hpp"

namespace lumos::nn {

// In-place row-wise softmax.
void softmax_rows(Matrix& m);

// Row-wise softmax of `row` into itself.
void softmax_inplace(std::span<double> row);

// In-place row-wise layer normalisation with learned gain/bias (sizes must
// equal the column count); epsilon stabilises small variances.
void layer_norm_rows(Matrix& m, std::span<const double> gamma, std::span<const double> beta,
                     double epsilon = 1e-5);

// Element-wise activations (in place).
void relu(Matrix& m);
void gelu(Matrix& m);
void sigmoid(Matrix& m);
void tanh_act(Matrix& m);

// Scaled dot-product attention (paper eq. (1)):
//   attention(Q, K, V) = softmax(Q K^T / sqrt(d_k)) V
// Q: L x d_k, K: L x d_k, V: L x d_v  ->  L x d_v.
// Q K^T goes through the transpose-free kernel, so K is never copied.
[[nodiscard]] Matrix scaled_dot_product_attention(const Matrix& q, const Matrix& k,
                                                  const Matrix& v);

// Allocation-free attention: `scores` (resized to L x L) and `out` (resized
// to L x d_v) are scratch/output buffers reused across calls; neither may
// alias q/k/v.
void scaled_dot_product_attention_into(const Matrix& q, const Matrix& k, const Matrix& v,
                                       Matrix& scores, Matrix& out);

// Linear layer  y = x W + b  (b may be empty for no bias).
[[nodiscard]] Matrix linear(const Matrix& x, const Matrix& w, std::span<const double> bias);

// Fraction of rows whose argmax matches between `a` and `b` — the
// classification-agreement proxy used by the fidelity study (a noisy analog
// datapath is "accurate enough" when the predicted class never flips).
[[nodiscard]] double argmax_agreement(const Matrix& a, const Matrix& b);

}  // namespace lumos::nn
