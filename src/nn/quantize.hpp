// Symmetric per-tensor int8 quantisation.
//
// Paper Section VI: "employing 8-bit model quantization yields algorithmic
// accuracy comparable to models utilizing full (32-bit) precision.
// Consequently, we focused on the acceleration of Transformer and GNN models
// with 8-bit precision."  The photonic datapath consumes values normalised to
// [-1, 1]; this module provides the int8 <-> normalised mapping and its error
// metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace lumos::nn {

// A quantised matrix: int8 codes plus the symmetric scale such that
// value ~= code * scale, code in [-127, 127] (-128 unused, symmetric grid).
struct QuantizedMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int8_t> codes;
  double scale = 0.0;

  [[nodiscard]] std::int8_t at(std::size_t r, std::size_t c) const noexcept {
    return codes[r * cols + c];
  }
};

class Quantizer {
 public:
  explicit Quantizer(int bits = 8);

  // Symmetric per-tensor quantisation; scale = max|x| / (2^(bits-1) - 1).
  [[nodiscard]] QuantizedMatrix quantize(const Matrix& m) const;

  // Reconstruction back to doubles.
  [[nodiscard]] static Matrix dequantize(const QuantizedMatrix& q);

  // Normalised view: codes mapped to [-1, 1] (code / qmax), the range the
  // photonic units accept.  `scale_out` returns the factor that restores the
  // original magnitude (scale * qmax).
  [[nodiscard]] static Matrix normalized(const QuantizedMatrix& q, double* scale_out = nullptr);

  // Round-trip worst-case absolute error bound: scale / 2.
  [[nodiscard]] double max_round_trip_error(const Matrix& m) const;

  [[nodiscard]] int bits() const noexcept { return bits_; }
  [[nodiscard]] int qmax() const noexcept { return qmax_; }

 private:
  int bits_;
  int qmax_;
};

}  // namespace lumos::nn
