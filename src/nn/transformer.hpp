// Transformer model description, weights, exact reference forward, and the
// operation trace consumed by the accelerator mapping (paper Section II and
// Fig. 1).
//
// Encoder-only (BERT), decoder-only (GPT) and vision (ViT) variants share the
// same per-layer computation for a full-sequence inference pass: multi-head
// attention (eq. 1), output projection, residual + LayerNorm, position-wise
// feed-forward, residual + LayerNorm.  The trace lists every tensor operation
// with its dimensions so hardware models can map them without re-deriving
// model structure.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/ops.hpp"
#include "nn/tensor.hpp"

namespace lumos::nn {

enum class TransformerKind { kEncoder, kDecoder, kVision, kSeq2Seq };

struct TransformerConfig {
  std::string name;
  TransformerKind kind = TransformerKind::kEncoder;
  std::size_t layers = 12;          // encoder stack depth (or decoder-only depth)
  std::size_t d_model = 768;
  std::size_t heads = 12;
  std::size_t d_ff = 3072;
  std::size_t seq_len = 128;
  // Seq2seq only (paper Fig. 1): depth of the decoder stack, whose layers add
  // a cross-attention block over the encoder output, and the source length.
  std::size_t decoder_layers = 0;
  std::size_t src_len = 0;

  [[nodiscard]] std::size_t head_dim() const noexcept { return d_model / heads; }
  // Total weight parameters of the encoder/decoder stack (no embeddings).
  [[nodiscard]] std::size_t parameter_count() const noexcept;
  // Multiply-accumulate count of one full-sequence forward pass.
  [[nodiscard]] std::size_t mac_count() const noexcept;
  // Operation count (2 * MACs), the unit of the paper's GOPS figures.
  [[nodiscard]] std::size_t op_count() const noexcept { return 2 * mac_count(); }
};

// Published model configurations used in the paper's comparison figures.
[[nodiscard]] TransformerConfig bert_base(std::size_t seq_len = 128);
[[nodiscard]] TransformerConfig bert_large(std::size_t seq_len = 128);
[[nodiscard]] TransformerConfig gpt2_small(std::size_t seq_len = 256);
[[nodiscard]] TransformerConfig vit_base();
// The original "Attention is All You Need" base model (paper Fig. 1):
// 6 encoder + 6 decoder layers, d_model 512, 8 heads, d_ff 2048.
[[nodiscard]] TransformerConfig original_transformer(std::size_t src_len = 128,
                                                     std::size_t dst_len = 128);
// Reduced-size config for functional (noise-path) validation.
[[nodiscard]] TransformerConfig tiny_transformer(std::size_t seq_len = 16);
// The standard evaluation suite for the LLM figures.
[[nodiscard]] std::vector<TransformerConfig> llm_model_zoo();

// One layer's weights.
struct TransformerLayerWeights {
  Matrix wq, wk, wv;   // d_model x d_model
  Matrix wo;           // d_model x d_model
  Matrix w1;           // d_model x d_ff
  Matrix w2;           // d_ff x d_model
  std::vector<double> ln1_gamma, ln1_beta;
  std::vector<double> ln2_gamma, ln2_beta;
};

// Full-model weights with deterministic pseudo-random initialisation.
struct TransformerWeights {
  TransformerConfig config;
  std::vector<TransformerLayerWeights> layers;

  static TransformerWeights random(const TransformerConfig& config, std::uint64_t seed);
};

// Exact reference forward pass of the full stack on input `x`
// (seq_len x d_model).  Returns the final hidden states.
[[nodiscard]] Matrix reference_forward(const TransformerWeights& weights, const Matrix& x);

// Reference forward of a single layer (used by layer-level fidelity tests).
[[nodiscard]] Matrix reference_layer_forward(const TransformerLayerWeights& w,
                                             const TransformerConfig& config, const Matrix& x);

// ---------------------------------------------------------------------------
// Operation trace
// ---------------------------------------------------------------------------

enum class OpKind {
  kMatMul,       // dense M x K x N multiply
  kSoftmax,      // row-wise over an M x N matrix
  kLayerNorm,    // row-wise over an M x N matrix
  kActivation,   // element-wise over an M x N matrix
  kResidualAdd,  // element-wise over an M x N matrix
};

struct OpSpec {
  OpKind kind = OpKind::kMatMul;
  std::size_t m = 0;  // rows of the left operand / the normalised matrix
  std::size_t k = 0;  // contraction depth (MatMul only)
  std::size_t n = 0;  // output columns
  std::size_t repeat = 1;  // e.g. per attention head
  const char* label = "";

  [[nodiscard]] std::size_t macs() const noexcept {
    return kind == OpKind::kMatMul ? m * k * n * repeat : 0;
  }
  [[nodiscard]] std::size_t elements() const noexcept { return m * n * repeat; }
};

// Trace of one full-sequence forward pass through an ENCODER layer (or a
// decoder-only layer over the full sequence), repeated `config.layers` times
// by consumers.
[[nodiscard]] std::vector<OpSpec> layer_trace(const TransformerConfig& config);

// Trace of one DECODER layer of a seq2seq model (paper Fig. 1): masked
// self-attention over `seq_len` target tokens, cross-attention against
// `src_len` encoder outputs, then the feed-forward block.
[[nodiscard]] std::vector<OpSpec> decoder_layer_trace(const TransformerConfig& config);

// Trace of ONE autoregressive decode step at context length `context_len`
// with a resident KV cache: the new token's projections are 1 x d x d, the
// attention works against the cached K/V of length `context_len`.
[[nodiscard]] std::vector<OpSpec> generation_layer_trace(const TransformerConfig& config,
                                                         std::size_t context_len);

// MACs of one decode step at the given context length (all layers).
[[nodiscard]] std::size_t generation_step_macs(const TransformerConfig& config,
                                               std::size_t context_len);

}  // namespace lumos::nn
