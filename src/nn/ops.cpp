#include "nn/ops.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace lumos::nn {

void softmax_inplace(std::span<double> row) {
  if (row.empty()) return;
  double mx = row[0];
  for (const double v : row) mx = std::max(mx, v);
  double sum = 0.0;
  for (double& v : row) {
    v = std::exp(v - mx);
    sum += v;
  }
  for (double& v : row) v /= sum;
}

void softmax_rows(Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) softmax_inplace(m.row(r));
}

void layer_norm_rows(Matrix& m, std::span<const double> gamma, std::span<const double> beta,
                     double epsilon) {
  LUMOS_EXPECTS(gamma.size() == m.cols() && beta.size() == m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    double mean = 0.0;
    for (const double v : row) mean += v;
    mean /= static_cast<double>(row.size());
    double var = 0.0;
    for (const double v : row) var += (v - mean) * (v - mean);
    var /= static_cast<double>(row.size());
    const double inv = 1.0 / std::sqrt(var + epsilon);
    for (std::size_t c = 0; c < row.size(); ++c) {
      row[c] = (row[c] - mean) * inv * gamma[c] + beta[c];
    }
  }
}

void relu(Matrix& m) {
  for (double& v : m.flat()) v = v > 0.0 ? v : 0.0;
}

void gelu(Matrix& m) {
  // tanh approximation of GELU (as used by BERT/GPT implementations).
  constexpr double kC = 0.044715;
  const double s = std::sqrt(2.0 / std::numbers::pi);
  for (double& v : m.flat()) {
    v = 0.5 * v * (1.0 + std::tanh(s * (v + kC * v * v * v)));
  }
}

void sigmoid(Matrix& m) {
  for (double& v : m.flat()) v = 1.0 / (1.0 + std::exp(-v));
}

void tanh_act(Matrix& m) {
  for (double& v : m.flat()) v = std::tanh(v);
}

Matrix scaled_dot_product_attention(const Matrix& q, const Matrix& k, const Matrix& v) {
  LUMOS_EXPECTS(q.cols() == k.cols());
  LUMOS_EXPECTS(k.rows() == v.rows());
  Matrix scores = q.matmul(k.transposed());
  const double inv_sqrt_dk = 1.0 / std::sqrt(static_cast<double>(q.cols()));
  for (double& s : scores.flat()) s *= inv_sqrt_dk;
  softmax_rows(scores);
  return scores.matmul(v);
}

double argmax_agreement(const Matrix& a, const Matrix& b) {
  LUMOS_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  LUMOS_EXPECTS(a.rows() > 0 && a.cols() > 0);
  std::size_t agree = 0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    std::size_t ia = 0;
    std::size_t ib = 0;
    for (std::size_t c = 1; c < a.cols(); ++c) {
      if (a(r, c) > a(r, ia)) ia = c;
      if (b(r, c) > b(r, ib)) ib = c;
    }
    if (ia == ib) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.rows());
}

Matrix linear(const Matrix& x, const Matrix& w, std::span<const double> bias) {
  LUMOS_EXPECTS(bias.empty() || bias.size() == w.cols());
  Matrix y = x.matmul(w);
  if (!bias.empty()) {
    for (std::size_t r = 0; r < y.rows(); ++r) {
      auto row = y.row(r);
      for (std::size_t c = 0; c < row.size(); ++c) row[c] += bias[c];
    }
  }
  return y;
}

}  // namespace lumos::nn
