#include "nn/ops.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace lumos::nn {

namespace {
// Row grain for parallel row-wise ops: a chunk covers enough elements that
// scheduling cost is negligible.  Depends only on the column count, so chunk
// boundaries (and results) are independent of the worker count.
std::size_t op_row_grain(std::size_t cols) {
  const std::size_t c = cols < 1 ? 1 : cols;
  const std::size_t g = (std::size_t{1} << 16) / c;
  return g < 1 ? 1 : g;
}

// Element-wise map over the matrix, parallelised in fixed-size slices.
template <typename Fn>
void map_flat(Matrix& m, Fn&& fn) {
  const auto flat = m.flat();
  parallel_for(0, flat.size(), std::size_t{1} << 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) flat[i] = fn(flat[i]);
  });
}
}  // namespace

void softmax_inplace(std::span<double> row) {
  if (row.empty()) return;
  double mx = row[0];
  for (const double v : row) mx = std::max(mx, v);
  double sum = 0.0;
  for (double& v : row) {
    v = std::exp(v - mx);
    sum += v;
  }
  for (double& v : row) v /= sum;
}

void softmax_rows(Matrix& m) {
  parallel_for(0, m.rows(), op_row_grain(m.cols()), [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) softmax_inplace(m.row(r));
  });
}

void layer_norm_rows(Matrix& m, std::span<const double> gamma, std::span<const double> beta,
                     double epsilon) {
  LUMOS_EXPECTS(gamma.size() == m.cols() && beta.size() == m.cols());
  parallel_for(0, m.rows(), op_row_grain(m.cols()), [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      auto row = m.row(r);
      double mean = 0.0;
      for (const double v : row) mean += v;
      mean /= static_cast<double>(row.size());
      double var = 0.0;
      for (const double v : row) var += (v - mean) * (v - mean);
      var /= static_cast<double>(row.size());
      const double inv = 1.0 / std::sqrt(var + epsilon);
      for (std::size_t c = 0; c < row.size(); ++c) {
        row[c] = (row[c] - mean) * inv * gamma[c] + beta[c];
      }
    }
  });
}

void relu(Matrix& m) {
  map_flat(m, [](double v) { return v > 0.0 ? v : 0.0; });
}

void gelu(Matrix& m) {
  // tanh approximation of GELU (as used by BERT/GPT implementations).
  constexpr double kC = 0.044715;
  const double s = std::sqrt(2.0 / std::numbers::pi);
  map_flat(m, [=](double v) { return 0.5 * v * (1.0 + std::tanh(s * (v + kC * v * v * v))); });
}

void sigmoid(Matrix& m) {
  map_flat(m, [](double v) { return 1.0 / (1.0 + std::exp(-v)); });
}

void tanh_act(Matrix& m) {
  map_flat(m, [](double v) { return std::tanh(v); });
}

void scaled_dot_product_attention_into(const Matrix& q, const Matrix& k, const Matrix& v,
                                       Matrix& scores, Matrix& out) {
  LUMOS_EXPECTS(q.cols() == k.cols());
  LUMOS_EXPECTS(k.rows() == v.rows());
  // The matmul kernels below catch every other alias violation; scores
  // aliasing v is the one combination they cannot see (v is read only after
  // scores is fully written), so reject it here.
  LUMOS_EXPECTS_MSG(&scores != &v, "scores scratch must not alias v");
  // Q K^T without materialising the transpose: K's rows stream directly
  // through the transpose-free kernel.
  q.matmul_nt_into(k, scores);
  const double inv_sqrt_dk = 1.0 / std::sqrt(static_cast<double>(q.cols()));
  for (double& s : scores.flat()) s *= inv_sqrt_dk;
  softmax_rows(scores);
  scores.matmul_into(v, out);
}

Matrix scaled_dot_product_attention(const Matrix& q, const Matrix& k, const Matrix& v) {
  Matrix scores;
  Matrix out;
  scaled_dot_product_attention_into(q, k, v, scores, out);
  return out;
}

double argmax_agreement(const Matrix& a, const Matrix& b) {
  LUMOS_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  LUMOS_EXPECTS(a.rows() > 0 && a.cols() > 0);
  std::size_t agree = 0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    std::size_t ia = 0;
    std::size_t ib = 0;
    for (std::size_t c = 1; c < a.cols(); ++c) {
      if (a(r, c) > a(r, ia)) ia = c;
      if (b(r, c) > b(r, ib)) ib = c;
    }
    if (ia == ib) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.rows());
}

Matrix linear(const Matrix& x, const Matrix& w, std::span<const double> bias) {
  LUMOS_EXPECTS(bias.empty() || bias.size() == w.cols());
  Matrix y = x.matmul(w);
  if (!bias.empty()) {
    for (std::size_t r = 0; r < y.rows(); ++r) {
      auto row = y.row(r);
      for (std::size_t c = 0; c < row.size(); ++c) row[c] += bias[c];
    }
  }
  return y;
}

}  // namespace lumos::nn
