// Dense row-major matrix type used by the reference (exact) executions and by
// the functional photonic paths.  Doubles are used throughout the reference
// math so that quantisation error measurements are not polluted by the
// reference's own rounding.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace lumos::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);
  Matrix(std::size_t rows, std::size_t cols, double fill);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<double> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const double> flat() const noexcept { return data_; }

  // Fills with i.i.d. values uniform in [lo, hi] from `rng`.
  void fill_uniform(Rng& rng, double lo, double hi);
  // Fills with i.i.d. N(0, stddev^2) values (e.g. scaled weight init).
  void fill_normal(Rng& rng, double stddev);

  // Largest absolute entry (0 for an empty matrix).
  [[nodiscard]] double max_abs() const noexcept;

  [[nodiscard]] Matrix transposed() const;

  // this (rows x cols) * other (cols x n) -> rows x n.
  [[nodiscard]] Matrix matmul(const Matrix& other) const;

  // Element-wise sum (shapes must match).
  [[nodiscard]] Matrix add(const Matrix& other) const;

  // Frobenius-norm relative error vs `reference` (|this - ref|_F / |ref|_F).
  [[nodiscard]] double relative_error(const Matrix& reference) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace lumos::nn
