// Dense row-major matrix type used by the reference (exact) executions and by
// the functional photonic paths.  Doubles are used throughout the reference
// math so that quantisation error measurements are not polluted by the
// reference's own rounding.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace lumos::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);
  Matrix(std::size_t rows, std::size_t cols, double fill);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<double> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const double> flat() const noexcept { return data_; }

  // Fills with i.i.d. values uniform in [lo, hi] from `rng`.
  void fill_uniform(Rng& rng, double lo, double hi);
  // Fills with i.i.d. N(0, stddev^2) values (e.g. scaled weight init).
  void fill_normal(Rng& rng, double stddev);

  // Largest absolute entry (0 for an empty matrix).
  [[nodiscard]] double max_abs() const noexcept;

  [[nodiscard]] Matrix transposed() const;

  // Reshapes to rows x cols.  Existing values are NOT preserved meaningfully
  // (the matrix is intended to be fully overwritten afterwards); newly grown
  // storage is zero.  Used by the *_into kernels to reuse scratch buffers.
  void resize(std::size_t rows, std::size_t cols);

  // this (rows x cols) * other (cols x n) -> rows x n.
  //
  // The kernel is cache-blocked, register-tiled, and parallelised over row
  // chunks of the output via the global thread pool.  Each output element is
  // accumulated in ascending-k order regardless of blocking or worker count,
  // so results are bit-reproducible across runs and LUMOS_THREADS settings.
  [[nodiscard]] Matrix matmul(const Matrix& other) const;

  // Allocation-free matmul: `out` is resized to rows x other.cols() and fully
  // overwritten.  `out` must not alias `*this` or `other`.
  void matmul_into(const Matrix& other, Matrix& out) const;

  // Transpose-free A * B^T: this (m x k) times other (n x k) -> m x n,
  // reading `other` row-wise so no transposed copy is ever materialised
  // (attention scores Q K^T and similar A-times-row-major-B^T products).
  [[nodiscard]] Matrix matmul_nt(const Matrix& other) const;

  // Allocation-free variant of `matmul_nt` (same aliasing rule as
  // `matmul_into`).
  void matmul_nt_into(const Matrix& other, Matrix& out) const;

  // Element-wise sum (shapes must match).
  [[nodiscard]] Matrix add(const Matrix& other) const;

  // Frobenius-norm relative error vs `reference` (|this - ref|_F / |ref|_F).
  // When the reference is all-zero the ratio is undefined: returns 0 if this
  // matrix is also all-zero (exact match) and +infinity otherwise.
  [[nodiscard]] double relative_error(const Matrix& reference) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace lumos::nn
