#include "ghost/accelerator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace lumos::ghost {

namespace {
tron::SoftmaxLutConfig softmax_config_from(const GhostConfig& c) {
  tron::SoftmaxLutConfig s;
  s.parallel_units = c.lanes * c.feature_lanes;
  s.clock_hz = c.digital_clock_hz;
  s.energy_per_element_j = c.lut_energy_per_element_j;
  return s;
}
}  // namespace

GhostAccelerator::GhostAccelerator(const GhostConfig& config)
    : config_(config),
      reduce_(config),
      update_(config),
      transform_array_(config.bank, config.array_cols),
      score_bank_(config.bank),
      softmax_(softmax_config_from(config)),
      feature_buffer_(config.feature_buffer),
      weight_buffer_(config.weight_buffer),
      edge_buffer_(config.edge_buffer),
      dram_(config.dram) {
  LUMOS_EXPECTS(config.lanes >= 1);
  LUMOS_EXPECTS(config.array_rows >= 1 && config.array_cols >= 1);
}

double GhostAccelerator::static_power_w() const {
  const double per_array = transform_array_.matvec_cost().static_power_w;
  const double arrays = static_cast<double>(config_.transform_arrays());
  // Reduce units: converter static per lane (VCSEL banks are dynamic-only in
  // our model; converters hold).
  const phot::DacModel dac(config_.bank.dac);
  const phot::AdcModel adc(config_.bank.adc);
  const double reduce_static = static_cast<double>(config_.lanes) *
                               (dac.static_power_w() + adc.static_power_w());
  return arrays * per_array + reduce_static + update_.static_power_w() +
         config_.digital_static_power_w + feature_buffer_.leakage_power_w() +
         weight_buffer_.leakage_power_w() + edge_buffer_.leakage_power_w() +
         dram_.static_power_w();
}

phot::AreaReport GhostAccelerator::area() const {
  phot::AreaReport fabric = phot::bank_array_area(config_.array_rows, config_.array_cols);
  phot::AreaReport r;
  const std::size_t arrays = config_.transform_arrays();
  for (const phot::AreaItem& item : fabric.items) {
    r.items.push_back({item.component, item.count * arrays,
                       item.total_m2 * static_cast<double>(arrays)});
  }
  const phot::DeviceAreas d;
  // Reduce units: per lane, `feature_lanes` rows of `reduce_branches` VCSELs
  // feeding coherent combiners and one BPD per row.
  const std::size_t reduce_vcsels =
      config_.lanes * config_.feature_lanes * config_.reduce_branches;
  r.add("reduce-unit VCSELs", reduce_vcsels, d.vcsel_m2);
  r.add("reduce-unit balanced photodetectors", config_.lanes * config_.feature_lanes,
        d.balanced_pd_m2);
  r.add("update-unit SOAs", config_.lanes * config_.feature_lanes, d.soa_m2);
  r.add("edge-control + digital scheduling logic", 1, d.digital_logic_m2);
  r.add("feature buffer SRAM", config_.feature_buffer.capacity_bytes, d.sram_m2_per_byte);
  r.add("weight buffer SRAM", config_.weight_buffer.capacity_bytes, d.sram_m2_per_byte);
  r.add("edge buffer SRAM", config_.edge_buffer.capacity_bytes, d.sram_m2_per_byte);
  return r;
}

PerfReport GhostAccelerator::estimate(const gnn::GnnModelConfig& model,
                                      const graph::GraphDataset& dataset,
                                      AggregateCosting costing) const {
  return estimate_batch(model, dataset, 1, costing);
}

PerfReport GhostAccelerator::estimate_batch(const gnn::GnnModelConfig& model,
                                            const graph::GraphDataset& dataset,
                                            std::size_t batch,
                                            AggregateCosting costing) const {
  LUMOS_EXPECTS(batch >= 1);
  const double bd = static_cast<double>(batch);
  const graph::CsrGraph& g = dataset.graph;
  PerfReport r;
  r.workload = model.name + "/" + dataset.name;
  r.platform = "GHOST";
  r.bits = config_.bits;
  r.op_count = gnn::model_op_count(model, dataset) * batch;

  PerfBreakdown& b = r.breakdown;
  const double rate = config_.symbol_rate_hz;
  const std::size_t kh = config_.array_rows;
  const std::size_t nh = config_.array_cols;
  const phot::BankOpCost reduce_pass = reduce_.pass_cost();
  const phot::DacModel dac(config_.bank.dac);
  const phot::AdcModel adc(config_.bank.adc);

  // Lane imbalance multiplies aggregate-phase latency when workload balancing
  // is off (paper Section V.D optimisations).
  const double imbalance =
      graph::lane_imbalance(g, config_.lanes, config_.workload_balancing);

  // Base reduce passes (one feature tile) summed over all vertices.  The
  // per-vertex contribution depends only on the degree, so the degree
  // histogram yields the same integer in O(distinct degrees); the per-layer
  // pass count is then this total times the layer's feature-tile count.
  std::size_t base_reduce_passes = 0;
  if (costing == AggregateCosting::kDegreeHistogram) {
    for (const graph::DegreeBucket& bucket : g.degree_histogram()) {
      // +1: self contribution joins the neighbour reduction.
      base_reduce_passes += bucket.count * reduce_.passes_for(bucket.degree + 1);
    }
  }

  // The partition schedule depends only on the graph and the lane/block
  // configuration, so it is computed once and reused by every layer (the
  // reference mode re-tiles per layer, as the original implementation did).
  graph::PartitionSchedule hoisted_schedule;
  if (costing == AggregateCosting::kDegreeHistogram && config_.buffer_and_partition) {
    hoisted_schedule = graph::partition(g, {config_.lanes, config_.input_block_size});
  }

  double total_latency = 0.0;
  for (const gnn::GnnLayerConfig& layer : model.layers_for(dataset)) {
    const std::size_t din = layer.in_dim;
    const std::size_t dout = layer.out_dim;
    const std::size_t v = g.node_count();
    double layer_compute_s = 0.0;

    // ---- Phase ordering ----
    // Every supported combine is linear, so aggregation commutes with the
    // transform; GHOST schedules the transform first whenever the output is
    // narrower than the input (always true for GAT, which scores transformed
    // features).  Aggregating on the narrow side shrinks both the reduce-unit
    // work and the partial-aggregate footprint that must stay on chip.
    const bool transform_first = layer.kind == gnn::GnnKind::kGat || dout < din;
    const std::size_t agg_dim = transform_first ? dout : din;
    const std::size_t feature_tiles =
        (agg_dim + config_.feature_lanes - 1) / config_.feature_lanes;
    std::size_t reduce_passes = 0;
    if (costing == AggregateCosting::kDegreeHistogram) {
      reduce_passes = base_reduce_passes * feature_tiles;
    } else {
      for (std::size_t node = 0; node < v; ++node) {
        const std::size_t deg =
            g.degree(static_cast<graph::NodeId>(node)) + 1;  // + self contribution
        reduce_passes += reduce_.passes_for(deg) * feature_tiles;
      }
    }
    // Each batched inference runs its own reduce passes through the lanes.
    reduce_passes *= batch;
    const double agg_t = std::ceil(static_cast<double>(reduce_passes) /
                                   static_cast<double>(config_.lanes)) /
                         rate * imbalance;
    layer_compute_s += agg_t;
    b.aggregation_time_s += agg_t;
    b.aggregation_energy_j += static_cast<double>(reduce_passes) * reduce_pass.dynamic_energy_j;

    // ---- Combine phase (transform units) ----
    const std::size_t tiles_k = (din + kh - 1) / kh;
    const std::size_t tiles_n = (dout + nh - 1) / nh;
    const std::size_t sage_mult = layer.kind == gnn::GnnKind::kGraphSage ? 2 : 1;
    const std::size_t combine_passes = v * tiles_k * sage_mult * tiles_n * batch;
    const double combine_t = std::ceil(static_cast<double>(combine_passes) /
                                       static_cast<double>(config_.transform_arrays())) /
                             rate;
    layer_compute_s += combine_t;
    b.matmul_time_s += combine_t;
    // Weight-stationary dataflow: inputs, read-outs, and laser per vertex
    // pass; weight imprints once per tile reprogram per array.  Weight-DAC
    // sharing drives all lanes' arrays from one DAC bank, dividing the
    // conversion energy by the lane count.  Partially filled edge tiles only
    // pay for the rows/columns they actually use.
    const phot::MrBankArray::PassEnergies pe = transform_array_.pass_energies();
    const double kd = static_cast<double>(kh);
    const double nd = static_cast<double>(nh);
    const double frac_k = static_cast<double>(din * sage_mult) /
                          static_cast<double>(tiles_k * sage_mult * kh);
    const double frac_n = static_cast<double>(dout) / static_cast<double>(tiles_n * nh);
    const double input_dac_j = pe.input_dac_j * frac_k;
    const double readout_j = pe.adc_j * frac_n;
    const double laser_j = pe.laser_j * frac_k * frac_n;
    const double tile_reprograms = static_cast<double>(tiles_k * sage_mult * tiles_n) *
                                   static_cast<double>(config_.transform_arrays());
    double weight_dac_j = tile_reprograms * pe.weight_dac_j * frac_k * frac_n;
    if (config_.weight_dac_sharing) {
      weight_dac_j /= static_cast<double>(config_.lanes);
    }
    // Input rows are imprinted once per K-tile and broadcast to the arrays
    // covering the parallel column tiles; every batched inference imprints
    // its own inputs (only the weights stay stationary).
    const double input_charges = static_cast<double>(v * tiles_k * sage_mult) * bd;
    b.laser_dac_adc_energy_j += input_charges * input_dac_j +
                                static_cast<double>(combine_passes) * (readout_j + laser_j) +
                                weight_dac_j;
    b.partial_sum_energy_j += static_cast<double>(v * dout) * bd *
                              static_cast<double>(tiles_k > 0 ? tiles_k - 1 : 0) *
                              config_.partial_sum_add_energy_j;

    // ---- GAT attention scores ----
    if (layer.kind == gnn::GnnKind::kGat) {
      const std::size_t score_dots = (g.edge_count() + v) * layer.gat_heads * 2;
      const std::size_t dot_passes =
          ((score_dots + nh - 1) / nh) * ((dout + kh - 1) / kh) * batch;
      const double att_t = static_cast<double>(dot_passes) / rate;
      layer_compute_s += att_t;
      b.matmul_time_s += att_t;
      // The attention vectors (a_src/a_dst) are stationary per head; the
      // transformed features stream through as inputs.
      b.laser_dac_adc_energy_j +=
          static_cast<double>(dot_passes) * (input_dac_j + readout_j + laser_j) +
          static_cast<double>(layer.gat_heads) * 2.0 * kd * dac.energy_per_conversion_j();
      (void)nd;
      const std::size_t sm_elems = (g.edge_count() + v) * layer.gat_heads * batch;
      layer_compute_s += softmax_.latency_s(sm_elems);
      b.softmax_time_s += softmax_.latency_s(sm_elems);
      b.softmax_energy_j += softmax_.energy_j(sm_elems);
    }

    // ---- Update phase ----
    const std::size_t update_elems = v * dout * batch;
    layer_compute_s += update_.latency_s(update_elems);
    b.elementwise_time_s += update_.latency_s(update_elems);
    b.elementwise_energy_j += update_.energy_j(update_elems);

    // ---- Memory traffic ----
    // Edge list: one read per edge (ids) from the edge buffer.
    const double edge_words =
        static_cast<double>(g.edge_count()) * 4.0 * bd /
        static_cast<double>(config_.edge_buffer.word_bytes);
    b.sram_energy_j += edge_words * edge_buffer_.read_energy_j();
    // Feature fetches: every (edge, feature) byte flows through the feature
    // buffer, once per batched inference.
    const double feat_bytes = static_cast<double>(g.edge_count() + v) *
                              static_cast<double>(agg_dim) * bd;
    b.sram_energy_j += feat_bytes /
                       static_cast<double>(config_.feature_buffer.word_bytes) *
                       feature_buffer_.read_energy_j();

    // DRAM traffic.  With buffer-and-partition, tiles are walked in
    // input-block-major order: each input block streams on-chip exactly once
    // per layer while every output block's partial aggregate accumulates
    // against it — one sequential sweep of the feature matrix.  Without it,
    // irregular per-edge accesses miss according to the buffer-capacity
    // hit-rate model.
    const double node_feature_bytes = static_cast<double>(v) * static_cast<double>(din);
    double dram_bytes = 0.0;
    if (config_.buffer_and_partition) {
      graph::PartitionSchedule per_layer_schedule;
      if (costing != AggregateCosting::kDegreeHistogram) {
        per_layer_schedule =
            graph::partition_reference(g, {config_.lanes, config_.input_block_size});
      }
      const graph::PartitionSchedule& sched = costing == AggregateCosting::kDegreeHistogram
                                                  ? hoisted_schedule
                                                  : per_layer_schedule;
      const double block_bytes =
          static_cast<double>(config_.input_block_size) * static_cast<double>(din);
      // Partial aggregates for all output vertices must stay resident during
      // the sweep; when they exceed the feature buffer, the sweep splits into
      // output-super-blocks and input blocks re-stream once per super-block.
      const double partial_bytes = static_cast<double>(v) * static_cast<double>(agg_dim);
      const double capacity = static_cast<double>(config_.feature_buffer.capacity_bytes);
      const double super_blocks = std::max(1.0, std::ceil(partial_bytes / capacity));
      dram_bytes = std::min(static_cast<double>(sched.input_block_count) * block_bytes *
                                super_blocks,
                            static_cast<double>(sched.input_block_loads()) * block_bytes) *
                   bd;
    } else {
      const double capacity = static_cast<double>(config_.feature_buffer.capacity_bytes);
      const double hit_rate = std::min(1.0, capacity / std::max(node_feature_bytes, 1.0));
      dram_bytes = (static_cast<double>(g.edge_count()) * static_cast<double>(din) *
                        (1.0 - hit_rate) +
                    node_feature_bytes) *
                   bd;
    }
    // Weights stream once per layer.
    const double weight_bytes =
        static_cast<double>(din * sage_mult) * static_cast<double>(dout);
    dram_bytes += weight_bytes;
    const double dram_t = dram_.transfer_latency_s(static_cast<std::size_t>(dram_bytes));
    b.dram_energy_j += dram_.transfer_energy_j(static_cast<std::size_t>(dram_bytes));
    b.memory_stall_s += std::max(0.0, dram_t - layer_compute_s);

    total_latency += std::max(layer_compute_s, dram_t);
  }

  r.latency_s = total_latency;
  r.dynamic_energy_j = b.laser_dac_adc_energy_j + b.partial_sum_energy_j +
                       b.softmax_energy_j + b.elementwise_energy_j +
                       b.aggregation_energy_j + b.sram_energy_j + b.dram_energy_j;
  r.static_power_w = static_power_w();
  r.static_energy_j = r.static_power_w * r.latency_s;
  r.total_energy_j = r.dynamic_energy_j + r.static_energy_j;
  return r;
}

nn::Matrix GhostAccelerator::aggregate_photonic(const gnn::GnnLayerWeights& weights,
                                                const graph::CsrGraph& graph,
                                                const nn::Matrix& features, Rng& rng,
                                                const phot::AnalogNoiseConfig& noise) const {
  const gnn::GnnLayerConfig& cfg = weights.config;
  const std::size_t n = graph.node_count();
  const std::size_t din = cfg.in_dim;

  // Normalise the whole feature tensor into the optical window.
  const double scale = std::max(features.max_abs(), 1e-12);
  std::vector<double> gathered;

  switch (cfg.kind) {
    case gnn::GnnKind::kGcn: {
      nn::Matrix agg(n, din);
      for (std::size_t v = 0; v < n; ++v) {
        const auto vd = static_cast<double>(graph.degree(static_cast<graph::NodeId>(v)) + 1);
        const auto nbrs = graph.neighbors(static_cast<graph::NodeId>(v));
        for (std::size_t c = 0; c < din; ++c) {
          gathered.clear();
          gathered.push_back(features(v, c) / vd / scale);  // self, pre-scaled by gather MR
          for (const graph::NodeId u : nbrs) {
            const auto ud = static_cast<double>(graph.degree(u) + 1);
            gathered.push_back(features(u, c) / std::sqrt(vd * ud) / scale);
          }
          agg(v, c) = reduce_.reduce(gathered, gnn::Reduction::kSum, rng, noise) * scale;
        }
      }
      return agg;
    }
    case gnn::GnnKind::kGraphSage: {
      nn::Matrix concat(n, 2 * din);
      for (std::size_t v = 0; v < n; ++v) {
        const auto nbrs = graph.neighbors(static_cast<graph::NodeId>(v));
        for (std::size_t c = 0; c < din; ++c) {
          concat(v, c) = features(v, c);
          gathered.clear();
          for (const graph::NodeId u : nbrs) gathered.push_back(features(u, c) / scale);
          concat(v, din + c) =
              gathered.empty()
                  ? 0.0
                  : reduce_.reduce(gathered, cfg.reduction, rng, noise) * scale;
        }
      }
      return concat;
    }
    case gnn::GnnKind::kGin: {
      // The (1+eps) self-weighting is applied by the gather MR, so the
      // optical window must cover the boosted magnitude.
      const double gin_scale = scale * (1.0 + weights.gin_eps);
      nn::Matrix agg(n, din);
      for (std::size_t v = 0; v < n; ++v) {
        const auto nbrs = graph.neighbors(static_cast<graph::NodeId>(v));
        for (std::size_t c = 0; c < din; ++c) {
          gathered.clear();
          gathered.push_back((1.0 + weights.gin_eps) * features(v, c) / gin_scale);
          for (const graph::NodeId u : nbrs) gathered.push_back(features(u, c) / gin_scale);
          agg(v, c) = reduce_.reduce(gathered, gnn::Reduction::kSum, rng, noise) * gin_scale;
        }
      }
      return agg;
    }
    case gnn::GnnKind::kGat:
      LUMOS_ENSURES(false);  // GAT aggregation handled inline in forward()
  }
  return {};
}

nn::Matrix GhostAccelerator::forward(const gnn::GnnModelWeights& weights,
                                     const graph::CsrGraph& graph, const nn::Matrix& features,
                                     Rng& rng, const phot::AnalogNoiseConfig& noise) const {
  nn::Matrix h = features;
  for (std::size_t li = 0; li < weights.layers.size(); ++li) {
    const gnn::GnnLayerWeights& layer = weights.layers[li];
    const gnn::GnnLayerConfig& cfg = layer.config;
    const bool last = li + 1 == weights.layers.size();
    nn::Matrix out;

    if (cfg.kind == gnn::GnnKind::kGat) {
      // Transform first, then attention-weighted photonic aggregation.
      const nn::Matrix t = tron::photonic_matmul(h, layer.w, transform_array_, rng, noise);
      const double tscale = std::max(t.max_abs(), 1e-12);
      out = nn::Matrix(graph.node_count(), cfg.out_dim);
      // Score dot products run on the score bank in chunks of its wavelength
      // count, with digital partial-sum accumulation (same streaming pattern
      // as every other long dot product).
      const std::size_t kw = score_bank_.width();
      std::vector<double> scores;
      std::vector<double> contrib;
      std::vector<double> a_vec(kw);
      std::vector<double> row_norm(kw);
      const auto chunked_dot = [&](const nn::Matrix& a, std::size_t head,
                                   const nn::Matrix& feats, std::size_t node,
                                   double a_max) {
        double acc = 0.0;
        for (std::size_t c0 = 0; c0 < cfg.out_dim; c0 += kw) {
          const std::size_t ct = std::min(kw, cfg.out_dim - c0);
          for (std::size_t c = 0; c < ct; ++c) {
            a_vec[c] = a(c0 + c, head) / a_max;
            row_norm[c] = feats(node, c0 + c) / tscale;
          }
          acc += score_bank_.dot(std::span<const double>(row_norm.data(), ct),
                                 std::span<const double>(a_vec.data(), ct), rng, noise);
        }
        return acc * a_max * tscale;
      };
      for (std::size_t head = 0; head < cfg.gat_heads; ++head) {
        for (std::size_t v = 0; v < graph.node_count(); ++v) {
          const auto nbrs = graph.neighbors(static_cast<graph::NodeId>(v));
          // Photonic score dot products: a_src . h_v and a_dst . h_u.
          const double a_src_max = std::max(layer.gat_a_src.max_abs(), 1e-12);
          const double a_dst_max = std::max(layer.gat_a_dst.max_abs(), 1e-12);
          const double src_score = chunked_dot(layer.gat_a_src, head, t, v, a_src_max);
          const auto score_of = [&](graph::NodeId u) {
            const double s = chunked_dot(layer.gat_a_dst, head, t, u, a_dst_max);
            const double e = src_score + s;
            return e > 0.0 ? e : 0.2 * e;  // LeakyReLU
          };
          scores.assign(nbrs.size() + 1, 0.0);
          scores[0] = score_of(static_cast<graph::NodeId>(v));
          for (std::size_t i = 0; i < nbrs.size(); ++i) scores[i + 1] = score_of(nbrs[i]);
          softmax_.apply(scores);  // digital LUT softmax
          // Weighted photonic aggregation per output feature.
          const double head_w = 1.0 / static_cast<double>(cfg.gat_heads);
          for (std::size_t c = 0; c < cfg.out_dim; ++c) {
            contrib.clear();
            contrib.push_back(scores[0] * t(v, c) / tscale);
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
              contrib.push_back(scores[i + 1] * t(nbrs[i], c) / tscale);
            }
            out(v, c) += head_w * tscale *
                         reduce_.reduce(contrib, gnn::Reduction::kSum, rng, noise);
          }
        }
      }
    } else {
      const nn::Matrix agg = aggregate_photonic(layer, graph, h, rng, noise);
      out = tron::photonic_matmul(agg, layer.w, transform_array_, rng, noise);
    }

    if (!last) {
      // Update phase: SOA ReLU on normalised values.
      const double uscale = std::max(out.max_abs(), 1e-12);
      for (double& x : out.flat()) {
        x = update_.activate_relu(std::clamp(x / uscale, -1.0, 1.0)) * uscale;
      }
    }
    h = out;
  }
  return h;
}

}  // namespace lumos::ghost
