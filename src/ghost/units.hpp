// GHOST datapath units: reduce (coherent sum / mean / optical max), and the
// update block's SOA activations (paper Fig. 7a and Section V.D).
#pragma once

#include <span>

#include "gnn/models.hpp"
#include "ghost/config.hpp"
#include "photonics/mr_bank.hpp"
#include "photonics/soa.hpp"

namespace lumos::ghost {

// Reduce unit: one row per feature lane, one column per neighbour.  Sum and
// mean use coherent interference (Fig. 3b); max uses an optical comparator
// chain (Fig. 7a) whose resolution is limited by detector noise.
class ReduceUnit {
 public:
  ReduceUnit(const GhostConfig& config);

  // Functional reduction of `values` (normalised to [-1,1]).  Values beyond
  // `config.reduce_branches` are chunked and the partial results accumulate
  // digitally, exactly as the hardware streams oversized neighbour lists.
  [[nodiscard]] double reduce(std::span<const double> values, gnn::Reduction reduction,
                              Rng& rng, const phot::AnalogNoiseConfig& noise) const;

  // Exact reference.
  [[nodiscard]] static double exact_reduce(std::span<const double> values,
                                           gnn::Reduction reduction) noexcept;

  // Optical passes needed to reduce `count` neighbours across one feature.
  [[nodiscard]] std::size_t passes_for(std::size_t count) const noexcept;

  // Cost of one optical pass (up to `reduce_branches` values, `feature_lanes`
  // features in parallel).
  [[nodiscard]] phot::BankOpCost pass_cost() const;

  [[nodiscard]] const phot::CoherentSummationUnit& summation() const noexcept { return sum_; }

 private:
  GhostConfig config_;
  phot::CoherentSummationUnit sum_;
  phot::BalancedPhotodetector comparator_pd_;
};

// Update unit: SOA optical activations with LUT fallback for softmax-class
// functions.
class UpdateUnit {
 public:
  explicit UpdateUnit(const GhostConfig& config);

  // Functional ReLU on a normalised value in [-1,1].
  [[nodiscard]] double activate_relu(double x) const;

  // Cost of activating `elements` values (lanes * feature_lanes parallel).
  [[nodiscard]] double latency_s(std::size_t elements) const noexcept;
  [[nodiscard]] double energy_j(std::size_t elements) const noexcept;
  [[nodiscard]] double static_power_w() const noexcept;

  [[nodiscard]] const phot::Soa& soa() const noexcept { return soa_; }

 private:
  GhostConfig config_;
  phot::Soa soa_;
};

}  // namespace lumos::ghost
