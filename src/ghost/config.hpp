// GHOST architecture configuration (paper Section V.D, Figs. 6-7).
//
// The accelerator is organised into V execution lanes, each processing one
// output vertex at a time.  The aggregate block holds N edge-control units
// feeding V gather units and V reduce units (coherent summation / optical
// max); the combine block holds the transform units (MR bank arrays); the
// update block holds V SOA-based activation units with LUT fallback.
// Buffer-and-partition, weight-DAC sharing, pipelining, and workload
// balancing are the scheduling optimisations (all modelled, all switchable
// for the ablation benches).
#pragma once

#include <cstddef>

#include "mem/sram.hpp"
#include "photonics/mr_bank.hpp"

namespace lumos::ghost {

struct GhostConfig {
  // ---- Lanes and aggregate block ----
  std::size_t lanes = 16;                 // V execution lanes
  std::size_t edge_control_units = 32;    // N input-fetch units
  std::size_t reduce_branches = 16;       // neighbours summed per optical pass
  std::size_t feature_lanes = 16;         // features reduced in parallel per pass

  // ---- Combine block ----
  std::size_t transform_arrays_per_lane = 2;
  std::size_t array_rows = 16;            // K wavelengths
  std::size_t array_cols = 64;            // N columns

  // ---- Rates / precision ----
  double symbol_rate_hz = 10e9;
  double digital_clock_hz = 1e9;
  int bits = 8;

  // ---- Digital support ----
  double lut_energy_per_element_j = 0.7e-12;
  double partial_sum_add_energy_j = 0.05e-12;
  double digital_static_power_w = 1.2;

  // ---- Scheduling optimisations (ablation switches) ----
  bool buffer_and_partition = true;
  std::size_t input_block_size = 2048;    // vertices resident per input block
  bool weight_dac_sharing = true;
  bool workload_balancing = true;

  // ---- Device models ----
  phot::MrBankConfig bank;
  phot::HomodyneConfig homodyne;

  // ---- Memory system ----
  mem::SramConfig feature_buffer{2 * 1024 * 1024, 64, 16, 32.0};
  mem::SramConfig weight_buffer{512 * 1024, 64, 8, 32.0};
  mem::SramConfig edge_buffer{512 * 1024, 8, 8, 32.0};
  mem::DramConfig dram;

  [[nodiscard]] std::size_t transform_arrays() const noexcept {
    return lanes * transform_arrays_per_lane;
  }
};

// Default design point matching the WDM search fixed point and the paper's
// design-space analysis.
[[nodiscard]] GhostConfig default_ghost_config();

}  // namespace lumos::ghost
