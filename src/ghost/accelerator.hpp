// GHOST: the silicon-photonic GNN accelerator (paper Section V.D).
//
// Mirrors TRON's two faces:
//   * `estimate()` — analytic performance/energy mapping of a GNN model on a
//     graph dataset (aggregate / combine / update phases, buffer-and-
//     partition memory traffic, weight-DAC sharing, workload balancing);
//   * `forward()` — functional execution of a (small) GNN through the noisy
//     analog device models, validated against the exact reference.
#pragma once

#include "common/perf.hpp"
#include "ghost/config.hpp"
#include "photonics/area.hpp"
#include "ghost/units.hpp"
#include "gnn/models.hpp"
#include "graph/partition.hpp"
#include "tron/photonic_ops.hpp"
#include "tron/softmax_lut.hpp"

namespace lumos::ghost {

// How `GhostAccelerator::estimate` costs the aggregate phase.
enum class AggregateCosting {
  // Per distinct degree via CsrGraph::degree_histogram(): the reduce-pass
  // total (and the partition schedule) are computed once per estimate instead
  // of re-walking all V vertices (and re-tiling all E edges) per layer —
  // O(layers * distinct_degrees) instead of O(layers * (V + E)).  Default.
  kDegreeHistogram,
  // The original per-node O(V) loop with per-layer reference partitioning,
  // retained as the baseline for parity tests and bench_kernels.  Produces
  // bit-identical PerfReports.
  kPerNodeReference,
};

class GhostAccelerator {
 public:
  explicit GhostAccelerator(const GhostConfig& config);

  // Analytic mapping of one full-graph inference of `model` on `dataset`.
  [[nodiscard]] PerfReport estimate(
      const gnn::GnnModelConfig& model, const graph::GraphDataset& dataset,
      AggregateCosting costing = AggregateCosting::kDegreeHistogram) const;

  // Batched inference: `batch` independent full-graph inferences pipelined
  // through each layer's stationary weights (mirrors TRON::estimate_batch).
  // Per-inference compute, feature traffic, and conversions scale with the
  // batch; weight imprints and the per-layer DRAM weight stream are paid
  // once, so batch-N latency is sub-linear in N.  batch == 1 is bit-identical
  // to `estimate`.
  [[nodiscard]] PerfReport estimate_batch(
      const gnn::GnnModelConfig& model, const graph::GraphDataset& dataset,
      std::size_t batch,
      AggregateCosting costing = AggregateCosting::kDegreeHistogram) const;

  // Functional forward of `weights` on `graph`/`features` through the noisy
  // photonic path (intended for small graphs).
  [[nodiscard]] nn::Matrix forward(const gnn::GnnModelWeights& weights,
                                   const graph::CsrGraph& graph, const nn::Matrix& features,
                                   Rng& rng, const phot::AnalogNoiseConfig& noise) const;

  [[nodiscard]] const GhostConfig& config() const noexcept { return config_; }
  [[nodiscard]] const ReduceUnit& reduce_unit() const noexcept { return reduce_; }
  [[nodiscard]] const UpdateUnit& update_unit() const noexcept { return update_; }

  // Fabric-wide static (hold) power.
  [[nodiscard]] double static_power_w() const;

  // Floorplan summary (transform arrays, reduce/update units, buffers).
  [[nodiscard]] phot::AreaReport area() const;

 private:
  // Functional aggregate phase for one layer.
  [[nodiscard]] nn::Matrix aggregate_photonic(const gnn::GnnLayerWeights& weights,
                                              const graph::CsrGraph& graph,
                                              const nn::Matrix& features, Rng& rng,
                                              const phot::AnalogNoiseConfig& noise) const;

  GhostConfig config_;
  ReduceUnit reduce_;
  UpdateUnit update_;
  phot::MrBankArray transform_array_;
  phot::MrBank score_bank_;      // GAT attention-score dot products
  tron::SoftmaxLut softmax_;     // GAT attention / classifier LUT softmax
  mem::SramModel feature_buffer_;
  mem::SramModel weight_buffer_;
  mem::SramModel edge_buffer_;
  mem::DramModel dram_;
};

}  // namespace lumos::ghost
