#include "ghost/units.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace lumos::ghost {

GhostConfig default_ghost_config() {
  GhostConfig c;
  c.bank.wavelength_count = c.array_rows;
  c.bank.symbol_rate_hz = c.symbol_rate_hz;
  c.bank.heterodyne.channel_count = c.array_rows;
  // Two HBM2 stacks, matching the graph-accelerator baselines' memory systems.
  c.dram.bandwidth_bytes_per_s = 512e9;
  return c;
}

ReduceUnit::ReduceUnit(const GhostConfig& config)
    : config_(config),
      sum_(config.bank, config.homodyne, config.reduce_branches),
      comparator_pd_(config.bank.detector) {
  LUMOS_EXPECTS(config.reduce_branches >= 2);
}

double ReduceUnit::exact_reduce(std::span<const double> values,
                                gnn::Reduction reduction) noexcept {
  if (values.empty()) return 0.0;
  switch (reduction) {
    case gnn::Reduction::kSum: {
      double s = 0.0;
      for (const double v : values) s += v;
      return s;
    }
    case gnn::Reduction::kMean: {
      double s = 0.0;
      for (const double v : values) s += v;
      return s / static_cast<double>(values.size());
    }
    case gnn::Reduction::kMax: {
      double m = values[0];
      for (const double v : values) m = std::max(m, v);
      return m;
    }
  }
  return 0.0;
}

double ReduceUnit::reduce(std::span<const double> values, gnn::Reduction reduction, Rng& rng,
                          const phot::AnalogNoiseConfig& noise) const {
  if (values.empty()) return 0.0;
  const std::size_t b = config_.reduce_branches;

  if (reduction == gnn::Reduction::kMax) {
    // Optical comparator chain: each pairwise comparison senses the power
    // difference on a balanced detector; detector noise can flip decisions
    // between nearly equal contenders, which only ever selects a value close
    // to the true maximum.
    double best = values[0];
    for (std::size_t i = 1; i < values.size(); ++i) {
      double sigma = 0.0;
      if (noise.detector_noise) {
        (void)comparator_pd_.detect(std::fabs(best) * 1e-3, std::fabs(values[i]) * 1e-3, 1e-3,
                                    &sigma);
      }
      const double observed_diff =
          (best - values[i]) + (noise.detector_noise ? rng.normal(0.0, sigma) : 0.0);
      if (observed_diff < 0.0) best = values[i];
    }
    return best;
  }

  // Sum / mean: chunk into coherent passes of <= b branches, accumulate the
  // chunk results digitally.
  double total = 0.0;
  for (std::size_t off = 0; off < values.size(); off += b) {
    const std::size_t count = std::min(b, values.size() - off);
    total += sum_.sum(values.subspan(off, count), rng, noise);
  }
  if (reduction == gnn::Reduction::kMean) total /= static_cast<double>(values.size());
  return total;
}

std::size_t ReduceUnit::passes_for(std::size_t count) const noexcept {
  if (count == 0) return 0;
  return (count + config_.reduce_branches - 1) / config_.reduce_branches;
}

phot::BankOpCost ReduceUnit::pass_cost() const {
  // One coherent pass across `feature_lanes` rows in parallel: the per-branch
  // VCSEL/DAC costs scale with the feature lanes.
  phot::BankOpCost c = sum_.sum_cost();
  c.dynamic_energy_j *= static_cast<double>(config_.feature_lanes);
  return c;
}

UpdateUnit::UpdateUnit(const GhostConfig& config) : config_(config), soa_({}) {}

double UpdateUnit::activate_relu(double x) const {
  return soa_.activate(phot::OpticalActivation::kRelu, std::clamp(x, -1.0, 1.0));
}

double UpdateUnit::latency_s(std::size_t elements) const noexcept {
  const double parallel =
      static_cast<double>(config_.lanes) * static_cast<double>(config_.feature_lanes);
  return std::ceil(static_cast<double>(elements) / parallel) / config_.symbol_rate_hz;
}

double UpdateUnit::energy_j(std::size_t elements) const noexcept {
  // Per element: one DAC-driven pass through the SOA.
  const phot::DacModel dac(config_.bank.dac);
  return static_cast<double>(elements) * dac.energy_per_conversion_j();
}

double UpdateUnit::static_power_w() const noexcept {
  // One SOA per (lane, feature lane).
  return static_cast<double>(config_.lanes) * static_cast<double>(config_.feature_lanes) *
         soa_.config().bias_power_w;
}

}  // namespace lumos::ghost
