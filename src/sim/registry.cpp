#include "sim/registry.hpp"

#include "common/error.hpp"

namespace lumos::sim {

const std::vector<std::string>& transformer_names() {
  static const std::vector<std::string> names{"bert-base", "bert-large", "gpt2", "vit",
                                             "transformer"};
  return names;
}

const std::vector<std::string>& gnn_names() {
  static const std::vector<std::string> names{"gcn", "graphsage", "gin", "gat"};
  return names;
}

const std::vector<std::string>& dataset_names() {
  static const std::vector<std::string> names{"cora", "citeseer", "pubmed", "arxiv"};
  return names;
}

std::string joined_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += '|';
    out += n;
  }
  return out;
}

nn::TransformerConfig transformer_by_name(const std::string& name, std::size_t seq_len) {
  if (name == "bert-base") return nn::bert_base(seq_len);
  if (name == "bert-large") return nn::bert_large(seq_len);
  if (name == "gpt2") return nn::gpt2_small(seq_len);
  if (name == "vit") return nn::vit_base();
  if (name == "transformer") return nn::original_transformer(seq_len, seq_len);
  throw InvalidArgument("unknown transformer model: " + name + " (expected " +
                        joined_names(transformer_names()) + ")");
}

gnn::GnnModelConfig gnn_by_name(const std::string& name) {
  if (name == "gcn") return gnn::gcn_model();
  if (name == "graphsage") return gnn::graphsage_model();
  if (name == "gin") return gnn::gin_model();
  if (name == "gat") return gnn::gat_model();
  throw InvalidArgument("unknown GNN model: " + name + " (expected " +
                        joined_names(gnn_names()) + ")");
}

graph::GraphDataset dataset_by_name(const std::string& name) {
  if (name == "cora") return graph::synthetic_cora();
  if (name == "citeseer") return graph::synthetic_citeseer();
  if (name == "pubmed") return graph::synthetic_pubmed();
  if (name == "arxiv") return graph::synthetic_arxiv();
  throw InvalidArgument("unknown dataset: " + name + " (expected " +
                        joined_names(dataset_names()) + ")");
}

std::vector<nn::TransformerConfig> llm_eval_models() { return nn::llm_model_zoo(); }

std::vector<gnn::GnnModelConfig> gnn_eval_models() { return gnn::gnn_model_zoo(); }

std::vector<graph::GraphDataset> gnn_eval_datasets() { return graph::gnn_dataset_zoo(); }

}  // namespace lumos::sim
