// Design-space sensitivity analysis.
//
// Paper Section VI: "The specific architectural details of each hardware
// accelerator, such as the numbers of the computational blocks, were
// determined through detailed design-space analysis."  This module
// regenerates that analysis: it perturbs each architectural knob around the
// default design point and reports the throughput/EPB response, which is how
// the defaults were fixed.  Each perturbed design is scored through the
// polymorphic `arch::Accelerator` interface (`sensitivity_probe`), so the
// response extraction is fabric-agnostic; only the knob enumerations know the
// concrete configs they perturb.
#pragma once

#include <string>
#include <vector>

#include "arch/accelerator.hpp"
#include "common/table.hpp"
#include "ghost/config.hpp"
#include "tron/config.hpp"

namespace lumos::sim {

// One knob setting's outcome.
struct SensitivityPoint {
  std::string knob;      // e.g. "head_units"
  double setting = 0.0;  // the knob's value
  bool is_default = false;
  double latency_s = 0.0;
  double ops_per_second = 0.0;
  double energy_per_bit_j = 0.0;
  double static_power_w = 0.0;
};

// Scores `workload` on `acc` and extracts the sensitivity responses.  Shared
// by both knob sweeps and usable with any accelerator/workload pairing.
[[nodiscard]] SensitivityPoint sensitivity_probe(const arch::Accelerator& acc,
                                                 const arch::Workload& workload,
                                                 const std::string& knob, double setting,
                                                 bool is_default);

// Sweeps TRON's architectural knobs (head units, FF arrays, array columns,
// symbol rate, DRAM bandwidth) around `base` on `model`.
[[nodiscard]] std::vector<SensitivityPoint> tron_sensitivity(
    const tron::TronConfig& base, const nn::TransformerConfig& model);

// Sweeps GHOST's knobs (lanes, reduce branches, transform arrays per lane,
// input block size, DRAM bandwidth) around `base` on `model`/`dataset`.
[[nodiscard]] std::vector<SensitivityPoint> ghost_sensitivity(
    const ghost::GhostConfig& base, const gnn::GnnModelConfig& model,
    const graph::GraphDataset& dataset);

// Renders a sweep as a table grouped by knob.
[[nodiscard]] Table sensitivity_table(const std::string& title,
                                      const std::vector<SensitivityPoint>& points);

}  // namespace lumos::sim
