#include "sim/sensitivity.hpp"

#include "common/table.hpp"
#include "common/units.hpp"

namespace lumos::sim {

SensitivityPoint sensitivity_probe(const arch::Accelerator& acc,
                                   const arch::Workload& workload, const std::string& knob,
                                   double setting, bool is_default) {
  const PerfReport r = acc.estimate(workload);
  SensitivityPoint p;
  p.knob = knob;
  p.setting = setting;
  p.is_default = is_default;
  p.latency_s = r.latency_s;
  p.ops_per_second = r.ops_per_second();
  p.energy_per_bit_j = r.energy_per_bit_j();
  p.static_power_w = r.static_power_w;
  return p;
}

std::vector<SensitivityPoint> tron_sensitivity(const tron::TronConfig& base,
                                               const nn::TransformerConfig& model) {
  const arch::Workload workload = arch::Workload::transformer(model.name, model);
  std::vector<SensitivityPoint> out;
  const auto probe = [&](const std::string& knob, double setting, bool is_default,
                         const tron::TronConfig& cfg) {
    out.push_back(
        sensitivity_probe(arch::TronAdapter(cfg), workload, knob, setting, is_default));
  };

  for (const std::size_t v : {4u, 8u, 12u, 16u, 24u}) {
    tron::TronConfig c = base;
    c.head_units = v;
    probe("head_units", static_cast<double>(v), v == base.head_units, c);
  }
  for (const std::size_t v : {8u, 16u, 32u, 64u, 128u}) {
    tron::TronConfig c = base;
    c.ff_arrays = v;
    probe("ff_arrays", static_cast<double>(v), v == base.ff_arrays, c);
  }
  for (const std::size_t v : {16u, 32u, 64u, 128u}) {
    tron::TronConfig c = base;
    c.array_cols = v;
    c.bank.heterodyne.channel_count = c.array_rows;
    probe("array_cols", static_cast<double>(v), v == base.array_cols, c);
  }
  for (const double v : {2.5e9, 5e9, 10e9, 20e9}) {
    tron::TronConfig c = base;
    c.symbol_rate_hz = v;
    c.bank.symbol_rate_hz = v;
    probe("symbol_rate_ghz", v / 1e9, v == base.symbol_rate_hz, c);
  }
  for (const double v : {128e9, 256e9, 512e9, 1024e9}) {
    tron::TronConfig c = base;
    c.dram.bandwidth_bytes_per_s = v;
    probe("dram_gb_per_s", v / 1e9, v == base.dram.bandwidth_bytes_per_s, c);
  }
  return out;
}

std::vector<SensitivityPoint> ghost_sensitivity(const ghost::GhostConfig& base,
                                                const gnn::GnnModelConfig& model,
                                                const graph::GraphDataset& dataset) {
  // The sweep scores one dataset many times; alias it without copying.  The
  // no-op deleter is safe because `dataset` outlives every probe.
  const arch::Workload workload = arch::Workload::gnn(
      model.name + "/" + dataset.name, model,
      std::shared_ptr<const graph::GraphDataset>(&dataset, [](const graph::GraphDataset*) {}));
  std::vector<SensitivityPoint> out;
  const auto probe = [&](const std::string& knob, double setting, bool is_default,
                         const ghost::GhostConfig& cfg) {
    out.push_back(
        sensitivity_probe(arch::GhostAdapter(cfg), workload, knob, setting, is_default));
  };

  for (const std::size_t v : {4u, 8u, 16u, 32u, 64u}) {
    ghost::GhostConfig c = base;
    c.lanes = v;
    probe("lanes", static_cast<double>(v), v == base.lanes, c);
  }
  for (const std::size_t v : {4u, 8u, 16u, 32u}) {
    ghost::GhostConfig c = base;
    c.reduce_branches = v;
    probe("reduce_branches", static_cast<double>(v), v == base.reduce_branches, c);
  }
  for (const std::size_t v : {1u, 2u, 4u, 8u}) {
    ghost::GhostConfig c = base;
    c.transform_arrays_per_lane = v;
    probe("transform_arrays_per_lane", static_cast<double>(v),
          v == base.transform_arrays_per_lane, c);
  }
  for (const std::size_t v : {512u, 1024u, 2048u, 4096u, 8192u}) {
    ghost::GhostConfig c = base;
    c.input_block_size = v;
    probe("input_block_size", static_cast<double>(v), v == base.input_block_size, c);
  }
  for (const double v : {128e9, 256e9, 512e9, 1024e9}) {
    ghost::GhostConfig c = base;
    c.dram.bandwidth_bytes_per_s = v;
    probe("dram_gb_per_s", v / 1e9, v == base.dram.bandwidth_bytes_per_s, c);
  }
  return out;
}

Table sensitivity_table(const std::string& title,
                        const std::vector<SensitivityPoint>& points) {
  Table t(title);
  t.add_row({"knob", "setting", "latency", "GOPS", "EPB", "static power"});
  for (const SensitivityPoint& p : points) {
    t.add_row({p.knob, Table::num(p.setting, 1) + (p.is_default ? " *" : ""),
               Table::num(units::to_us(p.latency_s), 2) + " us",
               Table::num(units::to_gops(p.ops_per_second), 0),
               Table::num(units::to_pj(p.energy_per_bit_j), 3) + " pJ/b",
               Table::num(p.static_power_w, 1) + " W"});
  }
  return t;
}

}  // namespace lumos::sim
