// Figure-series runners: produce exactly the data series of the paper's
// evaluation figures (Figs. 8-11) plus the headline min-improvement factors,
// shared by the benchmark binaries, the examples, and the integration tests.
#pragma once

#include <string>
#include <vector>

#include "baselines/platforms.hpp"
#include "common/perf.hpp"
#include "common/table.hpp"
#include "ghost/accelerator.hpp"
#include "tron/accelerator.hpp"

namespace lumos::sim {

// Which metric a figure plots.
enum class Metric { kEnergyPerBit, kThroughputOps };

// One figure: workloads (rows) x platforms (columns).
struct FigureData {
  std::string title;
  Metric metric = Metric::kEnergyPerBit;
  std::vector<std::string> workloads;
  std::vector<std::string> platforms;             // photonic accelerator first
  std::vector<std::vector<PerfReport>> reports;   // [workload][platform]

  [[nodiscard]] double value(std::size_t w, std::size_t p) const;
  // Improvement of platform 0 (the photonic accelerator) over platform `p`
  // on workload `w` (for EPB: baseline/ours; for GOPS: ours/baseline).
  [[nodiscard]] double improvement(std::size_t w, std::size_t p) const;
  // Smallest improvement over any (workload, baseline) pair — the paper's
  // "at least X x" claims.
  [[nodiscard]] double min_improvement() const;
  // Geometric-mean improvement across all (workload, baseline) pairs.
  [[nodiscard]] double mean_improvement() const;

  [[nodiscard]] Table to_table() const;
};

// Paper figure reproductions (default configurations unless overridden).
[[nodiscard]] FigureData run_fig8_epb_llm(const tron::TronConfig& config);
[[nodiscard]] FigureData run_fig9_gops_llm(const tron::TronConfig& config);
[[nodiscard]] FigureData run_fig10_epb_gnn(const ghost::GhostConfig& config);
[[nodiscard]] FigureData run_fig11_gops_gnn(const ghost::GhostConfig& config);

// Headline claims (paper abstract/Section VI): min throughput and energy-
// efficiency improvements for both accelerators.
struct HeadlineClaims {
  double tron_min_throughput_gain = 0.0;   // paper: >= 14x
  double tron_min_epb_gain = 0.0;          // paper: >= 8x
  double ghost_min_throughput_gain = 0.0;  // paper: >= 10.2x
  double ghost_min_epb_gain = 0.0;         // paper: >= 3.8x
};

[[nodiscard]] HeadlineClaims run_headline_claims(const tron::TronConfig& tron_config,
                                                 const ghost::GhostConfig& ghost_config);

}  // namespace lumos::sim
