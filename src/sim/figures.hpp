// Figure-series runners: produce exactly the data series of the paper's
// evaluation figures (Figs. 8-11) plus the headline min-improvement factors,
// shared by the benchmark binaries, the examples, and the integration tests.
// Runners take any `arch::Accelerator&` — the photonic device under test is
// polymorphic; only the baseline set (LLM vs GNN platforms) is figure-
// specific.
#pragma once

#include <string>
#include <vector>

#include "arch/accelerator.hpp"
#include "baselines/platforms.hpp"
#include "common/perf.hpp"
#include "common/table.hpp"

namespace lumos::sim {

// Which metric a figure plots.
enum class Metric { kEnergyPerBit, kThroughputOps };

// One figure: workloads (rows) x platforms (columns).
struct FigureData {
  std::string title;
  Metric metric = Metric::kEnergyPerBit;
  std::vector<std::string> workloads;
  std::vector<std::string> platforms;             // photonic accelerator first
  std::vector<std::vector<PerfReport>> reports;   // [workload][platform]

  [[nodiscard]] double value(std::size_t w, std::size_t p) const;
  // Improvement of platform 0 (the photonic accelerator) over platform `p`
  // on workload `w` (for EPB: baseline/ours; for GOPS: ours/baseline).
  [[nodiscard]] double improvement(std::size_t w, std::size_t p) const;
  // Smallest improvement over any (workload, baseline) pair — the paper's
  // "at least X x" claims.
  [[nodiscard]] double min_improvement() const;
  // Geometric-mean improvement across all (workload, baseline) pairs.
  [[nodiscard]] double mean_improvement() const;

  [[nodiscard]] Table to_table() const;
};

// Generic runner: scores `acc` and the electronic baselines appropriate to
// each workload's kind over `workloads`.  The accelerator must serve every
// workload in the list.
[[nodiscard]] FigureData run_figure(const arch::Accelerator& acc,
                                    const std::vector<arch::Workload>& workloads,
                                    Metric metric, const std::string& title);

// The figures' evaluation workloads, materialised through the registry.
[[nodiscard]] std::vector<arch::Workload> llm_eval_workloads();
[[nodiscard]] std::vector<arch::Workload> gnn_eval_workloads();

// Paper figure reproductions.  `acc` is the photonic device under test
// (TRON-family for the LLM figures, GHOST-family for the GNN figures).
[[nodiscard]] FigureData run_fig8_epb_llm(const arch::Accelerator& acc);
[[nodiscard]] FigureData run_fig9_gops_llm(const arch::Accelerator& acc);
[[nodiscard]] FigureData run_fig10_epb_gnn(const arch::Accelerator& acc);
[[nodiscard]] FigureData run_fig11_gops_gnn(const arch::Accelerator& acc);

// Headline claims (paper abstract/Section VI): min throughput and energy-
// efficiency improvements for both accelerators.
struct HeadlineClaims {
  double tron_min_throughput_gain = 0.0;   // paper: >= 14x
  double tron_min_epb_gain = 0.0;          // paper: >= 8x
  double ghost_min_throughput_gain = 0.0;  // paper: >= 10.2x
  double ghost_min_epb_gain = 0.0;         // paper: >= 3.8x
};

[[nodiscard]] HeadlineClaims run_headline_claims(const arch::Accelerator& tron_acc,
                                                 const arch::Accelerator& ghost_acc);

}  // namespace lumos::sim
