// Name-keyed registry of the workloads the library knows how to build:
// transformer models, GNN models, and graph datasets.  Single source of truth
// for the string names accepted by the CLI, the figure runners, and the
// serving simulator (previously each front end kept its own copy of these
// lookups).
#pragma once

#include <string>
#include <vector>

#include "gnn/models.hpp"
#include "graph/generators.hpp"
#include "nn/transformer.hpp"

namespace lumos::sim {

// Accepted workload names, in canonical (presentation) order.
[[nodiscard]] const std::vector<std::string>& transformer_names();
[[nodiscard]] const std::vector<std::string>& gnn_names();
[[nodiscard]] const std::vector<std::string>& dataset_names();

// Name -> configuration.  Unknown names throw `InvalidArgument` listing the
// accepted names.  `seq_len` is ignored by models with a fixed input length
// (vit).
[[nodiscard]] nn::TransformerConfig transformer_by_name(const std::string& name,
                                                        std::size_t seq_len = 128);
[[nodiscard]] gnn::GnnModelConfig gnn_by_name(const std::string& name);
[[nodiscard]] graph::GraphDataset dataset_by_name(const std::string& name);

// The paper-figure evaluation suites (Figs. 8-11), materialised through the
// registry so every consumer scores the same configurations.
[[nodiscard]] std::vector<nn::TransformerConfig> llm_eval_models();
[[nodiscard]] std::vector<gnn::GnnModelConfig> gnn_eval_models();
[[nodiscard]] std::vector<graph::GraphDataset> gnn_eval_datasets();

// "a|b|c" join of a name list, for usage/error messages.
[[nodiscard]] std::string joined_names(const std::vector<std::string>& names);

}  // namespace lumos::sim
