#include "sim/figures.hpp"

#include <algorithm>

#include "arch/platform_adapter.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "sim/registry.hpp"

namespace lumos::sim {

double FigureData::value(std::size_t w, std::size_t p) const {
  LUMOS_EXPECTS(w < reports.size() && p < reports[w].size());
  const PerfReport& r = reports[w][p];
  return metric == Metric::kEnergyPerBit ? r.energy_per_bit_j() : r.ops_per_second();
}

double FigureData::improvement(std::size_t w, std::size_t p) const {
  const double ours = value(w, 0);
  const double theirs = value(w, p);
  if (metric == Metric::kEnergyPerBit) return theirs / ours;  // lower is better
  return ours / theirs;                                       // higher is better
}

double FigureData::min_improvement() const {
  double best = 1e300;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (std::size_t p = 1; p < platforms.size(); ++p) {
      best = std::min(best, improvement(w, p));
    }
  }
  return workloads.empty() || platforms.size() < 2 ? 0.0 : best;
}

double FigureData::mean_improvement() const {
  std::vector<double> gains;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (std::size_t p = 1; p < platforms.size(); ++p) {
      gains.push_back(improvement(w, p));
    }
  }
  return geometric_mean(gains);
}

Table FigureData::to_table() const {
  Table t(title);
  std::vector<std::string> header{"workload"};
  for (const std::string& p : platforms) header.push_back(p);
  t.add_row(std::move(header));
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    std::vector<std::string> row{workloads[w]};
    for (std::size_t p = 0; p < platforms.size(); ++p) {
      if (metric == Metric::kEnergyPerBit) {
        row.push_back(Table::num(units::to_pj(value(w, p)), 4) + " pJ/b");
      } else {
        row.push_back(Table::num(units::to_gops(value(w, p)), 1) + " GOPS");
      }
    }
    t.add_row(std::move(row));
  }
  return t;
}

namespace {

// The paper's electronic baselines behind the polymorphic accelerator
// interface (see arch::PlatformAdapter), wrapped once per comparison set.
// The adapter delegates to the concrete per-kind roofline entry points
// bit-for-bit, so figure rows are unchanged — the kind branch just lives in
// one adapter instead of every figure consumer.
std::vector<arch::PlatformAdapter> wrap_baselines(
    std::vector<baselines::PlatformModel> models) {
  std::vector<arch::PlatformAdapter> adapters;
  adapters.reserve(models.size());
  for (baselines::PlatformModel& m : models) adapters.emplace_back(std::move(m));
  return adapters;
}

// The baseline set a workload kind is compared against in the paper.
const std::vector<arch::PlatformAdapter>& baselines_for(arch::WorkloadKind kind) {
  static const std::vector<arch::PlatformAdapter> llm =
      wrap_baselines(baselines::llm_baselines());
  static const std::vector<arch::PlatformAdapter> gnn =
      wrap_baselines(baselines::gnn_baselines());
  return kind == arch::WorkloadKind::kTransformer ? llm : gnn;
}

}  // namespace

std::vector<arch::Workload> llm_eval_workloads() {
  std::vector<arch::Workload> workloads;
  for (const nn::TransformerConfig& model : llm_eval_models()) {
    std::string name = model.name;
    workloads.push_back(arch::Workload::transformer(std::move(name), model));
  }
  return workloads;
}

std::vector<arch::Workload> gnn_eval_workloads() {
  std::vector<arch::Workload> workloads;
  std::vector<std::shared_ptr<const graph::GraphDataset>> datasets;
  for (graph::GraphDataset& ds : gnn_eval_datasets()) {
    datasets.push_back(std::make_shared<const graph::GraphDataset>(std::move(ds)));
  }
  for (const gnn::GnnModelConfig& model : gnn_eval_models()) {
    for (const auto& ds : datasets) {
      workloads.push_back(arch::Workload::gnn(model.name + "/" + ds->name, model, ds));
    }
  }
  return workloads;
}

FigureData run_figure(const arch::Accelerator& acc,
                      const std::vector<arch::Workload>& workloads, Metric metric,
                      const std::string& title) {
  FigureData f;
  f.title = title;
  f.metric = metric;
  f.platforms.push_back(acc.spec().family);
  bool platforms_named = false;
  for (const arch::Workload& w : workloads) {
    const std::vector<arch::PlatformAdapter>& baselines = baselines_for(w.kind());
    if (!platforms_named) {
      for (const auto& p : baselines) f.platforms.push_back(p.model().spec().name);
      platforms_named = true;
    }
    f.workloads.push_back(w.name());
    std::vector<PerfReport> row;
    row.push_back(acc.estimate(w));
    for (const auto& p : baselines) row.push_back(p.estimate(w));
    f.reports.push_back(std::move(row));
  }
  return f;
}

FigureData run_fig8_epb_llm(const arch::Accelerator& acc) {
  return run_figure(acc, llm_eval_workloads(), Metric::kEnergyPerBit,
                    "Fig. 8: EPB comparison across LLM accelerators");
}

FigureData run_fig9_gops_llm(const arch::Accelerator& acc) {
  return run_figure(acc, llm_eval_workloads(), Metric::kThroughputOps,
                    "Fig. 9: Throughput comparison across LLM accelerators");
}

FigureData run_fig10_epb_gnn(const arch::Accelerator& acc) {
  return run_figure(acc, gnn_eval_workloads(), Metric::kEnergyPerBit,
                    "Fig. 10: EPB comparison across GNN accelerators");
}

FigureData run_fig11_gops_gnn(const arch::Accelerator& acc) {
  return run_figure(acc, gnn_eval_workloads(), Metric::kThroughputOps,
                    "Fig. 11: Throughput comparison across GNN accelerators");
}

HeadlineClaims run_headline_claims(const arch::Accelerator& tron_acc,
                                   const arch::Accelerator& ghost_acc) {
  HeadlineClaims h;
  h.tron_min_epb_gain = run_fig8_epb_llm(tron_acc).min_improvement();
  h.tron_min_throughput_gain = run_fig9_gops_llm(tron_acc).min_improvement();
  h.ghost_min_epb_gain = run_fig10_epb_gnn(ghost_acc).min_improvement();
  h.ghost_min_throughput_gain = run_fig11_gops_gnn(ghost_acc).min_improvement();
  return h;
}

}  // namespace lumos::sim
