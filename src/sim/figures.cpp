#include "sim/figures.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "sim/registry.hpp"

namespace lumos::sim {

double FigureData::value(std::size_t w, std::size_t p) const {
  LUMOS_EXPECTS(w < reports.size() && p < reports[w].size());
  const PerfReport& r = reports[w][p];
  return metric == Metric::kEnergyPerBit ? r.energy_per_bit_j() : r.ops_per_second();
}

double FigureData::improvement(std::size_t w, std::size_t p) const {
  const double ours = value(w, 0);
  const double theirs = value(w, p);
  if (metric == Metric::kEnergyPerBit) return theirs / ours;  // lower is better
  return ours / theirs;                                       // higher is better
}

double FigureData::min_improvement() const {
  double best = 1e300;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (std::size_t p = 1; p < platforms.size(); ++p) {
      best = std::min(best, improvement(w, p));
    }
  }
  return workloads.empty() || platforms.size() < 2 ? 0.0 : best;
}

double FigureData::mean_improvement() const {
  std::vector<double> gains;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (std::size_t p = 1; p < platforms.size(); ++p) {
      gains.push_back(improvement(w, p));
    }
  }
  return geometric_mean(gains);
}

Table FigureData::to_table() const {
  Table t(title);
  std::vector<std::string> header{"workload"};
  for (const std::string& p : platforms) header.push_back(p);
  t.add_row(std::move(header));
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    std::vector<std::string> row{workloads[w]};
    for (std::size_t p = 0; p < platforms.size(); ++p) {
      if (metric == Metric::kEnergyPerBit) {
        row.push_back(Table::num(units::to_pj(value(w, p)), 4) + " pJ/b");
      } else {
        row.push_back(Table::num(units::to_gops(value(w, p)), 1) + " GOPS");
      }
    }
    t.add_row(std::move(row));
  }
  return t;
}

namespace {
FigureData run_llm_figure(const tron::TronConfig& config, Metric metric,
                          const std::string& title) {
  FigureData f;
  f.title = title;
  f.metric = metric;
  const tron::TronAccelerator tron_acc(config);
  const std::vector<baselines::PlatformModel> platforms = baselines::llm_baselines();
  f.platforms.push_back("TRON");
  for (const auto& p : platforms) f.platforms.push_back(p.spec().name);
  for (const nn::TransformerConfig& model : llm_eval_models()) {
    f.workloads.push_back(model.name);
    std::vector<PerfReport> row;
    row.push_back(tron_acc.estimate(model));
    for (const auto& p : platforms) row.push_back(p.estimate_transformer(model));
    f.reports.push_back(std::move(row));
  }
  return f;
}

FigureData run_gnn_figure(const ghost::GhostConfig& config, Metric metric,
                          const std::string& title) {
  FigureData f;
  f.title = title;
  f.metric = metric;
  const ghost::GhostAccelerator ghost_acc(config);
  const std::vector<baselines::PlatformModel> platforms = baselines::gnn_baselines();
  f.platforms.push_back("GHOST");
  for (const auto& p : platforms) f.platforms.push_back(p.spec().name);
  const std::vector<graph::GraphDataset> datasets = gnn_eval_datasets();
  for (const gnn::GnnModelConfig& model : gnn_eval_models()) {
    for (const graph::GraphDataset& ds : datasets) {
      f.workloads.push_back(model.name + "/" + ds.name);
      std::vector<PerfReport> row;
      row.push_back(ghost_acc.estimate(model, ds));
      for (const auto& p : platforms) row.push_back(p.estimate_gnn(model, ds));
      f.reports.push_back(std::move(row));
    }
  }
  return f;
}
}  // namespace

FigureData run_fig8_epb_llm(const tron::TronConfig& config) {
  return run_llm_figure(config, Metric::kEnergyPerBit,
                        "Fig. 8: EPB comparison across LLM accelerators");
}

FigureData run_fig9_gops_llm(const tron::TronConfig& config) {
  return run_llm_figure(config, Metric::kThroughputOps,
                        "Fig. 9: Throughput comparison across LLM accelerators");
}

FigureData run_fig10_epb_gnn(const ghost::GhostConfig& config) {
  return run_gnn_figure(config, Metric::kEnergyPerBit,
                        "Fig. 10: EPB comparison across GNN accelerators");
}

FigureData run_fig11_gops_gnn(const ghost::GhostConfig& config) {
  return run_gnn_figure(config, Metric::kThroughputOps,
                        "Fig. 11: Throughput comparison across GNN accelerators");
}

HeadlineClaims run_headline_claims(const tron::TronConfig& tron_config,
                                   const ghost::GhostConfig& ghost_config) {
  HeadlineClaims h;
  h.tron_min_epb_gain = run_fig8_epb_llm(tron_config).min_improvement();
  h.tron_min_throughput_gain = run_fig9_gops_llm(tron_config).min_improvement();
  h.ghost_min_epb_gain = run_fig10_epb_gnn(ghost_config).min_improvement();
  h.ghost_min_throughput_gain = run_fig11_gops_gnn(ghost_config).min_improvement();
  return h;
}

}  // namespace lumos::sim
