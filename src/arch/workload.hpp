// Tagged workload value type for the accelerator abstraction layer.
//
// A `Workload` is one inference job an accelerator can be asked to serve:
// either a transformer configuration (TRON-class fabrics) or a GNN model
// bound to a graph dataset (GHOST-class fabrics).  The variants live in a
// tagged union, so a workload carries exactly the state its kind needs —
// replacing the old `serve::ServeWorkload` struct whose dual members were
// half-unused per instance.  GNN workloads hold their dataset by shared
// reference: catalogs, caches, and fleet simulations all score the same
// generated graph without copying it.
#pragma once

#include <memory>
#include <string>
#include <variant>

#include "gnn/models.hpp"
#include "graph/generators.hpp"
#include "nn/transformer.hpp"

namespace lumos::arch {

enum class WorkloadKind { kTransformer, kGnn };

[[nodiscard]] const char* workload_kind_name(WorkloadKind kind) noexcept;

class Workload {
 public:
  [[nodiscard]] static Workload transformer(std::string name, nn::TransformerConfig config);
  [[nodiscard]] static Workload gnn(std::string name, gnn::GnnModelConfig model,
                                    std::shared_ptr<const graph::GraphDataset> dataset);
  // Convenience: takes ownership of a dataset value.
  [[nodiscard]] static Workload gnn(std::string name, gnn::GnnModelConfig model,
                                    graph::GraphDataset dataset);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] WorkloadKind kind() const noexcept;

  // A copy of this workload with its transformer sequence length replaced —
  // the serving layer's per-request sequence-length plumbing (a request that
  // sampled seq 384 scores the entry's model at seq 384).  GNN workloads have
  // no sequence dimension and throw `InvalidArgument` naming the workload.
  [[nodiscard]] Workload with_seq_len(std::size_t seq_len) const;

  // Variant accessors; asking a workload for the other kind's state throws
  // `InvalidArgument` naming the workload and its actual kind.
  [[nodiscard]] const nn::TransformerConfig& transformer_config() const;
  [[nodiscard]] const gnn::GnnModelConfig& gnn_model() const;
  [[nodiscard]] const graph::GraphDataset& dataset() const;
  [[nodiscard]] const std::shared_ptr<const graph::GraphDataset>& dataset_ref() const;

 private:
  struct TransformerJob {
    nn::TransformerConfig config;
  };
  struct GnnJob {
    gnn::GnnModelConfig model;
    std::shared_ptr<const graph::GraphDataset> dataset;
  };

  Workload(std::string name, std::variant<TransformerJob, GnnJob> job);

  [[nodiscard]] const GnnJob& gnn_job() const;

  std::string name_;
  std::variant<TransformerJob, GnnJob> job_;
};

}  // namespace lumos::arch
