// Polymorphic accelerator abstraction over the paper's photonic fabrics.
//
// `arch::Accelerator` is the one device interface every higher layer programs
// against: the serving simulator, the figure runners, the sensitivity sweeps,
// the CLI, and the benches all take an `Accelerator&` and never mention TRON
// or GHOST by type.  An accelerator advertises what it can serve
// (`can_serve`), estimates workloads (`estimate` / `estimate_batch`, both
// delegating to the concrete analytic mappings bit-for-bit), and exposes its
// fabric-wide static draw plus `SpecInfo` metadata keyed by the registry name
// (see arch/registry.hpp).  Adding a third fabric means one new adapter, not
// a new `switch` in every consumer.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "arch/workload.hpp"
#include "common/perf.hpp"
#include "ghost/accelerator.hpp"
#include "tron/accelerator.hpp"

namespace lumos::arch {

// Registry metadata of one accelerator configuration.  `name` keys the spec
// (fleet slots with the same name share estimate caches); `family` is the
// fabric it derives from ("TRON" / "GHOST"); `serves` is the workload kind
// its estimates accept.
struct SpecInfo {
  std::string name = "tron";
  std::string family = "TRON";
  WorkloadKind serves = WorkloadKind::kTransformer;
};

// One named stage of a PerfReport breakdown (structured view of
// `PerfBreakdown`'s parallel time/energy fields, in presentation order).
struct BreakdownEntry {
  const char* stage = "";
  double time_s = 0.0;
  double energy_j = 0.0;
};

// All breakdown stages of `report`, including zero-valued ones, so consumers
// can tabulate or diff reports field by field without knowing the struct
// layout.  The entries' times sum to the breakdown's time fields and the
// energies to its dynamic-energy fields.
[[nodiscard]] std::vector<BreakdownEntry> breakdown_entries(const PerfReport& report);

class Accelerator {
 public:
  virtual ~Accelerator() = default;

  [[nodiscard]] virtual const SpecInfo& spec() const noexcept = 0;

  // Whether this accelerator's estimates accept `workload`.  The default
  // matches the spec's primary kind; multi-kind fabrics (electronic roofline
  // platforms price both transformer and GNN passes) override it.
  [[nodiscard]] virtual bool can_serve(const Workload& workload) const noexcept {
    return workload.kind() == spec().serves;
  }

  // Analytic mapping of one inference of `workload` (batch 1).  Workloads the
  // accelerator cannot serve throw `InvalidArgument` naming both sides.
  [[nodiscard]] virtual PerfReport estimate(const Workload& workload) const = 0;

  // `batch` pipelined inferences (weight streams amortised; batch 1 is
  // bit-identical to `estimate`).
  [[nodiscard]] virtual PerfReport estimate_batch(const Workload& workload,
                                                  std::size_t batch) const = 0;

  // Autoregressive generation support.  A generating accelerator prices a
  // request as one prefill (`estimate_batch` at the prompt length) plus a
  // per-token decode step per generated token; fabrics without a decode path
  // (GHOST: GNN inference has no autoregressive loop) return false and
  // `estimate_decode_step` throws `InvalidArgument`.
  [[nodiscard]] virtual bool can_generate() const noexcept { return false; }

  // ONE decode step of `batch` concurrent lanes at KV context `context_len`
  // (see tron::TronAccelerator::estimate_decode_step for the cost model).
  [[nodiscard]] virtual PerfReport estimate_decode_step(const Workload& workload,
                                                        std::size_t batch,
                                                        std::size_t context_len) const;

  // Fabric-wide static (hold) power.
  [[nodiscard]] virtual double static_power_w() const = 0;

 protected:
  // Throws unless `can_serve(workload)`.
  void require_serveable(const Workload& workload) const;
};

// TRON behind the polymorphic interface.
class TronAdapter final : public Accelerator {
 public:
  explicit TronAdapter(const tron::TronConfig& config, SpecInfo info = SpecInfo{});

  [[nodiscard]] const SpecInfo& spec() const noexcept override { return info_; }
  [[nodiscard]] PerfReport estimate(const Workload& workload) const override;
  [[nodiscard]] PerfReport estimate_batch(const Workload& workload,
                                          std::size_t batch) const override;
  [[nodiscard]] bool can_generate() const noexcept override { return true; }
  [[nodiscard]] PerfReport estimate_decode_step(const Workload& workload, std::size_t batch,
                                                std::size_t context_len) const override;
  [[nodiscard]] double static_power_w() const override;

  // The concrete device, for TRON-only faces (area, generation, forward).
  [[nodiscard]] const tron::TronAccelerator& device() const noexcept { return device_; }

 private:
  SpecInfo info_;
  tron::TronAccelerator device_;
};

// GHOST behind the polymorphic interface.
class GhostAdapter final : public Accelerator {
 public:
  explicit GhostAdapter(const ghost::GhostConfig& config,
                        SpecInfo info = SpecInfo{"ghost", "GHOST", WorkloadKind::kGnn});

  [[nodiscard]] const SpecInfo& spec() const noexcept override { return info_; }
  [[nodiscard]] PerfReport estimate(const Workload& workload) const override;
  [[nodiscard]] PerfReport estimate_batch(const Workload& workload,
                                          std::size_t batch) const override;
  [[nodiscard]] double static_power_w() const override;

  [[nodiscard]] const ghost::GhostAccelerator& device() const noexcept { return device_; }

 private:
  SpecInfo info_;
  ghost::GhostAccelerator device_;
};

}  // namespace lumos::arch
