// Electronic roofline platforms behind the polymorphic accelerator interface.
//
// `PlatformAdapter` wraps a `baselines::PlatformModel` (the paper's Section VI
// comparison set: V100, A100, TPU v2/v4, Xeon, and the FPGA/PIM accelerators)
// as a third fabric next to TRON and GHOST, so serving fleets, campaigns, and
// the CLI can mix photonic and electronic slots.  Single-inference estimates
// delegate to `estimate_transformer` / `estimate_gnn` bit-for-bit; unlike the
// photonic fabrics, every platform prices both workload kinds (the roofline
// has a utilisation figure for each), so `can_serve` accepts both and the
// spec's `serves` only records the platform's primary comparison set.
//
// Decode: electronic slots join continuous batching through a roofline-priced
// `estimate_decode_step` (one token of `batch` lanes re-streams the weights
// once and reads each lane's KV cache), and `estimate_generation` is defined
// as the sum of batch-1 decode steps — so the step-sum pin that holds for
// TRON holds here by construction.
#pragma once

#include <cstddef>

#include "arch/accelerator.hpp"
#include "baselines/platforms.hpp"

namespace lumos::arch {

class PlatformAdapter final : public Accelerator {
 public:
  // SpecInfo defaults to the platform's own name under the "ELECTRONIC"
  // family (the registry passes its registry name instead).
  explicit PlatformAdapter(baselines::PlatformModel model);
  PlatformAdapter(baselines::PlatformModel model, SpecInfo info);

  [[nodiscard]] const SpecInfo& spec() const noexcept override { return info_; }
  // Electronic platforms price both kinds; the roofline just switches
  // utilisation/bandwidth-efficiency class.
  [[nodiscard]] bool can_serve(const Workload& workload) const noexcept override {
    (void)workload;
    return true;
  }
  [[nodiscard]] PerfReport estimate(const Workload& workload) const override;
  [[nodiscard]] PerfReport estimate_batch(const Workload& workload,
                                          std::size_t batch) const override;
  [[nodiscard]] bool can_generate() const noexcept override { return true; }
  [[nodiscard]] PerfReport estimate_decode_step(const Workload& workload, std::size_t batch,
                                                std::size_t context_len) const override;
  // Full autoregressive generation, defined as the sum of batch-1 decode
  // steps at growing context (the decode-serving conservation pin).
  [[nodiscard]] PerfReport estimate_generation(const Workload& workload,
                                               std::size_t prompt_len,
                                               std::size_t generated_tokens) const;
  [[nodiscard]] double static_power_w() const override;

  // The concrete roofline model, for platform-only faces (figure benches).
  [[nodiscard]] const baselines::PlatformModel& model() const noexcept { return model_; }

 private:
  SpecInfo info_;
  baselines::PlatformModel model_;
};

}  // namespace lumos::arch
