#include "arch/platform_adapter.hpp"

#include <string>
#include <utility>

#include "common/error.hpp"
#include "nn/transformer.hpp"

namespace lumos::arch {

namespace {

SpecInfo default_info(const baselines::PlatformModel& model) {
  return SpecInfo{model.spec().name, "ELECTRONIC", WorkloadKind::kTransformer};
}

}  // namespace

PlatformAdapter::PlatformAdapter(baselines::PlatformModel model)
    : info_(default_info(model)), model_(std::move(model)) {}

PlatformAdapter::PlatformAdapter(baselines::PlatformModel model, SpecInfo info)
    : info_(std::move(info)), model_(std::move(model)) {}

PerfReport PlatformAdapter::estimate(const Workload& workload) const {
  // Bit-identical delegation: the adapter adds nothing to the roofline.
  if (workload.kind() == WorkloadKind::kTransformer) {
    return model_.estimate_transformer(workload.transformer_config());
  }
  return model_.estimate_gnn(workload.gnn_model(), workload.dataset());
}

PerfReport PlatformAdapter::estimate_batch(const Workload& workload,
                                           std::size_t batch) const {
  LUMOS_EXPECTS(batch >= 1);
  if (batch == 1) return estimate(workload);  // bit-identical to `estimate`
  if (workload.kind() == WorkloadKind::kTransformer) {
    // Weights stream once for the whole batch; activations scale per pass.
    const nn::TransformerConfig& model = workload.transformer_config();
    const double weight_bytes = static_cast<double>(model.parameter_count());
    const double act_bytes = static_cast<double>(model.layers) *
                             static_cast<double>(model.seq_len) *
                             static_cast<double>(model.d_model) * 4.0;
    return model_.estimate(model.name, model.op_count() * batch,
                           weight_bytes + act_bytes * static_cast<double>(batch),
                           baselines::WorkloadClass::kTransformer);
  }
  // GNN: the per-edge/per-node gather traffic repeats per inference; the
  // layer weights amortise across the batch.
  const gnn::GnnModelConfig& model = workload.gnn_model();
  const graph::GraphDataset& dataset = workload.dataset();
  double bytes = 0.0;
  for (const gnn::GnnLayerConfig& l : model.layers_for(dataset)) {
    bytes += static_cast<double>(dataset.graph.edge_count()) *
             static_cast<double>(l.in_dim) * static_cast<double>(batch);
    bytes += static_cast<double>(dataset.graph.node_count()) *
             static_cast<double>(l.in_dim) * static_cast<double>(batch);
    bytes += static_cast<double>(l.in_dim) * static_cast<double>(l.out_dim);
  }
  return model_.estimate(model.name + "/" + dataset.name,
                         gnn::model_op_count(model, dataset) * batch, bytes,
                         baselines::WorkloadClass::kGnn);
}

PerfReport PlatformAdapter::estimate_decode_step(const Workload& workload,
                                                 std::size_t batch,
                                                 std::size_t context_len) const {
  if (workload.kind() != WorkloadKind::kTransformer) {
    throw InvalidArgument("accelerator spec '" + info_.name +
                          "' cannot decode workload '" + workload.name() +
                          "': autoregressive decoding needs a transformer workload");
  }
  LUMOS_EXPECTS(batch >= 1);
  LUMOS_EXPECTS(context_len >= 1);
  const nn::TransformerConfig& model = workload.transformer_config();
  // One token per lane: compute scales with the batch, the weight re-stream
  // is paid once per step, and each lane reads its own K/V cache at the
  // current context (int8 operands: one byte per parameter, matching the
  // full-pass byte conventions above).
  const std::size_t ops = 2 * nn::generation_step_macs(model, context_len) * batch;
  const double weight_bytes = static_cast<double>(model.parameter_count());
  const double kv_bytes = 2.0 * static_cast<double>(model.layers) *
                          static_cast<double>(context_len) *
                          static_cast<double>(model.d_model) *
                          static_cast<double>(batch);
  return model_.estimate(model.name + " (decode step @" + std::to_string(context_len) + ")",
                         ops, weight_bytes + kv_bytes,
                         baselines::WorkloadClass::kTransformer);
}

PerfReport PlatformAdapter::estimate_generation(const Workload& workload,
                                                std::size_t prompt_len,
                                                std::size_t generated_tokens) const {
  LUMOS_EXPECTS(prompt_len >= 1);
  LUMOS_EXPECTS(generated_tokens >= 1);
  const nn::TransformerConfig& model = workload.transformer_config();
  PerfReport r;
  r.workload = model.name + " (generate " + std::to_string(generated_tokens) + ")";
  r.platform = model_.spec().name;
  r.bits = model_.spec().bits;
  r.static_power_w = static_power_w();
  for (std::size_t t = 0; t < generated_tokens; ++t) {
    const PerfReport step = estimate_decode_step(workload, 1, prompt_len + t);
    r.latency_s += step.latency_s;
    r.dynamic_energy_j += step.dynamic_energy_j;
    r.static_energy_j += step.static_energy_j;
    r.total_energy_j += step.total_energy_j;
    r.op_count += step.op_count;
    r.breakdown.matmul_time_s += step.breakdown.matmul_time_s;
    r.breakdown.memory_stall_s += step.breakdown.memory_stall_s;
  }
  return r;
}

double PlatformAdapter::static_power_w() const {
  return model_.spec().idle_power_fraction * model_.spec().board_power_w;
}

}  // namespace lumos::arch
