#include "arch/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "arch/platform_adapter.hpp"
#include "common/error.hpp"
#include "sim/registry.hpp"

namespace lumos::arch {

namespace {

// A registry name split into its base spec and optional "@<scale>" suffix.
struct ParsedName {
  std::string base;
  double scale = 1.0;
};

ParsedName parse_name(const std::string& name) {
  const std::size_t at = name.find('@');
  ParsedName p;
  p.base = name.substr(0, at);
  if (at != std::string::npos) {
    const std::string suffix = name.substr(at + 1);
    char* end = nullptr;
    p.scale = std::strtod(suffix.c_str(), &end);
    // The upper bound keeps unit-count * scale inside llround's range (and no
    // fabric needs a million-fold scale-up anyway).
    constexpr double kMaxScale = 1e6;
    if (suffix.empty() || end != suffix.c_str() + suffix.size() || !(p.scale > 0.0) ||
        !std::isfinite(p.scale) || p.scale > kMaxScale) {
      throw InvalidArgument("bad accelerator spec scale '" + suffix + "' in '" + name +
                            "' (expected <base>@<scale> with scale in (0, 1e6], e.g. "
                            "tron@0.5)");
    }
  }
  return p;
}

std::size_t scaled(std::size_t units, double scale) {
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(
                                      static_cast<double>(units) * scale)));
}

[[noreturn]] void throw_unknown(const std::string& name) {
  throw InvalidArgument("unknown accelerator spec: " + name + " (expected " +
                        sim::joined_names(spec_names()) +
                        ", optionally scaled as <base>@<scale>)");
}

// One electronic platform entry: registry name, roofline factory, and the
// paper comparison set it primarily belongs to (the `spec_kind` answer; every
// platform actually serves both kinds).
struct PlatformEntry {
  const char* name;
  baselines::PlatformModel (*factory)();
  WorkloadKind primary;
};

const std::vector<PlatformEntry>& platform_entries() {
  static const std::vector<PlatformEntry> entries{
      // LLM comparison set (paper Figs. 8-9).
      {"xeon", baselines::xeon_cpu, WorkloadKind::kTransformer},
      {"v100", baselines::v100_gpu, WorkloadKind::kTransformer},
      {"tpu-v2", baselines::tpu_v2, WorkloadKind::kTransformer},
      {"transpim", baselines::transpim, WorkloadKind::kTransformer},
      {"fpga-acc1", baselines::fpga_acc1, WorkloadKind::kTransformer},
      {"vaqf", baselines::vaqf, WorkloadKind::kTransformer},
      {"fpga-acc2", baselines::fpga_acc2, WorkloadKind::kTransformer},
      // GNN comparison set (paper Figs. 10-11).
      {"a100", baselines::a100_gpu, WorkloadKind::kGnn},
      {"tpu-v4", baselines::tpu_v4, WorkloadKind::kGnn},
      {"grip", baselines::grip, WorkloadKind::kGnn},
      {"hygcn", baselines::hygcn, WorkloadKind::kGnn},
      {"engn", baselines::engn, WorkloadKind::kGnn},
      {"hw-acc", baselines::hw_acc, WorkloadKind::kGnn},
      {"regnn", baselines::regnn, WorkloadKind::kGnn},
      {"regraphx", baselines::regraphx, WorkloadKind::kGnn},
  };
  return entries;
}

const PlatformEntry* platform_entry(const std::string& base) {
  for (const PlatformEntry& e : platform_entries()) {
    if (base == e.name) return &e;
  }
  return nullptr;
}

}  // namespace

const std::vector<std::string>& spec_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> all{"tron", "tron-eco", "ghost", "ghost-eco"};
    for (const PlatformEntry& e : platform_entries()) all.emplace_back(e.name);
    return all;
  }();
  return names;
}

tron::TronConfig tron_config_by_name(const std::string& name) {
  const ParsedName p = parse_name(name);
  tron::TronConfig config = tron::default_tron_config();
  if (p.base == "tron-eco") {
    // Half the attention-head units and FF arrays: roughly half the fabric's
    // static draw for roughly double the compute time on array-bound ops.
    config.head_units = config.head_units / 2;
    config.ff_arrays = config.ff_arrays / 2;
  } else if (p.base != "tron") {
    throw_unknown(name);
  }
  config.head_units = scaled(config.head_units, p.scale);
  config.ff_arrays = scaled(config.ff_arrays, p.scale);
  return config;
}

ghost::GhostConfig ghost_config_by_name(const std::string& name) {
  const ParsedName p = parse_name(name);
  ghost::GhostConfig config = ghost::default_ghost_config();
  if (p.base == "ghost-eco") {
    config.lanes = config.lanes / 2;
    config.transform_arrays_per_lane = 1;
  } else if (p.base != "ghost") {
    throw_unknown(name);
  }
  config.lanes = scaled(config.lanes, p.scale);
  return config;
}

std::string scaled_spec_name(const std::string& name, double scale) {
  const ParsedName p = parse_name(name);
  (void)spec_kind(p.base);  // validates the base spec
  const double net = p.scale * scale;
  if (!(net > 0.0) || !std::isfinite(net) || net > 1e6) {
    throw InvalidArgument("bad accelerator spec scale " + std::to_string(scale) +
                          " applied to '" + name + "' (net scale must be in (0, 1e6])");
  }
  if (net == 1.0) return p.base;
  // %g keeps the short canonical forms ("0.5", "2") and stays non-zero for
  // tiny scales ("1e-07"), so the returned name always re-parses.
  char suffix[32];
  std::snprintf(suffix, sizeof suffix, "%g", net);
  return p.base + "@" + suffix;
}

WorkloadKind spec_kind(const std::string& name) {
  const ParsedName p = parse_name(name);
  if (p.base == "tron" || p.base == "tron-eco") return WorkloadKind::kTransformer;
  if (p.base == "ghost" || p.base == "ghost-eco") return WorkloadKind::kGnn;
  if (const PlatformEntry* e = platform_entry(p.base)) return e->primary;
  throw_unknown(name);
}

bool is_platform_spec(const std::string& name) {
  const ParsedName p = parse_name(name);
  if (platform_entry(p.base) != nullptr) return true;
  (void)spec_kind(name);  // validates photonic names
  return false;
}

bool spec_serves(const std::string& name, WorkloadKind kind) {
  // Electronic rooflines price both kinds; photonic fabrics serve one.
  return is_platform_spec(name) || spec_kind(name) == kind;
}

baselines::PlatformSpec platform_spec_by_name(const std::string& name) {
  const ParsedName p = parse_name(name);
  const PlatformEntry* e = platform_entry(p.base);
  if (e == nullptr) {
    throw InvalidArgument("accelerator spec '" + name +
                          "' is not an electronic platform (expected one of the "
                          "platform names from spec_names())");
  }
  baselines::PlatformSpec spec = e->factory().spec();
  // Scaling an electronic platform multiplies its compute fabric and memory
  // system together (wider part of the same design), so board power scales
  // with them.
  spec.peak_ops_per_s *= p.scale;
  spec.memory_bandwidth_bps *= p.scale;
  spec.board_power_w *= p.scale;
  return spec;
}

std::unique_ptr<Accelerator> make_accelerator(const std::string& name) {
  const ParsedName p = parse_name(name);
  if (p.base == "tron" || p.base == "tron-eco") {
    return std::make_unique<TronAdapter>(
        tron_config_by_name(name), SpecInfo{name, "TRON", WorkloadKind::kTransformer});
  }
  if (p.base == "ghost" || p.base == "ghost-eco") {
    return std::make_unique<GhostAdapter>(ghost_config_by_name(name),
                                          SpecInfo{name, "GHOST", WorkloadKind::kGnn});
  }
  if (const PlatformEntry* e = platform_entry(p.base)) {
    return std::make_unique<PlatformAdapter>(
        baselines::PlatformModel(platform_spec_by_name(name)),
        SpecInfo{name, "ELECTRONIC", e->primary});
  }
  throw_unknown(name);
}

}  // namespace lumos::arch
