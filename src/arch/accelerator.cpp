#include "arch/accelerator.hpp"

#include "common/error.hpp"

namespace lumos::arch {

std::vector<BreakdownEntry> breakdown_entries(const PerfReport& report) {
  const PerfBreakdown& b = report.breakdown;
  return {
      {"matmul", b.matmul_time_s, b.laser_dac_adc_energy_j},
      {"partial-sum", 0.0, b.partial_sum_energy_j},
      {"softmax", b.softmax_time_s, b.softmax_energy_j},
      {"elementwise", b.elementwise_time_s, b.elementwise_energy_j},
      {"aggregation", b.aggregation_time_s, b.aggregation_energy_j},
      {"sram", 0.0, b.sram_energy_j},
      {"dram", b.memory_stall_s, b.dram_energy_j},
  };
}

void Accelerator::require_serveable(const Workload& workload) const {
  if (!can_serve(workload)) {
    throw InvalidArgument("accelerator '" + spec().name + "' (" + spec().family +
                          ") cannot serve " + workload_kind_name(workload.kind()) +
                          " workload '" + workload.name() + "'");
  }
}

PerfReport Accelerator::estimate_decode_step(const Workload& workload, std::size_t batch,
                                             std::size_t context_len) const {
  (void)batch;
  (void)context_len;
  throw InvalidArgument("accelerator '" + spec().name + "' (" + spec().family +
                        ") has no autoregressive decode path for workload '" +
                        workload.name() + "'");
}

TronAdapter::TronAdapter(const tron::TronConfig& config, SpecInfo info)
    : info_(std::move(info)), device_(config) {}

PerfReport TronAdapter::estimate(const Workload& workload) const {
  require_serveable(workload);
  return device_.estimate(workload.transformer_config());
}

PerfReport TronAdapter::estimate_batch(const Workload& workload, std::size_t batch) const {
  require_serveable(workload);
  return device_.estimate_batch(workload.transformer_config(), batch);
}

PerfReport TronAdapter::estimate_decode_step(const Workload& workload, std::size_t batch,
                                             std::size_t context_len) const {
  require_serveable(workload);
  return device_.estimate_decode_step(workload.transformer_config(), batch, context_len);
}

double TronAdapter::static_power_w() const { return device_.static_power_w(); }

GhostAdapter::GhostAdapter(const ghost::GhostConfig& config, SpecInfo info)
    : info_(std::move(info)), device_(config) {}

PerfReport GhostAdapter::estimate(const Workload& workload) const {
  require_serveable(workload);
  return device_.estimate(workload.gnn_model(), workload.dataset());
}

PerfReport GhostAdapter::estimate_batch(const Workload& workload, std::size_t batch) const {
  require_serveable(workload);
  return device_.estimate_batch(workload.gnn_model(), workload.dataset(), batch);
}

double GhostAdapter::static_power_w() const { return device_.static_power_w(); }

}  // namespace lumos::arch
