// Name-keyed registry of accelerator specs, the device-side sibling of
// `sim::registry`'s workload lookups.  Every front end (CLI, serving fleets,
// benches) names accelerators by these strings; the registry maps a name to a
// factory for the corresponding `arch::Accelerator`.
//
// Accepted names:
//   * base specs     — "tron", "ghost": the paper's default design points;
//   * eco variants   — "tron-eco", "ghost-eco": reduced-fabric designs
//     (fewer compute arrays; lower static draw, higher latency — the
//     interesting trade for energy-aware routing);
//   * electronic     — "xeon", "v100", "tpu-v2", "transpim", "fpga-acc1",
//     "vaqf", "fpga-acc2", "a100", "tpu-v4", "grip", "hygcn", "engn",
//     "hw-acc", "regnn", "regraphx": the paper's Section VI comparison
//     platforms behind `arch::PlatformAdapter` (roofline models; serve both
//     workload kinds, so hybrid photonic/electronic fleets can mix freely);
//   * scaled specs   — "<base>@<scale>", e.g. "tron@0.5" or "v100@2":
//     the base design with its compute-fabric unit counts (photonic) or
//     peak throughput / bandwidth / board power (electronic) multiplied by
//     <scale>, for capacity what-ifs without hand-editing configs.
// Unknown names throw `InvalidArgument` listing the accepted names.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/accelerator.hpp"
#include "baselines/platforms.hpp"
#include "ghost/config.hpp"
#include "tron/config.hpp"

namespace lumos::arch {

// Accepted base spec names, in canonical (presentation) order.
[[nodiscard]] const std::vector<std::string>& spec_names();

// Name -> accelerator.  Accepts `spec_names()` plus "<base>@<scale>" forms.
[[nodiscard]] std::unique_ptr<Accelerator> make_accelerator(const std::string& name);

// The PRIMARY workload kind a spec serves, without constructing the device
// (capacity planners ask this per fleet slot).  Electronic platforms serve
// both kinds; this reports the comparison set they belong to — ask
// `spec_serves` for actual serveability.  Same name validation as
// `make_accelerator`.
[[nodiscard]] WorkloadKind spec_kind(const std::string& name);

// Whether `name` is one of the electronic roofline platforms (vs a photonic
// fabric).  Same name validation as `make_accelerator`.
[[nodiscard]] bool is_platform_spec(const std::string& name);

// Whether the named spec's estimates accept workloads of `kind`, without
// constructing the device: photonic fabrics serve their `spec_kind` only,
// electronic platforms serve both.
[[nodiscard]] bool spec_serves(const std::string& name, WorkloadKind kind);

// The concrete roofline spec behind an electronic platform name, with any
// "@<scale>" applied (peak throughput, memory bandwidth, and board power all
// multiply by the scale).  Throws for photonic names.
[[nodiscard]] baselines::PlatformSpec platform_spec_by_name(const std::string& name);

// The canonical "<base>@<scale>" name for `name` re-scaled by `scale`
// (compounding any scale already in `name`; a net scale of 1 returns the bare
// base).  Elastic fleets use this to grow scaled burst capacity from a
// family's spec.  Validates `name` and the resulting scale like
// `make_accelerator`.
[[nodiscard]] std::string scaled_spec_name(const std::string& name, double scale);

// The concrete configurations behind the TRON-family / GHOST-family names
// (exposed so design sweeps can perturb a named design point).  Same name
// validation as `make_accelerator`.
[[nodiscard]] tron::TronConfig tron_config_by_name(const std::string& name);
[[nodiscard]] ghost::GhostConfig ghost_config_by_name(const std::string& name);

}  // namespace lumos::arch
