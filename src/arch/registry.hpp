// Name-keyed registry of accelerator specs, the device-side sibling of
// `sim::registry`'s workload lookups.  Every front end (CLI, serving fleets,
// benches) names accelerators by these strings; the registry maps a name to a
// factory for the corresponding `arch::Accelerator`.
//
// Accepted names:
//   * base specs     — "tron", "ghost": the paper's default design points;
//   * eco variants   — "tron-eco", "ghost-eco": reduced-fabric designs
//     (fewer compute arrays; lower static draw, higher latency — the
//     interesting trade for energy-aware routing);
//   * scaled specs   — "<base>@<scale>", e.g. "tron@0.5" or "ghost@2":
//     the base design with its compute-fabric unit counts multiplied by
//     <scale> (clamped to at least one unit), for capacity what-ifs without
//     hand-editing configs.
// Unknown names throw `InvalidArgument` listing the accepted names.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/accelerator.hpp"
#include "ghost/config.hpp"
#include "tron/config.hpp"

namespace lumos::arch {

// Accepted base spec names, in canonical (presentation) order.
[[nodiscard]] const std::vector<std::string>& spec_names();

// Name -> accelerator.  Accepts `spec_names()` plus "<base>@<scale>" forms.
[[nodiscard]] std::unique_ptr<Accelerator> make_accelerator(const std::string& name);

// The workload kind a spec serves, without constructing the device (capacity
// planners ask this per fleet slot).  Same name validation as
// `make_accelerator`.
[[nodiscard]] WorkloadKind spec_kind(const std::string& name);

// The canonical "<base>@<scale>" name for `name` re-scaled by `scale`
// (compounding any scale already in `name`; a net scale of 1 returns the bare
// base).  Elastic fleets use this to grow scaled burst capacity from a
// family's spec.  Validates `name` and the resulting scale like
// `make_accelerator`.
[[nodiscard]] std::string scaled_spec_name(const std::string& name, double scale);

// The concrete configurations behind the TRON-family / GHOST-family names
// (exposed so design sweeps can perturb a named design point).  Same name
// validation as `make_accelerator`.
[[nodiscard]] tron::TronConfig tron_config_by_name(const std::string& name);
[[nodiscard]] ghost::GhostConfig ghost_config_by_name(const std::string& name);

}  // namespace lumos::arch
