#include "arch/workload.hpp"

#include "common/error.hpp"

namespace lumos::arch {

const char* workload_kind_name(WorkloadKind kind) noexcept {
  return kind == WorkloadKind::kTransformer ? "transformer" : "gnn";
}

Workload::Workload(std::string name, std::variant<TransformerJob, GnnJob> job)
    : name_(std::move(name)), job_(std::move(job)) {}

Workload Workload::transformer(std::string name, nn::TransformerConfig config) {
  return Workload(std::move(name), TransformerJob{std::move(config)});
}

Workload Workload::gnn(std::string name, gnn::GnnModelConfig model,
                       std::shared_ptr<const graph::GraphDataset> dataset) {
  LUMOS_EXPECTS_MSG(dataset != nullptr, "GNN workload '" + name + "' needs a dataset");
  return Workload(std::move(name), GnnJob{std::move(model), std::move(dataset)});
}

Workload Workload::gnn(std::string name, gnn::GnnModelConfig model,
                       graph::GraphDataset dataset) {
  return gnn(std::move(name), std::move(model),
             std::make_shared<const graph::GraphDataset>(std::move(dataset)));
}

WorkloadKind Workload::kind() const noexcept {
  return std::holds_alternative<TransformerJob>(job_) ? WorkloadKind::kTransformer
                                                      : WorkloadKind::kGnn;
}

Workload Workload::with_seq_len(std::size_t seq_len) const {
  if (kind() != WorkloadKind::kTransformer) {
    throw InvalidArgument("workload '" + name_ + "' is a " + workload_kind_name(kind()) +
                          " workload and has no sequence length to override");
  }
  LUMOS_EXPECTS_MSG(seq_len >= 1, "with_seq_len needs seq_len >= 1");
  nn::TransformerConfig config = transformer_config();
  config.seq_len = seq_len;
  return transformer(name_, std::move(config));
}

const nn::TransformerConfig& Workload::transformer_config() const {
  const auto* job = std::get_if<TransformerJob>(&job_);
  if (job == nullptr) {
    throw InvalidArgument("workload '" + name_ + "' is a " + workload_kind_name(kind()) +
                          " workload, not a transformer workload");
  }
  return job->config;
}

const Workload::GnnJob& Workload::gnn_job() const {
  const auto* job = std::get_if<GnnJob>(&job_);
  if (job == nullptr) {
    throw InvalidArgument("workload '" + name_ + "' is a " + workload_kind_name(kind()) +
                          " workload, not a gnn workload");
  }
  return *job;
}

const gnn::GnnModelConfig& Workload::gnn_model() const { return gnn_job().model; }

const graph::GraphDataset& Workload::dataset() const { return *gnn_job().dataset; }

const std::shared_ptr<const graph::GraphDataset>& Workload::dataset_ref() const {
  return gnn_job().dataset;
}

}  // namespace lumos::arch
