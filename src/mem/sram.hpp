// CACTI-like SRAM buffer model.
//
// Paper Section VI: "For all the memories and buffers employed in our
// accelerators, CACTI was used to obtain their performance and energy
// estimates."  CACTI itself is a large layout-level tool; the accelerator
// models only consume three outputs per buffer — read/write energy per
// access, access latency, and leakage power — so we reproduce those with
// capacity/word-width scaling laws calibrated against published CACTI 7
// design points at a 32 nm logic node.
//
// Calibration anchors (CACTI 7, 32 nm, single-port SRAM, 64 B line):
//   4 KB  : ~3 pJ/read, ~0.30 ns, ~1.5 mW leakage
//   32 KB : ~9 pJ/read, ~0.45 ns, ~9 mW
//   256 KB: ~25 pJ/read, ~0.95 ns, ~60 mW
//   2 MB  : ~70 pJ/read, ~2.4 ns, ~420 mW
// The sqrt(capacity) energy/latency growth and linear leakage growth used
// below reproduce these within ~20%, which is inside CACTI's own config
// sensitivity.
#pragma once

#include <cstddef>

namespace lumos::mem {

struct SramConfig {
  std::size_t capacity_bytes = 64 * 1024;
  std::size_t word_bytes = 8;       // bytes delivered per access
  std::size_t banks = 1;            // independent banks (parallel accesses)
  double technology_nm = 32.0;      // scaling reference node
};

class SramModel {
 public:
  explicit SramModel(const SramConfig& config);

  // Energy of one read / write access of `word_bytes` (J).
  [[nodiscard]] double read_energy_j() const noexcept { return read_energy_j_; }
  [[nodiscard]] double write_energy_j() const noexcept { return write_energy_j_; }

  // Random-access latency (s).
  [[nodiscard]] double access_latency_s() const noexcept { return latency_s_; }

  // Standby leakage of the whole array (W).
  [[nodiscard]] double leakage_power_w() const noexcept { return leakage_w_; }

  // Peak bandwidth with all banks streaming (bytes/s), assuming pipelined
  // accesses at the access latency.
  [[nodiscard]] double peak_bandwidth_bytes_per_s() const noexcept;

  [[nodiscard]] const SramConfig& config() const noexcept { return config_; }

 private:
  SramConfig config_;
  double read_energy_j_;
  double write_energy_j_;
  double latency_s_;
  double leakage_w_;
};

// Main-memory (HBM2-class) model: per-bit transfer energy plus fixed access
// latency and a shared bandwidth ceiling.
struct DramConfig {
  double energy_per_bit_j = 3.9e-12;  // HBM2 ~3.9 pJ/bit
  double access_latency_s = 100e-9;
  double bandwidth_bytes_per_s = 256e9;  // one HBM2 stack
  double static_power_w = 1.0;
};

class DramModel {
 public:
  explicit DramModel(const DramConfig& config);

  // Energy to move `bytes` (J).
  [[nodiscard]] double transfer_energy_j(std::size_t bytes) const noexcept;
  // Time to move `bytes` as one burst (latency + bandwidth-limited streaming).
  [[nodiscard]] double transfer_latency_s(std::size_t bytes) const noexcept;
  [[nodiscard]] double static_power_w() const noexcept { return config_.static_power_w; }

  [[nodiscard]] const DramConfig& config() const noexcept { return config_; }

 private:
  DramConfig config_;
};

// Access bookkeeping for one buffer instance inside an accelerator.
struct AccessStats {
  std::size_t reads = 0;
  std::size_t writes = 0;
  double energy_j = 0.0;
  double busy_time_s = 0.0;

  void merge(const AccessStats& other) noexcept {
    reads += other.reads;
    writes += other.writes;
    energy_j += other.energy_j;
    busy_time_s += other.busy_time_s;
  }
};

// A named buffer with its model and running statistics.
class Buffer {
 public:
  Buffer(const SramConfig& config);

  // Records `count` word reads/writes and returns the time they take with
  // `config.banks` banks operating in parallel.
  double record_reads(std::size_t count);
  double record_writes(std::size_t count);

  [[nodiscard]] const AccessStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SramModel& model() const noexcept { return model_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  SramModel model_;
  AccessStats stats_;
};

}  // namespace lumos::mem
