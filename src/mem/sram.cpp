#include "mem/sram.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace lumos::mem {

SramModel::SramModel(const SramConfig& config) : config_(config) {
  LUMOS_EXPECTS(config.capacity_bytes >= 64);
  LUMOS_EXPECTS(config.word_bytes >= 1);
  LUMOS_EXPECTS(config.banks >= 1);
  LUMOS_EXPECTS(config.technology_nm > 0.0);

  const double cap = static_cast<double>(config.capacity_bytes);
  const double bank_cap = cap / static_cast<double>(config.banks);
  // Technology scaling relative to the 32 nm calibration node: dynamic energy
  // ~ node^2 (capacitance * V^2), latency ~ node, leakage ~ node.
  const double s = config.technology_nm / 32.0;

  // Read energy: wordline/bitline energy grows with array side length
  // (sqrt of the per-bank capacity), plus a per-byte data transfer term.
  const double word_scale = static_cast<double>(config.word_bytes) / 8.0;
  read_energy_j_ = (0.047e-12 * std::sqrt(bank_cap) * (0.5 + 0.5 * word_scale)) * s * s;
  write_energy_j_ = 1.15 * read_energy_j_;  // write drivers cost slightly more

  latency_s_ = (0.20e-9 + 0.0015e-9 * std::sqrt(bank_cap)) * s;
  leakage_w_ = 0.21e-3 * (cap / 1024.0) * s;  // ~0.21 mW per KB at 32 nm
}

double SramModel::peak_bandwidth_bytes_per_s() const noexcept {
  return static_cast<double>(config_.word_bytes) * static_cast<double>(config_.banks) /
         latency_s_;
}

DramModel::DramModel(const DramConfig& config) : config_(config) {
  LUMOS_EXPECTS(config.energy_per_bit_j > 0.0);
  LUMOS_EXPECTS(config.access_latency_s >= 0.0);
  LUMOS_EXPECTS(config.bandwidth_bytes_per_s > 0.0);
}

double DramModel::transfer_energy_j(std::size_t bytes) const noexcept {
  return config_.energy_per_bit_j * 8.0 * static_cast<double>(bytes);
}

double DramModel::transfer_latency_s(std::size_t bytes) const noexcept {
  return config_.access_latency_s +
         static_cast<double>(bytes) / config_.bandwidth_bytes_per_s;
}

Buffer::Buffer(const SramConfig& config) : model_(config) {}

double Buffer::record_reads(std::size_t count) {
  stats_.reads += count;
  stats_.energy_j += static_cast<double>(count) * model_.read_energy_j();
  const double banks = static_cast<double>(model_.config().banks);
  const double t = std::ceil(static_cast<double>(count) / banks) * model_.access_latency_s();
  stats_.busy_time_s += t;
  return t;
}

double Buffer::record_writes(std::size_t count) {
  stats_.writes += count;
  stats_.energy_j += static_cast<double>(count) * model_.write_energy_j();
  const double banks = static_cast<double>(model_.config().banks);
  const double t = std::ceil(static_cast<double>(count) / banks) * model_.access_latency_s();
  stats_.busy_time_s += t;
  return t;
}

}  // namespace lumos::mem
