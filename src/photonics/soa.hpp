// Semiconductor optical amplifier (SOA) nonlinearity model.
//
// Paper Section V.D: "Non-linear activation functions such as RELU, sigmoid,
// and tanh are implemented optically using semiconductor-optical-amplifiers
// (SOAs)", while softmax falls back to digital LUTs.  An SOA biased near its
// saturation knee realises a squashing nonlinearity; with an offset branch it
// approximates ReLU.  We model the static gain-saturation transfer curve
//
//   G(P_in) = G0 / (1 + P_out / P_sat)      (implicit; solved iteratively)
//
// and fit each supported activation by configuring bias and scaling.  The
// model exposes both the *ideal* activation (for reference execution) and the
// SOA's approximation error so the functional simulator can account for it.
#pragma once

#include "common/error.hpp"

namespace lumos::phot {

enum class OpticalActivation { kRelu, kSigmoid, kTanh };

struct SoaConfig {
  double small_signal_gain_db = 15.0;
  double saturation_output_power_w = 3e-3;
  double bias_power_w = 18e-3;          // electrical bias (always on)
  double noise_figure_db = 7.0;
  double response_time_s = 100e-12;     // carrier lifetime limited
};

class Soa {
 public:
  explicit Soa(const SoaConfig& config);

  // Saturated output power for `input_w` (solves the implicit gain equation
  // by fixed-point iteration; monotone and contracting for G0 > 1).
  [[nodiscard]] double amplify(double input_w) const;

  // Gain (linear) experienced at `input_w`.
  [[nodiscard]] double gain_at(double input_w) const;

  // Normalised activation transfer: input in [-1,1] mapped through the SOA
  // realisation of `fn` (offset-bias encoding for negative values).
  [[nodiscard]] double activate(OpticalActivation fn, double x) const;

  // Exact mathematical activation, for error accounting.
  [[nodiscard]] static double ideal(OpticalActivation fn, double x) noexcept;

  // Max |activate - ideal| over a sampled grid of [-1,1]; the functional
  // simulator folds this into its error budget.
  [[nodiscard]] double approximation_error(OpticalActivation fn, int samples = 256) const;

  [[nodiscard]] const SoaConfig& config() const noexcept { return config_; }

 private:
  SoaConfig config_;
  double g0_linear_;
};

}  // namespace lumos::phot
