#include "photonics/soa.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace lumos::phot {

Soa::Soa(const SoaConfig& config) : config_(config) {
  LUMOS_EXPECTS(config.small_signal_gain_db > 0.0);
  LUMOS_EXPECTS(config.saturation_output_power_w > 0.0);
  LUMOS_EXPECTS(config.bias_power_w >= 0.0);
  g0_linear_ = units::db_to_linear(config.small_signal_gain_db);
}

double Soa::amplify(double input_w) const {
  LUMOS_EXPECTS(input_w >= 0.0);
  if (input_w == 0.0) return 0.0;
  // Solve P_out = P_in * G0 / (1 + P_out/P_sat) by fixed-point iteration.
  const double psat = config_.saturation_output_power_w;
  double pout = std::min(input_w * g0_linear_, psat * g0_linear_);
  for (int i = 0; i < 64; ++i) {
    const double next = input_w * g0_linear_ / (1.0 + pout / psat);
    if (std::fabs(next - pout) < 1e-15) {
      pout = next;
      break;
    }
    pout = 0.5 * (pout + next);  // damped for stability near saturation
  }
  return pout;
}

double Soa::gain_at(double input_w) const {
  if (input_w <= 0.0) return g0_linear_;
  return amplify(input_w) / input_w;
}

double Soa::ideal(OpticalActivation fn, double x) noexcept {
  switch (fn) {
    case OpticalActivation::kRelu:
      return x > 0.0 ? x : 0.0;
    case OpticalActivation::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
    case OpticalActivation::kTanh:
      return std::tanh(x);
  }
  return 0.0;
}

double Soa::activate(OpticalActivation fn, double x) const {
  LUMOS_EXPECTS(x >= -1.0 && x <= 1.0);
  // Optical encoding: signed x rides on a bias so that power stays positive;
  // the saturation knee supplies the squashing shape.  Scales below are the
  // operating points that fit each activation onto the measured curve.
  const double psat = config_.saturation_output_power_w;
  switch (fn) {
    case OpticalActivation::kRelu: {
      // Negative inputs are absorbed by the bias branch (output clamped ~0);
      // positive inputs ride the linear region well below saturation.
      if (x <= 0.0) return 0.0;
      const double pin = x * (0.02 * psat / g0_linear_);  // deep linear regime
      const double linear_ref = (0.02 * psat / g0_linear_) * g0_linear_;
      return amplify(pin) / linear_ref;  // ~x with slight compression
    }
    case OpticalActivation::kSigmoid: {
      // Map [-1,1] onto an input range swinging through the knee, then trim
      // output bias/gain (an electrical calibration) so the endpoints match
      // the ideal sigmoid at x = +/-1; the residual mid-curve deviation is
      // the physical approximation error.
      const double pin = (x + 1.0) * 0.5 * (6.0 * psat / g0_linear_);
      const double pmax = 6.0 * psat / g0_linear_;
      const double curve = amplify(pin) / amplify(pmax);  // 0..1 monotone S-curve
      const double lo = ideal(OpticalActivation::kSigmoid, -1.0);
      const double hi = ideal(OpticalActivation::kSigmoid, 1.0);
      return lo + (hi - lo) * curve;
    }
    case OpticalActivation::kTanh: {
      // Differential pair of SOAs: odd-symmetric saturation, endpoint-trimmed
      // to tanh(1).
      const double mag = std::fabs(x) * (4.0 * psat / g0_linear_);
      const double norm = amplify(4.0 * psat / g0_linear_);
      const double y = (amplify(mag) / norm) * ideal(OpticalActivation::kTanh, 1.0);
      return x >= 0.0 ? y : -y;
    }
  }
  return 0.0;
}

double Soa::approximation_error(OpticalActivation fn, int samples) const {
  LUMOS_EXPECTS(samples >= 2);
  double worst = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double x = -1.0 + 2.0 * static_cast<double>(i) / static_cast<double>(samples - 1);
    worst = std::max(worst, std::fabs(activate(fn, x) - ideal(fn, x)));
  }
  return worst;
}

}  // namespace lumos::phot
