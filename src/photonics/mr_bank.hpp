// MR bank and MR bank array: the optical compute primitives.
//
// Paper Fig. 3(c): a WDM waveguide passes through two banks of MRs — the
// first imprints the input activation vector onto the wavelengths, the second
// imprints the weight vector, and the product vector emerges element-wise.
// Accumulation happens at the (balanced) photodetector, which sums all
// wavelengths incoherently, yielding a length-K dot product per waveguide.
// A K x N *bank array* performs an N-wide batch of such dot products — one
// matrix-vector multiply per pass (paper Fig. 5a: "seven MR bank arrays for
// MatMul operations, each with dimension K x N").
//
// Paper Fig. 3(b): a *coherent* summation bank adds same-wavelength signals
// by interference — used for GHOST's reduce units and TRON's residual adds.
//
// Both primitives have two faces:
//   * functional: push real numbers through the analog chain
//     (DAC -> MR imprint with tuning error -> heterodyne crosstalk ->
//      PD/BPD noise -> ADC) so fidelity can be measured against exact math;
//   * cost: energy / latency / static power per operation, consumed by the
//     accelerator-level performance models.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "photonics/converters.hpp"
#include "photonics/crosstalk.hpp"
#include "photonics/detector.hpp"
#include "photonics/laser.hpp"
#include "photonics/microring.hpp"
#include "photonics/tuning.hpp"

namespace lumos::phot {

// Non-ideality switches for the functional path; all default ON.
struct AnalogNoiseConfig {
  bool dac_quantization = true;
  bool mr_tuning_error = true;
  double tuning_error_sigma_m = 2e-13;  // residual thermal/EO jitter (0.2 pm)
  bool heterodyne_crosstalk = true;
  // Heterodyne leakage is signal-correlated, so most of it is calibrated out
  // against a monitor photodiode's aggregate-power reading (this is the
  // "negligible crosstalk after design optimisation" of paper Section V.B);
  // the fraction below is removed, the remainder perturbs the result.
  double crosstalk_compensation = 0.9;
  bool detector_noise = true;
  bool adc_quantization = true;
};

// Design bundle shared by a bank's rings, converters, and detector.
struct MrBankConfig {
  std::size_t wavelength_count = 16;      // K: rings per bank / dot-product length
  MicroringDesign ring;
  HeterodyneConfig heterodyne;            // channel plan of the shared waveguide
  PhotodetectorConfig detector;
  DacConfig dac;
  AdcConfig adc;
  TuningCircuitConfig tuning;
  VcselConfig vcsel;
  LossStack losses;
  double symbol_rate_hz = 10e9;           // vector throughput of the bank
};

// Per-operation cost summary (one vector pass through a bank).
struct BankOpCost {
  double latency_s = 0.0;
  double dynamic_energy_j = 0.0;
  double static_power_w = 0.0;  // tuning hold + converter static + laser
};

// One MR bank pair on a WDM bus: elementwise multiply of two K-vectors with
// photodetector accumulation -> signed dot product.
class MrBank {
 public:
  explicit MrBank(const MrBankConfig& config);

  [[nodiscard]] std::size_t width() const noexcept { return config_.wavelength_count; }

  // Functional signed dot product of `a` and `w` (entries in [-1,1]); draws
  // noise from `rng` per the switches in `noise`.
  [[nodiscard]] double dot(std::span<const double> a, std::span<const double> w, Rng& rng,
                           const AnalogNoiseConfig& noise) const;

  // Exact reference for the same operation.
  [[nodiscard]] static double exact_dot(std::span<const double> a,
                                        std::span<const double> w) noexcept;

  // Cost of one dot-product pass (K DAC writes amortised across the bank, one
  // optical transit, one BPD + ADC read).
  [[nodiscard]] BankOpCost dot_cost() const;

  [[nodiscard]] const MrBankConfig& config() const noexcept { return config_; }
  [[nodiscard]] const MicroringResonator& reference_ring() const noexcept { return ring_; }

 private:
  // Imprints |v| onto a carrier and returns the transmitted power fraction,
  // with optional DAC quantisation and tuning error.
  [[nodiscard]] double imprint_magnitude(double v, Rng& rng,
                                         const AnalogNoiseConfig& noise) const;

  MrBankConfig config_;
  MicroringResonator ring_;
  TuningCircuit tuner_;
  HeterodyneCrosstalkModel heterodyne_;
  BalancedPhotodetector bpd_;
  DacModel dac_;
  AdcModel adc_;
  Vcsel vcsel_;
  LaserBudget budget_;
};

// K x N array of MR banks: one matrix-vector product per pass (N parallel
// dot products of length K), as used by TRON's attention heads and GHOST's
// transform units.
class MrBankArray {
 public:
  MrBankArray(const MrBankConfig& bank_config, std::size_t column_count);

  [[nodiscard]] std::size_t rows() const noexcept { return bank_.width(); }     // K
  [[nodiscard]] std::size_t columns() const noexcept { return column_count_; }  // N

  // Functional y = W^T x where x has K entries and W is K x N (row-major,
  // w[k*N + n]); y gets N entries.
  [[nodiscard]] std::vector<double> matvec(std::span<const double> x,
                                           std::span<const double> w, Rng& rng,
                                           const AnalogNoiseConfig& noise) const;

  [[nodiscard]] static std::vector<double> exact_matvec(std::span<const double> x,
                                                        std::span<const double> w,
                                                        std::size_t columns);

  // Cost of one matvec pass: N banks operate in parallel; input DACs are
  // shared across columns (the paper's weight-DAC sharing applies the same
  // trick to weights in GHOST).
  [[nodiscard]] BankOpCost matvec_cost(bool share_input_dacs = true) const;

  // Energy components of array operation, separated so that accelerator
  // models can charge them with the right multiplicity under weight-
  // stationary dataflow: inputs + read-outs + laser per *row pass*, weight
  // imprints per *tile reprogram* only.
  struct PassEnergies {
    double input_dac_j = 0.0;   // K input imprints, broadcast to all columns
    double weight_dac_j = 0.0;  // K*N weight imprints (one tile reprogram)
    double adc_j = 0.0;         // N column read-outs
    double laser_j = 0.0;       // laser energy for one symbol across N guides
  };
  [[nodiscard]] PassEnergies pass_energies() const;

  [[nodiscard]] const MrBank& bank() const noexcept { return bank_; }

 private:
  MrBank bank_;
  std::size_t column_count_;
};

// Coherent summation unit (paper Fig. 3b): V same-wavelength branches
// interfere to produce their sum.  Functionally exact up to homodyne
// crosstalk and detector noise.
class CoherentSummationUnit {
 public:
  CoherentSummationUnit(const MrBankConfig& config, const HomodyneConfig& homodyne,
                        std::size_t branch_count);

  [[nodiscard]] std::size_t branches() const noexcept { return branch_count_; }

  // Functional sum of `values` (each in [-1,1]); homodyne leakage perturbs
  // the result with a worst-case-bounded error drawn from `rng`.
  [[nodiscard]] double sum(std::span<const double> values, Rng& rng,
                           const AnalogNoiseConfig& noise) const;

  [[nodiscard]] static double exact_sum(std::span<const double> values) noexcept;

  // Cost of one summation (V VCSEL drives, one transit, one BPD read).
  [[nodiscard]] BankOpCost sum_cost() const;

  [[nodiscard]] const HomodyneCrosstalkModel& homodyne() const noexcept { return homodyne_; }

 private:
  MrBankConfig config_;
  HomodyneCrosstalkModel homodyne_;
  BalancedPhotodetector bpd_;
  DacModel dac_;
  AdcModel adc_;
  Vcsel vcsel_;
  std::size_t branch_count_;
};

}  // namespace lumos::phot
