// Photodetector and balanced-photodetector (BPD) models.
//
// Detection closes every optical MAC: accumulated optical power becomes a
// photocurrent, noise determines the usable bit resolution, and the BPD's
// two arms implement signed arithmetic (paper Section V.C: "BPDs facilitate
// the handling of both positive and negative parameter values").
//
// Noise model (standard receiver analysis):
//   shot:     sigma^2 = 2 q (R P + I_dark) B
//   thermal:  sigma^2 = 4 k T B / R_load
//   RIN:      sigma^2 = RIN * (R P)^2 * B
// Sensitivity is the optical power at which SNR reaches the target needed to
// resolve the configured bit resolution (6.02*bits + 1.76 dB).
#pragma once

#include "common/constants.hpp"

namespace lumos::phot {

struct PhotodetectorConfig {
  double responsivity_a_per_w = 1.1;   // Ge-on-Si, C-band
  double bandwidth_hz = 10e9;          // receiver bandwidth B
  double dark_current_a = 50e-9;       // I_dark
  double load_resistance_ohm = 50.0;   // R_load (TIA input)
  double temperature_k = constants::kRoomTemperature;
  double rin_per_hz = 3.16e-16;        // laser RIN, -155 dB/Hz
};

class Photodetector {
 public:
  explicit Photodetector(const PhotodetectorConfig& config);

  // Mean photocurrent for incident optical power `power_w`.
  [[nodiscard]] double photocurrent(double power_w) const noexcept;

  // Total noise current standard deviation at `power_w` (A).
  [[nodiscard]] double noise_current_sigma(double power_w) const noexcept;

  // Electrical SNR (power ratio, linear) at incident power `power_w`.
  [[nodiscard]] double snr_linear(double power_w) const noexcept;
  [[nodiscard]] double snr_db(double power_w) const noexcept;

  // Minimum optical power (W) for which `snr_db` reaches `required_snr_db`.
  // Solved by bisection over the monotone SNR(P) curve.
  [[nodiscard]] double sensitivity_w(double required_snr_db) const;

  // SNR (dB) needed to discriminate 2^bits levels: 6.02*bits + 1.76.
  [[nodiscard]] static double required_snr_db_for_bits(int bits) noexcept;

  [[nodiscard]] const PhotodetectorConfig& config() const noexcept { return config_; }

 private:
  PhotodetectorConfig config_;
};

// Balanced photodetector: two matched PDs whose photocurrents subtract,
// yielding a signed output from positive-arm and negative-arm optical powers.
class BalancedPhotodetector {
 public:
  explicit BalancedPhotodetector(const PhotodetectorConfig& config);

  // Differential photocurrent (signed) from the two arm powers.
  [[nodiscard]] double differential_current(double positive_arm_w,
                                            double negative_arm_w) const noexcept;

  // Functional-simulation read-out: the signed detected value (normalised to
  // the current of `full_scale_w`), with additive Gaussian noise of the
  // combined arms when `noise_sigma_out` is non-null.
  [[nodiscard]] double detect(double positive_arm_w, double negative_arm_w, double full_scale_w,
                              double* noise_sigma_out = nullptr) const;

  [[nodiscard]] const Photodetector& arm() const noexcept { return arm_; }

 private:
  Photodetector arm_;
};

}  // namespace lumos::phot
