// DAC and ADC cost-and-fidelity models.
//
// Every optical operand enters the analog domain through a DAC (tuning an MR
// or driving a VCSEL) and every result leaves through an ADC after the
// photodetector.  Minimising these conversions is the point of the paper's
// eq. (3) decomposition, so their energy/latency model matters to the
// end-to-end numbers.
//
// Cost model: energy per conversion follows the standard Walden figure of
// merit  E = FoM * 2^bits  scaled by rate derating, with published design
// points (8-bit multi-GS/s CMOS converters) as calibration anchors.
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace lumos::phot {

struct DacConfig {
  int bits = 8;
  double sample_rate_hz = 10e9;
  // J per conversion-step: 8-bit 10 GS/s current-steering DACs in 28 nm CMOS
  // reach ~1 pJ/conversion (FoM ~4 fJ/step).
  double walden_fom_j = 4e-15;
  double static_power_w = 0.5e-3;
};

class DacModel {
 public:
  explicit DacModel(const DacConfig& config);

  [[nodiscard]] const DacConfig& config() const noexcept { return config_; }

  // Energy of one conversion.
  [[nodiscard]] double energy_per_conversion_j() const noexcept;
  // Time of one conversion.
  [[nodiscard]] double conversion_latency_s() const noexcept;
  [[nodiscard]] double static_power_w() const noexcept { return config_.static_power_w; }

  // Quantises a normalised value in [0,1] to the DAC grid (functional path).
  [[nodiscard]] double quantize(double value) const;
  // Quantises a signed normalised value in [-1,1] (offset-binary).
  [[nodiscard]] double quantize_signed(double value) const;

  [[nodiscard]] int bits() const noexcept { return config_.bits; }

 private:
  DacConfig config_;
  double levels_;
};

struct AdcConfig {
  int bits = 8;
  double sample_rate_hz = 10e9;
  // 8-bit multi-GS/s time-interleaved SAR ADCs reach ~10-20 fJ/step; we use a
  // mid-range 12 fJ (~3 pJ per 8-bit conversion).  ADCs cost more than DACs.
  double walden_fom_j = 12e-15;
  double static_power_w = 0.75e-3;
};

class AdcModel {
 public:
  explicit AdcModel(const AdcConfig& config);

  [[nodiscard]] double energy_per_conversion_j() const noexcept;
  [[nodiscard]] double conversion_latency_s() const noexcept;
  [[nodiscard]] double static_power_w() const noexcept { return config_.static_power_w; }

  [[nodiscard]] double quantize(double value) const;
  [[nodiscard]] double quantize_signed(double value) const;

  [[nodiscard]] int bits() const noexcept { return config_.bits; }
  [[nodiscard]] const AdcConfig& config() const noexcept { return config_; }

 private:
  AdcConfig config_;
  double levels_;
};

}  // namespace lumos::phot
