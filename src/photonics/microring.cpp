#include "photonics/microring.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/units.hpp"

namespace lumos::phot {

namespace {
// Lorentzian line shape normalised to 1 at zero detuning.
double lorentzian(double detuning_m, double fwhm_m) noexcept {
  const double x = 2.0 * detuning_m / fwhm_m;
  return 1.0 / (1.0 + x * x);
}
}  // namespace

MicroringResonator::MicroringResonator(const MicroringDesign& design) : design_(design) {
  LUMOS_EXPECTS(design.radius_m > 0.0);
  LUMOS_EXPECTS(design.effective_index > 0.0);
  LUMOS_EXPECTS(design.group_index > 0.0);
  LUMOS_EXPECTS(design.quality_factor > 1.0);
  LUMOS_EXPECTS(design.extinction_ratio_db > 0.0);
  LUMOS_EXPECTS(design.drop_port_peak_transmission > 0.0 &&
                design.drop_port_peak_transmission <= 1.0);
  LUMOS_EXPECTS(design.insertion_loss_db >= 0.0);

  const double circumference = 2.0 * std::numbers::pi * design.radius_m;
  if (design.resonance_order > 0) {
    order_ = design.resonance_order;
  } else {
    LUMOS_EXPECTS(design.target_wavelength_m > 0.0);
    // Round the order so lambda_MR = n_eff * L / m is closest to the target.
    const double ideal = design.effective_index * circumference / design.target_wavelength_m;
    order_ = static_cast<int>(std::lround(ideal));
    LUMOS_EXPECTS_MSG(order_ >= 1, "ring too small to resonate at the target wavelength");
  }
  // Paper eq. (2): lambda_MR = 2*pi*R*n_eff / m.
  base_resonance_m_ = circumference * design.effective_index / static_cast<double>(order_);
  fsr_m_ = base_resonance_m_ * base_resonance_m_ / (design.group_index * circumference);
  fwhm_m_ = base_resonance_m_ / design.quality_factor;
  extinction_floor_ = units::db_to_linear(-design.extinction_ratio_db);
  max_transmission_ = units::db_to_linear(-design.insertion_loss_db);
  LUMOS_ENSURES(extinction_floor_ < max_transmission_);
}

double MicroringResonator::through_transmission(double wavelength_m) const noexcept {
  const double detuning = wavelength_m - resonance_wavelength();
  // Through port: full transmission off resonance, extinction-limited notch on
  // resonance:  T = T_max - (T_max - floor) * L(detuning).
  return max_transmission_ - (max_transmission_ - extinction_floor_) * lorentzian(detuning, fwhm_m_);
}

double MicroringResonator::drop_transmission(double wavelength_m) const noexcept {
  const double detuning = wavelength_m - resonance_wavelength();
  return design_.drop_port_peak_transmission * lorentzian(detuning, fwhm_m_);
}

double MicroringResonator::apply_index_shift(double delta_n_eff) noexcept {
  // First-order perturbation: d_lambda / lambda = d_n_eff / n_g.
  const double shift = base_resonance_m_ * delta_n_eff / design_.group_index;
  tuning_shift_m_ = shift;
  return shift;
}

double MicroringResonator::detuning_for_value(double value) const {
  LUMOS_EXPECTS_MSG(value >= 0.0 && value <= 1.0, "imprinted values are normalised to [0,1]");
  // Map [0,1] onto the physically reachable transmission window
  // [extinction_floor, max_transmission], then invert
  //   T(d) = T_max - (T_max - floor) * 1/(1 + (2d/FWHM)^2)
  // for the detuning d >= 0.
  const double t_target =
      extinction_floor_ + value * (max_transmission_ - extinction_floor_);
  const double depth = (max_transmission_ - t_target) / (max_transmission_ - extinction_floor_);
  if (depth <= 0.0) return fwhm_m_ * 1e3;  // fully off resonance
  if (depth >= 1.0) return 0.0;            // exactly on resonance
  return 0.5 * fwhm_m_ * std::sqrt(1.0 / depth - 1.0);
}

double MicroringResonator::imprint(double value, double tuning_error_m) const {
  const double detuning = detuning_for_value(value) + tuning_error_m;
  // Transmission of the carrier parked at the base resonance when the ring is
  // detuned by `detuning`; renormalised so value 1.0 -> transmission ~1.
  const double t = max_transmission_ -
                   (max_transmission_ - extinction_floor_) * lorentzian(detuning, fwhm_m_);
  return t;
}

}  // namespace lumos::phot
