// WDM link design-space search.
//
// Paper Section V.B: "key elements such as well-designed channel spacing,
// Q-factor tuning, ensuring a signal-to-noise ratio (SNR) in the output that
// surpasses photodetector sensitivity, and optimizing the tunable range of
// the designed MRs must be addressed... we have determined the optimal MR
// design and configurations that would result in negligible crosstalk noise."
//
// The paper delegates this to Ansys Lumerical sweeps; we reproduce the fixed
// point with an analytic search: for each candidate (Q, channel count) the
// channel spacing is set by packing the FSR, the heterodyne crosstalk and
// detector noise give an output SNR, and a design is feasible when that SNR
// resolves the target bit precision.  Among feasible designs the search
// maximises parallelism (channel count) and then minimises laser power.
#pragma once

#include <optional>
#include <vector>

#include "photonics/crosstalk.hpp"
#include "photonics/detector.hpp"
#include "photonics/laser.hpp"
#include "photonics/microring.hpp"

namespace lumos::phot {

struct WdmDesignPoint {
  double quality_factor = 0.0;
  std::size_t channel_count = 0;
  double channel_spacing_m = 0.0;
  double crosstalk_fraction = 0.0;   // worst victim
  double oscr_db = 0.0;              // optical signal-to-crosstalk ratio
  double effective_snr_db = 0.0;     // crosstalk + detector noise combined
  double laser_power_per_channel_w = 0.0;
  bool feasible = false;
};

struct WdmSearchSpace {
  std::vector<double> quality_factors = {4000, 6000, 8000, 10000, 12000, 16000};
  std::vector<std::size_t> channel_counts = {4, 8, 12, 16, 24, 32, 48, 64};
  // Bit depth the detector/laser chain is sized for (sets PD sensitivity).
  int target_bits = 8;
  // Minimum post-calibration analog SNR for feasibility.  Crosstalk is
  // signal-correlated and largely calibrated out (see
  // AnalogNoiseConfig::crosstalk_compensation); 20 dB residual SNR keeps the
  // end-to-end inference fidelity the functional tests measure — the same
  // accuracy-driven margin CrossLight [28] / SONIC [29] design to.
  double min_effective_snr_db = 20.0;
  // Fraction of heterodyne leakage removed by calibration.
  double crosstalk_compensation = 0.9;
  double guard_band_fraction = 0.1;  // FSR fraction kept clear at the band edge
};

class WdmLinkDesigner {
 public:
  WdmLinkDesigner(const MicroringDesign& ring_template, const PhotodetectorConfig& detector,
                  const VcselConfig& vcsel, const LossStack& losses);

  // Evaluates a single candidate design.  `min_effective_snr_db` and
  // `crosstalk_compensation` follow WdmSearchSpace's semantics.
  [[nodiscard]] WdmDesignPoint evaluate(double quality_factor, std::size_t channel_count,
                                        int target_bits, double guard_band_fraction = 0.1,
                                        double min_effective_snr_db = 20.0,
                                        double crosstalk_compensation = 0.9) const;

  // Sweeps the space and returns every evaluated point (for the ablation
  // bench) in search order.
  [[nodiscard]] std::vector<WdmDesignPoint> sweep(const WdmSearchSpace& space) const;

  // Best feasible point: maximum channel count, ties broken by lower laser
  // power.  nullopt when nothing in the space meets the SNR target.
  [[nodiscard]] std::optional<WdmDesignPoint> best(const WdmSearchSpace& space) const;

 private:
  MicroringDesign ring_template_;
  PhotodetectorConfig detector_;
  VcselConfig vcsel_;
  LossStack losses_;
};

}  // namespace lumos::phot
