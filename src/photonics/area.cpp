#include "photonics/area.hpp"

#include "common/error.hpp"

namespace lumos::phot {

double AreaReport::total_m2() const noexcept {
  double sum = 0.0;
  for (const AreaItem& item : items) sum += item.total_m2;
  return sum;
}

double AreaReport::photonic_m2() const noexcept {
  double sum = 0.0;
  for (const AreaItem& item : items) {
    if (item.component.find("ring") != std::string::npos ||
        item.component.find("detector") != std::string::npos ||
        item.component.find("VCSEL") != std::string::npos ||
        item.component.find("SOA") != std::string::npos ||
        item.component.find("waveguide") != std::string::npos) {
      sum += item.total_m2;
    }
  }
  return sum;
}

void AreaReport::add(std::string component, std::size_t count, double each_m2) {
  LUMOS_EXPECTS(each_m2 >= 0.0);
  items.push_back({std::move(component), count, static_cast<double>(count) * each_m2});
}

AreaReport bank_array_area(std::size_t rows, std::size_t columns, const DeviceAreas& areas) {
  LUMOS_EXPECTS(rows >= 1 && columns >= 1);
  AreaReport r;
  // Input bank + weight bank per waveguide.
  r.add("microrings", 2 * rows * columns, areas.microring_m2);
  r.add("balanced photodetectors", columns, areas.balanced_pd_m2);
  r.add("input DACs (shared across columns)", rows, areas.dac_m2);
  r.add("weight DACs", columns, areas.dac_m2);
  r.add("column ADCs", columns, areas.adc_m2);
  r.add("VCSEL sources", rows, areas.vcsel_m2);
  // Each waveguide spans 2*rows ring pitches (~25 um per ring site).
  const double guide_length_m = static_cast<double>(2 * rows) * 25e-6;
  r.add("bus waveguides", columns,
        guide_length_m * areas.waveguide_m2_per_m);
  return r;
}

}  // namespace lumos::phot
