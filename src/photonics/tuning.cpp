#include "photonics/tuning.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace lumos::phot {

TuningCircuit::TuningCircuit(const TuningCircuitConfig& config, const MicroringResonator& ring)
    : config_(config),
      lambda_m_(ring.base_resonance_wavelength()),
      group_index_(ring.design().group_index) {
  LUMOS_EXPECTS(config.eo_max_voltage > 0.0);
  LUMOS_EXPECTS(config.eo_index_shift_per_volt > 0.0);
  LUMOS_EXPECTS(config.eo_junction_capacitance_f > 0.0);
  LUMOS_EXPECTS(config.to_efficiency_nm_per_mw > 0.0);
  LUMOS_EXPECTS(config.to_max_shift_nm > 0.0);
  // EO range from the plasma-dispersion index swing: d_lambda = lambda*dn/n_g.
  const double dn_max = config.eo_index_shift_per_volt * config.eo_max_voltage;
  eo_range_m_ = lambda_m_ * dn_max / group_index_;
  to_range_m_ = units::nm(config.to_max_shift_nm);
}

TuningResult TuningCircuit::tune_eo(double shift_m) const {
  TuningResult r;
  r.mechanism = TuningMechanism::kElectroOptic;
  r.requested_shift_m = shift_m;
  r.achieved_shift_m = std::min(shift_m, eo_range_m_);
  r.saturated = shift_m > eo_range_m_;
  // Voltage needed for the achieved shift (linear small-signal model), then
  // CV^2 switching energy.
  const double dn = r.achieved_shift_m * group_index_ / lambda_m_;
  const double volts = dn / config_.eo_index_shift_per_volt;
  r.dynamic_energy_j = config_.eo_junction_capacitance_f * volts * volts;
  r.static_power_w = 0.0;  // depletion junction: negligible DC current
  r.latency_s = config_.eo_response_time_s;
  return r;
}

TuningResult TuningCircuit::tune_to(double shift_m) const {
  TuningResult r;
  r.mechanism = TuningMechanism::kThermoOptic;
  r.requested_shift_m = shift_m;
  r.achieved_shift_m = std::min(shift_m, to_range_m_);
  r.saturated = shift_m > to_range_m_;
  const double shift_nm = units::to_nm(r.achieved_shift_m);
  double power_w = units::mw(shift_nm / config_.to_efficiency_nm_per_mw);
  if (config_.use_ted) power_w *= (1.0 - config_.ted_power_saving);
  r.static_power_w = power_w;
  r.dynamic_energy_j = power_w * config_.to_response_time_s;  // energy spent settling
  r.latency_s = config_.to_response_time_s;
  return r;
}

TuningResult TuningCircuit::tune(double shift_m, TuningPolicy policy) const {
  LUMOS_EXPECTS(shift_m >= 0.0);
  switch (policy) {
    case TuningPolicy::kEoOnly:
      return tune_eo(shift_m);
    case TuningPolicy::kToOnly:
      return tune_to(shift_m);
    case TuningPolicy::kHybrid:
      break;
  }
  // Hybrid: EO alone when the request fits its range; otherwise TO supplies
  // the coarse shift and EO trims the residual (paper Section V.A).
  if (shift_m <= eo_range_m_) return tune_eo(shift_m);
  const double coarse = std::min(shift_m - eo_range_m_, to_range_m_);
  TuningResult to = tune_to(coarse);
  const double residual = std::min(shift_m - to.achieved_shift_m, eo_range_m_);
  TuningResult eo = tune_eo(residual);
  TuningResult r;
  r.mechanism = TuningMechanism::kHybrid;
  r.requested_shift_m = shift_m;
  r.achieved_shift_m = to.achieved_shift_m + eo.achieved_shift_m;
  r.saturated = r.achieved_shift_m + 1e-18 < shift_m;
  r.dynamic_energy_j = to.dynamic_energy_j + eo.dynamic_energy_j;
  r.static_power_w = to.static_power_w;
  // Both actuators settle concurrently; TO dominates.
  r.latency_s = std::max(to.latency_s, eo.latency_s);
  return r;
}

BankTuningPower bank_tuning_power(const ThermalBank& bank, const std::vector<double>& shifts_m,
                                  const TuningCircuitConfig& config,
                                  const MicroringResonator& reference_ring) {
  LUMOS_EXPECTS(shifts_m.size() == bank.config().ring_count);
  // Convert each requested shift into the per-ring temperature rise that a TO
  // heater must hold:  d_lambda = lambda * (dn/dT) * dT / n_g.
  const double lambda = reference_ring.base_resonance_wavelength();
  const double ng = reference_ring.design().group_index;
  const double k_per_m = ng / (lambda * constants::kSiThermoOpticCoeff);
  std::vector<double> dt(shifts_m.size());
  for (std::size_t i = 0; i < shifts_m.size(); ++i) {
    LUMOS_EXPECTS(shifts_m[i] >= 0.0);
    dt[i] = shifts_m[i] * k_per_m;
  }
  (void)config;

  BankTuningPower out;
  double guard_k = 0.0;
  const std::vector<double> naive = bank.naive_powers(dt, 8, &guard_k);
  const std::vector<double> ted = bank.ted_powers(dt);
  out.naive_w = ThermalBank::total_power(naive);
  out.ted_w = ThermalBank::total_power(ted);
  // The naive controller tracks its guard-banded setpoint (the worst-case
  // crosstalk bias that TED's collective drive avoids); TED tracks the plain
  // target with the NNLS minimum-residual drive.
  std::vector<double> naive_setpoint(dt);
  for (double& v : naive_setpoint) v += guard_k;
  out.max_error_naive_k = bank.max_temperature_error(naive, naive_setpoint);
  out.max_error_ted_k = bank.max_temperature_error(ted, dt);
  return out;
}

}  // namespace lumos::phot
