// Heterodyne (inter-channel) and homodyne (coherent) crosstalk models.
//
// Paper Section V.B: heterodyne crosstalk arises in non-coherent WDM banks
// when a neighbouring wavelength leaks into an MR's Lorentzian passband
// (Fig. 3d); homodyne crosstalk arises in the coherent summation circuits
// when leaked same-wavelength fields interfere with the signal.  The paper's
// design flow tunes channel spacing, Q, coupling gap, and wavelength count so
// that the residual SNR exceeds the photodetector sensitivity; the
// `WdmLinkDesigner` (wdm.hpp) searches that space using these models.
#pragma once

#include <cstddef>
#include <vector>

namespace lumos::phot {

// ---------------------------------------------------------------------------
// Heterodyne crosstalk
// ---------------------------------------------------------------------------

struct HeterodyneConfig {
  double channel_spacing_m = 0.8e-9;   // CS in Fig. 3d
  double quality_factor = 8000.0;      // loaded Q of the bank's rings
  double center_wavelength_m = 1550e-9;
  std::size_t channel_count = 16;      // wavelengths multiplexed per waveguide
};

// Per-channel crosstalk summary for a WDM bank.
struct HeterodyneReport {
  // Fraction of each aggressor channel's power captured by the victim ring,
  // summed over all aggressors, for the worst-placed (centre) channel.
  double worst_crosstalk_fraction = 0.0;
  // Same, for the best-placed (edge) channel.
  double best_crosstalk_fraction = 0.0;
  // Optical signal-to-crosstalk ratio (dB) for the worst channel, assuming
  // equal per-channel launch power.
  double worst_oscr_db = 0.0;
  // Spectral occupancy: channel_count * spacing / FSR (must stay <= 1).
  double spectral_occupancy = 0.0;
};

class HeterodyneCrosstalkModel {
 public:
  explicit HeterodyneCrosstalkModel(const HeterodyneConfig& config);

  // Power coupling from an aggressor detuned by `detuning_m` into a victim
  // ring's Lorentzian response (0..1).
  [[nodiscard]] double coupling_at(double detuning_m) const noexcept;

  // Crosstalk power fraction received by victim channel `victim` from all
  // other channels (equal launch powers assumed).
  [[nodiscard]] double crosstalk_fraction(std::size_t victim) const;

  // Full-bank report.
  [[nodiscard]] HeterodyneReport analyze() const;

  // Multiplicative perturbation applied to a detected value in the functional
  // simulation: victim reads (value + crosstalk_fraction * mean-aggressor).
  [[nodiscard]] double perturb(double value, double mean_aggressor_value,
                               std::size_t victim) const;

  [[nodiscard]] const HeterodyneConfig& config() const noexcept { return config_; }

 private:
  HeterodyneConfig config_;
  double fwhm_m_;
};

// ---------------------------------------------------------------------------
// Homodyne crosstalk
// ---------------------------------------------------------------------------

struct HomodyneConfig {
  // Gap between the bus waveguide and the ring waveguide; larger gaps reduce
  // the field leaking back into the bus (paper Section V.B).
  double coupling_gap_m = 200e-9;
  // Gap at which the leakage power is `reference_leakage`; exponential decay
  // beyond it with `decay_length_m`.
  double reference_gap_m = 100e-9;
  double reference_leakage = 1e-2;   // -20 dB at the reference gap
  double decay_length_m = 45e-9;
  std::size_t interfering_elements = 4;  // same-wavelength leak sources on the path
};

class HomodyneCrosstalkModel {
 public:
  explicit HomodyneCrosstalkModel(const HomodyneConfig& config);

  // Power fraction of one leaked same-wavelength field relative to the signal.
  [[nodiscard]] double leakage_fraction() const noexcept { return leakage_; }

  // Worst-case relative amplitude error of a coherent sum: leaked fields add
  // in field (not power), so the bound is  2*sqrt(k)*E + k*E^2 per source.
  [[nodiscard]] double worst_case_relative_error() const noexcept;

  // Signal-to-crosstalk ratio in dB under worst-case phase alignment.
  [[nodiscard]] double worst_oscr_db() const noexcept;

  [[nodiscard]] const HomodyneConfig& config() const noexcept { return config_; }

 private:
  HomodyneConfig config_;
  double leakage_;
};

}  // namespace lumos::phot
