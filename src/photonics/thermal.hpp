// Thermal crosstalk and thermal eigenmode decomposition (TED).
//
// Thermo-optic (TO) heaters on neighbouring microrings couple through the
// substrate: driving ring i heats ring j.  Paper Section V.A integrates the
// TED method (SONIC, ASPDAC'22 [29]) to "effectively decrease the power
// consumption associated with TO tuning and mitigate thermal crosstalk".
//
// Model: the steady-state temperature rise at the rings is  T = C * p, where
// p is the vector of heater powers and C is a symmetric positive-definite
// coupling matrix with exponentially decaying off-diagonals
//     C_ij = eta * exp(-d_ij / L_th)
// (eta = heater efficiency K/W, d_ij = ring pitch distance, L_th = thermal
// decay length).
//
//  * Naive per-ring tuning ignores the off-diagonal coupling, so the realised
//    temperatures overshoot and an iterative controller must re-solve; we
//    model its converged state as the exact linear solve  p = C^{-1} T_target
//    plus a control margin on each iteration.
//  * TED diagonalises C = Q * diag(lambda) * Q^T once (offline) and drives
//    the eigenmode amplitudes directly, reaching T_target in one step with
//    the minimum-norm power vector and zero inter-ring thermal error.
//
// The eigensolver (cyclic Jacobi) and the dense linear solver (partial-pivot
// Gaussian elimination) are implemented here from scratch; they are small and
// the matrices are tiny (one per MR bank, N <= 64).
#pragma once

#include <cstddef>
#include <vector>

namespace lumos::phot {

// Dense symmetric matrix stored row-major (square).
class SymmetricMatrix {
 public:
  explicit SymmetricMatrix(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * n_ + j];
  }
  void set(std::size_t i, std::size_t j, double v) noexcept {
    data_[i * n_ + j] = v;
    data_[j * n_ + i] = v;
  }

  // Matrix-vector product y = A x.
  [[nodiscard]] std::vector<double> multiply(const std::vector<double>& x) const;

 private:
  std::size_t n_;
  std::vector<double> data_;
};

// Result of a symmetric eigendecomposition A = V * diag(w) * V^T.
struct EigenDecomposition {
  std::vector<double> eigenvalues;           // w, ascending
  std::vector<std::vector<double>> eigenvectors;  // V[k] = k-th eigenvector (unit norm)
};

// Cyclic Jacobi eigensolver for symmetric matrices.  Converges quadratically;
// `tolerance` bounds the final off-diagonal Frobenius mass.
[[nodiscard]] EigenDecomposition jacobi_eigendecomposition(const SymmetricMatrix& a,
                                                           double tolerance = 1e-12,
                                                           int max_sweeps = 64);

// Solves A x = b by Gaussian elimination with partial pivoting.
// Throws lumos::InvalidArgument if A is (numerically) singular.
[[nodiscard]] std::vector<double> solve_linear_system(const SymmetricMatrix& a,
                                                      const std::vector<double>& b);

// Solves min ||A x - b||_2 subject to x >= 0 (Lawson–Hanson active-set NNLS)
// for symmetric positive-definite A.  Used by the TED drive, whose heaters
// can only add heat.
[[nodiscard]] std::vector<double> solve_nonnegative(const SymmetricMatrix& a,
                                                    const std::vector<double>& b,
                                                    double tolerance = 1e-12);

// Physical configuration of a row of thermally coupled ring heaters.
struct ThermalBankConfig {
  std::size_t ring_count = 16;
  double ring_pitch_m = 20e-6;          // centre-to-centre spacing
  double heater_efficiency_k_per_w = 1.2e4;  // self-heating: K per W of heater power
  double thermal_decay_length_m = 35e-6;     // substrate coupling decay length
};

// Thermal model of one MR bank, supporting naive and TED tuning power
// estimation.
class ThermalBank {
 public:
  explicit ThermalBank(const ThermalBankConfig& config);

  [[nodiscard]] const SymmetricMatrix& coupling() const noexcept { return coupling_; }
  [[nodiscard]] const ThermalBankConfig& config() const noexcept { return config_; }

  // Heater powers that realise `delta_t_target` (per-ring temperature rises,
  // kelvin) with full knowledge of the coupling matrix — the TED solution.
  // Heaters cannot cool, so the drive is the non-negative least-squares
  // solution: exact wherever the unconstrained solve is already
  // non-negative, minimum-residual otherwise (`saturated` reports the
  // constrained case).
  [[nodiscard]] std::vector<double> ted_powers(const std::vector<double>& delta_t_target,
                                               bool* saturated = nullptr) const;

  // Heater powers a naive per-ring controller converges to.  Because heaters
  // cannot cool, each independent controller regulates to target + guard,
  // where the guard band covers worst-case neighbour heating; `guard_k_out`
  // (if non-null) receives that bias.  Returns the power vector after
  // `iterations` compensation rounds.
  [[nodiscard]] std::vector<double> naive_powers(const std::vector<double>& delta_t_target,
                                                 int iterations = 8,
                                                 double* guard_k_out = nullptr) const;

  // Total electrical power of a power vector (sum of entries).
  [[nodiscard]] static double total_power(const std::vector<double>& powers) noexcept;

  // Worst-case |realised - target| temperature error for a power vector.
  [[nodiscard]] double max_temperature_error(const std::vector<double>& powers,
                                             const std::vector<double>& delta_t_target) const;

  // Eigendecomposition of the coupling matrix (computed lazily, cached).
  [[nodiscard]] const EigenDecomposition& eigenmodes() const;

 private:
  ThermalBankConfig config_;
  SymmetricMatrix coupling_;
  mutable EigenDecomposition eig_;
  mutable bool eig_valid_ = false;
};

}  // namespace lumos::phot
