#include "photonics/detector.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace lumos::phot {

Photodetector::Photodetector(const PhotodetectorConfig& config) : config_(config) {
  LUMOS_EXPECTS(config.responsivity_a_per_w > 0.0);
  LUMOS_EXPECTS(config.bandwidth_hz > 0.0);
  LUMOS_EXPECTS(config.dark_current_a >= 0.0);
  LUMOS_EXPECTS(config.load_resistance_ohm > 0.0);
  LUMOS_EXPECTS(config.temperature_k > 0.0);
  LUMOS_EXPECTS(config.rin_per_hz >= 0.0);
}

double Photodetector::photocurrent(double power_w) const noexcept {
  return config_.responsivity_a_per_w * power_w;
}

double Photodetector::noise_current_sigma(double power_w) const noexcept {
  const double i_ph = photocurrent(power_w);
  const double b = config_.bandwidth_hz;
  const double shot = 2.0 * constants::kElectronCharge * (i_ph + config_.dark_current_a) * b;
  const double thermal =
      4.0 * constants::kBoltzmann * config_.temperature_k * b / config_.load_resistance_ohm;
  const double rin = config_.rin_per_hz * i_ph * i_ph * b;
  return std::sqrt(shot + thermal + rin);
}

double Photodetector::snr_linear(double power_w) const noexcept {
  if (power_w <= 0.0) return 0.0;
  const double i_ph = photocurrent(power_w);
  const double sigma = noise_current_sigma(power_w);
  return (i_ph * i_ph) / (sigma * sigma);
}

double Photodetector::snr_db(double power_w) const noexcept {
  const double s = snr_linear(power_w);
  return s > 0.0 ? units::linear_to_db(s) : -300.0;
}

double Photodetector::sensitivity_w(double required_snr_db) const {
  LUMOS_EXPECTS(required_snr_db > 0.0);
  // SNR(P) is strictly increasing until RIN saturation; bisect over a wide
  // physical bracket.
  double lo = 1e-12;   // 1 pW
  double hi = 1.0;     // 1 W
  LUMOS_EXPECTS_MSG(snr_db(hi) >= required_snr_db,
                    "required SNR unreachable at any practical power (RIN-limited)");
  for (int i = 0; i < 200; ++i) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection (decades apart)
    if (snr_db(mid) >= required_snr_db) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double Photodetector::required_snr_db_for_bits(int bits) noexcept {
  return 6.02 * bits + 1.76;
}

BalancedPhotodetector::BalancedPhotodetector(const PhotodetectorConfig& config) : arm_(config) {}

double BalancedPhotodetector::differential_current(double positive_arm_w,
                                                   double negative_arm_w) const noexcept {
  // Factored form: responsivity * (P+ - P-) is exactly zero for equal arms
  // under any FP contraction mode, where the difference of two products may
  // leave an FMA rounding residue.
  return arm_.photocurrent(positive_arm_w - negative_arm_w);
}

double BalancedPhotodetector::detect(double positive_arm_w, double negative_arm_w,
                                     double full_scale_w, double* noise_sigma_out) const {
  LUMOS_EXPECTS(full_scale_w > 0.0);
  const double i_diff = differential_current(positive_arm_w, negative_arm_w);
  const double i_full = arm_.photocurrent(full_scale_w);
  if (noise_sigma_out != nullptr) {
    // Arm noises are independent; combined sigma normalised to full scale.
    const double s_pos = arm_.noise_current_sigma(positive_arm_w);
    const double s_neg = arm_.noise_current_sigma(negative_arm_w);
    *noise_sigma_out = std::sqrt(s_pos * s_pos + s_neg * s_neg) / i_full;
  }
  return i_diff / i_full;
}

}  // namespace lumos::phot
