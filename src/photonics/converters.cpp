#include "photonics/converters.hpp"

#include <algorithm>
#include <cmath>

namespace lumos::phot {

namespace {
double quantize_unit(double value, double levels) {
  // Clamp then snap to the nearest of `levels` uniformly spaced codes in [0,1].
  const double clamped = std::clamp(value, 0.0, 1.0);
  return std::round(clamped * (levels - 1.0)) / (levels - 1.0);
}

double quantize_signed_unit(double value, double levels) {
  // Symmetric signed grid: codes in [-(2^(b-1)-1), +(2^(b-1)-1)], so +-1.0 is
  // exactly representable (the int8 convention the quantiser uses).
  const double clamped = std::clamp(value, -1.0, 1.0);
  const double half = levels / 2.0 - 1.0;
  return std::round(clamped * half) / half;
}
}  // namespace

DacModel::DacModel(const DacConfig& config) : config_(config) {
  LUMOS_EXPECTS(config.bits >= 1 && config.bits <= 16);
  LUMOS_EXPECTS(config.sample_rate_hz > 0.0);
  LUMOS_EXPECTS(config.walden_fom_j > 0.0);
  levels_ = std::pow(2.0, config.bits);
}

double DacModel::energy_per_conversion_j() const noexcept {
  return config_.walden_fom_j * levels_;
}

double DacModel::conversion_latency_s() const noexcept { return 1.0 / config_.sample_rate_hz; }

double DacModel::quantize(double value) const { return quantize_unit(value, levels_); }

double DacModel::quantize_signed(double value) const {
  return quantize_signed_unit(value, levels_);
}

AdcModel::AdcModel(const AdcConfig& config) : config_(config) {
  LUMOS_EXPECTS(config.bits >= 1 && config.bits <= 16);
  LUMOS_EXPECTS(config.sample_rate_hz > 0.0);
  LUMOS_EXPECTS(config.walden_fom_j > 0.0);
  levels_ = std::pow(2.0, config.bits);
}

double AdcModel::energy_per_conversion_j() const noexcept {
  return config_.walden_fom_j * levels_;
}

double AdcModel::conversion_latency_s() const noexcept { return 1.0 / config_.sample_rate_hz; }

double AdcModel::quantize(double value) const { return quantize_unit(value, levels_); }

double AdcModel::quantize_signed(double value) const {
  return quantize_signed_unit(value, levels_);
}

}  // namespace lumos::phot
