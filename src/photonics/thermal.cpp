#include "photonics/thermal.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace lumos::phot {

SymmetricMatrix::SymmetricMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {
  LUMOS_EXPECTS(n > 0);
}

std::vector<double> SymmetricMatrix::multiply(const std::vector<double>& x) const {
  LUMOS_EXPECTS(x.size() == n_);
  std::vector<double> y(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n_; ++j) acc += data_[i * n_ + j] * x[j];
    y[i] = acc;
  }
  return y;
}

EigenDecomposition jacobi_eigendecomposition(const SymmetricMatrix& a, double tolerance,
                                             int max_sweeps) {
  const std::size_t n = a.size();
  // Working copy of A and accumulated rotations V (A = V D V^T at convergence).
  std::vector<double> m(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m[i * n + j] = a(i, j);
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  const auto off_diagonal_norm = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += m[i * n + j] * m[i * n + j];
    return std::sqrt(2.0 * s);
  };

  for (int sweep = 0; sweep < max_sweeps && off_diagonal_norm() > tolerance; ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m[p * n + q];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = m[p * n + p];
        const double aqq = m[q * n + q];
        // Rotation angle zeroing m[p][q]:  tan(2*theta) = 2*apq / (app - aqq).
        const double theta = 0.5 * std::atan2(2.0 * apq, app - aqq);
        const double c = std::cos(theta);
        const double s = std::sin(theta);
        // Rows/columns p and q of M.
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m[k * n + p];
          const double mkq = m[k * n + q];
          m[k * n + p] = c * mkp + s * mkq;
          m[k * n + q] = -s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m[p * n + k];
          const double mqk = m[q * n + k];
          m[p * n + k] = c * mpk + s * mqk;
          m[q * n + k] = -s * mpk + c * mqk;
        }
        // Accumulate rotation into V.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp + s * vkq;
          v[k * n + q] = -s * vkp + c * vkq;
        }
      }
    }
  }

  // Extract and sort ascending by eigenvalue.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return m[x * n + x] < m[y * n + y]; });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors.resize(n, std::vector<double>(n));
  for (std::size_t k = 0; k < n; ++k) {
    out.eigenvalues[k] = m[order[k] * n + order[k]];
    for (std::size_t i = 0; i < n; ++i) out.eigenvectors[k][i] = v[i * n + order[k]];
  }
  return out;
}

std::vector<double> solve_linear_system(const SymmetricMatrix& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  LUMOS_EXPECTS(b.size() == n);
  // Augmented matrix [A | b].
  std::vector<double> m(n * (n + 1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m[i * (n + 1) + j] = a(i, j);
    m[i * (n + 1) + n] = b[i];
  }
  const std::size_t w = n + 1;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(m[r * w + col]) > std::fabs(m[pivot * w + col])) pivot = r;
    }
    if (std::fabs(m[pivot * w + col]) < 1e-300) {
      throw InvalidArgument("solve_linear_system: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < w; ++j) std::swap(m[col * w + j], m[pivot * w + j]);
    }
    const double inv = 1.0 / m[col * w + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = m[r * w + col] * inv;
      if (f == 0.0) continue;
      for (std::size_t j = col; j < w; ++j) m[r * w + j] -= f * m[col * w + j];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = m[i * w + n];
    for (std::size_t j = i + 1; j < n; ++j) acc -= m[i * w + j] * x[j];
    x[i] = acc / m[i * w + i];
  }
  return x;
}

ThermalBank::ThermalBank(const ThermalBankConfig& config)
    : config_(config), coupling_(config.ring_count) {
  LUMOS_EXPECTS(config.ring_count > 0);
  LUMOS_EXPECTS(config.ring_pitch_m > 0.0);
  LUMOS_EXPECTS(config.heater_efficiency_k_per_w > 0.0);
  LUMOS_EXPECTS(config.thermal_decay_length_m > 0.0);
  for (std::size_t i = 0; i < config.ring_count; ++i) {
    for (std::size_t j = i; j < config.ring_count; ++j) {
      const double d = static_cast<double>(j - i) * config.ring_pitch_m;
      coupling_.set(i, j, config.heater_efficiency_k_per_w *
                              std::exp(-d / config.thermal_decay_length_m));
    }
  }
}

std::vector<double> solve_nonnegative(const SymmetricMatrix& a, const std::vector<double>& b,
                                      double tolerance) {
  const std::size_t n = a.size();
  LUMOS_EXPECTS(b.size() == n);
  // Lawson–Hanson active-set NNLS.  The passive set P holds variables allowed
  // to be positive; each outer step moves the most violated KKT variable into
  // P and re-solves the restricted system, backtracking when a passive
  // variable would go negative.
  std::vector<bool> passive(n, false);
  std::vector<double> x(n, 0.0);

  const auto residual = [&] {
    std::vector<double> r = b;
    const std::vector<double> ax = a.multiply(x);
    for (std::size_t i = 0; i < n; ++i) r[i] -= ax[i];
    return r;
  };
  const auto solve_passive = [&](std::vector<double>& z) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < n; ++i) {
      if (passive[i]) idx.push_back(i);
    }
    z.assign(n, 0.0);
    if (idx.empty()) return;
    SymmetricMatrix sub(idx.size());
    std::vector<double> rhs(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) {
      rhs[i] = b[idx[i]];
      for (std::size_t j = i; j < idx.size(); ++j) sub.set(i, j, a(idx[i], idx[j]));
    }
    const std::vector<double> sol = solve_linear_system(sub, rhs);
    for (std::size_t i = 0; i < idx.size(); ++i) z[idx[i]] = sol[i];
  };

  for (std::size_t outer = 0; outer < 4 * n; ++outer) {
    // Gradient w = A^T (b - A x) = A (b - A x) for symmetric A.
    const std::vector<double> w = a.multiply(residual());
    std::size_t best = n;
    double best_w = tolerance;
    for (std::size_t i = 0; i < n; ++i) {
      if (!passive[i] && w[i] > best_w) {
        best_w = w[i];
        best = i;
      }
    }
    if (best == n) break;  // KKT satisfied
    passive[best] = true;

    std::vector<double> z;
    solve_passive(z);
    // Backtrack while the restricted solve drives passive variables negative.
    for (std::size_t inner = 0; inner < 2 * n; ++inner) {
      double alpha = 1.0;
      bool clipped = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (passive[i] && z[i] <= 0.0) {
          alpha = std::min(alpha, x[i] / (x[i] - z[i]));
          clipped = true;
        }
      }
      if (!clipped) break;
      for (std::size_t i = 0; i < n; ++i) {
        if (passive[i]) x[i] += alpha * (z[i] - x[i]);
        if (passive[i] && x[i] <= tolerance) {
          x[i] = 0.0;
          passive[i] = false;
        }
      }
      solve_passive(z);
    }
    for (std::size_t i = 0; i < n; ++i) x[i] = passive[i] ? std::max(0.0, z[i]) : 0.0;
  }
  return x;
}

std::vector<double> ThermalBank::ted_powers(const std::vector<double>& delta_t_target,
                                            bool* saturated) const {
  LUMOS_EXPECTS(delta_t_target.size() == config_.ring_count);
  std::vector<double> p = solve_nonnegative(coupling_, delta_t_target);
  if (saturated != nullptr) {
    // Constrained (some heater pinned at zero) iff the realised temperatures
    // miss the target beyond numerical tolerance.
    *saturated = max_temperature_error(p, delta_t_target) > 1e-6;
  }
  return p;
}

std::vector<double> ThermalBank::naive_powers(const std::vector<double>& delta_t_target,
                                              int iterations, double* guard_k_out) const {
  LUMOS_EXPECTS(delta_t_target.size() == config_.ring_count);
  LUMOS_EXPECTS(iterations >= 1);
  const std::size_t n = config_.ring_count;
  const double eta = config_.heater_efficiency_k_per_w;
  // Independent per-ring feedback controllers.  A heater can only add heat,
  // so to correct *downward* against neighbour-induced heating each ring must
  // be regulated to an elevated bias temperature (guard band) sized to the
  // worst-case crosstalk heating it can receive; TED's collective eigenmode
  // drive needs no such bias (SONIC [29]).
  std::vector<double> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = std::max(0.0, delta_t_target[i] / eta);
  double guard_k = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double xtalk = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) xtalk += coupling_(i, j) * p[j];
    }
    guard_k = std::max(guard_k, xtalk);
  }
  if (guard_k_out != nullptr) *guard_k_out = guard_k;
  // Regulate each ring to target + guard with Gauss-Seidel-style feedback:
  // each controller in turn corrects against the heating it currently
  // observes from every other ring.  Gauss-Seidel converges for the SPD
  // coupling matrix where a fully parallel (Jacobi) update would diverge for
  // densely packed banks.
  std::vector<double> biased(n);
  for (std::size_t i = 0; i < n; ++i) biased[i] = delta_t_target[i] + guard_k;
  for (std::size_t i = 0; i < n; ++i) p[i] = biased[i] / eta;
  for (int it = 0; it < iterations; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      double others = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) others += coupling_(i, j) * p[j];
      }
      p[i] = std::max(0.0, (biased[i] - others) / coupling_(i, i));
    }
  }
  return p;
}

double ThermalBank::total_power(const std::vector<double>& powers) noexcept {
  double s = 0.0;
  for (const double v : powers) s += v;
  return s;
}

double ThermalBank::max_temperature_error(const std::vector<double>& powers,
                                          const std::vector<double>& delta_t_target) const {
  LUMOS_EXPECTS(powers.size() == config_.ring_count);
  LUMOS_EXPECTS(delta_t_target.size() == config_.ring_count);
  const std::vector<double> realised = coupling_.multiply(powers);
  double worst = 0.0;
  for (std::size_t i = 0; i < config_.ring_count; ++i) {
    worst = std::max(worst, std::fabs(realised[i] - delta_t_target[i]));
  }
  return worst;
}

const EigenDecomposition& ThermalBank::eigenmodes() const {
  if (!eig_valid_) {
    eig_ = jacobi_eigendecomposition(coupling_);
    eig_valid_ = true;
  }
  return eig_;
}

}  // namespace lumos::phot
