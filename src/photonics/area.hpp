// Chip-area accounting for the photonic accelerators.
//
// Paper Section VI: "the specific architectural details of each hardware
// accelerator, such as the numbers of the computational blocks, were
// determined through detailed design-space analysis" — area is one axis of
// that analysis.  Component footprints follow the standard numbers used by
// the CrossLight/SONIC line of work: ring + heater + junction ~ a few hundred
// um^2, Ge photodetectors tens of um^2, converters dominated by their CMOS
// macros, SOAs by their III-V gain section.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lumos::phot {

// Footprints of the primitive devices (m^2).
struct DeviceAreas {
  double microring_m2 = 400e-12;        // 20x20 um incl. heater + pn junction
  double photodetector_m2 = 60e-12;     // Ge-on-Si PD
  double balanced_pd_m2 = 140e-12;      // two PDs + subtraction TIA
  double dac_m2 = 5500e-12;             // 8-bit 10 GS/s CMOS macro
  double adc_m2 = 9000e-12;             // 8-bit 10 GS/s TI-SAR macro
  double vcsel_m2 = 900e-12;            // flip-chip bonded source
  double soa_m2 = 40000e-12;            // III-V gain section (200x200 um)
  double waveguide_m2_per_m = 2e-6;     // 2 um effective routing pitch
  double sram_m2_per_byte = 0.18e-12;   // 32 nm 6T SRAM incl. periphery
  double digital_logic_m2 = 2.0e-6;     // control, LUTs, accumulators (2 mm^2)
};

// One line of a floorplan summary.
struct AreaItem {
  std::string component;
  std::size_t count = 0;
  double total_m2 = 0.0;
};

struct AreaReport {
  std::vector<AreaItem> items;

  [[nodiscard]] double total_m2() const noexcept;
  [[nodiscard]] double total_mm2() const noexcept { return total_m2() * 1e6; }
  // Photonic-only share (rings, PDs, VCSELs, SOAs, waveguides).
  [[nodiscard]] double photonic_m2() const noexcept;

  void add(std::string component, std::size_t count, double each_m2);
};

// Area of one K x N MR bank array: 2K rings per waveguide (input + weight
// banks) across N waveguides, N balanced PDs, K shared input DACs, N ADCs,
// K VCSELs, and the bus waveguides.
[[nodiscard]] AreaReport bank_array_area(std::size_t rows, std::size_t columns,
                                         const DeviceAreas& areas = {});

}  // namespace lumos::phot
