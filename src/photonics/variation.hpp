// Fabrication process-variation analysis.
//
// The paper's conclusion names "fabrication-process variations" as an open
// challenge for photonic accelerators.  This module implements the standard
// first-order analysis: die-to-die and within-die variation of waveguide
// width/thickness perturbs each ring's effective index, shifting its
// resonance by up to several linewidths; the tuning subsystem must pull every
// ring back onto the channel grid, which costs heater power and can exceed
// the tunable range (a yield loss).
//
// Model: per-ring resonance offset = systematic (die) + random (local) terms,
//   d_lambda_i ~ N(mu_die, sigma_die^2) + N(0, sigma_local^2),
// corrected modulo one FSR (the grid is periodic, so a ring is pulled to the
// nearest channel).  Outputs: per-bank trimming power distribution and the
// fraction of rings whose correction exceeds the TO range (yield).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "photonics/microring.hpp"
#include "photonics/tuning.hpp"

namespace lumos::phot {

struct ProcessVariationConfig {
  // Within-die random component of the resonance shift (1 sigma).  ~0.3-0.6nm
  // for standard SOI processes without trimming.
  double local_sigma_m = 0.4e-9;
  // Die-level systematic offset distribution (1 sigma across dies).
  double die_sigma_m = 0.8e-9;
  std::size_t rings_per_bank = 16;
  std::size_t monte_carlo_dies = 200;
};

// Aggregate outcome of a Monte-Carlo variation study.
struct VariationReport {
  double mean_correction_m = 0.0;       // average |resonance offset| after grid snap
  double worst_correction_m = 0.0;      // largest correction seen
  double mean_bank_power_w = 0.0;       // average per-bank trimming power (TO, with TED)
  double p95_bank_power_w = 0.0;        // 95th percentile per-bank power
  double yield = 1.0;                   // fraction of dies with all rings correctable
};

class ProcessVariationModel {
 public:
  ProcessVariationModel(const ProcessVariationConfig& config, const MicroringDesign& ring,
                        const TuningCircuitConfig& tuning);

  // Draws the per-ring resonance corrections for one die: each offset is
  // snapped to the nearest channel (mod FSR) so corrections never exceed
  // half an FSR.
  [[nodiscard]] std::vector<double> draw_die_corrections(Rng& rng) const;

  // Monte-Carlo study over `config.monte_carlo_dies` dies.
  [[nodiscard]] VariationReport run(std::uint64_t seed) const;

  [[nodiscard]] const ProcessVariationConfig& config() const noexcept { return config_; }

 private:
  ProcessVariationConfig config_;
  MicroringResonator ring_;
  TuningCircuitConfig tuning_;
};

}  // namespace lumos::phot
