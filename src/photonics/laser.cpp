#include "photonics/laser.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/units.hpp"

namespace lumos::phot {

Vcsel::Vcsel(const VcselConfig& config) : config_(config) {
  LUMOS_EXPECTS(config.wall_plug_efficiency > 0.0 && config.wall_plug_efficiency <= 1.0);
  LUMOS_EXPECTS(config.max_optical_power_w > 0.0);
  LUMOS_EXPECTS(config.threshold_power_w >= 0.0);
  LUMOS_EXPECTS(config.modulation_rate_hz > 0.0);
}

double Vcsel::electrical_power(double optical_power_w) const {
  LUMOS_EXPECTS(optical_power_w >= 0.0);
  LUMOS_EXPECTS_MSG(optical_power_w <= config_.max_optical_power_w,
                    "requested optical power exceeds VCSEL saturation");
  return config_.threshold_power_w + optical_power_w / config_.wall_plug_efficiency;
}

double Vcsel::emit(double normalized_amplitude) const {
  LUMOS_EXPECTS(normalized_amplitude >= 0.0 && normalized_amplitude <= 1.0);
  return normalized_amplitude * config_.max_optical_power_w;
}

LaserBudget size_laser(const Photodetector& detector, const LossStack& losses, int bits,
                       const VcselConfig& vcsel) {
  LUMOS_EXPECTS(bits >= 1 && bits <= 16);
  LaserBudget b;
  const double snr_db = Photodetector::required_snr_db_for_bits(bits);
  b.detector_sensitivity_w = detector.sensitivity_w(snr_db);
  b.path_loss_db = losses.total_db();
  // Launch power must arrive at the detector above sensitivity after losses.
  b.required_launch_power_w =
      b.detector_sensitivity_w * units::db_to_linear(b.path_loss_db);
  b.feasible = b.required_launch_power_w <= vcsel.max_optical_power_w;
  const double clamped = std::min(b.required_launch_power_w, vcsel.max_optical_power_w);
  b.electrical_power_w = vcsel.threshold_power_w + clamped / vcsel.wall_plug_efficiency;
  return b;
}

}  // namespace lumos::phot
