#include "photonics/variation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace lumos::phot {

ProcessVariationModel::ProcessVariationModel(const ProcessVariationConfig& config,
                                             const MicroringDesign& ring,
                                             const TuningCircuitConfig& tuning)
    : config_(config), ring_(ring), tuning_(tuning) {
  LUMOS_EXPECTS(config.local_sigma_m >= 0.0);
  LUMOS_EXPECTS(config.die_sigma_m >= 0.0);
  LUMOS_EXPECTS(config.rings_per_bank >= 1);
  LUMOS_EXPECTS(config.monte_carlo_dies >= 1);
}

std::vector<double> ProcessVariationModel::draw_die_corrections(Rng& rng) const {
  const double fsr = ring_.free_spectral_range();
  // Heaters shift red only, so the fabrication target is pre-biased blue by
  // 3 sigma of the total variation: almost every as-fabricated ring lands
  // blue of its channel and a small red trim corrects it.  The rare ring
  // beyond the bias wraps a full FSR to the next resonance order.
  const double sigma_total = std::sqrt(config_.die_sigma_m * config_.die_sigma_m +
                                       config_.local_sigma_m * config_.local_sigma_m);
  const double blue_bias = 3.0 * sigma_total;
  const double die_offset = rng.normal(0.0, config_.die_sigma_m);
  std::vector<double> corrections(config_.rings_per_bank);
  for (double& c : corrections) {
    const double offset = die_offset + rng.normal(0.0, config_.local_sigma_m);
    double correction = offset + blue_bias;
    if (correction < 0.0) correction += fsr;  // wrap to the next order
    c = std::min(correction, fsr);
  }
  return corrections;
}

VariationReport ProcessVariationModel::run(std::uint64_t seed) const {
  Rng rng(seed);
  const MicroringResonator ring(ring_.design());
  const TuningCircuit circuit(tuning_, ring);
  VariationReport report;
  std::vector<double> bank_powers;
  bank_powers.reserve(config_.monte_carlo_dies);
  double correction_sum = 0.0;
  std::size_t correction_count = 0;
  std::size_t good_dies = 0;

  for (std::size_t die = 0; die < config_.monte_carlo_dies; ++die) {
    const std::vector<double> corrections = draw_die_corrections(rng);
    double bank_power = 0.0;
    bool die_ok = true;
    for (const double c : corrections) {
      const TuningResult r = circuit.tune(c, TuningPolicy::kHybrid);
      if (r.saturated) die_ok = false;
      bank_power += r.static_power_w;
      correction_sum += c;
      ++correction_count;
      report.worst_correction_m = std::max(report.worst_correction_m, c);
    }
    bank_powers.push_back(bank_power);
    if (die_ok) ++good_dies;
  }

  report.mean_correction_m = correction_sum / static_cast<double>(correction_count);
  double power_sum = 0.0;
  for (const double p : bank_powers) power_sum += p;
  report.mean_bank_power_w = power_sum / static_cast<double>(bank_powers.size());
  std::sort(bank_powers.begin(), bank_powers.end());
  const std::size_t p95 =
      std::min(bank_powers.size() - 1,
               static_cast<std::size_t>(0.95 * static_cast<double>(bank_powers.size())));
  report.p95_bank_power_w = bank_powers[p95];
  report.yield = static_cast<double>(good_dies) / static_cast<double>(config_.monte_carlo_dies);
  return report;
}

}  // namespace lumos::phot
