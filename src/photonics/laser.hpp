// VCSEL source model and per-waveguide laser power budget.
//
// Paper Section IV: "VCSEL units are laser sources that can be configured to
// generate an optical signal with a certain wavelength and an amplitude
// specified by an input analog signal."  The laser power budget follows the
// standard photonic-accelerator sizing rule (CrossLight [28], SONIC [29]):
// the launch power must cover the photodetector sensitivity plus every dB of
// loss accumulated along the path,
//
//   P_laser(dBm) >= S_detector(dBm) + L_path(dB) + M_penalty(dB)
//
// and the electrical (wall-plug) cost is P_laser / efficiency.
#pragma once

#include <cstddef>

#include "photonics/detector.hpp"

namespace lumos::phot {

struct VcselConfig {
  double wall_plug_efficiency = 0.25;    // optical out / electrical in
  double max_optical_power_w = 10e-3;    // saturation
  double threshold_power_w = 0.15e-3;    // electrical power at threshold
  double wavelength_m = constants::kCBandCenterWavelength;
  double modulation_rate_hz = 10e9;      // direct-modulation symbol rate
};

class Vcsel {
 public:
  explicit Vcsel(const VcselConfig& config);

  // Electrical power drawn to emit `optical_power_w`.
  [[nodiscard]] double electrical_power(double optical_power_w) const;

  // Emitted optical power when driven with a normalised amplitude in [0,1]
  // (linear above threshold).
  [[nodiscard]] double emit(double normalized_amplitude) const;

  [[nodiscard]] const VcselConfig& config() const noexcept { return config_; }

 private:
  VcselConfig config_;
};

// Loss contributions along one waveguide path through an MR bank array
// (all in dB; see e.g. CrossLight Table 1 for typical values).
struct LossStack {
  double coupler_db = 1.0;            // fibre/laser-to-chip coupling
  double waveguide_db_per_cm = 1.5;   // propagation loss
  double path_length_cm = 0.5;
  double per_mr_insertion_db = 0.05;  // each through-type MR on the bus
  std::size_t mr_count = 16;
  double splitter_db = 0.2;           // per Y-branch/combiner on the path
  std::size_t splitter_count = 2;
  double mux_demux_db = 1.0;          // (de)multiplexer
  double penalty_margin_db = 1.0;     // modulation / extinction penalty margin

  [[nodiscard]] double total_db() const noexcept {
    return coupler_db + waveguide_db_per_cm * path_length_cm +
           per_mr_insertion_db * static_cast<double>(mr_count) +
           splitter_db * static_cast<double>(splitter_count) + mux_demux_db + penalty_margin_db;
  }
};

// Result of sizing the laser for one wavelength channel.
struct LaserBudget {
  double detector_sensitivity_w = 0.0;  // from the PD noise model
  double path_loss_db = 0.0;
  double required_launch_power_w = 0.0;
  double electrical_power_w = 0.0;      // wall-plug per channel
  bool feasible = true;                 // launch power within VCSEL saturation
};

// Sizes the per-channel laser launch power so that the detected signal, after
// `losses`, resolves `bits` levels on `detector`.
[[nodiscard]] LaserBudget size_laser(const Photodetector& detector, const LossStack& losses,
                                     int bits, const VcselConfig& vcsel);

}  // namespace lumos::phot
