#include "photonics/crosstalk.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace lumos::phot {

HeterodyneCrosstalkModel::HeterodyneCrosstalkModel(const HeterodyneConfig& config)
    : config_(config) {
  LUMOS_EXPECTS(config.channel_spacing_m > 0.0);
  LUMOS_EXPECTS(config.quality_factor > 1.0);
  LUMOS_EXPECTS(config.center_wavelength_m > 0.0);
  LUMOS_EXPECTS(config.channel_count >= 1);
  fwhm_m_ = config.center_wavelength_m / config.quality_factor;
}

double HeterodyneCrosstalkModel::coupling_at(double detuning_m) const noexcept {
  const double x = 2.0 * detuning_m / fwhm_m_;
  return 1.0 / (1.0 + x * x);
}

double HeterodyneCrosstalkModel::crosstalk_fraction(std::size_t victim) const {
  LUMOS_EXPECTS(victim < config_.channel_count);
  double total = 0.0;
  for (std::size_t ch = 0; ch < config_.channel_count; ++ch) {
    if (ch == victim) continue;
    const double detuning = std::fabs(static_cast<double>(ch) - static_cast<double>(victim)) *
                            config_.channel_spacing_m;
    total += coupling_at(detuning);
  }
  return total;
}

HeterodyneReport HeterodyneCrosstalkModel::analyze() const {
  HeterodyneReport r;
  double worst = 0.0;
  double best = 1.0;
  for (std::size_t ch = 0; ch < config_.channel_count; ++ch) {
    const double f = crosstalk_fraction(ch);
    worst = std::max(worst, f);
    best = std::min(best, f);
  }
  r.worst_crosstalk_fraction = worst;
  r.best_crosstalk_fraction = config_.channel_count > 1 ? best : 0.0;
  r.worst_oscr_db = worst > 0.0 ? units::linear_to_db(1.0 / worst) : 1e9;
  // FSR is owned by the ring design; here we report occupancy against the FSR
  // implied by a 5 um ring at the centre wavelength for sanity checks.
  // (WdmLinkDesigner passes the actual FSR explicitly.)
  r.spectral_occupancy = static_cast<double>(config_.channel_count) * config_.channel_spacing_m;
  return r;
}

double HeterodyneCrosstalkModel::perturb(double value, double mean_aggressor_value,
                                         std::size_t victim) const {
  const double f = crosstalk_fraction(victim);
  // Aggressor light adds incoherently (different wavelengths beat above the
  // PD bandwidth): detected power picks up the leaked aggressor mean.
  return value + f * mean_aggressor_value;
}

HomodyneCrosstalkModel::HomodyneCrosstalkModel(const HomodyneConfig& config) : config_(config) {
  LUMOS_EXPECTS(config.coupling_gap_m > 0.0);
  LUMOS_EXPECTS(config.reference_gap_m > 0.0);
  LUMOS_EXPECTS(config.reference_leakage > 0.0 && config.reference_leakage < 1.0);
  LUMOS_EXPECTS(config.decay_length_m > 0.0);
  // Evanescent coupling decays exponentially with the gap.
  const double extra_gap = config.coupling_gap_m - config.reference_gap_m;
  leakage_ = config.reference_leakage * std::exp(-extra_gap / config.decay_length_m);
  leakage_ = std::min(leakage_, 0.5);  // physical cap: cannot leak more than it couples
}

double HomodyneCrosstalkModel::worst_case_relative_error() const noexcept {
  // Each leaked field has amplitude sqrt(k) relative to the signal and can
  // align in phase: power error |E + sum e_i|^2 - |E|^2 <= n*(2*sqrt(k) + n*k).
  const double n = static_cast<double>(config_.interfering_elements);
  const double k = leakage_;
  return n * (2.0 * std::sqrt(k)) + n * n * k;
}

double HomodyneCrosstalkModel::worst_oscr_db() const noexcept {
  const double err = worst_case_relative_error();
  if (err <= 0.0) return 1e9;
  return units::linear_to_db(1.0 / err);
}

}  // namespace lumos::phot
