#include "photonics/mr_bank.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace lumos::phot {

MrBank::MrBank(const MrBankConfig& config)
    : config_(config),
      ring_(config.ring),
      tuner_(config.tuning, ring_),
      heterodyne_([&] {
        HeterodyneConfig h = config.heterodyne;
        h.channel_count = config.wavelength_count;
        h.quality_factor = config.ring.quality_factor;
        return h;
      }()),
      bpd_(config.detector),
      dac_(config.dac),
      adc_(config.adc),
      vcsel_(config.vcsel),
      budget_(size_laser(Photodetector(config.detector),
                         [&] {
                           LossStack l = config.losses;
                           l.mr_count = config.wavelength_count;
                           return l;
                         }(),
                         config.adc.bits, config.vcsel)) {
  LUMOS_EXPECTS(config.wavelength_count >= 1);
  LUMOS_EXPECTS(config.symbol_rate_hz > 0.0);
}

double MrBank::imprint_magnitude(double v, Rng& rng, const AnalogNoiseConfig& noise) const {
  double mag = std::fabs(v);
  if (noise.dac_quantization) mag = dac_.quantize(mag);
  double tuning_error = 0.0;
  if (noise.mr_tuning_error) tuning_error = rng.normal(0.0, noise.tuning_error_sigma_m);
  // imprint() returns transmission in [extinction_floor, max_transmission];
  // renormalise so an imprinted 1.0 reads back as 1.0.
  const double t = ring_.imprint(mag, tuning_error);
  const double floor = ring_.extinction_floor();
  const double span = ring_.max_transmission() - floor;
  return std::clamp((t - floor) / span, 0.0, 1.0);
}

double MrBank::dot(std::span<const double> a, std::span<const double> w, Rng& rng,
                   const AnalogNoiseConfig& noise) const {
  LUMOS_EXPECTS(a.size() == w.size());
  LUMOS_EXPECTS(a.size() <= config_.wavelength_count);
  const std::size_t k = a.size();

  // Per-wavelength products, split by sign onto the BPD's two arms
  // (positive products on the positive arm, negative on the negative arm).
  std::vector<double> products(k);
  double mean_magnitude = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    LUMOS_EXPECTS(a[i] >= -1.0 && a[i] <= 1.0);
    LUMOS_EXPECTS(w[i] >= -1.0 && w[i] <= 1.0);
    const double ta = imprint_magnitude(a[i], rng, noise);
    const double tw = imprint_magnitude(w[i], rng, noise);
    const double sign = (a[i] < 0.0) == (w[i] < 0.0) ? 1.0 : -1.0;
    products[i] = sign * ta * tw;
    mean_magnitude += ta * tw;
  }
  mean_magnitude /= static_cast<double>(k);

  double pos_arm = 0.0;
  double neg_arm = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    double magnitude = std::fabs(products[i]);
    if (noise.heterodyne_crosstalk && k > 1) {
      // Aggressor channels leak a fraction of their (mean) power into this
      // victim's passband (incoherent addition at the PD); the calibration
      // loop removes the deterministic part measured on the monitor PD.
      const std::size_t victim = i % config_.wavelength_count;
      const double perturbed = heterodyne_.perturb(magnitude, mean_magnitude, victim);
      const double leak = perturbed - magnitude;
      magnitude += leak * (1.0 - noise.crosstalk_compensation);
    }
    if (products[i] >= 0.0) {
      pos_arm += magnitude;
    } else {
      neg_arm += magnitude;
    }
  }

  // Scale normalised sums into optical powers at the detector.
  const double per_channel_w = budget_.detector_sensitivity_w;
  const double full_scale_w = per_channel_w * static_cast<double>(config_.wavelength_count);
  double noise_sigma = 0.0;
  double detected = bpd_.detect(pos_arm * per_channel_w, neg_arm * per_channel_w, full_scale_w,
                                noise.detector_noise ? &noise_sigma : nullptr);
  if (noise.detector_noise) detected += rng.normal(0.0, noise_sigma);

  // detected is in [-1,1] normalised to K channels at full scale; restore the
  // dot-product scale (sum of K products each in [-1,1]).
  double value = detected * static_cast<double>(config_.wavelength_count);
  if (noise.adc_quantization) {
    const double norm = value / static_cast<double>(config_.wavelength_count);
    value = adc_.quantize_signed(std::clamp(norm, -1.0, 1.0)) *
            static_cast<double>(config_.wavelength_count);
  }
  return value;
}

double MrBank::exact_dot(std::span<const double> a, std::span<const double> w) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size() && i < w.size(); ++i) s += a[i] * w[i];
  return s;
}

BankOpCost MrBank::dot_cost() const {
  BankOpCost c;
  const double k = static_cast<double>(config_.wavelength_count);
  // One symbol transit; DAC writes for K activations + K weights happen in
  // parallel with the transit pipeline.
  c.latency_s = 1.0 / config_.symbol_rate_hz + dac_.conversion_latency_s();
  c.dynamic_energy_j = 2.0 * k * dac_.energy_per_conversion_j()  // a and w imprints
                       + adc_.energy_per_conversion_j()          // one read-out
                       + k * budget_.electrical_power_w / config_.symbol_rate_hz;  // laser
  // Hold power: rings are fabricated on the channel grid and trimmed within a
  // quarter linewidth, which the (zero-static-power) EO actuator covers under
  // the hybrid policy; heaters only engage for rare large excursions.
  const TuningResult hold = tuner_.tune(ring_.fwhm() / 4.0);
  c.static_power_w = 2.0 * k * hold.static_power_w + dac_.static_power_w() +
                     adc_.static_power_w();
  return c;
}

MrBankArray::MrBankArray(const MrBankConfig& bank_config, std::size_t column_count)
    : bank_(bank_config), column_count_(column_count) {
  LUMOS_EXPECTS(column_count >= 1);
}

std::vector<double> MrBankArray::matvec(std::span<const double> x, std::span<const double> w,
                                        Rng& rng, const AnalogNoiseConfig& noise) const {
  const std::size_t k = x.size();
  LUMOS_EXPECTS(k <= rows());
  LUMOS_EXPECTS(k > 0);
  // The weight tile may use fewer columns than the array provides (edge
  // tiles); the used width is inferred from the tile size.
  LUMOS_EXPECTS(w.size() % k == 0);
  const std::size_t cols = w.size() / k;
  LUMOS_EXPECTS(cols >= 1 && cols <= column_count_);
  std::vector<double> y(cols);
  std::vector<double> col(k);
  for (std::size_t n = 0; n < cols; ++n) {
    for (std::size_t i = 0; i < k; ++i) col[i] = w[i * cols + n];
    y[n] = bank_.dot(x, col, rng, noise);
  }
  return y;
}

std::vector<double> MrBankArray::exact_matvec(std::span<const double> x,
                                              std::span<const double> w, std::size_t columns) {
  const std::size_t k = x.size();
  std::vector<double> y(columns, 0.0);
  for (std::size_t n = 0; n < columns; ++n) {
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) acc += x[i] * w[i * columns + n];
    y[n] = acc;
  }
  return y;
}

BankOpCost MrBankArray::matvec_cost(bool share_input_dacs) const {
  // All N columns transit simultaneously; the input vector is imprinted once
  // and broadcast (shared DACs) or once per column (unshared).
  const BankOpCost per_bank = bank_.dot_cost();
  const double n = static_cast<double>(column_count_);
  const double k = static_cast<double>(bank_.width());
  const DacModel dac(bank_.config().dac);
  const AdcModel adc(bank_.config().adc);

  BankOpCost c;
  c.latency_s = per_bank.latency_s;  // spatially parallel columns
  const double input_dac_j =
      (share_input_dacs ? 1.0 : n) * k * dac.energy_per_conversion_j();
  const double weight_dac_j = n * k * dac.energy_per_conversion_j();
  const double adc_j = n * adc.energy_per_conversion_j();
  // Laser energy scales with the number of waveguides (columns).
  const double per_bank_laser_j =
      per_bank.dynamic_energy_j - 2.0 * k * dac.energy_per_conversion_j() -
      adc.energy_per_conversion_j();
  c.dynamic_energy_j = input_dac_j + weight_dac_j + adc_j + n * per_bank_laser_j;
  c.static_power_w = n * per_bank.static_power_w;
  return c;
}

MrBankArray::PassEnergies MrBankArray::pass_energies() const {
  const double k = static_cast<double>(bank_.width());
  const double n = static_cast<double>(column_count_);
  const DacModel dac(bank_.config().dac);
  const AdcModel adc(bank_.config().adc);
  PassEnergies e;
  e.input_dac_j = k * dac.energy_per_conversion_j();
  e.weight_dac_j = k * n * dac.energy_per_conversion_j();
  e.adc_j = n * adc.energy_per_conversion_j();
  // Laser: each of the N waveguides carries K channels for one symbol.
  const LaserBudget budget = size_laser(Photodetector(bank_.config().detector),
                                        [&] {
                                          LossStack l = bank_.config().losses;
                                          l.mr_count = bank_.width();
                                          return l;
                                        }(),
                                        bank_.config().adc.bits, bank_.config().vcsel);
  e.laser_j = n * k * budget.electrical_power_w / bank_.config().symbol_rate_hz;
  return e;
}

CoherentSummationUnit::CoherentSummationUnit(const MrBankConfig& config,
                                             const HomodyneConfig& homodyne,
                                             std::size_t branch_count)
    : config_(config),
      homodyne_(homodyne),
      bpd_(config.detector),
      dac_(config.dac),
      adc_(config.adc),
      vcsel_(config.vcsel),
      branch_count_(branch_count) {
  LUMOS_EXPECTS(branch_count >= 1);
}

double CoherentSummationUnit::sum(std::span<const double> values, Rng& rng,
                                  const AnalogNoiseConfig& noise) const {
  LUMOS_EXPECTS(values.size() <= branch_count_);
  double pos = 0.0;
  double neg = 0.0;
  for (const double v : values) {
    LUMOS_EXPECTS(v >= -1.0 && v <= 1.0);
    double mag = std::fabs(v);
    if (noise.dac_quantization) mag = dac_.quantize(mag);
    if (v >= 0.0) {
      pos += mag;
    } else {
      neg += mag;
    }
  }
  const double n = static_cast<double>(branch_count_);
  // Homodyne leakage: same-wavelength parasitic fields interfere with the
  // summed signal; bounded by the worst-case model, drawn uniformly in phase.
  if (noise.heterodyne_crosstalk) {  // switch doubles for "optical crosstalk on"
    const double bound = homodyne_.worst_case_relative_error();
    const double err = rng.uniform(-bound, bound);
    pos *= (1.0 + err);
  }
  const double full_scale_w = 1e-3 * n;  // 1 mW per branch at full scale
  double sigma = 0.0;
  double detected = bpd_.detect(pos / n * full_scale_w, neg / n * full_scale_w, full_scale_w,
                                noise.detector_noise ? &sigma : nullptr);
  if (noise.detector_noise) detected += rng.normal(0.0, sigma);
  double value = detected * n;
  if (noise.adc_quantization) {
    value = adc_.quantize_signed(std::clamp(value / n, -1.0, 1.0)) * n;
  }
  return value;
}

double CoherentSummationUnit::exact_sum(std::span<const double> values) noexcept {
  double s = 0.0;
  for (const double v : values) s += v;
  return s;
}

BankOpCost CoherentSummationUnit::sum_cost() const {
  BankOpCost c;
  const double n = static_cast<double>(branch_count_);
  c.latency_s = 1.0 / config_.symbol_rate_hz + dac_.conversion_latency_s();
  // Each branch needs a VCSEL drive (DAC) at a modest power; one ADC read.
  const double per_branch_laser_j =
      vcsel_.electrical_power(1e-3) / config_.symbol_rate_hz;
  c.dynamic_energy_j =
      n * (dac_.energy_per_conversion_j() + per_branch_laser_j) + adc_.energy_per_conversion_j();
  c.static_power_w = dac_.static_power_w() + adc_.static_power_w();
  return c;
}

}  // namespace lumos::phot
