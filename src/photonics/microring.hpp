// Microring resonator (MR) device model.
//
// The MR is the workhorse of both TRON and GHOST: every multiply is an MR
// imprinting a value onto an optical carrier by detuning its resonance, and
// every weight bank is a row of MRs sharing a waveguide (paper Section IV,
// Fig. 3).  This model covers:
//
//  * the resonance condition of paper eq. (2):  lambda_MR = 2*pi*R*n_eff / m
//  * the free spectral range (FSR) set by the group index
//  * Lorentzian through-/drop-port transmission with loaded quality factor Q
//  * resonance shift under an effective-index perturbation (EO or TO tuning):
//        d_lambda = lambda * d_n_eff / n_g
//  * the mapping from a normalised value in [0,1] to the detuning that
//    produces that through-port transmission (how parameters are imprinted)
#pragma once

#include "common/constants.hpp"

namespace lumos::phot {

// Geometric and optical design parameters of a single microring.
struct MicroringDesign {
  double radius_m = 5e-6;                                   // ring radius R
  int resonance_order = 0;                                  // m in eq. (2); 0 = derive from target
  double target_wavelength_m = constants::kCBandCenterWavelength;
  double effective_index = constants::kSiEffectiveIndex;    // n_eff
  double group_index = constants::kSiGroupIndex;            // n_g
  double quality_factor = 8000.0;                           // loaded Q
  double extinction_ratio_db = 20.0;                        // on-resonance through-port dip
  double drop_port_peak_transmission = 0.9;                 // drop-port max
  double insertion_loss_db = 0.05;                          // off-resonance through loss
};

// A single microring resonator with a (mutable) tuning state.
class MicroringResonator {
 public:
  // Builds an MR from `design`.  If `design.resonance_order` is zero, the
  // order is chosen as the integer that places the resonance closest to
  // `design.target_wavelength_m`.
  explicit MicroringResonator(const MicroringDesign& design);

  // ---- Static spectral properties -------------------------------------------
  // Resonant wavelength per eq. (2) for the chosen order, with zero tuning.
  [[nodiscard]] double base_resonance_wavelength() const noexcept { return base_resonance_m_; }
  // Current resonance including the applied tuning shift.
  [[nodiscard]] double resonance_wavelength() const noexcept {
    return base_resonance_m_ + tuning_shift_m_;
  }
  [[nodiscard]] int resonance_order() const noexcept { return order_; }
  // Free spectral range  FSR = lambda^2 / (n_g * L)  with L = 2*pi*R.
  [[nodiscard]] double free_spectral_range() const noexcept { return fsr_m_; }
  // Lorentzian full width at half maximum  FWHM = lambda / Q.
  [[nodiscard]] double fwhm() const noexcept { return fwhm_m_; }
  [[nodiscard]] double quality_factor() const noexcept { return design_.quality_factor; }
  [[nodiscard]] const MicroringDesign& design() const noexcept { return design_; }

  // ---- Transmission ----------------------------------------------------------
  // Through-port power transmission at `wavelength_m` (0..1).  On resonance
  // this dips to the extinction floor; far off resonance it approaches the
  // (small) insertion loss.
  [[nodiscard]] double through_transmission(double wavelength_m) const noexcept;
  // Drop-port power transmission at `wavelength_m` (0..1).
  [[nodiscard]] double drop_transmission(double wavelength_m) const noexcept;

  // ---- Tuning ----------------------------------------------------------------
  // Applies an effective-index perturbation (from an EO or TO actuator) and
  // returns the resulting resonance shift  d_lambda = lambda * d_n_eff / n_g.
  double apply_index_shift(double delta_n_eff) noexcept;
  // Sets the resonance shift directly (used by the tuning circuit).
  void set_tuning_shift(double delta_lambda_m) noexcept { tuning_shift_m_ = delta_lambda_m; }
  [[nodiscard]] double tuning_shift() const noexcept { return tuning_shift_m_; }

  // ---- Value imprinting ------------------------------------------------------
  // Detuning (in metres, >= 0) that makes the through-port transmit the
  // normalised `value` in [extinction_floor, 1-IL]; this is how an analog
  // parameter is written onto a carrier (paper Fig. 3a).  Inverts the
  // Lorentzian.
  [[nodiscard]] double detuning_for_value(double value) const;
  // Transmission actually realised for normalised `value` given a tuning
  // error of `tuning_error_m` (models DAC/thermal imprecision).
  [[nodiscard]] double imprint(double value, double tuning_error_m = 0.0) const;

  // Extinction floor: through-port transmission exactly on resonance.
  [[nodiscard]] double extinction_floor() const noexcept { return extinction_floor_; }
  // Best achievable transmission (limited by insertion loss).
  [[nodiscard]] double max_transmission() const noexcept { return max_transmission_; }

 private:
  MicroringDesign design_;
  int order_;
  double base_resonance_m_;
  double fsr_m_;
  double fwhm_m_;
  double extinction_floor_;
  double max_transmission_;
  double tuning_shift_m_ = 0.0;
};

}  // namespace lumos::phot
