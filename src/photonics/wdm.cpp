#include "photonics/wdm.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace lumos::phot {

WdmLinkDesigner::WdmLinkDesigner(const MicroringDesign& ring_template,
                                 const PhotodetectorConfig& detector, const VcselConfig& vcsel,
                                 const LossStack& losses)
    : ring_template_(ring_template), detector_(detector), vcsel_(vcsel), losses_(losses) {}

WdmDesignPoint WdmLinkDesigner::evaluate(double quality_factor, std::size_t channel_count,
                                         int target_bits, double guard_band_fraction,
                                         double min_effective_snr_db,
                                         double crosstalk_compensation) const {
  LUMOS_EXPECTS(quality_factor > 1.0);
  LUMOS_EXPECTS(channel_count >= 1);
  LUMOS_EXPECTS(target_bits >= 1);
  LUMOS_EXPECTS(guard_band_fraction >= 0.0 && guard_band_fraction < 1.0);
  LUMOS_EXPECTS(crosstalk_compensation >= 0.0 && crosstalk_compensation <= 1.0);

  MicroringDesign ring_design = ring_template_;
  ring_design.quality_factor = quality_factor;
  const MicroringResonator ring(ring_design);

  WdmDesignPoint p;
  p.quality_factor = quality_factor;
  p.channel_count = channel_count;
  // Pack the channels into the usable FSR (guard band at the edge keeps the
  // grid clear of the next resonance order).
  const double usable_fsr = ring.free_spectral_range() * (1.0 - guard_band_fraction);
  p.channel_spacing_m = channel_count > 1
                            ? usable_fsr / static_cast<double>(channel_count)
                            : usable_fsr;

  HeterodyneConfig h;
  h.channel_spacing_m = p.channel_spacing_m;
  h.quality_factor = quality_factor;
  h.center_wavelength_m = ring.base_resonance_wavelength();
  h.channel_count = channel_count;
  const HeterodyneCrosstalkModel xtalk(h);
  const HeterodyneReport report = xtalk.analyze();
  p.crosstalk_fraction = report.worst_crosstalk_fraction;
  p.oscr_db = report.worst_oscr_db;

  // Combined SNR: the deterministic share of the crosstalk is calibrated out;
  // the residual behaves as interference, and the detector contributes its
  // own noise at the delivered power:
  //   1/SNR_eff = (1 - comp) / OSCR + 1/SNR_detector.
  const Photodetector pd(detector_);
  LossStack losses = losses_;
  losses.mr_count = channel_count;
  const LaserBudget budget = size_laser(pd, losses, target_bits, vcsel_);
  p.laser_power_per_channel_w = budget.electrical_power_w;
  const double snr_det = pd.snr_linear(budget.detector_sensitivity_w);
  const double inv_snr = p.crosstalk_fraction * (1.0 - crosstalk_compensation) +
                         (snr_det > 0.0 ? 1.0 / snr_det : 1.0);
  p.effective_snr_db = units::linear_to_db(1.0 / inv_snr);

  p.feasible = budget.feasible && p.effective_snr_db >= min_effective_snr_db;
  return p;
}

std::vector<WdmDesignPoint> WdmLinkDesigner::sweep(const WdmSearchSpace& space) const {
  std::vector<WdmDesignPoint> points;
  points.reserve(space.quality_factors.size() * space.channel_counts.size());
  for (const double q : space.quality_factors) {
    for (const std::size_t n : space.channel_counts) {
      points.push_back(evaluate(q, n, space.target_bits, space.guard_band_fraction,
                                space.min_effective_snr_db, space.crosstalk_compensation));
    }
  }
  return points;
}

std::optional<WdmDesignPoint> WdmLinkDesigner::best(const WdmSearchSpace& space) const {
  std::optional<WdmDesignPoint> best_point;
  for (const WdmDesignPoint& p : sweep(space)) {
    if (!p.feasible) continue;
    if (!best_point || p.channel_count > best_point->channel_count ||
        (p.channel_count == best_point->channel_count &&
         p.laser_power_per_channel_w < best_point->laser_power_per_channel_w)) {
      best_point = p;
    }
  }
  return best_point;
}

}  // namespace lumos::phot
