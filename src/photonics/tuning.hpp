// Hybrid electro-optic / thermo-optic microring tuning circuit.
//
// Paper Section V.A: "EO tuning is leveraged for fast induction of small
// d_lambda_MR, whereas slower TO tuning is only enabled infrequently when
// there is a need for larger d_lambda_MR", with TED lowering TO power.
//
// This module turns a requested resonance shift into (mechanism, energy,
// latency) figures:
//   * EO (carrier depletion): sub-ns response, fJ/shift energies, but a small
//     reachable range (fraction of a nanometre).
//   * TO (heater): microsecond response, mW static power, full-FSR range.
//   * Hybrid: use EO whenever the shift fits its range; otherwise engage TO
//     for the coarse component and EO for the residual fine component.
#pragma once

#include <cstddef>

#include "photonics/microring.hpp"
#include "photonics/thermal.hpp"

namespace lumos::phot {

// Which actuation produced a shift.
enum class TuningMechanism { kElectroOptic, kThermoOptic, kHybrid };

// Tuning policy for selecting a mechanism.
enum class TuningPolicy {
  kEoOnly,      // fail (saturate) beyond the EO range
  kToOnly,      // always use the heater
  kHybrid,      // paper's scheme: EO for fine, TO only when needed
};

struct TuningCircuitConfig {
  // --- EO (depletion pn junction) ---
  double eo_max_voltage = 4.0;                    // reverse-bias swing
  double eo_index_shift_per_volt = constants::kSiEoIndexShiftPerVolt;
  double eo_junction_capacitance_f = 12e-15;      // 12 fF
  double eo_response_time_s = 20e-12;             // RC-limited
  // --- TO (metal heater) ---
  double to_efficiency_nm_per_mw = 0.25;          // resonance shift per heater power
  double to_response_time_s = 4e-6;               // thermal time constant
  double to_max_shift_nm = 12.0;                  // ~one FSR of a 5 um ring
  // --- TED ---
  bool use_ted = true;        // drive banks via thermal eigenmodes
  double ted_power_saving = 0.45;  // fraction of naive TO power saved (bank-level, from model)
};

// Energy/latency/power outcome of one tuning operation.
struct TuningResult {
  TuningMechanism mechanism = TuningMechanism::kElectroOptic;
  double achieved_shift_m = 0.0;   // may saturate below the request
  double requested_shift_m = 0.0;
  double dynamic_energy_j = 0.0;   // per-actuation energy (EO switching)
  double static_power_w = 0.0;     // held power while the shift is maintained (TO)
  double latency_s = 0.0;          // time to settle
  bool saturated = false;          // request exceeded the reachable range
};

// Per-ring tuning circuit.  Bank-level TED coordination is modelled by
// `ThermalBank`; this class captures the per-ring mechanism selection and
// cost model used everywhere in the accelerator energy accounting.
class TuningCircuit {
 public:
  TuningCircuit(const TuningCircuitConfig& config, const MicroringResonator& ring);

  // Largest shift reachable by EO actuation alone.
  [[nodiscard]] double eo_range_m() const noexcept { return eo_range_m_; }
  // Largest shift reachable at all (TO range).
  [[nodiscard]] double to_range_m() const noexcept { return to_range_m_; }

  // Costs a resonance shift of `shift_m` (absolute value used) under `policy`.
  [[nodiscard]] TuningResult tune(double shift_m, TuningPolicy policy) const;

  // Convenience: the paper's hybrid policy.
  [[nodiscard]] TuningResult tune(double shift_m) const {
    return tune(shift_m, TuningPolicy::kHybrid);
  }

  [[nodiscard]] const TuningCircuitConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] TuningResult tune_eo(double shift_m) const;
  [[nodiscard]] TuningResult tune_to(double shift_m) const;

  TuningCircuitConfig config_;
  double eo_range_m_;
  double to_range_m_;
  double lambda_m_;
  double group_index_;
};

// Aggregate TO tuning power for a whole bank of rings holding the temperature
// offsets implied by `shifts_m`, with and without TED.  Used by the tuning
// ablation bench and by the accelerator power models.
struct BankTuningPower {
  double naive_w = 0.0;       // independent per-ring feedback controllers
  double ted_w = 0.0;         // eigenmode-decomposed drive
  double max_error_naive_k = 0.0;  // residual thermal error of the naive drive
  double max_error_ted_k = 0.0;
};

[[nodiscard]] BankTuningPower bank_tuning_power(const ThermalBank& bank,
                                                const std::vector<double>& shifts_m,
                                                const TuningCircuitConfig& config,
                                                const MicroringResonator& reference_ring);

}  // namespace lumos::phot
