#!/usr/bin/env python3
"""CI bench-regression gate.

Compares a freshly produced BENCH_*_smoke.json against the committed
per-scenario baseline (bench/baselines/) and exits non-zero on regression, so
perf regressions fail the job instead of shipping silently behind a `cat`.

Two metric classes, two tolerance bands:

* deterministic metrics (simulated latencies, goodput, SLO attainment, queue
  depths, ...) are bit-reproducible by the simulator's contract and must match
  the baseline within --det-tol relative error (default 1e-3, loose enough to
  absorb compiler/fp-contraction differences across the CI matrix);
* timing metrics (median_ms, requests_per_s, wall_s) are hardware- and
  load-dependent: they only fail when worse than the baseline by more than
  --time-tol x (default 4.0), a band wide enough for runner noise yet narrow
  enough to catch order-of-magnitude regressions.

The serve observer_overhead section gets two extra gates: the observed run's
p99/goodput must match the unobserved run within --det-tol (observers must
never change results), and the relative wall-clock overhead of observing must
stay under --overhead-tol (default 0.35; the denominator is the *unobserved*
loop, which the `if constexpr` observer-free instantiation made faster — the
same absolute observer cost now reads as a larger fraction).

The "provenance" object (compiler, build type, schema version, threads) is
context for humans, never gated: baselines produced by a different toolchain
still diff cleanly on their numbers.

The serve continuous_batching section carries its own in-file acceptance
gate on top of the baseline diff: at every load point, continuous batching's
mean TTFT must not lose to the monolithic (static-batching) baseline — the
section's whole reason to exist — independent of what the committed baseline
recorded.

`--baseline`/`--current` repeat to check several pairs in one invocation
(paired in order); every failing gate across every pair is reported before
the nonzero exit, so one CI run surfaces the full regression list.

Usage:
  bench_check.py --baseline bench/baselines/BENCH_serve_smoke.json \
                 --current BENCH_serve_smoke.json [--time-tol 4.0] [--det-tol 1e-3] \
                 [--overhead-tol 0.25]
  bench_check.py --baseline <kernels baseline> --current <kernels current> \
                 --baseline <serve baseline> --current <serve current>
  bench_check.py --self-test --baseline <file>   # gate must pass the baseline
                                                 # against itself and fail an
                                                 # injected regression

The file kind (kernels / serve) is auto-detected from the "bench" field.
"""

import argparse
import copy
import json
import sys

# Deterministic fields of a serve campaign point / headline / tenant entry.
DET_POINT_FIELDS = [
    "offered_qps", "throughput_qps", "goodput_qps", "slo_latency_s",
    "slo_attainment", "p50_latency_s", "p95_latency_s", "p99_latency_s",
    "p999_latency_s", "mean_queue_depth", "peak_queue_depth", "mean_batch",
    "energy_per_request_j", "fleet_energy_j", "utilization", "peak_fleet",
    "final_fleet", "mean_fleet", "autoscale_grows", "autoscale_shrinks",
    # Robustness counters (PR 6): seeded fault injection, timeouts/retries,
    # and admission shedding are all bit-reproducible by contract.
    "shed", "timed_out", "retries", "failed_batches", "requeued",
    "slot_failures", "availability", "drop_rate",
]
DET_HEADLINE_FIELDS = ["p99_latency_s", "goodput_qps"]
DET_TENANT_FIELDS = [
    "priority", "slo_latency_s", "completed", "slo_attainment", "goodput_qps",
    "p50_latency_s", "p99_latency_s", "shed", "timed_out", "drop_rate",
]
# Closed-loop scenario entries: per-request tails plus end-to-end session
# latencies and the cache counters (all bit-reproducible by contract).
DET_CLOSED_LOOP_FIELDS = [
    "sessions", "requests_per_session", "completed", "throughput_qps",
    "goodput_qps", "slo_attainment", "p50_latency_s", "p99_latency_s",
    "mean_session_s", "p50_session_s", "p99_session_s", "max_session_s",
    "mean_batch", "estimate_lookups", "estimate_misses",
]
TIMING_HEADLINE_FIELDS = ["requests_per_s"]  # higher is better
# Observer-overhead entries: the simulated results (bit-reproducible, and
# identical whether or not observers watch the run) plus the trace/timeline
# volume counters, which are functions of the same deterministic event stream.
DET_OBSERVER_FIELDS = [
    "requests", "trace_sample", "off_p99_latency_s", "on_p99_latency_s",
    "off_goodput_qps", "on_goodput_qps", "sampled_requests", "request_events",
    "batch_spans", "timeline_windows",
]
TIMING_OBSERVER_FIELDS = ["off_requests_per_s", "on_requests_per_s"]
# Sharded-simulation entries: simulated results are deterministic for a fixed
# cell count (salted per-cell seeds, ascending merge), so they are gated like
# every other det field; wall clocks and speedups are host-dependent timing.
# `threads` is context (like provenance): a 1-core runner's ~1x speedup only
# fails against its own 1-core baseline's band, never an absolute floor.
DET_SHARDED_FIELDS = [
    "requests", "fleet", "serial_completed", "serial_p99_latency_s",
    "serial_goodput_qps", "scale_requests", "scale_cells", "scale_completed",
    "scale_p99_latency_s", "scale_goodput_qps",
]
DET_SHARDED_POINT_FIELDS = ["completed", "p99_latency_s", "goodput_qps"]
TIMING_SHARDED_FIELDS = ["serial_requests_per_s", "scale_requests_per_s"]
TIMING_SHARDED_POINT_FIELDS = ["requests_per_s", "speedup"]  # higher is better
# Continuous-batching entries: the monolithic-vs-continuous decode comparison.
# Every simulated per-mode metric is deterministic; requests_per_s is the
# only timing field (wall clock over all four runs).
DET_CONTINUOUS_FIELDS = ["requests", "fleet", "decode_tokens", "capacity_qps"]
DET_CONTINUOUS_POINT_FIELDS = [
    "capacity_x", "offered_qps",
    "mono_mean_ttft_s", "mono_p95_ttft_s", "mono_mean_tpot_s", "mono_p95_tpot_s",
    "mono_tokens_per_s", "mono_p99_latency_s", "mono_goodput_qps",
    "mono_ttft_attainment", "mono_decode_occupancy",
    "cont_mean_ttft_s", "cont_p95_ttft_s", "cont_mean_tpot_s", "cont_p95_tpot_s",
    "cont_tokens_per_s", "cont_p99_latency_s", "cont_goodput_qps",
    "cont_ttft_attainment", "cont_decode_occupancy", "ttft_ratio",
]
TIMING_CONTINUOUS_FIELDS = ["requests_per_s"]
# Hybrid-fleet TCO entries: photonic / electronic / hybrid fleets serving one
# decode catalog under cost-aware routing.  Every simulated metric — dollar
# costs included — is deterministic; requests_per_s is the only timing field.
DET_HYBRID_FIELDS = ["requests", "fleet", "capacity_qps"]
DET_HYBRID_POINT_FIELDS = [
    "capacity_x", "offered_qps", "completed", "p99_latency_s", "goodput_qps",
    "slo_attainment", "tier0_attainment", "mean_ttft_s", "tokens_per_s",
    "energy_per_request_j", "fleet_cost_usd", "cost_per_request_usd",
]
TIMING_HYBRID_FIELDS = ["requests_per_s"]


class Failure(Exception):
    pass


def rel_diff(a, b):
    denom = max(abs(a), abs(b), 1e-300)
    return abs(a - b) / denom


def check_det(what, baseline, current, fields, det_tol, errors):
    for field in fields:
        if field not in baseline:
            continue  # older baseline without the field: nothing to pin
        if field not in current:
            errors.append(f"{what}: deterministic field '{field}' missing from current")
            continue
        base_v, cur_v = baseline[field], current[field]
        if rel_diff(float(base_v), float(cur_v)) > det_tol:
            errors.append(
                f"{what}: deterministic field '{field}' drifted: "
                f"baseline {base_v} vs current {cur_v}"
            )


def check_kernels(baseline, current, time_tol, det_tol, errors):
    del det_tol  # kernel medians are all timing
    cur_by_name = {r["name"]: r for r in current.get("results", [])}
    for base in baseline.get("results", []):
        name = base["name"]
        cur = cur_by_name.get(name)
        if cur is None:
            errors.append(f"kernels: scenario '{name}' missing from current results")
            continue
        if "median_ms" not in cur:
            errors.append(f"kernels: '{name}' has no median_ms in current results")
            continue
        if cur["median_ms"] > base["median_ms"] * time_tol:
            errors.append(
                f"kernels: '{name}' regressed: median {cur['median_ms']:.4f} ms vs "
                f"baseline {base['median_ms']:.4f} ms (tolerance {time_tol}x)"
            )


def check_observer_overhead(baseline, current, time_tol, det_tol, overhead_tol,
                            errors):
    cur_entries = {o["label"]: o for o in current.get("observer_overhead", [])}
    for base in baseline.get("observer_overhead", []):
        label = base["label"]
        cur = cur_entries.get(label)
        if cur is None:
            errors.append(f"serve: observer_overhead '{label}' missing from current")
            continue
        what = f"serve observer_overhead '{label}'"
        check_det(what, base, cur, DET_OBSERVER_FIELDS, det_tol, errors)
        # Observers must not change results: on-vs-off parity within the
        # current file (not just vs the baseline).
        for metric in ("p99_latency_s", "goodput_qps"):
            off_v, on_v = cur.get(f"off_{metric}"), cur.get(f"on_{metric}")
            if off_v is None or on_v is None:
                continue
            if rel_diff(float(off_v), float(on_v)) > det_tol:
                errors.append(
                    f"{what}: observed run changed {metric}: "
                    f"unobserved {off_v} vs observed {on_v}"
                )
        if "overhead_fraction" in cur and cur["overhead_fraction"] > overhead_tol:
            errors.append(
                f"{what}: observer overhead {cur['overhead_fraction']:.3f} exceeds "
                f"tolerance {overhead_tol}"
            )
        for field in TIMING_OBSERVER_FIELDS:
            if field not in base or field not in cur:
                continue
            if cur[field] * time_tol < base[field]:
                errors.append(
                    f"{what}: {field} regressed: {cur[field]:.0f} vs baseline "
                    f"{base[field]:.0f} (tolerance {time_tol}x)"
                )


def check_timing(what, baseline, current, fields, time_tol, errors):
    """Higher-is-better timing fields: fail when worse than baseline / time_tol."""
    for field in fields:
        if field not in baseline:
            continue
        if field not in current:
            errors.append(f"{what}: timing field '{field}' missing from current")
            continue
        if current[field] * time_tol < baseline[field]:
            errors.append(
                f"{what}: {field} regressed: {current[field]:.2f} vs baseline "
                f"{baseline[field]:.2f} (tolerance {time_tol}x)"
            )


def check_sharded(baseline, current, time_tol, det_tol, errors):
    cur_entries = {s["label"]: s for s in current.get("sharded", [])}
    for base in baseline.get("sharded", []):
        label = base["label"]
        cur = cur_entries.get(label)
        if cur is None:
            errors.append(f"serve: sharded scenario '{label}' missing from current")
            continue
        what = f"serve sharded '{label}'"
        check_det(what, base, cur, DET_SHARDED_FIELDS, det_tol, errors)
        check_timing(what, base, cur, TIMING_SHARDED_FIELDS, time_tol, errors)
        base_points = {p["cells"]: p for p in base.get("points", [])}
        cur_points = {p["cells"]: p for p in cur.get("points", [])}
        for cells, base_point in base_points.items():
            cur_point = cur_points.get(cells)
            if cur_point is None:
                errors.append(f"{what}: cells={cells} point missing from current")
                continue
            point_what = f"{what} cells={cells}"
            check_det(point_what, base_point, cur_point, DET_SHARDED_POINT_FIELDS,
                      det_tol, errors)
            check_timing(point_what, base_point, cur_point,
                         TIMING_SHARDED_POINT_FIELDS, time_tol, errors)
        # In-file parity at zero tolerance: the cells == 1 point ran the same
        # binary in the same process as the serial reference, so its simulated
        # results must be bit-identical (the cells == 1 contract), not merely
        # within det tolerance.
        one = cur_points.get(1)
        if one is not None:
            for point_field, serial_field in (
                    ("completed", "serial_completed"),
                    ("p99_latency_s", "serial_p99_latency_s"),
                    ("goodput_qps", "serial_goodput_qps")):
                if point_field not in one or serial_field not in cur:
                    continue
                if one[point_field] != cur[serial_field]:
                    errors.append(
                        f"{what}: cells=1 broke bit-parity with the serial run: "
                        f"{point_field} {one[point_field]} vs {cur[serial_field]}"
                    )


def check_continuous_batching(baseline, current, time_tol, det_tol, errors):
    cur_entries = {c["label"]: c for c in current.get("continuous_batching", [])}
    for base in baseline.get("continuous_batching", []):
        label = base["label"]
        cur = cur_entries.get(label)
        if cur is None:
            errors.append(f"serve: continuous_batching '{label}' missing from current")
            continue
        what = f"serve continuous_batching '{label}'"
        check_det(what, base, cur, DET_CONTINUOUS_FIELDS, det_tol, errors)
        check_timing(what, base, cur, TIMING_CONTINUOUS_FIELDS, time_tol, errors)
        base_points = base.get("points", [])
        cur_points = cur.get("points", [])
        if len(base_points) != len(cur_points):
            errors.append(
                f"{what}: point count changed "
                f"({len(base_points)} -> {len(cur_points)})"
            )
            continue
        for i, (base_point, cur_point) in enumerate(zip(base_points, cur_points)):
            point_what = f"{what} point {i} ({cur_point.get('capacity_x', '?')}x)"
            check_det(point_what, base_point, cur_point,
                      DET_CONTINUOUS_POINT_FIELDS, det_tol, errors)
            # In-file acceptance gate, independent of the baseline: at every
            # load, continuous batching must not lose to the static-batching
            # baseline on mean TTFT (freeing lanes at token boundaries can
            # only admit waiting prefills earlier).
            mono = cur_point.get("mono_mean_ttft_s")
            cont = cur_point.get("cont_mean_ttft_s")
            if mono is not None and cont is not None and cont > mono:
                errors.append(
                    f"{point_what}: continuous batching lost to monolithic on "
                    f"mean TTFT: {cont} vs {mono}"
                )


def check_hybrid_fleet(baseline, current, time_tol, det_tol, errors):
    cur_entries = {h["label"]: h for h in current.get("hybrid_fleet", [])}
    for base in baseline.get("hybrid_fleet", []):
        label = base["label"]
        cur = cur_entries.get(label)
        if cur is None:
            errors.append(f"serve: hybrid_fleet '{label}' missing from current")
            continue
        what = f"serve hybrid_fleet '{label}'"
        check_det(what, base, cur, DET_HYBRID_FIELDS, det_tol, errors)
        check_timing(what, base, cur, TIMING_HYBRID_FIELDS, time_tol, errors)
        base_points = {(p["fleet_label"], p["capacity_x"]): p
                       for p in base.get("points", [])}
        cur_points = {(p["fleet_label"], p["capacity_x"]): p
                      for p in cur.get("points", [])}
        for key, base_point in base_points.items():
            cur_point = cur_points.get(key)
            if cur_point is None:
                errors.append(f"{what}: point {key} missing from current")
                continue
            check_det(f"{what} point {key}", base_point, cur_point,
                      DET_HYBRID_POINT_FIELDS, det_tol, errors)
        # In-file acceptance gate, independent of the baseline: at every load,
        # the hybrid fleet's tier-0 attainment must not lose to the *worse*
        # homogeneous fleet (adding slots of a second fabric may not help the
        # premium tenant, but cost-aware routing must never leave it worse off
        # than the weaker single-fabric fleet).
        by_capacity = {}
        for point in cur.get("points", []):
            by_capacity.setdefault(point["capacity_x"], {})[
                point["fleet_label"]] = point
        for capacity_x, points in sorted(by_capacity.items()):
            hybrid = [p for name, p in points.items() if "hybrid" in name]
            homogeneous = [p for name, p in points.items() if "hybrid" not in name]
            if not hybrid or not homogeneous:
                continue
            floor = min(p.get("tier0_attainment", 0.0) for p in homogeneous)
            for p in hybrid:
                if p.get("tier0_attainment", 0.0) < floor - 1e-9:
                    errors.append(
                        f"{what} at {capacity_x}x: hybrid fleet "
                        f"'{p['fleet_label']}' tier-0 attainment "
                        f"{p.get('tier0_attainment')} lost to the worse "
                        f"homogeneous fleet's {floor}"
                    )


def check_event_queue(baseline, current, time_tol, errors):
    cur_entries = {q["label"]: q for q in current.get("event_queue", [])}
    for base in baseline.get("event_queue", []):
        label = base["label"]
        cur = cur_entries.get(label)
        if cur is None:
            errors.append(f"serve: event_queue '{label}' missing from current")
            continue
        check_timing(f"serve event_queue '{label}'", base, cur, ["ops_per_s"],
                     time_tol, errors)


def check_serve(baseline, current, time_tol, det_tol, errors):
    cur_headlines = {h["fleet_label"]: h for h in current.get("headlines", [])}
    for base in baseline.get("headlines", []):
        label = base["fleet_label"]
        cur = cur_headlines.get(label)
        if cur is None:
            errors.append(f"serve: headline '{label}' missing from current results")
            continue
        check_det(f"serve headline '{label}'", base, cur, DET_HEADLINE_FIELDS,
                  det_tol, errors)
        for field in TIMING_HEADLINE_FIELDS:
            if field not in base:
                continue
            if field not in cur:
                errors.append(
                    f"serve headline '{label}': timing field '{field}' missing "
                    f"from current"
                )
                continue
            if cur[field] * time_tol < base[field]:
                errors.append(
                    f"serve headline '{label}': {field} regressed: "
                    f"{cur[field]:.0f} vs baseline {base[field]:.0f} "
                    f"(tolerance {time_tol}x)"
                )

    cur_closed = {c["label"]: c for c in current.get("closed_loop", [])}
    for base in baseline.get("closed_loop", []):
        label = base["label"]
        cur = cur_closed.get(label)
        if cur is None:
            errors.append(f"serve: closed-loop scenario '{label}' missing from current")
            continue
        what = f"serve closed-loop '{label}'"
        check_det(what, base, cur, DET_CLOSED_LOOP_FIELDS, det_tol, errors)
        for field in TIMING_HEADLINE_FIELDS:
            if field not in base:
                continue
            if field not in cur:
                errors.append(f"{what}: timing field '{field}' missing from current")
                continue
            if cur[field] * time_tol < base[field]:
                errors.append(
                    f"{what}: {field} regressed: {cur[field]:.0f} vs baseline "
                    f"{base[field]:.0f} (tolerance {time_tol}x)"
                )

    # Both campaign-shaped sections share one checker: the ordinary saturation
    # sweeps and the overload_faults robustness sweep (shed / retry /
    # availability counters gated at det tolerance like every other
    # deterministic field).
    for section in ("campaigns", "overload_faults"):
        cur_campaigns = {c["campaign"]: c for c in current.get(section, [])}
        for base_campaign in baseline.get(section, []):
            name = base_campaign["campaign"]
            cur_campaign = cur_campaigns.get(name)
            if cur_campaign is None:
                errors.append(
                    f"serve: {section} campaign '{name}' missing from current results"
                )
                continue
            base_points = base_campaign.get("points", [])
            cur_points = cur_campaign.get("points", [])
            if len(base_points) != len(cur_points):
                errors.append(
                    f"serve campaign '{name}': point count changed "
                    f"({len(base_points)} -> {len(cur_points)})"
                )
                continue
            for i, (base, cur) in enumerate(zip(base_points, cur_points)):
                what = f"serve campaign '{name}' point {i}"
                for key in ("fleet", "scheduler", "max_batch", "autoscaler",
                            "admission", "fault_mtbf_s"):
                    if key in base and base.get(key) != cur.get(key):
                        errors.append(
                            f"{what}: grid key '{key}' changed "
                            f"({base.get(key)} -> {cur.get(key)})"
                        )
                check_det(what, base, cur, DET_POINT_FIELDS, det_tol, errors)
                base_tenants = base.get("tenants", [])
                cur_tenants = {t["name"]: t for t in cur.get("tenants", [])}
                for tenant in base_tenants:
                    cur_tenant = cur_tenants.get(tenant["name"])
                    if cur_tenant is None:
                        errors.append(f"{what}: tenant '{tenant['name']}' missing")
                        continue
                    check_det(f"{what} tenant '{tenant['name']}'", tenant, cur_tenant,
                              DET_TENANT_FIELDS, det_tol, errors)


def run_check(baseline, current, time_tol, det_tol, overhead_tol=0.35):
    kind = baseline.get("bench")
    if current.get("bench") != kind:
        return [f"bench kind mismatch: baseline '{kind}' vs current "
                f"'{current.get('bench')}'"]
    errors = []
    if kind == "kernels":
        check_kernels(baseline, current, time_tol, det_tol, errors)
    elif kind == "serve":
        check_serve(baseline, current, time_tol, det_tol, errors)
        check_observer_overhead(baseline, current, time_tol, det_tol, overhead_tol,
                                errors)
        check_sharded(baseline, current, time_tol, det_tol, errors)
        check_continuous_batching(baseline, current, time_tol, det_tol, errors)
        check_hybrid_fleet(baseline, current, time_tol, det_tol, errors)
        check_event_queue(baseline, current, time_tol, errors)
    else:
        errors.append(f"unknown bench kind: {kind!r}")
    return errors


def inject_regression(data):
    """Perturb one timing and one deterministic metric far past any band."""
    perturbed = copy.deepcopy(data)
    if perturbed.get("bench") == "kernels":
        perturbed["results"][0]["median_ms"] *= 100.0
    else:
        perturbed["headlines"][0]["requests_per_s"] /= 100.0
        perturbed["campaigns"][0]["points"][0]["p99_latency_s"] *= 1.5
        if perturbed.get("closed_loop"):
            perturbed["closed_loop"][0]["p99_session_s"] *= 1.5
        if perturbed.get("overload_faults"):
            perturbed["overload_faults"][0]["points"][0]["availability"] *= 0.5
    return perturbed


def self_test(baseline, time_tol, det_tol):
    clean = run_check(baseline, baseline, time_tol, det_tol)
    if clean:
        print("bench_check self-test FAILED: baseline does not pass against itself:")
        for e in clean:
            print(f"  {e}")
        return 1
    dirty = run_check(baseline, inject_regression(baseline), time_tol, det_tol)
    if not dirty:
        print("bench_check self-test FAILED: injected regression was not detected")
        return 1
    if baseline.get("closed_loop"):
        # The closed-loop section must be gated on its own, not ride along on
        # the headline/campaign perturbations.
        closed_only = copy.deepcopy(baseline)
        closed_only["closed_loop"][0]["p99_session_s"] *= 1.5
        if not run_check(baseline, closed_only, time_tol, det_tol):
            print("bench_check self-test FAILED: closed-loop regression was not detected")
            return 1
    if baseline.get("overload_faults"):
        # The overload_faults section must be gated on its own too: an
        # availability regression (more down slot-time than the seeded fault
        # process should produce) has to trip the gate by itself.
        avail_only = copy.deepcopy(baseline)
        avail_only["overload_faults"][0]["points"][0]["availability"] *= 0.5
        if not run_check(baseline, avail_only, time_tol, det_tol):
            print("bench_check self-test FAILED: overload_faults availability "
                  "regression was not detected")
            return 1
    if baseline.get("sharded"):
        # A sharded point's simulated result drifting must trip the gate by
        # itself (det band) ...
        drifted = copy.deepcopy(baseline)
        drifted["sharded"][0]["points"][-1]["p99_latency_s"] *= 1.5
        if not run_check(baseline, drifted, time_tol, det_tol):
            print("bench_check self-test FAILED: sharded point drift was not detected")
            return 1
        # ... and so must a cells=1 result that is no longer bit-identical to
        # the serial run, even when the drift is far below det tolerance.
        parity = copy.deepcopy(baseline)
        for point in parity["sharded"][0].get("points", []):
            if point.get("cells") == 1:
                point["p99_latency_s"] *= 1.0 + 1e-12
        if not run_check(baseline, parity, time_tol, det_tol):
            print("bench_check self-test FAILED: sharded cells=1 parity break "
                  "was not detected")
            return 1
        # A collapsed speedup (e.g. the cells all serialised behind a lock)
        # must trip the timing band.
        slow = copy.deepcopy(baseline)
        for point in slow["sharded"][0].get("points", []):
            point["speedup"] /= 100.0
            point["requests_per_s"] /= 100.0
        if not run_check(baseline, slow, time_tol, det_tol):
            print("bench_check self-test FAILED: sharded speedup collapse "
                  "was not detected")
            return 1
    if baseline.get("continuous_batching"):
        # A drifting decode metric must trip the det band by itself ...
        drifted = copy.deepcopy(baseline)
        drifted["continuous_batching"][0]["points"][0]["cont_mean_ttft_s"] *= 1.5
        if not run_check(baseline, drifted, time_tol, det_tol):
            print("bench_check self-test FAILED: continuous_batching drift "
                  "was not detected")
            return 1
        # ... and the in-file TTFT gate must fire on its own: a file whose
        # continuous mode lost to monolithic fails even as its own baseline
        # (no det drift to ride on).
        lost = copy.deepcopy(baseline)
        for point in lost["continuous_batching"][0].get("points", []):
            point["cont_mean_ttft_s"] = point.get("mono_mean_ttft_s", 1.0) * 2.0
        if not run_check(lost, lost, time_tol, det_tol):
            print("bench_check self-test FAILED: continuous batching losing to "
                  "monolithic on TTFT was not detected")
            return 1
    if baseline.get("hybrid_fleet"):
        # A drifting dollar metric must trip the det band by itself ...
        drifted = copy.deepcopy(baseline)
        drifted["hybrid_fleet"][0]["points"][0]["cost_per_request_usd"] *= 1.5
        if not run_check(baseline, drifted, time_tol, det_tol):
            print("bench_check self-test FAILED: hybrid_fleet cost drift "
                  "was not detected")
            return 1
        # ... and the in-file tier-0 gate must fire on its own: a file whose
        # hybrid fleet lost to the worse homogeneous fleet fails even as its
        # own baseline (no det drift to ride on).
        lost = copy.deepcopy(baseline)
        for point in lost["hybrid_fleet"][0].get("points", []):
            if "hybrid" in point.get("fleet_label", ""):
                point["tier0_attainment"] = -1.0
        if not run_check(lost, lost, time_tol, det_tol):
            print("bench_check self-test FAILED: hybrid fleet losing tier-0 "
                  "attainment to the worse homogeneous fleet was not detected")
            return 1
    if baseline.get("event_queue"):
        slow_queue = copy.deepcopy(baseline)
        slow_queue["event_queue"][0]["ops_per_s"] /= 100.0
        if not run_check(baseline, slow_queue, time_tol, det_tol):
            print("bench_check self-test FAILED: event_queue regression "
                  "was not detected")
            return 1
    if baseline.get("observer_overhead"):
        # Runaway observer overhead must trip the gate by itself ...
        slow_observed = copy.deepcopy(baseline)
        slow_observed["observer_overhead"][0]["overhead_fraction"] = 10.0
        if not run_check(baseline, slow_observed, time_tol, det_tol):
            print("bench_check self-test FAILED: observer overhead regression "
                  "was not detected")
            return 1
        # ... and so must an observed run that changed the simulated results.
        parity_broken = copy.deepcopy(baseline)
        parity_broken["observer_overhead"][0]["on_p99_latency_s"] = (
            parity_broken["observer_overhead"][0].get("off_p99_latency_s", 1.0) * 1.5)
        if not run_check(baseline, parity_broken, time_tol, det_tol):
            print("bench_check self-test FAILED: observer result-parity break "
                  "was not detected")
            return 1
    # Provenance is context, never a gated value: a baseline produced by a
    # different toolchain must still pass on its numbers.
    other_toolchain = copy.deepcopy(baseline)
    other_toolchain["provenance"] = {"schema_version": 0, "compiler": "other 0.0",
                                     "build_type": "debug", "threads": 1}
    if run_check(baseline, other_toolchain, time_tol, det_tol):
        print("bench_check self-test FAILED: provenance differences were gated")
        return 1
    print(f"bench_check self-test OK: baseline passes, injected regression "
          f"caught ({len(dirty)} finding(s))")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True, action="append",
                        help="committed baseline JSON (repeat to check several "
                             "baseline/current pairs in one invocation)")
    parser.add_argument("--current", action="append",
                        help="freshly produced bench JSON (repeat to match "
                             "each --baseline, paired in order)")
    parser.add_argument("--time-tol", type=float, default=4.0,
                        help="allowed slowdown factor for timing metrics (default 4.0)")
    parser.add_argument("--det-tol", type=float, default=1e-3,
                        help="relative tolerance for deterministic metrics (default 1e-3)")
    parser.add_argument("--overhead-tol", type=float, default=0.35,
                        help="allowed observer_overhead fraction (default 0.35)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate passes the baseline against itself and "
                             "fails an injected regression")
    args = parser.parse_args()

    baselines = []
    for path in args.baseline:
        with open(path) as f:
            baselines.append(json.load(f))

    if args.self_test:
        rc = 0
        for baseline in baselines:
            rc = max(rc, self_test(baseline, args.time_tol, args.det_tol))
        sys.exit(rc)

    if not args.current:
        parser.error("--current is required unless --self-test is given")
    if len(args.current) != len(args.baseline):
        parser.error(f"--baseline given {len(args.baseline)} time(s) but --current "
                     f"{len(args.current)} time(s); they pair in order")

    # Check every pair and report every failing gate before exiting nonzero,
    # so one CI run surfaces the complete regression list.
    total_errors = 0
    for base_path, cur_path, baseline in zip(args.baseline, args.current, baselines):
        with open(cur_path) as f:
            current = json.load(f)
        errors = run_check(baseline, current, args.time_tol, args.det_tol,
                           args.overhead_tol)
        if errors:
            total_errors += len(errors)
            print(f"bench_check: {len(errors)} regression(s) vs {base_path}:")
            for e in errors:
                print(f"  {e}")
        else:
            print(f"bench_check OK: {cur_path} within tolerance of {base_path}")
    if total_errors:
        print(f"bench_check: {total_errors} total regression(s) across "
              f"{len(args.baseline)} pair(s)")
        sys.exit(1)


if __name__ == "__main__":
    main()
