#!/usr/bin/env python3
"""Chrome trace_event validator for lumos serve traces.

Checks that a trace produced by `lumos_cli serve --trace-out` (or any
LifecycleTracer export) is well-formed enough for chrome://tracing / Perfetto
to load it, and that the span structure the tracer promises actually holds:

* the file is valid JSON with a "traceEvents" array;
* every event has the required keys (name, ph, ts, pid, tid; metadata "M"
  events are exempt from ts);
* complete ("X") events carry a non-negative dur;
* async nestable spans balance: every "b" (begin) keyed by (cat, id) is
  closed by exactly one "e" (end) at a time >= the begin, with no "e" or "n"
  (instant) for a span that was never opened — the tracer's saturation
  semantics promise whole spans or nothing, so an unbalanced span is a bug;
* flow steps ("f") attach to a flow that was started by an earlier-or-equal
  "s" with the same id.

`--expect <name>` asserts that at least one event with that exact name exists
(e.g. --expect shed --expect retry --expect batch-abort for a faults +
retries + admission run).  Exits non-zero, listing every finding, when the
trace is malformed.

Usage:
  validate_trace.py trace.json [--expect name]...

Stdlib only: runs as a ctest over a small CLI round trip.
"""

import argparse
import json
import sys

REQUIRED_KEYS = ("name", "ph", "pid", "tid")
KNOWN_PHASES = {"M", "X", "b", "n", "e", "s", "f", "i", "B", "E", "C", "m"}


def validate(trace, expects):
    errors = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace has no 'traceEvents' array"]
    if not events:
        errors.append("'traceEvents' is empty")

    open_spans = {}    # (cat, id) -> begin ts of the currently open span
    closed_spans = 0
    flow_starts = {}   # id -> earliest "s" ts
    names = set()
    for i, ev in enumerate(events):
        what = f"event {i}"
        if not isinstance(ev, dict):
            errors.append(f"{what}: not an object")
            continue
        missing = [k for k in REQUIRED_KEYS if k not in ev]
        if missing:
            errors.append(f"{what}: missing required key(s) {missing}")
            continue
        what = f"event {i} ({ev['ph']!r} {ev['name']!r})"
        names.add(ev["name"])
        ph = ev["ph"]
        if ph not in KNOWN_PHASES:
            errors.append(f"{what}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue  # metadata carries no timestamp
        if "ts" not in ev:
            errors.append(f"{what}: missing 'ts'")
            continue
        ts = ev["ts"]
        if ph == "X":
            if ev.get("dur", -1) < 0:
                errors.append(f"{what}: complete event needs dur >= 0")
        elif ph in ("b", "n", "e"):
            if "id" not in ev:
                errors.append(f"{what}: async event without 'id'")
                continue
            key = (ev.get("cat", ""), ev["id"])
            if ph == "b":
                if key in open_spans:
                    errors.append(f"{what}: span {key} begun twice")
                else:
                    open_spans[key] = ts
            elif key not in open_spans:
                errors.append(f"{what}: span {key} was never opened")
            elif ph == "e":
                if ts < open_spans[key]:
                    errors.append(f"{what}: span {key} ends before it begins")
                del open_spans[key]
                closed_spans += 1
        elif ph in ("s", "f"):
            if "id" not in ev:
                errors.append(f"{what}: flow event without 'id'")
                continue
            fid = ev["id"]
            if ph == "s":
                flow_starts[fid] = min(ts, flow_starts.get(fid, ts))
            elif fid not in flow_starts or ts < flow_starts[fid]:
                errors.append(f"{what}: flow step with no earlier start")

    for key, ts in sorted(open_spans.items()):
        errors.append(f"span {key} opened at ts {ts} but never closed")
    for name in expects:
        if name not in names:
            errors.append(f"expected at least one event named {name!r}")
    return errors, closed_spans, len(events)


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument("--expect", action="append", default=[],
                        help="require at least one event with this name "
                             "(repeatable)")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_trace: cannot load {args.trace}: {e}")
        sys.exit(1)

    result = validate(trace, args.expect)
    if isinstance(result, list):  # no traceEvents at all
        errors, closed, total = result, 0, 0
    else:
        errors, closed, total = result
    if errors:
        print(f"validate_trace: {args.trace}: {len(errors)} finding(s):")
        for e in errors:
            print(f"  {e}")
        sys.exit(1)
    print(f"validate_trace OK: {args.trace}: {total} events, "
          f"{closed} balanced request spans")


if __name__ == "__main__":
    main()
