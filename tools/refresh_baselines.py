#!/usr/bin/env python3
"""Regenerate the committed smoke bench baselines (bench/baselines/).

Growing a bench adds sections the committed baselines do not carry yet (the
gate skips sections absent from the baseline), so after landing a new section
the baselines must be refreshed for CI to start gating it.  A blind overwrite
would also silently absorb *regressions* in the pre-existing sections, so this
tool verifies before it writes:

1. run the smoke benches from --build-dir into a scratch directory;
2. check every committed baseline against its fresh run with bench_check at
   --det-tol 0 (pre-existing deterministic sections must be bit-identical;
   the timing band is disabled — wall clocks differ per host) — any drift
   aborts the refresh with the full finding list;
3. run bench_check --self-test against each fresh file (the gate must pass it
   against itself and catch injected regressions, new sections included);
4. only then overwrite the committed baselines.

Pass --det-tol to loosen step 2 when a refresh intentionally changes
pre-existing numbers (say, a cost-model recalibration): the tool then reports
what drifted but proceeds, leaving the diff for review.

Usage:
  python3 tools/refresh_baselines.py [--build-dir build]
      [--baselines bench/baselines] [--det-tol 0.0]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_check import run_check, self_test  # noqa: E402

BENCHES = [
    ("bench_kernels", "BENCH_kernels_smoke.json"),
    ("bench_serve", "BENCH_serve_smoke.json"),
]


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory holding the bench binaries")
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory of committed smoke baselines")
    parser.add_argument("--det-tol", type=float, default=0.0,
                        help="tolerance for pre-existing deterministic sections "
                             "(default 0.0: bit-identical or abort)")
    args = parser.parse_args()

    failures = 0
    with tempfile.TemporaryDirectory(prefix="bench_refresh_") as scratch:
        fresh_paths = {}
        for binary, name in BENCHES:
            exe = os.path.join(args.build_dir, binary)
            if not os.path.exists(exe):
                print(f"refresh_baselines: {exe} not built; run "
                      f"`cmake --build {args.build_dir} -j` first")
                return 1
            out = os.path.join(scratch, name)
            print(f"refresh_baselines: running {binary} --smoke ...")
            subprocess.run([exe, "--smoke", "--out", out], check=True,
                           stdout=subprocess.DEVNULL)
            fresh_paths[name] = out

        for _, name in BENCHES:
            committed_path = os.path.join(args.baselines, name)
            with open(fresh_paths[name]) as f:
                fresh = json.load(f)
            if not os.path.exists(committed_path):
                print(f"refresh_baselines: {committed_path} is new (no "
                      f"pre-existing sections to verify)")
            else:
                with open(committed_path) as f:
                    committed = json.load(f)
                # The committed file drives the section walk, so sections it
                # does not carry yet (the ones this refresh introduces) are
                # not compared; the timing band is effectively off.
                errors = run_check(committed, fresh, time_tol=1e18,
                                   det_tol=args.det_tol)
                if errors:
                    failures += len(errors)
                    print(f"refresh_baselines: {name}: {len(errors)} "
                          f"pre-existing section(s) drifted at "
                          f"det-tol {args.det_tol}:")
                    for e in errors:
                        print(f"  {e}")
                    if args.det_tol == 0.0:
                        continue  # abort this file (and the run) below
                    print(f"refresh_baselines: {name}: --det-tol "
                          f"{args.det_tol} given; proceeding despite drift")
                else:
                    print(f"refresh_baselines: {name}: pre-existing sections "
                          f"bit-identical to the committed baseline")

        if failures and args.det_tol == 0.0:
            print(f"refresh_baselines: aborting without overwriting "
                  f"({failures} drift finding(s); pass --det-tol to accept "
                  f"an intentional change)")
            return 1

        for _, name in BENCHES:
            with open(fresh_paths[name]) as f:
                fresh = json.load(f)
            # The gate must pass the fresh file against itself and catch
            # injected regressions — new sections included — before it
            # becomes the thing CI trusts.
            if self_test(fresh, time_tol=4.0, det_tol=1e-3):
                print(f"refresh_baselines: {name}: fresh file failed the "
                      f"bench_check self-test; not overwriting")
                return 1

        os.makedirs(args.baselines, exist_ok=True)
        for _, name in BENCHES:
            committed_path = os.path.join(args.baselines, name)
            os.replace(fresh_paths[name], committed_path)
            print(f"refresh_baselines: wrote {committed_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
