// Regenerates the paper's headline claims (abstract + Section VI):
//   TRON : >= 14x throughput, >= 8x energy efficiency vs LLM accelerators
//   GHOST: >= 10.2x throughput, >= 3.8x energy efficiency vs GNN accelerators
//   Combined (abstract): both achieve >= 10.2x / >= 3.8x.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "arch/accelerator.hpp"
#include "sim/figures.hpp"

namespace {

using namespace lumos;

void print_claims() {
  const sim::HeadlineClaims h = sim::run_headline_claims(arch::TronAdapter(tron::default_tron_config()),
                                                         arch::GhostAdapter(ghost::default_ghost_config()));
  Table t("Headline claims: paper vs this reproduction (minimum over all workload/baseline pairs)");
  t.add_row({"claim", "paper", "measured", "holds"});
  const auto row = [&](const char* name, double paper, double measured) {
    t.add_row({name, Table::num(paper, 1) + "x", Table::num(measured, 2) + "x",
               measured >= paper ? "yes" : "NO"});
  };
  row("TRON min throughput gain", 14.0, h.tron_min_throughput_gain);
  row("TRON min EPB gain", 8.0, h.tron_min_epb_gain);
  row("GHOST min throughput gain", 10.2, h.ghost_min_throughput_gain);
  row("GHOST min EPB gain", 3.8, h.ghost_min_epb_gain);
  row("Combined min throughput gain", 10.2,
      std::min(h.tron_min_throughput_gain, h.ghost_min_throughput_gain));
  row("Combined min EPB gain", 3.8, std::min(h.tron_min_epb_gain, h.ghost_min_epb_gain));
  t.print(std::cout);
  std::cout << '\n';
}

void BM_HeadlineClaims(benchmark::State& state) {
  const arch::TronAdapter tron_acc(tron::default_tron_config());
  const arch::GhostAdapter ghost_acc(ghost::default_ghost_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_headline_claims(tron_acc, ghost_acc));
  }
}
BENCHMARK(BM_HeadlineClaims)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_claims();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
