// Ablation C (DESIGN.md): the eq. (3) score-path decomposition.
//
//   Q.K^T = (Q.W_K^T).X^T          (paper Section V.C)
//
// Compares the all-optical decomposed ordering against the naive ordering
// that detects K, transposes digitally, and re-imprints — per attention head,
// across the LLM model zoo: conversion counts, conversion energy, latency.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "nn/transformer.hpp"
#include "tron/attention_head.hpp"

namespace {

using namespace lumos;
using namespace lumos::tron;

void print_ablation() {
  const TronConfig config = default_tron_config();
  const AttentionHeadUnit head(config, {});
  Table t("Ablation C: eq. (3) decomposed vs naive Q.K^T per attention head");
  t.add_row({"model", "path", "ADC convs", "DAC convs", "conv energy", "latency"});
  for (const nn::TransformerConfig& model : nn::llm_model_zoo()) {
    const auto dec =
        head.decomposed_score_costs(model.seq_len, model.d_model, model.head_dim());
    const auto naive = head.naive_score_costs(model.seq_len, model.d_model, model.head_dim());
    t.add_row({model.name, "decomposed", std::to_string(dec.adc_conversions),
               std::to_string(dec.dac_conversions),
               Table::num(dec.energy_j * 1e6, 2) + " uJ",
               Table::num(units::to_us(dec.latency_s), 3) + " us"});
    t.add_row({"", "naive", std::to_string(naive.adc_conversions),
               std::to_string(naive.dac_conversions),
               Table::num(naive.energy_j * 1e6, 2) + " uJ",
               Table::num(units::to_us(naive.latency_s), 3) + " us"});
    t.add_row({"", "saved",
               std::to_string(naive.adc_conversions - dec.adc_conversions),
               std::to_string(naive.dac_conversions - dec.dac_conversions),
               Table::num((naive.energy_j - dec.energy_j) * 1e6, 2) + " uJ", "-"});
  }
  t.print(std::cout);
  std::cout << "The decomposition trades extra optical passes (free at the symbol rate)\n"
               "for the elimination of the K matrix's O/E/O round trip.\n\n";
}

void BM_DecomposedCosts(benchmark::State& state) {
  const AttentionHeadUnit head(default_tron_config(), {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(head.decomposed_score_costs(128, 768, 64));
  }
}
BENCHMARK(BM_DecomposedCosts);

void BM_FunctionalHeadForward(benchmark::State& state) {
  const AttentionHeadUnit head(default_tron_config(), {});
  Rng data(1);
  const std::size_t l = static_cast<std::size_t>(state.range(0));
  nn::Matrix x(l, 32), wq(32, 8), wk(32, 8), wv(32, 8);
  x.fill_uniform(data, -1.0, 1.0);
  wq.fill_normal(data, 0.18);
  wk.fill_normal(data, 0.18);
  wv.fill_normal(data, 0.18);
  Rng rng(2);
  const phot::AnalogNoiseConfig noise;
  for (auto _ : state) {
    benchmark::DoNotOptimize(head.forward(x, wq, wk, wv, rng, noise));
  }
}
BENCHMARK(BM_FunctionalHeadForward)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
