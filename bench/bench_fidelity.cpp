// Fidelity study: int8 functional accuracy of the photonic datapath against
// the exact reference implementations, with each analog non-ideality toggled
// independently (DESIGN.md validation strategy).
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "ghost/accelerator.hpp"
#include "tron/accelerator.hpp"

namespace {

using namespace lumos;

phot::AnalogNoiseConfig variant(bool dac, bool tuning, bool xtalk, bool det, bool adc) {
  phot::AnalogNoiseConfig n;
  n.dac_quantization = dac;
  n.mr_tuning_error = tuning;
  n.heterodyne_crosstalk = xtalk;
  n.detector_noise = det;
  n.adc_quantization = adc;
  return n;
}

void print_matmul_fidelity() {
  const tron::TronConfig cfg = tron::default_tron_config();
  const phot::MrBankArray array(cfg.bank, cfg.array_cols);
  Rng data(1);
  nn::Matrix a(16, 48), b(48, 16);
  a.fill_uniform(data, -1.0, 1.0);
  b.fill_uniform(data, -1.0, 1.0);
  const nn::Matrix exact = a.matmul(b);

  Table t("Photonic MatMul relative error by noise source (16x48x16, mean of 10 trials)");
  t.add_row({"noise configuration", "relative error"});
  const auto probe = [&](const char* name, const phot::AnalogNoiseConfig& n) {
    Rng rng(7);
    double err = 0.0;
    for (int trial = 0; trial < 10; ++trial) {
      err += tron::photonic_matmul(a, b, array, rng, n).relative_error(exact);
    }
    t.add_row({name, Table::num(err / 10.0, 5)});
  };
  probe("none (ideal devices)", variant(false, false, false, false, false));
  probe("DAC quantisation only", variant(true, false, false, false, false));
  probe("MR tuning error only", variant(false, true, false, false, false));
  probe("heterodyne crosstalk only", variant(false, false, true, false, false));
  probe("detector noise only", variant(false, false, false, true, false));
  probe("ADC quantisation only", variant(false, false, false, false, true));
  probe("all sources", variant(true, true, true, true, true));
  t.print(std::cout);
}

void print_end_to_end_fidelity() {
  Table t("End-to-end functional fidelity vs exact reference (full noise)");
  t.add_row({"model", "relative error"});

  // TRON: tiny transformer.
  {
    const tron::TronAccelerator acc(tron::default_tron_config());
    const auto model = nn::tiny_transformer(8);
    const auto weights = nn::TransformerWeights::random(model, 3);
    Rng data(4);
    nn::Matrix x(8, model.d_model);
    x.fill_uniform(data, -1.0, 1.0);
    Rng rng(5);
    const nn::Matrix got = acc.forward(weights, x, rng, phot::AnalogNoiseConfig{});
    const nn::Matrix want = nn::reference_forward(weights, x);
    t.add_row({"TRON / tiny transformer", Table::num(got.relative_error(want), 4)});
  }
  // GHOST: each GNN family on the tiny dataset.
  {
    const ghost::GhostAccelerator acc(ghost::default_ghost_config());
    const auto ds = graph::tiny_dataset();
    for (const auto& model : gnn::gnn_model_zoo()) {
      const auto weights = gnn::GnnModelWeights::random(model, ds, 6);
      Rng data(7);
      nn::Matrix x(ds.graph.node_count(), ds.feature_dim);
      x.fill_uniform(data, -1.0, 1.0);
      Rng rng(8);
      const nn::Matrix got = acc.forward(weights, ds.graph, x, rng, phot::AnalogNoiseConfig{});
      const nn::Matrix want = gnn::reference_forward(weights, ds.graph, x);
      t.add_row({"GHOST / " + model.name, Table::num(got.relative_error(want), 4)});
    }
  }
  t.print(std::cout);
  std::cout << '\n';
}

void print_precision_sweep() {
  // Paper Section VI: "employing 8-bit model quantization yields algorithmic
  // accuracy comparable to models utilizing full (32-bit) precision".
  // Reproduced as the converter-resolution sweep: photonic MatMul error and
  // GNN argmax agreement vs DAC/ADC bit depth.
  Table t("Precision sweep: analog fidelity vs converter resolution");
  t.add_row({"bits", "matmul rel. error", "GCN argmax agreement"});
  const auto ds = graph::tiny_dataset();
  const auto weights = gnn::GnnModelWeights::random(gnn::gcn_model(), ds, 40);
  Rng data(41);
  nn::Matrix xg(ds.graph.node_count(), ds.feature_dim);
  xg.fill_uniform(data, -1.0, 1.0);
  nn::Matrix a(12, 32), b(32, 12);
  a.fill_uniform(data, -1.0, 1.0);
  b.fill_uniform(data, -1.0, 1.0);
  const nn::Matrix exact_mm = a.matmul(b);

  for (const int bits : {4, 6, 8, 10}) {
    tron::TronConfig tc = tron::default_tron_config();
    tc.bank.dac.bits = bits;
    tc.bank.adc.bits = bits;
    ghost::GhostConfig gc = ghost::default_ghost_config();
    gc.bank.dac.bits = bits;
    gc.bank.adc.bits = bits;
    try {
      const phot::MrBankArray array(tc.bank, tc.array_cols);
      const ghost::GhostAccelerator ghost_acc(gc);
      Rng rng(42);
      const phot::AnalogNoiseConfig noise;
      double mm_err = 0.0;
      for (int trial = 0; trial < 5; ++trial) {
        mm_err += tron::photonic_matmul(a, b, array, rng, noise).relative_error(exact_mm);
      }
      const nn::Matrix got = ghost_acc.forward(weights, ds.graph, xg, rng, noise);
      const nn::Matrix want = gnn::reference_forward(weights, ds.graph, xg);
      t.add_row({std::to_string(bits), Table::num(mm_err / 5.0, 4),
                 Table::num(nn::argmax_agreement(got, want), 3)});
    } catch (const InvalidArgument&) {
      // The laser sizing rejects detection targets above the RIN ceiling —
      // the physical reason analog optical compute tops out near 8 bits.
      t.add_row({std::to_string(bits), "RIN-limited (infeasible)", "-"});
    }
  }
  t.print(std::cout);
  std::cout << "8-bit converters sit at the knee: finer detection is RIN-limited while\n"
               "coarser quantisation dominates the error - matching the paper's choice.\n\n";
}

void BM_PhotonicMatmulNoisy(benchmark::State& state) {
  const tron::TronConfig cfg = tron::default_tron_config();
  const phot::MrBankArray array(cfg.bank, cfg.array_cols);
  const auto dim = static_cast<std::size_t>(state.range(0));
  Rng data(9);
  nn::Matrix a(dim, dim), b(dim, dim);
  a.fill_uniform(data, -1.0, 1.0);
  b.fill_uniform(data, -1.0, 1.0);
  Rng rng(10);
  const phot::AnalogNoiseConfig noise;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tron::photonic_matmul(a, b, array, rng, noise));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PhotonicMatmulNoisy)->Arg(8)->Arg(16)->Arg(32)->Complexity()
    ->Unit(benchmark::kMillisecond);

void BM_GhostFunctionalGcn(benchmark::State& state) {
  const ghost::GhostAccelerator acc(ghost::default_ghost_config());
  const auto ds = graph::tiny_dataset();
  const auto weights = gnn::GnnModelWeights::random(gnn::gcn_model(), ds, 11);
  Rng data(12);
  nn::Matrix x(ds.graph.node_count(), ds.feature_dim);
  x.fill_uniform(data, -1.0, 1.0);
  Rng rng(13);
  const phot::AnalogNoiseConfig noise;
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.forward(weights, ds.graph, x, rng, noise));
  }
}
BENCHMARK(BM_GhostFunctionalGcn)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_matmul_fidelity();
  print_end_to_end_fidelity();
  print_precision_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
