// Scaling studies beyond the paper's fixed workloads:
//   * GHOST on RMAT power-law graphs of growing scale (where does the
//     aggregate phase take over?),
//   * TRON batched inference (how batching amortises the weight stream),
//   * TRON autoregressive decoding (the memory-bound generation regime the
//     paper's LLM motivation implies).
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "ghost/accelerator.hpp"
#include "tron/accelerator.hpp"

namespace {

using namespace lumos;

void print_graph_scaling() {
  const ghost::GhostAccelerator acc(ghost::default_ghost_config());
  const auto model = gnn::graphsage_model();
  Table t("GHOST on RMAT graphs (GraphSAGE, 64 features, power-law degrees)");
  t.add_row({"scale", "nodes", "edges", "latency", "GOPS", "agg share"});
  for (const std::size_t scale : {10u, 12u, 14u, 16u}) {
    graph::GraphDataset ds;
    ds.name = "rmat-" + std::to_string(scale);
    ds.graph = graph::rmat(scale, 8, {}, scale);
    ds.feature_dim = 64;
    ds.class_count = 16;
    const PerfReport r = acc.estimate(model, ds);
    t.add_row({std::to_string(scale), std::to_string(ds.graph.node_count()),
               std::to_string(ds.graph.edge_count()),
               Table::num(units::to_us(r.latency_s), 1) + " us",
               Table::num(units::to_gops(r.ops_per_second()), 0),
               Table::num(100.0 * r.breakdown.aggregation_time_s /
                              std::max(r.latency_s, 1e-30),
                          1) +
                   " %"});
  }
  t.print(std::cout);

  // A published-dimension large graph for context.
  const graph::GraphDataset arxiv = graph::synthetic_arxiv();
  const PerfReport r = acc.estimate(gnn::gcn_model(), arxiv);
  std::cout << "GHOST on GCN/" << arxiv.name << " (" << arxiv.graph.node_count()
            << " nodes, " << arxiv.graph.edge_count()
            << " edges): " << Table::num(units::to_us(r.latency_s), 1) << " us, "
            << Table::num(units::to_gops(r.ops_per_second()), 0) << " GOPS, "
            << Table::num(units::to_pj(r.energy_per_bit_j()), 3) << " pJ/b\n\n";
}

void print_batch_scaling() {
  const tron::TronAccelerator acc(tron::default_tron_config());
  const auto model = nn::bert_base();
  Table t("TRON batched inference (BERT-base): weight stream amortisation");
  t.add_row({"batch", "latency/seq", "GOPS", "EPB", "memory stall share"});
  for (const std::size_t batch : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const PerfReport r = acc.estimate_batch(model, batch);
    t.add_row({std::to_string(batch),
               Table::num(units::to_us(r.latency_s / static_cast<double>(batch)), 1) + " us",
               Table::num(units::to_gops(r.ops_per_second()), 0),
               Table::num(units::to_pj(r.energy_per_bit_j()), 3) + " pJ/b",
               Table::num(100.0 * r.breakdown.memory_stall_s / r.latency_s, 1) + " %"});
  }
  t.print(std::cout);
}

void print_generation() {
  const tron::TronAccelerator acc(tron::default_tron_config());
  const auto model = nn::gpt2_small();
  Table t("TRON autoregressive decoding (GPT-2, 64-token prompt)");
  t.add_row({"generated tokens", "total latency", "ms/token", "GOPS", "stall share"});
  for (const std::size_t tokens : {16u, 64u, 128u, 256u}) {
    const PerfReport r = acc.estimate_generation(model, 64, tokens);
    t.add_row({std::to_string(tokens), Table::num(r.latency_s * 1e3, 3) + " ms",
               Table::num(r.latency_s * 1e3 / static_cast<double>(tokens), 4),
               Table::num(units::to_gops(r.ops_per_second()), 1),
               Table::num(100.0 * r.breakdown.memory_stall_s / r.latency_s, 1) + " %"});
  }
  t.print(std::cout);
  std::cout << "Single-token decode is weight-stream bound, exactly the regime that\n"
               "motivates PIM/batched serving for LLMs.\n\n";
}

void BM_RmatGeneration(benchmark::State& state) {
  const auto scale = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::rmat(scale, 8, {}, 1));
  }
}
BENCHMARK(BM_RmatGeneration)->Arg(10)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_GhostEstimateRmat(benchmark::State& state) {
  const ghost::GhostAccelerator acc(ghost::default_ghost_config());
  graph::GraphDataset ds;
  ds.name = "rmat";
  ds.graph = graph::rmat(static_cast<std::size_t>(state.range(0)), 8, {}, 2);
  ds.feature_dim = 64;
  ds.class_count = 16;
  const auto model = gnn::graphsage_model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.estimate(model, ds));
  }
}
BENCHMARK(BM_GhostEstimateRmat)->Arg(10)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_TronGeneration(benchmark::State& state) {
  const tron::TronAccelerator acc(tron::default_tron_config());
  const auto model = nn::gpt2_small();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        acc.estimate_generation(model, 64, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_TronGeneration)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_graph_scaling();
  print_batch_scaling();
  print_generation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
