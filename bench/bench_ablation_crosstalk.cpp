// Ablation B (DESIGN.md): WDM design-space sweep — the Fig. 3(d) physics.
//
// Regenerates the channel-count / Q-factor feasibility frontier that fixes
// the accelerators' 16-wavelength bank design: crosstalk vs spacing, the
// post-calibration SNR, and the per-channel laser power.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "photonics/wdm.hpp"

namespace {

using namespace lumos;
using namespace lumos::phot;

void print_sweep() {
  const WdmLinkDesigner designer(MicroringDesign{}, PhotodetectorConfig{}, VcselConfig{},
                                 LossStack{});
  WdmSearchSpace space;
  Table t("Ablation B: WDM design space (crosstalk-limited channel count, Fig. 3d physics)");
  t.add_row({"Q", "channels", "spacing", "worst xtalk", "OSCR", "eff. SNR", "laser/ch",
             "feasible"});
  for (const WdmDesignPoint& p : designer.sweep(space)) {
    t.add_row({Table::num(p.quality_factor, 0), std::to_string(p.channel_count),
               Table::num(units::to_nm(p.channel_spacing_m), 3) + " nm",
               Table::num(p.crosstalk_fraction, 4),
               Table::num(p.oscr_db, 1) + " dB",
               Table::num(p.effective_snr_db, 1) + " dB",
               Table::num(units::to_mw(p.laser_power_per_channel_w), 3) + " mW",
               p.feasible ? "yes" : "no"});
  }
  t.print(std::cout);
  if (const auto best = designer.best(space)) {
    std::cout << "Best design point: Q=" << best->quality_factor << ", "
              << best->channel_count << " channels, "
              << Table::num(units::to_nm(best->channel_spacing_m), 3)
              << " nm spacing, effective SNR " << Table::num(best->effective_snr_db, 1)
              << " dB\n\n";
  }
}

void BM_WdmSweep(benchmark::State& state) {
  const WdmLinkDesigner designer(MicroringDesign{}, PhotodetectorConfig{}, VcselConfig{},
                                 LossStack{});
  const WdmSearchSpace space;
  for (auto _ : state) {
    benchmark::DoNotOptimize(designer.sweep(space));
  }
}
BENCHMARK(BM_WdmSweep)->Unit(benchmark::kMillisecond);

void BM_CrosstalkAnalysis(benchmark::State& state) {
  HeterodyneConfig c;
  c.channel_count = static_cast<std::size_t>(state.range(0));
  const HeterodyneCrosstalkModel model(c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.analyze());
  }
}
BENCHMARK(BM_CrosstalkAnalysis)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
