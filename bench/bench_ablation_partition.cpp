// Ablation D (DESIGN.md): GHOST scheduling optimisations.
//
// Switches buffer-and-partition, weight-DAC sharing, and workload balancing
// on/off (paper Section V.D) and reports the latency/energy deltas per
// dataset, plus an input-block-size sweep of the partitioner itself.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "ghost/accelerator.hpp"

namespace {

using namespace lumos;

void print_optimization_matrix() {
  const auto model = gnn::gcn_model();
  Table t("Ablation D1: GHOST scheduling optimisations (GCN workload)");
  t.add_row({"dataset", "configuration", "latency", "total energy", "DRAM energy",
             "agg time"});
  for (const graph::GraphDataset& ds : graph::gnn_dataset_zoo()) {
    struct Variant {
      const char* name;
      bool partition, dac_sharing, balancing;
    };
    for (const Variant& v : {Variant{"all optimisations", true, true, true},
                             Variant{"no buffer-and-partition", false, true, true},
                             Variant{"no weight-DAC sharing", true, false, true},
                             Variant{"no workload balancing", true, true, false},
                             Variant{"none", false, false, false}}) {
      ghost::GhostConfig cfg = ghost::default_ghost_config();
      cfg.buffer_and_partition = v.partition;
      cfg.weight_dac_sharing = v.dac_sharing;
      cfg.workload_balancing = v.balancing;
      const PerfReport r = ghost::GhostAccelerator(cfg).estimate(model, ds);
      t.add_row({ds.name, v.name, Table::num(units::to_us(r.latency_s), 2) + " us",
                 Table::num(r.total_energy_j * 1e6, 1) + " uJ",
                 Table::num(r.breakdown.dram_energy_j * 1e6, 1) + " uJ",
                 Table::num(units::to_us(r.breakdown.aggregation_time_s), 3) + " us"});
    }
  }
  t.print(std::cout);
}

void print_block_sweep() {
  const graph::GraphDataset ds = graph::synthetic_cora();
  Table t("Ablation D2: buffer-and-partition input-block-size sweep (Cora)");
  t.add_row({"block size", "input blocks", "tiles", "refetch factor"});
  for (const std::size_t block : {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    const graph::PartitionSchedule s = graph::partition(ds.graph, {16, block});
    t.add_row({std::to_string(block), std::to_string(s.input_block_count),
               std::to_string(s.tiles.size()), Table::num(s.refetch_factor(), 2)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

void BM_Partition(benchmark::State& state) {
  const graph::GraphDataset ds = graph::synthetic_pubmed();
  const graph::PartitionConfig cfg{16, static_cast<std::size_t>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::partition(ds.graph, cfg));
  }
}
BENCHMARK(BM_Partition)->Arg(512)->Arg(2048)->Arg(8192)->Unit(benchmark::kMillisecond);

void BM_LaneBalance(benchmark::State& state) {
  const graph::CsrGraph g = graph::rmat(12, 8, {}, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::lane_imbalance(g, 16, state.range(0) != 0));
  }
}
BENCHMARK(BM_LaneBalance)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_optimization_matrix();
  print_block_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
