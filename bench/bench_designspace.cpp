// Design-space analysis (paper Section VI): sensitivity of both accelerators
// to their architectural knobs around the default design point, plus the
// floorplan/area summaries that bound the space.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/units.hpp"
#include "sim/sensitivity.hpp"

namespace {

using namespace lumos;

void print_sensitivity() {
  const auto tron_points =
      sim::tron_sensitivity(tron::default_tron_config(), nn::bert_base());
  sim::sensitivity_table("TRON design-space sensitivity (BERT-base; * = default)",
                         tron_points)
      .print(std::cout);

  const auto ghost_points = sim::ghost_sensitivity(ghost::default_ghost_config(),
                                                   gnn::gcn_model(), graph::synthetic_cora());
  sim::sensitivity_table("GHOST design-space sensitivity (GCN/Cora; * = default)",
                         ghost_points)
      .print(std::cout);
}

void print_area(const char* name, const phot::AreaReport& area) {
  Table t(std::string(name) + " floorplan");
  t.add_row({"component", "count", "area"});
  for (const phot::AreaItem& item : area.items) {
    t.add_row({item.component, std::to_string(item.count),
               Table::num(item.total_m2 * 1e6, 3) + " mm^2"});
  }
  t.add_row({"TOTAL", "", Table::num(area.total_mm2(), 2) + " mm^2"});
  t.add_row({"  of which photonic", "", Table::num(area.photonic_m2() * 1e6, 2) + " mm^2"});
  t.print(std::cout);
}

void print_areas() {
  print_area("TRON", tron::TronAccelerator(tron::default_tron_config()).area());
  print_area("GHOST", ghost::GhostAccelerator(ghost::default_ghost_config()).area());
  std::cout << '\n';
}

void BM_TronSensitivitySweep(benchmark::State& state) {
  const auto base = tron::default_tron_config();
  const auto model = nn::bert_base();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::tron_sensitivity(base, model));
  }
}
BENCHMARK(BM_TronSensitivitySweep)->Unit(benchmark::kMillisecond);

void BM_GhostSensitivitySweep(benchmark::State& state) {
  const auto base = ghost::default_ghost_config();
  const auto model = gnn::gcn_model();
  const auto ds = graph::synthetic_cora();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::ghost_sensitivity(base, model, ds));
  }
}
BENCHMARK(BM_GhostSensitivitySweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sensitivity();
  print_areas();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
