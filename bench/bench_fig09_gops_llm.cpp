// Reproduces paper Fig. 9: "Throughput comparison across LLM accelerators".
//
// Prints the GOPS grid and improvement factors backing the ">= 14x better
// throughput" claim, then times the TRON mapping across the model zoo.
#include <benchmark/benchmark.h>

#include <iostream>

#include "arch/accelerator.hpp"
#include "sim/figures.hpp"

namespace {

using namespace lumos;

void print_figure() {
  const sim::FigureData f = sim::run_fig9_gops_llm(arch::TronAdapter(tron::default_tron_config()));
  f.to_table().print(std::cout);

  Table gains("TRON throughput improvement factors (TRON GOPS / baseline GOPS)");
  std::vector<std::string> header{"workload"};
  for (std::size_t p = 1; p < f.platforms.size(); ++p) header.push_back(f.platforms[p]);
  gains.add_row(std::move(header));
  for (std::size_t w = 0; w < f.workloads.size(); ++w) {
    std::vector<std::string> row{f.workloads[w]};
    for (std::size_t p = 1; p < f.platforms.size(); ++p) {
      row.push_back(Table::num(f.improvement(w, p), 1) + "x");
    }
    gains.add_row(std::move(row));
  }
  gains.print(std::cout);
  std::cout << "Fig. 9 minimum throughput improvement: " << Table::num(f.min_improvement(), 2)
            << "x (paper claims >= 14x)\n"
            << "Fig. 9 geomean throughput improvement: "
            << Table::num(f.mean_improvement(), 2) << "x\n\n";
}

void BM_Fig9FullGrid(benchmark::State& state) {
  const arch::TronAdapter acc(tron::default_tron_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_fig9_gops_llm(acc));
  }
}
BENCHMARK(BM_Fig9FullGrid)->Unit(benchmark::kMillisecond);

void BM_TronEstimateZoo(benchmark::State& state) {
  const tron::TronAccelerator acc(tron::default_tron_config());
  const auto zoo = nn::llm_model_zoo();
  for (auto _ : state) {
    for (const auto& model : zoo) benchmark::DoNotOptimize(acc.estimate(model));
  }
}
BENCHMARK(BM_TronEstimateZoo)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
