// Microbenchmarks for the performance kernel layer, tracking the perf
// trajectory PR-over-PR.  Self-contained (steady_clock wall time, warmup +
// median-of-N) so it needs no benchmark framework; emits BENCH_kernels.json
// for machine consumption alongside a human-readable table.
//
// Usage:
//   bench_kernels [--smoke] [--out <path>]
//     --smoke   reduced sizes / repetitions (CI sanity run)
//     --out     JSON output path (default BENCH_kernels.json)
//
// Baselines marked "seed" are verbatim copies of the pre-optimisation
// kernels, so the recorded speedups always compare against the same code
// this PR replaced.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/parallel.hpp"
#include "common/provenance.hpp"
#include "ghost/accelerator.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "nn/ops.hpp"
#include "nn/tensor.hpp"
#include "nn/transformer.hpp"

namespace {

using namespace lumos;

// ---------------------------------------------------------------------------
// Timing harness
// ---------------------------------------------------------------------------

struct BenchResult {
  std::string name;
  std::string detail;
  double median_ms = 0.0;
  // Optional baseline (pre-PR kernel) for a recorded speedup.
  std::string baseline;
  double baseline_median_ms = 0.0;
  bool has_baseline = false;

  [[nodiscard]] double speedup() const {
    return median_ms > 0.0 ? baseline_median_ms / median_ms : 0.0;
  }
};

double checksum_sink = 0.0;  // defeats whole-benchmark dead-code elimination

double median_ms_of(int repetitions, const std::function<double()>& run) {
  run();  // warmup (first-touch, allocation, branch training)
  run();
  std::vector<double> samples;
  samples.reserve(repetitions);
  for (int i = 0; i < repetitions; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    checksum_sink += run();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// ---------------------------------------------------------------------------
// Seed kernels (pre-PR implementations, kept verbatim for the baselines)
// ---------------------------------------------------------------------------

nn::Matrix seed_matmul(const nn::Matrix& a, const nn::Matrix& b) {
  nn::Matrix out(a.rows(), b.cols());
  // ikj loop order for cache-friendly access of `b` (the seed kernel).
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double av = a(i, k);
      if (av == 0.0) continue;
      const std::size_t n = b.cols();
      for (std::size_t j = 0; j < n; ++j) out(i, j) += av * b(k, j);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Benchmarks
// ---------------------------------------------------------------------------

std::vector<BenchResult> run_benches(bool smoke) {
  std::vector<BenchResult> results;
  const int reps = smoke ? 3 : 9;
  Rng rng(1);

  // ---- Dense matmul: blocked/parallel kernel vs seed ikj kernel ----
  {
    const std::size_t n = smoke ? 128 : 512;
    nn::Matrix a(n, n), b(n, n);
    a.fill_uniform(rng, -1.0, 1.0);
    b.fill_uniform(rng, -1.0, 1.0);
    BenchResult r;
    r.name = "matmul_" + std::to_string(n);
    r.detail = std::to_string(n) + "x" + std::to_string(n) + "x" + std::to_string(n) +
               " dense matmul";
    r.median_ms = median_ms_of(reps, [&] { return a.matmul(b)(0, 0); });
    r.baseline = "seed ikj matmul";
    r.baseline_median_ms = median_ms_of(reps, [&] { return seed_matmul(a, b)(0, 0); });
    r.has_baseline = true;
    results.push_back(r);
  }

  // ---- Transpose-free A B^T vs seed transpose + matmul ----
  {
    const std::size_t n = smoke ? 128 : 512;
    nn::Matrix a(n, n), bt(n, n);
    a.fill_uniform(rng, -1.0, 1.0);
    bt.fill_uniform(rng, -1.0, 1.0);
    BenchResult r;
    r.name = "matmul_nt_" + std::to_string(n);
    r.detail = "A * B^T without materialising the transpose";
    r.median_ms = median_ms_of(reps, [&] { return a.matmul_nt(bt)(0, 0); });
    r.baseline = "seed transpose + ikj matmul";
    r.baseline_median_ms =
        median_ms_of(reps, [&] { return seed_matmul(a, bt.transposed())(0, 0); });
    r.has_baseline = true;
    results.push_back(r);
  }

  // ---- Allocation-free matmul_into (steady-state buffer reuse) ----
  {
    const std::size_t n = smoke ? 128 : 256;
    nn::Matrix a(n, n), b(n, n), out;
    a.fill_uniform(rng, -1.0, 1.0);
    b.fill_uniform(rng, -1.0, 1.0);
    BenchResult r;
    r.name = "matmul_into_" + std::to_string(n);
    r.detail = "matmul into a reused output buffer";
    r.median_ms = median_ms_of(reps, [&] {
      a.matmul_into(b, out);
      return out(0, 0);
    });
    results.push_back(r);
  }

  // ---- Row-wise ops ----
  {
    const std::size_t n = smoke ? 256 : 2048;
    nn::Matrix m(n, n);
    m.fill_uniform(rng, -4.0, 4.0);
    BenchResult r;
    r.name = "softmax_rows_" + std::to_string(n);
    r.detail = std::to_string(n) + "x" + std::to_string(n) + " row-wise softmax";
    nn::Matrix scratch = m;
    r.median_ms = median_ms_of(reps, [&] {
      scratch = m;
      nn::softmax_rows(scratch);
      return scratch(0, 0);
    });
    results.push_back(r);
  }

  // ---- Transformer reference layer (scratch-buffer reuse path) ----
  {
    const auto config = smoke ? nn::tiny_transformer(32) : nn::bert_base(128);
    const auto weights = nn::TransformerWeights::random(config, 3);
    nn::Matrix x(config.seq_len, config.d_model);
    x.fill_uniform(rng, -1.0, 1.0);
    BenchResult r;
    r.name = std::string("transformer_layer_") + (smoke ? "tiny" : "bert_base");
    r.detail = "exact reference forward of one encoder layer";
    r.median_ms = median_ms_of(reps, [&] {
      return nn::reference_layer_forward(weights.layers[0], config, x)(0, 0);
    });
    results.push_back(r);
  }

  // ---- GHOST estimator: degree histogram vs per-node loop ----
  {
    const std::size_t scale = smoke ? 12 : 17;  // 2^17 = 131072 >= 100k nodes
    graph::GraphDataset ds;
    ds.name = "rmat-" + std::to_string(scale);
    ds.graph = graph::rmat(scale, 8, {}, 7);
    ds.feature_dim = 128;
    ds.class_count = 40;
    const ghost::GhostAccelerator acc(ghost::default_ghost_config());
    const auto model = gnn::graphsage_model();
    BenchResult r;
    r.name = "ghost_estimate_rmat" + std::to_string(scale);
    r.detail = std::to_string(ds.graph.node_count()) + "-node RMAT, " +
               std::to_string(ds.graph.degree_histogram().size()) + " distinct degrees";
    r.median_ms = median_ms_of(reps, [&] {
      return acc.estimate(model, ds, ghost::AggregateCosting::kDegreeHistogram).latency_s;
    });
    r.baseline = "per-node aggregate loop + per-layer map partitioning";
    r.baseline_median_ms = median_ms_of(smoke ? 2 : 3, [&] {
      return acc.estimate(model, ds, ghost::AggregateCosting::kPerNodeReference).latency_s;
    });
    r.has_baseline = true;
    results.push_back(r);

    // ---- Buffer-and-partition tiling: linear sweep vs map-based ----
    BenchResult p;
    p.name = "partition_rmat" + std::to_string(scale);
    p.detail = std::to_string(ds.graph.edge_count()) + " edges tiled";
    p.median_ms = median_ms_of(reps, [&] {
      return static_cast<double>(graph::partition(ds.graph, {16, 2048}).tiles.size());
    });
    p.baseline = "seed map-based tiling";
    p.baseline_median_ms = median_ms_of(smoke ? 2 : 3, [&] {
      return static_cast<double>(
          graph::partition_reference(ds.graph, {16, 2048}).tiles.size());
    });
    p.has_baseline = true;
    results.push_back(p);
  }

  return results;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

bool write_json(const std::vector<BenchResult>& results, const std::string& path,
                bool smoke) {
  std::ofstream f(path);
  f << "{\n  \"bench\": \"kernels\",\n";
  f << "  " << provenance_json(ThreadPool::global().thread_count()) << ",\n";
  f << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  f << "  \"threads\": " << ThreadPool::global().thread_count() << ",\n";
  f << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    f << "    {\"name\": \"" << json_escape(r.name) << "\", \"detail\": \""
      << json_escape(r.detail) << "\", \"median_ms\": " << r.median_ms;
    if (r.has_baseline) {
      f << ", \"baseline\": \"" << json_escape(r.baseline)
        << "\", \"baseline_median_ms\": " << r.baseline_median_ms
        << ", \"speedup\": " << r.speedup();
    }
    f << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  return static_cast<bool>(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<BenchResult> results = run_benches(smoke);

  std::printf("%-26s %12s %12s %9s  %s\n", "kernel", "median ms", "baseline ms", "speedup",
              "baseline");
  for (const BenchResult& r : results) {
    if (r.has_baseline) {
      std::printf("%-26s %12.3f %12.3f %8.2fx  %s\n", r.name.c_str(), r.median_ms,
                  r.baseline_median_ms, r.speedup(), r.baseline.c_str());
    } else {
      std::printf("%-26s %12.3f %12s %9s\n", r.name.c_str(), r.median_ms, "-", "-");
    }
  }

  if (!write_json(results, out_path, smoke)) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (checksum %g)\n", out_path.c_str(), checksum_sink);
  return 0;
}
