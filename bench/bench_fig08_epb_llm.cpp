// Reproduces paper Fig. 8: "EPB comparison across LLM accelerators".
//
// Prints the full workload x platform EPB grid (TRON first), the per-platform
// improvement factors, and the min/mean improvements backing the paper's
// ">= 8x better energy efficiency" claim; then times the simulator itself
// under google-benchmark.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/stats.hpp"
#include "arch/accelerator.hpp"
#include "sim/figures.hpp"

namespace {

using namespace lumos;

void print_figure() {
  const sim::FigureData f = sim::run_fig8_epb_llm(arch::TronAdapter(tron::default_tron_config()));
  f.to_table().print(std::cout);

  Table gains("TRON EPB improvement factors (baseline EPB / TRON EPB)");
  std::vector<std::string> header{"workload"};
  for (std::size_t p = 1; p < f.platforms.size(); ++p) header.push_back(f.platforms[p]);
  gains.add_row(std::move(header));
  for (std::size_t w = 0; w < f.workloads.size(); ++w) {
    std::vector<std::string> row{f.workloads[w]};
    for (std::size_t p = 1; p < f.platforms.size(); ++p) {
      row.push_back(Table::num(f.improvement(w, p), 1) + "x");
    }
    gains.add_row(std::move(row));
  }
  gains.print(std::cout);
  std::cout << "Fig. 8 minimum EPB improvement: " << Table::num(f.min_improvement(), 2)
            << "x (paper claims >= 8x)\n"
            << "Fig. 8 geomean EPB improvement: " << Table::num(f.mean_improvement(), 2)
            << "x\n\n";
}

void BM_Fig8FullGrid(benchmark::State& state) {
  const arch::TronAdapter acc(tron::default_tron_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_fig8_epb_llm(acc));
  }
}
BENCHMARK(BM_Fig8FullGrid)->Unit(benchmark::kMillisecond);

void BM_TronEstimateBertBase(benchmark::State& state) {
  const tron::TronAccelerator acc(tron::default_tron_config());
  const auto model = nn::bert_base();
  for (auto _ : state) {
    benchmark::DoNotOptimize(acc.estimate(model));
  }
}
BENCHMARK(BM_TronEstimateBertBase)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
