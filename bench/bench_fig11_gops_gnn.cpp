// Reproduces paper Fig. 11: "Throughput comparison across GNN accelerators".
//
// Prints the GOPS grid and improvement factors backing the ">= 10.2x
// improvement in throughput" claim.
#include <benchmark/benchmark.h>

#include <iostream>

#include "arch/accelerator.hpp"
#include "sim/figures.hpp"

namespace {

using namespace lumos;

void print_figure() {
  const sim::FigureData f = sim::run_fig11_gops_gnn(arch::GhostAdapter(ghost::default_ghost_config()));
  f.to_table().print(std::cout);

  Table gains("GHOST throughput improvement factors (GHOST GOPS / baseline GOPS)");
  std::vector<std::string> header{"workload"};
  for (std::size_t p = 1; p < f.platforms.size(); ++p) header.push_back(f.platforms[p]);
  gains.add_row(std::move(header));
  for (std::size_t w = 0; w < f.workloads.size(); ++w) {
    std::vector<std::string> row{f.workloads[w]};
    for (std::size_t p = 1; p < f.platforms.size(); ++p) {
      row.push_back(Table::num(f.improvement(w, p), 1) + "x");
    }
    gains.add_row(std::move(row));
  }
  gains.print(std::cout);
  std::cout << "Fig. 11 minimum throughput improvement: "
            << Table::num(f.min_improvement(), 2) << "x (paper claims >= 10.2x)\n"
            << "Fig. 11 geomean throughput improvement: "
            << Table::num(f.mean_improvement(), 2) << "x\n\n";
}

void BM_Fig11FullGrid(benchmark::State& state) {
  const arch::GhostAdapter acc(ghost::default_ghost_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_fig11_gops_gnn(acc));
  }
}
BENCHMARK(BM_Fig11FullGrid)->Unit(benchmark::kMillisecond);

void BM_GhostEstimateZooOnCora(benchmark::State& state) {
  const ghost::GhostAccelerator acc(ghost::default_ghost_config());
  const auto ds = graph::synthetic_cora();
  const auto zoo = gnn::gnn_model_zoo();
  for (auto _ : state) {
    for (const auto& model : zoo) benchmark::DoNotOptimize(acc.estimate(model, ds));
  }
}
BENCHMARK(BM_GhostEstimateZooOnCora)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_figure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
